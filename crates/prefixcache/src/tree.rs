//! Token-level radix tree keyed by prompt prefixes.
//!
//! A standard compressed trie over `u32` token ids: every edge carries a non-empty
//! token run, children are kept sorted by first token (deterministic traversal),
//! edges split when a new key diverges mid-run and merge back when removals leave a
//! pass-through node. Values live on nodes ("an entry at depth `d`" caches the
//! prefix formed by the `d` tokens on the root path) and carry an LRU tick.

/// One cached value plus its LRU timestamp.
#[derive(Debug)]
struct Entry<V> {
    value: V,
    last_used: u64,
}

#[derive(Debug)]
struct Node<V> {
    entry: Option<Entry<V>>,
    /// `(edge label, child)`, labels non-empty, sorted by first token, first
    /// tokens pairwise distinct (radix invariant).
    children: Vec<(Vec<u32>, Node<V>)>,
}

impl<V> Node<V> {
    fn new() -> Self {
        Self {
            entry: None,
            children: Vec::new(),
        }
    }
}

fn common_prefix_len(a: &[u32], b: &[u32]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// A radix tree mapping token sequences to values, with LRU bookkeeping.
///
/// # Example
///
/// ```
/// use lserve_prefixcache::RadixTree;
///
/// let mut t: RadixTree<&str> = RadixTree::new();
/// assert!(t.insert(&[1, 2, 3, 4], "system+personaA", 1).is_ok());
/// assert!(t.insert(&[1, 2, 9, 9], "system+personaB", 2).is_ok());
/// // Deepest cached prefix of [1,2,3,4,7,7]: the 4-token entry.
/// let (depth, v) = t.lookup(&[1, 2, 3, 4, 7, 7], 1, 5, 3).unwrap();
/// assert_eq!((depth, *v), (4, "system+personaA"));
/// ```
#[derive(Debug)]
pub struct RadixTree<V> {
    root: Node<V>,
    entries: usize,
}

impl<V> Default for RadixTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> RadixTree<V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self {
            root: Node::new(),
            entries: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Inserts `value` for exactly `key`, stamping it with `tick`.
    ///
    /// Returns `Err(value)` (handing the value back, tree unchanged except for an
    /// LRU touch of the existing entry) when `key` is already cached.
    ///
    /// # Panics
    ///
    /// Panics if `key` is empty.
    pub fn insert(&mut self, key: &[u32], value: V, tick: u64) -> Result<(), V> {
        assert!(!key.is_empty(), "empty prefix key");
        let res = Self::insert_rec(&mut self.root, key, value, tick);
        if res.is_ok() {
            self.entries += 1;
        }
        res
    }

    fn insert_rec(node: &mut Node<V>, key: &[u32], value: V, tick: u64) -> Result<(), V> {
        if key.is_empty() {
            return match &mut node.entry {
                Some(existing) => {
                    existing.last_used = tick;
                    Err(value)
                }
                slot @ None => {
                    *slot = Some(Entry {
                        value,
                        last_used: tick,
                    });
                    Ok(())
                }
            };
        }
        let Some(i) = node.children.iter().position(|(l, _)| l[0] == key[0]) else {
            node.children.push((key.to_vec(), Node::new()));
            node.children.sort_by_key(|(l, _)| l[0]);
            let i = node
                .children
                .iter()
                .position(|(l, _)| l[0] == key[0])
                .expect("just inserted");
            return Self::insert_rec(&mut node.children[i].1, &[], value, tick);
        };
        let common = common_prefix_len(&node.children[i].0, key);
        if common == node.children[i].0.len() {
            return Self::insert_rec(&mut node.children[i].1, &key[common..], value, tick);
        }
        // Diverges mid-edge: split the edge at `common`.
        let (label, old_child) = node.children.remove(i);
        let mut mid = Node::new();
        mid.children.push((label[common..].to_vec(), old_child));
        let res = Self::insert_rec(&mut mid, &key[common..], value, tick);
        node.children.push((label[..common].to_vec(), mid));
        node.children.sort_by_key(|(l, _)| l[0]);
        res
    }

    /// Finds the deepest cached entry whose key is a prefix of `query` with depth
    /// in `[min_depth.max(1), max_depth]`, touches its LRU stamp with `tick`, and
    /// returns `(depth, &value)`.
    pub fn lookup(
        &mut self,
        query: &[u32],
        min_depth: usize,
        max_depth: usize,
        tick: u64,
    ) -> Option<(usize, &V)> {
        let mut best = None;
        Self::best_depth(&self.root, query, 0, min_depth.max(1), max_depth, &mut best);
        let depth = best?;
        let entry = Self::entry_at_mut(&mut self.root, &query[..depth])
            .expect("best depth points at an entry");
        entry.last_used = tick;
        Some((depth, &entry.value))
    }

    fn best_depth(
        node: &Node<V>,
        rest: &[u32],
        depth: usize,
        min: usize,
        max: usize,
        best: &mut Option<usize>,
    ) {
        if node.entry.is_some() && depth >= min && depth <= max {
            *best = Some(depth); // deeper recorded matches overwrite shallower ones
        }
        if rest.is_empty() {
            return;
        }
        if let Some((label, child)) = node.children.iter().find(|(l, _)| l[0] == rest[0]) {
            if rest.len() >= label.len() && rest[..label.len()] == label[..] {
                Self::best_depth(
                    child,
                    &rest[label.len()..],
                    depth + label.len(),
                    min,
                    max,
                    best,
                );
            }
        }
    }

    fn entry_at_mut<'a>(node: &'a mut Node<V>, rest: &[u32]) -> Option<&'a mut Entry<V>> {
        if rest.is_empty() {
            return node.entry.as_mut();
        }
        let i = node.children.iter().position(|(l, _)| l[0] == rest[0])?;
        let (label, child) = &mut node.children[i];
        if rest.len() < label.len() || rest[..label.len()] != label[..] {
            return None;
        }
        let n = label.len();
        Self::entry_at_mut(child, &rest[n..])
    }

    /// The value cached for exactly `key`, if any (no LRU touch).
    pub fn get_exact(&self, key: &[u32]) -> Option<&V> {
        let mut node = &self.root;
        let mut rest = key;
        loop {
            if rest.is_empty() {
                return node.entry.as_ref().map(|e| &e.value);
            }
            let (label, child) = node.children.iter().find(|(l, _)| l[0] == rest[0])?;
            if rest.len() < label.len() || rest[..label.len()] != label[..] {
                return None;
            }
            node = child;
            rest = &rest[label.len()..];
        }
    }

    /// Removes and returns the entry cached for exactly `key`, pruning childless
    /// nodes and merging pass-through edges it leaves behind.
    pub fn remove(&mut self, key: &[u32]) -> Option<V> {
        let v = Self::remove_rec(&mut self.root, key)?;
        self.entries -= 1;
        Some(v)
    }

    fn remove_rec(node: &mut Node<V>, rest: &[u32]) -> Option<V> {
        if rest.is_empty() {
            return node.entry.take().map(|e| e.value);
        }
        let i = node.children.iter().position(|(l, _)| l[0] == rest[0])?;
        let label_len = node.children[i].0.len();
        if rest.len() < label_len || rest[..label_len] != node.children[i].0[..] {
            return None;
        }
        let v = Self::remove_rec(&mut node.children[i].1, &rest[label_len..])?;
        let child = &mut node.children[i].1;
        if child.entry.is_none() && child.children.is_empty() {
            node.children.remove(i);
        } else if child.entry.is_none() && child.children.len() == 1 {
            // Pass-through node: merge the grandchild edge into this one.
            let (grand_label, grand_child) = child.children.pop().expect("len checked");
            node.children[i].0.extend(grand_label);
            node.children[i].1 = grand_child;
        }
        Some(v)
    }

    /// The key of the least-recently-used entry (smallest tick; ties broken by the
    /// deterministic sorted traversal order), or `None` when empty.
    pub fn lru_key(&self) -> Option<Vec<u32>> {
        let mut best: Option<(u64, Vec<u32>)> = None;
        let mut path = Vec::new();
        Self::lru_rec(&self.root, &mut path, &mut best);
        best.map(|(_, key)| key)
    }

    /// Every entry's key, least-recently-used first (ascending tick; ticks are
    /// unique, so the order is total and deterministic).
    pub fn keys_by_lru(&self) -> Vec<Vec<u32>> {
        let mut keys: Vec<(u64, Vec<u32>)> = Vec::with_capacity(self.entries);
        let mut path = Vec::new();
        Self::collect_rec(&self.root, &mut path, &mut keys);
        keys.sort_by_key(|(tick, _)| *tick);
        keys.into_iter().map(|(_, key)| key).collect()
    }

    fn collect_rec(node: &Node<V>, path: &mut Vec<u32>, out: &mut Vec<(u64, Vec<u32>)>) {
        if let Some(e) = &node.entry {
            out.push((e.last_used, path.clone()));
        }
        for (label, child) in &node.children {
            path.extend_from_slice(label);
            Self::collect_rec(child, path, out);
            path.truncate(path.len() - label.len());
        }
    }

    fn lru_rec(node: &Node<V>, path: &mut Vec<u32>, best: &mut Option<(u64, Vec<u32>)>) {
        if let Some(e) = &node.entry {
            if best.as_ref().is_none_or(|(t, _)| e.last_used < *t) {
                *best = Some((e.last_used, path.clone()));
            }
        }
        for (label, child) in &node.children {
            path.extend_from_slice(label);
            Self::lru_rec(child, path, best);
            path.truncate(path.len() - label.len());
        }
    }

    /// Removes every entry and returns the values (deterministic traversal order).
    pub fn drain(&mut self) -> Vec<V> {
        let mut out = Vec::with_capacity(self.entries);
        Self::drain_rec(std::mem::replace(&mut self.root, Node::new()), &mut out);
        self.entries = 0;
        out
    }

    fn drain_rec(node: Node<V>, out: &mut Vec<V>) {
        if let Some(e) = node.entry {
            out.push(e.value);
        }
        for (_, child) in node.children {
            Self::drain_rec(child, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_deepest_prefix() {
        let mut t = RadixTree::new();
        t.insert(&[1, 2], "ab", 1).unwrap();
        t.insert(&[1, 2, 3, 4], "abcd", 2).unwrap();
        let (d, v) = t.lookup(&[1, 2, 3, 4, 5], 1, 4, 3).unwrap();
        assert_eq!((d, *v), (4, "abcd"));
        // max_depth below the deep entry falls back to the shallow one.
        let (d, v) = t.lookup(&[1, 2, 3, 4, 5], 1, 3, 4).unwrap();
        assert_eq!((d, *v), (2, "ab"));
        // min_depth above everything: miss.
        assert!(t.lookup(&[1, 2, 3, 4, 5], 5, 9, 5).is_none());
        // Non-matching query: miss.
        assert!(t.lookup(&[9, 9], 1, 9, 6).is_none());
    }

    #[test]
    fn divergence_splits_edges() {
        let mut t = RadixTree::new();
        t.insert(&[5, 6, 7, 8], "x", 1).unwrap();
        t.insert(&[5, 6, 9, 9], "y", 2).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get_exact(&[5, 6, 7, 8]), Some(&"x"));
        assert_eq!(t.get_exact(&[5, 6, 9, 9]), Some(&"y"));
        assert_eq!(t.get_exact(&[5, 6]), None, "split point holds no entry");
        // An entry can land exactly on the split point afterwards.
        t.insert(&[5, 6], "xy", 3).unwrap();
        assert_eq!(t.get_exact(&[5, 6]), Some(&"xy"));
        let (d, v) = t.lookup(&[5, 6, 7, 0], 1, 4, 4).unwrap();
        assert_eq!((d, *v), (2, "xy"));
    }

    #[test]
    fn duplicate_insert_refused_and_touched() {
        let mut t = RadixTree::new();
        t.insert(&[1, 2, 3], "a", 1).unwrap();
        t.insert(&[9], "b", 2).unwrap();
        assert_eq!(t.insert(&[1, 2, 3], "dup", 3), Err("dup"));
        // The refused insert still counted as a use: [9] is now the LRU entry.
        assert_eq!(t.lru_key(), Some(vec![9]));
    }

    #[test]
    fn lru_follows_lookups() {
        let mut t = RadixTree::new();
        t.insert(&[1, 1], "a", 1).unwrap();
        t.insert(&[2, 2], "b", 2).unwrap();
        t.insert(&[3, 3], "c", 3).unwrap();
        assert_eq!(t.lru_key(), Some(vec![1, 1]));
        t.lookup(&[1, 1, 5], 1, 2, 4).unwrap();
        assert_eq!(t.lru_key(), Some(vec![2, 2]));
        assert_eq!(t.remove(&[2, 2]), Some("b"));
        assert_eq!(t.lru_key(), Some(vec![3, 3]));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn remove_merges_pass_through_edges() {
        let mut t = RadixTree::new();
        t.insert(&[1, 2, 3, 4], "deep", 1).unwrap();
        t.insert(&[1, 2, 8], "fork", 2).unwrap();
        assert_eq!(t.remove(&[1, 2, 8]), Some("fork"));
        assert_eq!(t.remove(&[1, 2, 8]), None);
        // The [1,2] split node merged back; the deep entry is still reachable.
        assert_eq!(t.get_exact(&[1, 2, 3, 4]), Some(&"deep"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.drain(), vec!["deep"]);
        assert!(t.is_empty());
    }
}
