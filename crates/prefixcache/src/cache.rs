//! The managed prefix store: refcounted insertion, LRU eviction, counters.

use lserve_kvcache::{PageId, PagePool, Residency};

use crate::tree::RadixTree;

/// Contract for a cached prefix value: it references pool pages and can take or
/// drop one co-ownership reference on all of them.
///
/// The cache calls [`PrefixPages::retain`] exactly once when a value is accepted
/// into the tree and [`PrefixPages::release`] exactly once when it leaves
/// (eviction or clear). Serving layers call `retain` again for every sequence they
/// seed from the value, and pages stay immutable while shared because appends
/// copy-on-write fork any page whose refcount exceeds 1.
pub trait PrefixPages {
    /// Takes one additional reference on every page this value references.
    fn retain(&self, pool: &mut PagePool);
    /// Drops the value's reference on every page (recycling pages that reach
    /// refcount zero).
    fn release(&mut self, pool: &mut PagePool);
    /// Number of page references this value holds (shared pages count once per
    /// referencing value).
    fn page_refs(&self) -> usize;
    /// True when releasing this value would return at least one physical page to
    /// the pool (some referenced page has no other owner). Pressure-driven
    /// eviction skips values for which this is false — removing them relieves
    /// nothing and only makes future lookups colder.
    fn frees_pages(&self, pool: &PagePool) -> bool;
    /// True when [`PrefixPages::spill`] would move at least one page out of the
    /// hot tier: some referenced page is sole-owned and hot. Shared pages are
    /// not spillable through this value — a co-owner is actively reading them.
    fn spillable(&self, pool: &PagePool) -> bool;
    /// Demotes every sole-owned hot page this value references into the cold
    /// tier, returning the number of pages moved. The value keeps all its
    /// references and stays cached: a later hit pays an accounted promotion
    /// instead of a prefill recompute, which is the whole point of spilling
    /// over evicting. Pages the bounded host refuses stay hot (partial spill
    /// is fine — each page moved is a hot slot relieved).
    fn spill(&self, pool: &mut PagePool) -> u64;
}

/// The minimal concrete cached value: per-layer, page-aligned runs of page ids
/// covering `tokens` prefix tokens. The serving layer caches richer per-sequence
/// state; this type is the crate-local reference implementation and test vehicle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageRunPrefix {
    /// Prefix length in tokens.
    pub tokens: usize,
    /// One ordered run of physical pages per (layer, head) slot.
    pub runs: Vec<Vec<PageId>>,
}

impl PrefixPages for PageRunPrefix {
    fn retain(&self, pool: &mut PagePool) {
        for run in &self.runs {
            for &id in run {
                pool.retain(id);
            }
        }
    }

    fn release(&mut self, pool: &mut PagePool) {
        for run in &mut self.runs {
            for id in run.drain(..) {
                pool.free(id);
            }
        }
    }

    fn page_refs(&self) -> usize {
        self.runs.iter().map(Vec::len).sum()
    }

    fn frees_pages(&self, pool: &PagePool) -> bool {
        self.runs
            .iter()
            .any(|run| run.iter().any(|&id| pool.refcount(id) == 1))
    }

    fn spillable(&self, pool: &PagePool) -> bool {
        self.runs.iter().any(|run| {
            run.iter()
                .any(|&id| pool.refcount(id) == 1 && matches!(pool.residency(id), Residency::Hot))
        })
    }

    fn spill(&self, pool: &mut PagePool) -> u64 {
        let mut moved = 0;
        for run in &self.runs {
            for &id in run {
                if pool.refcount(id) == 1
                    && matches!(pool.residency(id), Residency::Hot)
                    && pool.demote(id).is_some()
                {
                    moved += 1;
                }
            }
        }
        moved
    }
}

/// Hit/miss/volume counters a serving report can surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefixCacheStats {
    /// Lookups that matched a cached prefix.
    pub hits: u64,
    /// Lookups that matched nothing (within the caller's depth bounds).
    pub misses: u64,
    /// Total prompt tokens served from the cache across all hits.
    pub hit_tokens: u64,
    /// Values accepted into the tree.
    pub insertions: u64,
    /// Values removed (LRU eviction and clears).
    pub evictions: u64,
}

/// Refcount-backed radix prefix cache with LRU eviction.
///
/// # Example
///
/// ```
/// use lserve_kvcache::{PagePool, PagingConfig};
/// use lserve_prefixcache::{PageRunPrefix, PrefixCache};
/// use lserve_quant::KvPrecision;
///
/// let mut pool = PagePool::new(PagingConfig::new(4, 2, KvPrecision::Fp16), 8, 2);
/// let page = pool.allocate().unwrap();
/// let mut cache: PrefixCache<PageRunPrefix> = PrefixCache::new();
/// let value = PageRunPrefix { tokens: 4, runs: vec![vec![page]] };
/// assert!(cache.insert(&mut pool, &[10, 11, 12, 13], value));
/// assert_eq!(pool.refcount(page), 2); // owner + cache
/// let (depth, hit) = cache.lookup(&[10, 11, 12, 13, 14], 1, 4).unwrap();
/// assert_eq!((depth, hit.tokens), (4, 4));
/// cache.clear(&mut pool);
/// assert_eq!(pool.refcount(page), 1);
/// ```
#[derive(Debug, Default)]
pub struct PrefixCache<V: PrefixPages> {
    tree: RadixTree<V>,
    tick: u64,
    page_refs: usize,
    stats: PrefixCacheStats,
}

impl<V: PrefixPages> PrefixCache<V> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            tree: RadixTree::new(),
            tick: 0,
            page_refs: 0,
            stats: PrefixCacheStats::default(),
        }
    }

    /// Number of cached prefixes.
    pub fn entries(&self) -> usize {
        self.tree.len()
    }

    /// Total page references the cache currently holds (shared pages counted once
    /// per referencing entry; compare with `PagePool::shared_pages` for physical
    /// footprint).
    pub fn page_refs(&self) -> usize {
        self.page_refs
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PrefixCacheStats {
        self.stats
    }

    /// Finds the deepest cached prefix of `prompt` with length in
    /// `[min_match.max(1), max_match]`, counting and LRU-touching the hit.
    ///
    /// Serving layers pass `min_match = chunk_tokens` (the prefill tile grid cell,
    /// so the uncached suffix is computed entirely on the position-stable decode
    /// path) and `max_match = prompt.len() - 1` (at least one suffix token must be
    /// computed to produce first-token logits).
    pub fn lookup(
        &mut self,
        prompt: &[u32],
        min_match: usize,
        max_match: usize,
    ) -> Option<(usize, &V)> {
        self.tick += 1;
        match self.tree.lookup(prompt, min_match, max_match, self.tick) {
            Some((depth, v)) => {
                self.stats.hits += 1;
                self.stats.hit_tokens += depth as u64;
                Some((depth, v))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// LRU-touches the deepest cached prefix of `prompt` within the bounds
    /// without counting a hit or miss, returning its depth. Admission control
    /// uses this to protect a would-be match from pressure-driven eviction
    /// before the real [`PrefixCache::lookup`] runs.
    pub fn touch(&mut self, prompt: &[u32], min_match: usize, max_match: usize) -> Option<usize> {
        self.tick += 1;
        self.tree
            .lookup(prompt, min_match, max_match, self.tick)
            .map(|(depth, _)| depth)
    }

    /// Donates a value for exactly `prompt`: retains its pages and stores it.
    ///
    /// Returns `false` when the prefix is already cached — the duplicate value's
    /// pages are released again and the existing entry gets an LRU touch, so
    /// re-donation (e.g. after a preemption replay) is idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty.
    pub fn insert(&mut self, pool: &mut PagePool, prompt: &[u32], value: V) -> bool {
        self.tick += 1;
        value.retain(pool);
        let refs = value.page_refs();
        match self.tree.insert(prompt, value, self.tick) {
            Ok(()) => {
                self.page_refs += refs;
                self.stats.insertions += 1;
                true
            }
            Err(mut duplicate) => {
                duplicate.release(pool);
                false
            }
        }
    }

    /// True when exactly `prompt` is cached (no LRU touch, no counters) —
    /// donation paths use this to skip capturing a value the tree would refuse.
    pub fn is_cached(&self, prompt: &[u32]) -> bool {
        self.tree.get_exact(prompt).is_some()
    }

    /// Evicts the least-recently-used prefix, dropping its page references.
    /// Returns the number of references released, or `None` when the cache is
    /// empty. Pages still co-owned by running sequences survive the eviction.
    pub fn evict_lru(&mut self, pool: &mut PagePool) -> Option<usize> {
        let key = self.tree.lru_key()?;
        Some(self.evict_key(pool, &key))
    }

    /// Evicts the least-recently-used prefix *whose removal would free at least
    /// one physical page*, skipping (and keeping) entries whose pages are all
    /// co-owned elsewhere — nested anchors covered by deeper entries, prefixes
    /// still pinned by running sequences. Returns `None` when no eviction can
    /// relieve the pool, in which case the caller needs a different lever
    /// (preemption).
    pub fn evict_lru_freeing(&mut self, pool: &mut PagePool) -> Option<usize> {
        let key = self.tree.keys_by_lru().into_iter().find(|key| {
            self.tree
                .get_exact(key)
                .is_some_and(|v| v.frees_pages(pool))
        })?;
        Some(self.evict_key(pool, &key))
    }

    /// Spills the least-recently-used prefix that still holds sole-owned hot
    /// pages: its pages demote into the cold tiers but the entry **stays
    /// cached**, so a long-tail prefix keeps its warm-capacity value (a later
    /// hit pays promotion, not recompute). Returns the number of pages moved,
    /// or `None` when no cached prefix can relieve the hot tier this way —
    /// the caller falls back to real eviction ([`PrefixCache::evict_lru_freeing`]).
    ///
    /// Deliberately not an LRU touch: spilling is pressure acting *on* the
    /// entry, not a use of it, and must not promote the victim's recency.
    pub fn spill_lru(&mut self, pool: &mut PagePool) -> Option<u64> {
        for key in self.tree.keys_by_lru() {
            let Some(value) = self.tree.get_exact(&key) else {
                continue;
            };
            if !value.spillable(pool) {
                continue;
            }
            let moved = value.spill(pool);
            if moved > 0 {
                return Some(moved);
            }
        }
        None
    }

    fn evict_key(&mut self, pool: &mut PagePool, key: &[u32]) -> usize {
        let mut value = self.tree.remove(key).expect("key listed by the tree");
        let refs = value.page_refs();
        value.release(pool);
        self.page_refs -= refs;
        self.stats.evictions += 1;
        refs
    }

    /// Evicts everything (counted as evictions), returning all page references.
    pub fn clear(&mut self, pool: &mut PagePool) {
        for mut value in self.tree.drain() {
            self.page_refs -= value.page_refs();
            self.stats.evictions += 1;
            value.release(pool);
        }
        debug_assert_eq!(self.page_refs, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lserve_kvcache::PagingConfig;
    use lserve_quant::KvPrecision;

    fn pool() -> PagePool {
        PagePool::new(PagingConfig::new(4, 2, KvPrecision::Fp16), 32, 2)
    }

    fn run_of(pool: &mut PagePool, n: usize) -> PageRunPrefix {
        let runs = vec![(0..n).map(|_| pool.allocate().unwrap()).collect()];
        PageRunPrefix {
            tokens: n * 4,
            runs,
        }
    }

    #[test]
    fn insert_retains_and_evict_releases() {
        let mut pool = pool();
        let mut cache: PrefixCache<PageRunPrefix> = PrefixCache::new();
        let a = run_of(&mut pool, 2);
        let first_page = a.runs[0][0];
        assert!(cache.insert(&mut pool, &[1, 2, 3, 4, 5, 6, 7, 8], a.clone()));
        assert_eq!(pool.refcount(first_page), 2);
        assert_eq!(cache.page_refs(), 2);
        // The original owner lets go; pages survive through the cache.
        let mut owner_copy = a;
        owner_copy.release(&mut pool);
        assert_eq!(pool.refcount(first_page), 1);
        assert_eq!(pool.in_use(), 2);
        assert_eq!(cache.evict_lru(&mut pool), Some(2));
        assert_eq!(pool.in_use(), 0);
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn duplicate_insert_releases_duplicate_refs() {
        let mut pool = pool();
        let mut cache: PrefixCache<PageRunPrefix> = PrefixCache::new();
        let a = run_of(&mut pool, 1);
        let page = a.runs[0][0];
        assert!(cache.insert(&mut pool, &[7, 7, 7], a.clone()));
        assert!(!cache.insert(&mut pool, &[7, 7, 7], a.clone()));
        assert_eq!(pool.refcount(page), 2, "dup insert nets zero references");
        assert_eq!(cache.stats().insertions, 1);
        // Two owner refs (a + its clone inside the first insert path) remain ours.
        let mut owner = a;
        owner.release(&mut pool);
        cache.clear(&mut pool);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        let mut pool = pool();
        let mut cache: PrefixCache<PageRunPrefix> = PrefixCache::new();
        for (i, key) in [[1u32, 1], [2, 2], [3, 3]].iter().enumerate() {
            let mut v = run_of(&mut pool, 1);
            v.tokens = 2;
            assert!(cache.insert(&mut pool, key, v.clone()));
            // The cache is the sole owner from here on.
            let mut owner = v;
            owner.release(&mut pool);
            assert_eq!(cache.entries(), i + 1);
        }
        // Touch [1,1]; LRU is now [2,2].
        assert!(cache.lookup(&[1, 1, 9], 1, 2).is_some());
        let before = pool.in_use();
        cache.evict_lru(&mut pool);
        assert_eq!(pool.in_use(), before - 1);
        assert!(cache.lookup(&[2, 2, 9], 1, 2).is_none(), "[2,2] evicted");
        assert!(cache.lookup(&[1, 1, 9], 1, 2).is_some());
        assert!(cache.lookup(&[3, 3, 9], 1, 2).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (3, 1));
        assert_eq!(s.hit_tokens, 6);
    }

    #[test]
    fn evict_lru_freeing_skips_fully_co_owned_entries() {
        let mut pool = pool();
        let mut cache: PrefixCache<PageRunPrefix> = PrefixCache::new();
        // Entry A (older, LRU) shares its single page with entry B — a nested
        // anchor: evicting A alone frees nothing. Entry B adds a page of its own.
        let page_shared = pool.allocate().unwrap();
        let page_own = pool.allocate().unwrap();
        let a = PageRunPrefix {
            tokens: 4,
            runs: vec![vec![page_shared]],
        };
        let b = PageRunPrefix {
            tokens: 8,
            runs: vec![vec![page_shared, page_own]],
        };
        assert!(cache.insert(&mut pool, &[1, 2, 3, 4], a));
        assert!(cache.insert(&mut pool, &[1, 2, 3, 4, 5, 6, 7, 8], b));
        // Drop the allocation-time references; the cache co-owns everything.
        pool.free(page_shared);
        pool.free(page_own);
        assert_eq!(pool.refcount(page_shared), 2); // A + B
        assert_eq!(pool.refcount(page_own), 1); // B only
                                                // Pressure eviction must pick B (frees page_own), not the zero-yield A.
        let freed = cache.evict_lru_freeing(&mut pool).unwrap();
        assert_eq!(freed, 2, "B held two references");
        assert!(cache.is_cached(&[1, 2, 3, 4]), "A survives");
        assert!(!cache.is_cached(&[1, 2, 3, 4, 5, 6, 7, 8]));
        assert_eq!(pool.refcount(page_shared), 1);
        // Now A is the sole owner of the shared page: it qualifies.
        assert!(cache.evict_lru_freeing(&mut pool).is_some());
        assert!(cache.evict_lru_freeing(&mut pool).is_none(), "cache empty");
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn spill_lru_demotes_sole_owned_pages_but_keeps_the_entry() {
        let mut pool = pool();
        let mut cache: PrefixCache<PageRunPrefix> = PrefixCache::new();
        // Entry A (older, LRU) shares its page with a "running sequence" (the
        // allocation-time reference we keep): not spillable. Entry B is the
        // sole owner of both its pages: the spill victim despite being fresher.
        let shared = pool.allocate().unwrap();
        let a = PageRunPrefix {
            tokens: 4,
            runs: vec![vec![shared]],
        };
        let b = run_of(&mut pool, 2);
        let b_pages = b.runs[0].clone();
        assert!(cache.insert(&mut pool, &[1, 2], a));
        assert!(cache.insert(&mut pool, &[9, 9], b.clone()));
        let mut owner = b;
        owner.release(&mut pool);
        assert_eq!(cache.spill_lru(&mut pool), Some(2), "both of B's pages");
        for &id in &b_pages {
            assert_eq!(pool.residency(id), Residency::Cold);
        }
        assert_eq!(pool.residency(shared), Residency::Hot, "shared page stays");
        // B is still cached — a hit now pays promotion, not recompute.
        assert!(cache.is_cached(&[9, 9]));
        assert_eq!(cache.entries(), 2);
        assert_eq!(cache.stats().evictions, 0, "spill is not eviction");
        // Everything already cold or shared: nothing further to spill.
        assert!(cache.spill_lru(&mut pool).is_none());
        // Eviction of a spilled entry releases cold pages cleanly.
        pool.free(shared);
        cache.clear(&mut pool);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn depth_bounds_respected() {
        let mut pool = pool();
        let mut cache: PrefixCache<PageRunPrefix> = PrefixCache::new();
        let v = run_of(&mut pool, 1);
        assert!(cache.insert(&mut pool, &[4, 5, 6], v.clone()));
        let mut owner = v;
        owner.release(&mut pool);
        // min_match above the entry depth: miss.
        assert!(cache.lookup(&[4, 5, 6, 7], 4, 3).is_none());
        // max_match below the entry depth: miss (the whole prompt is cached, but
        // at least one suffix token must remain to compute logits).
        assert!(cache.lookup(&[4, 5, 6], 1, 2).is_none());
        assert!(cache.lookup(&[4, 5, 6, 7], 3, 3).is_some());
        cache.clear(&mut pool);
        assert_eq!(pool.in_use(), 0);
    }
}
