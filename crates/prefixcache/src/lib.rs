//! Cross-request KV prefix cache: radix-tree prefix sharing over refcounted pages.
//!
//! Modern long-context traffic is dominated by *reusable* prefill — shared system
//! prompts, per-user personas, multi-turn histories. LServe's paged, refcounted KV
//! layout ([`lserve_kvcache::PagePool`]) is exactly the substrate real servers use
//! for automatic prefix caching: a page can be co-owned by any number of sequences
//! *and* by the cache, and is recycled only when the last owner lets go.
//!
//! This crate provides the cache's data plane, policy-free and generic over what a
//! cached prefix actually stores:
//!
//! * [`RadixTree`] — a token-level radix tree keyed by prompt token sequences, with
//!   edge splitting on divergence and edge merging on removal. Lookups return the
//!   *deepest* cached entry that is a prefix of the query, within caller-supplied
//!   depth bounds (serving layers bound matches below by the prefill tile grid and
//!   above by `prompt_len - 1` so at least one suffix token is always computed).
//! * [`PrefixPages`] — the contract a cached value signs: it references pool pages
//!   and can take/drop one co-ownership reference on all of them. The serving layer
//!   caches full per-sequence KV state; [`PageRunPrefix`] is the minimal concrete
//!   value (per-layer, page-aligned runs of [`lserve_kvcache::PageId`]s).
//! * [`PrefixCache`] — the managed store: refcount-backed insertion (donating a
//!   prefix retains its pages; a duplicate insert is refused and releases nothing),
//!   LRU touch on every hit, LRU eviction under pool pressure, and hit/miss/token
//!   counters for serving reports.
//!
//! Mutation safety comes from copy-on-write at the page layer: appending into a
//! page whose refcount exceeds 1 forks it first (see `lserve_kvcache`), so a cached
//! prefix is immutable for as long as the tree references it.
//!
//! The [`PrefixPages`] contract is **tier-agnostic**: retain/release operate on
//! refcounts, which pages keep across hot↔cold migrations in the two-tier pool
//! ([`lserve_kvcache::PagePool::demote`] / `promote`). A cached prefix may
//! therefore reference cold (host-offloaded) pages — the tree keeps them alive
//! either way, demotion refuses any page the tree co-owns with a live
//! sequence, and a consumer seeded from a partly-cold entry promotes pages on
//! first use (the executor's residency pass). Note the asymmetry pressure
//! eviction inherits: evicting an entry whose sole pages are cold returns host
//! slots, not hot ones, so eviction loops keep walking until something
//! device-resident actually frees.

pub mod cache;
pub mod tree;

pub use cache::{PageRunPrefix, PrefixCache, PrefixCacheStats, PrefixPages};
pub use tree::RadixTree;
