//! Minimal f32 tensor kernels for the LServe reproduction.
//!
//! This crate provides the dense linear-algebra substrate every other crate in the
//! workspace builds on: a row-major [`Matrix`] type with blocked matrix multiplication,
//! numerically safe softmax (including the *online* streaming form used by block-wise
//! attention kernels), RMSNorm, SiLU, rotary position embeddings ([`rope`]), and seeded
//! random initialization ([`rng`]).
//!
//! The kernels are deliberately simple and deterministic — the LServe paper's speedup
//! mechanism is *which blocks get computed*, not how fast each block is, so clarity and
//! testability win over micro-optimization here.
//!
//! # Example
//!
//! ```
//! use lserve_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.as_slice(), a.as_slice());
//! ```

pub mod matrix;
pub mod ops;
pub mod rng;
pub mod rope;

pub use matrix::Matrix;
pub use ops::{argmax, dot, online_softmax::OnlineSoftmax, rms_norm, silu, softmax_in_place};
pub use rng::SeededGaussian;
