//! Rotary position embeddings (RoPE) as used by Llama-family models.
//!
//! Queries and keys are rotated pairwise in the complex plane at position-dependent
//! frequencies before the attention dot product, which makes relative position a
//! function of the angle between them.

/// Precomputed RoPE frequency table for a fixed head dimension.
///
/// # Example
///
/// ```
/// use lserve_tensor::rope::RopeTable;
///
/// let rope = RopeTable::new(8, 10_000.0);
/// let mut q = vec![1.0; 8];
/// rope.apply(&mut q, 0); // position 0 is the identity rotation
/// assert!(q.iter().zip([1.0f32; 8].iter()).all(|(a, b)| (a - b).abs() < 1e-6));
/// ```
#[derive(Debug, Clone)]
pub struct RopeTable {
    head_dim: usize,
    inv_freq: Vec<f32>,
}

impl RopeTable {
    /// Builds the table for vectors of dimension `head_dim` with the given base
    /// (Llama uses 10 000; long-context variants scale it up).
    ///
    /// # Panics
    ///
    /// Panics if `head_dim` is odd or zero.
    pub fn new(head_dim: usize, base: f32) -> Self {
        assert!(
            head_dim > 0 && head_dim.is_multiple_of(2),
            "head_dim must be even and positive"
        );
        let half = head_dim / 2;
        let inv_freq = (0..half)
            .map(|i| base.powf(-(2.0 * i as f32) / head_dim as f32))
            .collect();
        Self { head_dim, inv_freq }
    }

    /// The head dimension this table was built for.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Rotates `x` (length `head_dim`) in place for token position `pos`.
    ///
    /// Uses the interleaved-pair convention: dims `(2i, 2i+1)` form the i-th pair.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != head_dim`.
    pub fn apply(&self, x: &mut [f32], pos: usize) {
        assert_eq!(x.len(), self.head_dim, "rope dimension mismatch");
        for (i, &f) in self.inv_freq.iter().enumerate() {
            let theta = pos as f32 * f;
            let (sin, cos) = theta.sin_cos();
            let a = x[2 * i];
            let b = x[2 * i + 1];
            x[2 * i] = a * cos - b * sin;
            x[2 * i + 1] = a * sin + b * cos;
        }
    }

    /// Applies [`RopeTable::apply`] to each row of a row-major `(tokens x head_dim)`
    /// buffer, where row `t` gets position `start_pos + t`.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length is not a multiple of `head_dim`.
    pub fn apply_rows(&self, rows: &mut [f32], start_pos: usize) {
        assert_eq!(
            rows.len() % self.head_dim,
            0,
            "buffer not a whole number of rows"
        );
        for (t, row) in rows.chunks_mut(self.head_dim).enumerate() {
            self.apply(row, start_pos + t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::dot;

    #[test]
    fn position_zero_is_identity() {
        let rope = RopeTable::new(16, 10_000.0);
        let orig: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let mut x = orig.clone();
        rope.apply(&mut x, 0);
        for (a, b) in x.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rotation_preserves_norm() {
        let rope = RopeTable::new(8, 10_000.0);
        let mut x = vec![1.0, -2.0, 0.5, 3.0, -1.0, 0.1, 2.0, -0.7];
        let before: f32 = x.iter().map(|v| v * v).sum();
        rope.apply(&mut x, 1234);
        let after: f32 = x.iter().map(|v| v * v).sum();
        assert!((before - after).abs() < 1e-4);
    }

    #[test]
    fn dot_product_depends_only_on_relative_position() {
        // <rope(q, p), rope(k, p+d)> must be the same for all p at fixed d.
        let rope = RopeTable::new(8, 10_000.0);
        let q0 = vec![0.3, -0.2, 0.9, 0.1, -0.5, 0.4, 0.2, 0.8];
        let k0 = vec![-0.1, 0.7, 0.2, -0.3, 0.6, 0.0, -0.4, 0.5];
        let d = 5;
        let score_at = |p: usize| {
            let mut q = q0.clone();
            let mut k = k0.clone();
            rope.apply(&mut q, p);
            rope.apply(&mut k, p + d);
            dot(&q, &k)
        };
        let s1 = score_at(0);
        let s2 = score_at(97);
        assert!((s1 - s2).abs() < 1e-3, "{s1} vs {s2}");
    }

    #[test]
    fn apply_rows_offsets_positions() {
        let rope = RopeTable::new(4, 10_000.0);
        let mut rows = vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        rope.apply_rows(&mut rows, 3);
        let mut single = vec![1.0, 0.0, 1.0, 0.0];
        rope.apply(&mut single, 4);
        assert!(rows[4..8]
            .iter()
            .zip(&single)
            .all(|(a, b)| (a - b).abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "head_dim must be even")]
    fn odd_head_dim_rejected() {
        let _ = RopeTable::new(7, 10_000.0);
    }
}
