//! Elementwise and reduction kernels: softmax (batch + online), RMSNorm, SiLU.

use crate::Matrix;

/// Numerically safe in-place softmax over each row of `m`.
///
/// Subtracts the row max before exponentiating, so arbitrarily large logits are fine.
/// Rows of `-inf` (fully masked) become uniform zeros rather than NaN.
///
/// # Example
///
/// ```
/// use lserve_tensor::{softmax_in_place, Matrix};
///
/// let mut m = Matrix::from_rows(&[&[0.0, 0.0]]);
/// softmax_in_place(&mut m);
/// assert!((m[(0, 0)] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax_in_place(m: &mut Matrix) {
    let cols = m.cols();
    if cols == 0 {
        return;
    }
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        if max == f32::NEG_INFINITY {
            row.fill(0.0);
            continue;
        }
        let mut sum = 0.0f32;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        let inv = 1.0 / sum;
        for x in row.iter_mut() {
            *x *= inv;
        }
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// Index of the maximum element (first occurrence on ties).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn argmax(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// RMSNorm: `x_i * w_i / sqrt(mean(x^2) + eps)` applied to each row of `m`.
///
/// # Panics
///
/// Panics if `weight.len() != m.cols()`.
pub fn rms_norm(m: &mut Matrix, weight: &[f32], eps: f32) {
    assert_eq!(weight.len(), m.cols(), "rms_norm weight length mismatch");
    let cols = m.cols();
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let ms: f32 = row.iter().map(|x| x * x).sum::<f32>() / cols as f32;
        let inv = 1.0 / (ms + eps).sqrt();
        for (x, w) in row.iter_mut().zip(weight) {
            *x = *x * inv * w;
        }
    }
}

/// SiLU activation `x * sigmoid(x)` applied in place.
pub fn silu(xs: &mut [f32]) {
    for x in xs.iter_mut() {
        *x = *x / (1.0 + (-*x).exp());
    }
}

pub mod online_softmax {
    //! Streaming (flash-attention style) softmax accumulation.
    //!
    //! Block-sparse attention processes the KV history one block at a time. The
    //! [`OnlineSoftmax`] accumulator folds each block's scores and values into a running
    //! `(max, sum, weighted-output)` triple so the final output equals what a monolithic
    //! softmax over all visited blocks would produce — this is the numerical core of
    //! both the prefill and decode kernels in the LServe reproduction.

    /// Running softmax-weighted accumulator over value vectors of fixed dimension.
    ///
    /// # Example
    ///
    /// ```
    /// use lserve_tensor::OnlineSoftmax;
    ///
    /// let mut acc = OnlineSoftmax::new(2);
    /// acc.update(0.0, &[1.0, 0.0]);
    /// acc.update(0.0, &[0.0, 1.0]);
    /// let out = acc.finish();
    /// assert!((out[0] - 0.5).abs() < 1e-6 && (out[1] - 0.5).abs() < 1e-6);
    /// ```
    #[derive(Debug, Clone)]
    pub struct OnlineSoftmax {
        max: f32,
        sum: f32,
        acc: Vec<f32>,
    }

    impl OnlineSoftmax {
        /// Creates an accumulator for value vectors of dimension `dim`.
        pub fn new(dim: usize) -> Self {
            Self {
                max: f32::NEG_INFINITY,
                sum: 0.0,
                acc: vec![0.0; dim],
            }
        }

        /// Folds a single `(score, value)` pair into the accumulator.
        ///
        /// # Panics
        ///
        /// Panics if `value.len()` differs from the accumulator dimension.
        pub fn update(&mut self, score: f32, value: &[f32]) {
            assert_eq!(value.len(), self.acc.len(), "value dimension mismatch");
            if score == f32::NEG_INFINITY {
                return; // fully masked entry contributes nothing
            }
            if score > self.max {
                let correction = if self.max == f32::NEG_INFINITY {
                    0.0
                } else {
                    (self.max - score).exp()
                };
                self.sum *= correction;
                for a in &mut self.acc {
                    *a *= correction;
                }
                self.max = score;
            }
            let w = (score - self.max).exp();
            self.sum += w;
            for (a, v) in self.acc.iter_mut().zip(value) {
                *a += w * v;
            }
        }

        /// Folds a whole block of scores/values; `values.len()` must equal
        /// `scores.len() * dim`, laid out row-major (one value row per score).
        ///
        /// # Panics
        ///
        /// Panics on any length mismatch.
        pub fn update_block(&mut self, scores: &[f32], values: &[f32]) {
            let dim = self.acc.len();
            assert_eq!(
                values.len(),
                scores.len() * dim,
                "block values length mismatch"
            );
            for (i, &s) in scores.iter().enumerate() {
                self.update(s, &values[i * dim..(i + 1) * dim]);
            }
        }

        /// Number of value dimensions.
        pub fn dim(&self) -> usize {
            self.acc.len()
        }

        /// True if no unmasked score has been folded in yet.
        pub fn is_empty(&self) -> bool {
            self.sum == 0.0
        }

        /// The current normalizer `sum(exp(score - max))`.
        pub fn normalizer(&self) -> f32 {
            self.sum
        }

        /// The running max score.
        pub fn max_score(&self) -> f32 {
            self.max
        }

        /// Finalizes into the softmax-weighted mean of the folded values.
        ///
        /// Returns all-zeros if nothing was folded in (fully masked row).
        pub fn finish(self) -> Vec<f32> {
            if self.sum == 0.0 {
                return self.acc; // zeros
            }
            let inv = 1.0 / self.sum;
            self.acc.into_iter().map(|a| a * inv).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::online_softmax::OnlineSoftmax;
    use super::*;

    fn naive_softmax_weighted(scores: &[f32], values: &[Vec<f32>]) -> Vec<f32> {
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let ws: Vec<f32> = scores.iter().map(|s| (s - max).exp()).collect();
        let sum: f32 = ws.iter().sum();
        let dim = values[0].len();
        let mut out = vec![0.0; dim];
        for (w, v) in ws.iter().zip(values) {
            for (o, x) in out.iter_mut().zip(v) {
                *o += w / sum * x;
            }
        }
        out
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        softmax_in_place(&mut m);
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let mut m = Matrix::from_rows(&[&[1000.0, 1000.0]]);
        softmax_in_place(&mut m);
        assert!((m[(0, 0)] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_fully_masked_row_is_zero() {
        let mut m = Matrix::from_rows(&[&[f32::NEG_INFINITY, f32::NEG_INFINITY]]);
        softmax_in_place(&mut m);
        assert_eq!(m.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn online_matches_naive() {
        let scores = [0.3f32, -1.2, 2.5, 0.0, 7.0];
        let values: Vec<Vec<f32>> = (0..5)
            .map(|i| vec![i as f32, 1.0 - i as f32, 0.5 * i as f32])
            .collect();
        let mut acc = OnlineSoftmax::new(3);
        for (s, v) in scores.iter().zip(&values) {
            acc.update(*s, v);
        }
        let got = acc.finish();
        let want = naive_softmax_weighted(&scores, &values);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-5, "{g} vs {w}");
        }
    }

    #[test]
    fn online_order_invariance() {
        let scores = [5.0f32, -3.0, 0.1, 2.2];
        let values: Vec<Vec<f32>> = (0..4).map(|i| vec![(i * i) as f32, -(i as f32)]).collect();
        let mut fwd = OnlineSoftmax::new(2);
        let mut rev = OnlineSoftmax::new(2);
        for (s, v) in scores.iter().zip(&values) {
            fwd.update(*s, v);
        }
        for (s, v) in scores.iter().zip(&values).rev() {
            rev.update(*s, v);
        }
        let a = fwd.finish();
        let b = rev.finish();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn online_masked_updates_are_ignored() {
        let mut acc = OnlineSoftmax::new(1);
        acc.update(f32::NEG_INFINITY, &[99.0]);
        acc.update(0.0, &[1.0]);
        assert_eq!(acc.finish(), vec![1.0]);
    }

    #[test]
    fn online_empty_finishes_to_zero() {
        let acc = OnlineSoftmax::new(3);
        assert!(acc.is_empty());
        assert_eq!(acc.finish(), vec![0.0; 3]);
    }

    #[test]
    fn update_block_matches_scalar_updates() {
        let scores = [1.0f32, 2.0, 3.0];
        let values = [0.1f32, 0.2, 0.3, 0.4, 0.5, 0.6];
        let mut a = OnlineSoftmax::new(2);
        a.update_block(&scores, &values);
        let mut b = OnlineSoftmax::new(2);
        for i in 0..3 {
            b.update(scores[i], &values[i * 2..i * 2 + 2]);
        }
        let (x, y) = (a.finish(), b.finish());
        for (p, q) in x.iter().zip(&y) {
            assert!((p - q).abs() < 1e-6);
        }
    }

    #[test]
    fn rms_norm_unit_weight_normalizes() {
        let mut m = Matrix::from_rows(&[&[3.0, 4.0]]);
        rms_norm(&mut m, &[1.0, 1.0], 0.0);
        let ms: f32 = m.row(0).iter().map(|x| x * x).sum::<f32>() / 2.0;
        assert!((ms - 1.0).abs() < 1e-5);
    }

    #[test]
    fn silu_known_points() {
        let mut xs = [0.0f32, 10.0];
        silu(&mut xs);
        assert!(xs[0].abs() < 1e-6);
        assert!((xs[1] - 10.0).abs() < 1e-3); // sigmoid(10) ~ 1
    }

    #[test]
    fn argmax_first_tie_wins() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
    }

    #[test]
    fn dot_known() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }
}
