//! Row-major `f32` matrix with the handful of operations attention kernels need.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f32` matrix.
///
/// This is the workhorse container of the workspace: query/key/value blocks, weight
/// matrices and activation buffers are all `Matrix` values. Storage is a flat
/// `Vec<f32>` of length `rows * cols`.
///
/// # Example
///
/// ```
/// use lserve_tensor::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m[(1, 2)], 6.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} != {cols}", r.len());
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat row-major view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its flat row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies rows `[start, end)` into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.rows()`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.rows,
            "bad row range {start}..{end}"
        );
        Matrix::from_vec(
            end - start,
            self.cols,
            self.data[start * self.cols..end * self.cols].to_vec(),
        )
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Dense matrix product `self * rhs`.
    ///
    /// Uses a cache-blocked i-k-j loop ordering.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let n = rhs.cols;
        for i in 0..self.rows {
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self * rhs^T`, i.e. `out[i][j] = dot(self.row(i), rhs.row(j))`.
    ///
    /// This is the natural layout for attention scores `Q * K^T` when keys are stored
    /// row-per-token.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt inner-dim mismatch: {} vs {}",
            self.cols, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a = self.row(i);
            for j in 0..rhs.rows {
                let b = rhs.row(j);
                let mut acc = 0.0f32;
                for (x, y) in a.iter().zip(b) {
                    acc += x * y;
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// Adds `rhs` element-wise in place.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Appends the rows of `rhs` below `self`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn append_rows(&mut self, rhs: &Matrix) {
        assert_eq!(self.cols, rhs.cols, "append_rows column mismatch");
        self.data.extend_from_slice(&rhs.data);
        self.rows += rhs.rows;
    }

    /// Maximum absolute difference to another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f32 {
        assert_eq!(self.shape(), rhs.shape(), "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Default for Matrix {
    /// An empty `0 x 0` matrix.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0, -1.0], &[2.0, 2.0, 2.0]]);
        let via_t = a.matmul(&b.transpose());
        let direct = a.matmul_nt(&b);
        assert!(via_t.max_abs_diff(&direct) < 1e-6);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn slice_rows_extracts_middle() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let s = a.slice_rows(1, 3);
        assert_eq!(s.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn append_rows_grows() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        a.append_rows(&b);
        assert_eq!(a.rows(), 3);
        assert_eq!(a.row(2), &[5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn scale_and_add() {
        let mut a = Matrix::full(2, 2, 1.0);
        a.scale(3.0);
        let b = Matrix::full(2, 2, 0.5);
        a.add_assign(&b);
        assert!(a.as_slice().iter().all(|&x| x == 3.5));
    }

    #[test]
    fn frobenius_norm_of_unit_rows() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn debug_is_nonempty() {
        let a = Matrix::zeros(1, 1);
        assert!(!format!("{a:?}").is_empty());
    }
}
