//! Seeded random initialization for synthetic weights and workloads.
//!
//! Every experiment in the reproduction must be deterministic, so all randomness flows
//! through [`SeededGaussian`], a Box–Muller Gaussian source over an in-crate SplitMix64
//! generator (the build environment has no registry access, so no `rand` dependency).

use crate::Matrix;

/// SplitMix64: a tiny, statistically solid 64-bit generator with a 64-bit seed.
/// Used only for synthetic-data initialization, never for cryptography.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` from the top 53 bits.
    #[inline]
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` from the top 24 bits.
    #[inline]
    fn unit_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform integer in `[0, bound)` (multiply-shift; bias is < 2^-53 for the
    /// bounds used here).
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Deterministic Gaussian sampler (Box–Muller over a seeded PRNG).
///
/// # Example
///
/// ```
/// use lserve_tensor::SeededGaussian;
///
/// let mut a = SeededGaussian::new(42);
/// let mut b = SeededGaussian::new(42);
/// assert_eq!(a.sample(), b.sample());
/// ```
#[derive(Debug)]
pub struct SeededGaussian {
    rng: SplitMix64,
    spare: Option<f32>,
}

impl SeededGaussian {
    /// Creates a sampler from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SplitMix64::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Draws one standard-normal sample.
    pub fn sample(&mut self) -> f32 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        // Box–Muller transform.
        let u1: f64 = loop {
            let u: f64 = self.rng.unit_f64();
            if u > 1e-12 {
                break u;
            }
        };
        let u2: f64 = self.rng.unit_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some((r * theta.sin()) as f32);
        (r * theta.cos()) as f32
    }

    /// Draws a sample with the given mean and standard deviation.
    pub fn sample_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.sample()
    }

    /// Fills a slice with `N(0, std^2)` samples.
    pub fn fill(&mut self, xs: &mut [f32], std: f32) {
        for x in xs.iter_mut() {
            *x = self.sample() * std;
        }
    }

    /// Creates a `rows x cols` matrix of `N(0, std^2)` samples.
    pub fn matrix(&mut self, rows: usize, cols: usize, std: f32) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        self.fill(m.as_mut_slice(), std);
        m
    }

    /// Draws a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index bound must be positive");
        self.rng.below(bound as u64) as usize
    }

    /// Draws a uniform f32 in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.rng.unit_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_across_instances() {
        let mut a = SeededGaussian::new(7);
        let mut b = SeededGaussian::new(7);
        for _ in 0..100 {
            assert_eq!(a.sample().to_bits(), b.sample().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededGaussian::new(1);
        let mut b = SeededGaussian::new(2);
        let same = (0..32).all(|_| a.sample().to_bits() == b.sample().to_bits());
        assert!(!same);
    }

    #[test]
    fn mean_and_std_roughly_standard_normal() {
        let mut g = SeededGaussian::new(123);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| g.sample()).collect();
        let mean: f32 = xs.iter().sum::<f32>() / n as f32;
        let var: f32 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn matrix_has_requested_shape() {
        let mut g = SeededGaussian::new(9);
        let m = g.matrix(4, 5, 0.1);
        assert_eq!(m.shape(), (4, 5));
        assert!(m.as_slice().iter().any(|&x| x != 0.0));
    }

    #[test]
    fn index_respects_bound() {
        let mut g = SeededGaussian::new(5);
        for _ in 0..1000 {
            assert!(g.index(7) < 7);
        }
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut g = SeededGaussian::new(5);
        for _ in 0..1000 {
            let u = g.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
