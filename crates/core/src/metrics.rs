//! Consolidated metrics registry: every counter family the serving stack
//! accumulates — scheduler lifecycle, parallel execution, tier migration,
//! prefix cache — rendered into one deterministic JSON document.
//!
//! [`MetricsSnapshot`] is the generator behind the `BENCH_*.json` artifacts CI
//! archives: a bench registers one [`ServingReport`] (or any [`Json`] value)
//! per scenario under a stable name, and [`MetricsSnapshot::render`] emits a
//! single document whose keys and key order are pure functions of the
//! registration sequence. [`ServingReport::to_json`] is the per-report
//! projection it composes, and [`ServingReport::summary`] is the same data as
//! a human-readable multi-line block for example binaries.

use std::io;
use std::path::Path;

use lserve_trace::Json;

use crate::serving::{PreemptionPolicy, ServingReport, SloClass};
use crate::MigrationMode;

/// A named collection of metric documents, rendered as one JSON object in
/// registration order (deterministic: the order is part of the artifact).
#[derive(Debug, Default)]
pub struct MetricsSnapshot {
    sections: Vec<(&'static str, Json)>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `value` under `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered — duplicate sections would
    /// silently shadow each other in consumers that parse the document as a
    /// map.
    pub fn insert(&mut self, name: &'static str, value: Json) -> &mut Self {
        assert!(
            self.sections.iter().all(|(n, _)| *n != name),
            "duplicate metrics section: {name}"
        );
        self.sections.push((name, value));
        self
    }

    /// Registers the full counter projection of a serving report (see
    /// [`ServingReport::to_json`]).
    pub fn add_report(&mut self, name: &'static str, report: &ServingReport) -> &mut Self {
        self.insert(name, report.to_json())
    }

    /// The snapshot as one JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(self.sections.iter().map(|(n, v)| (*n, v.clone())))
    }

    /// Renders the snapshot (no trailing newline). Deterministic: key order is
    /// registration order, floats are rejected unless finite.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Writes the rendered snapshot (with a trailing newline) to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut s = self.render();
        s.push('\n');
        std::fs::write(path, s)
    }
}

fn class_label(class: SloClass) -> &'static str {
    match class {
        SloClass::Interactive => "interactive",
        SloClass::Batch => "batch",
        SloClass::BestEffort => "best_effort",
    }
}

fn class_json(report: &ServingReport, class: SloClass) -> Json {
    let count = report
        .request_metrics
        .iter()
        .filter(|m| m.class == class)
        .count();
    Json::obj([
        ("completed", Json::from(count as u64)),
        (
            "ttft_work_p50",
            Json::from(report.ttft_work_percentile_class(class, 0.5)),
        ),
        (
            "ttft_work_p95",
            Json::from(report.ttft_work_percentile_class(class, 0.95)),
        ),
        (
            "tbt_iters_p50",
            Json::from(report.tbt_percentile_class(class, 0.5)),
        ),
        (
            "tbt_iters_p95",
            Json::from(report.tbt_percentile_class(class, 0.95)),
        ),
    ])
}

impl ServingReport {
    /// Every counter family of the run — serving lifecycle, per-class latency,
    /// parallel execution, tier migration, prefix cache — as one JSON object
    /// with deterministic key order. The unit of [`MetricsSnapshot`]
    /// registration.
    pub fn to_json(&self) -> Json {
        let (met, total) = self.deadlines();
        let serving = Json::obj([
            ("scheduler_steps", Json::from(self.scheduler_steps)),
            ("decode_steps", Json::from(self.decode_steps)),
            ("completed", Json::from(self.completed.len() as u64)),
            ("cancelled", Json::from(self.cancelled.len() as u64)),
            ("rejected", Json::from(self.rejections.len() as u64)),
            ("preemptions", Json::from(self.preemptions)),
            ("peak_running", Json::from(self.peak_running)),
            ("mean_running", Json::from(self.mean_running())),
            ("peak_hot_pages", Json::from(self.peak_pages)),
            ("peak_cold_pages", Json::from(self.peak_cold_pages)),
            ("peak_nvme_pages", Json::from(self.peak_nvme_pages)),
            ("ttft_work_p50", Json::from(self.ttft_work_percentile(0.5))),
            ("ttft_work_p95", Json::from(self.ttft_work_percentile(0.95))),
            ("tbt_iters_p50", Json::from(self.tbt_percentile(0.5))),
            ("tbt_iters_p95", Json::from(self.tbt_percentile(0.95))),
            ("deadlines_met", Json::from(met as u64)),
            ("deadlines_total", Json::from(total as u64)),
        ]);
        let mut classes: Vec<(&'static str, Json)> = Vec::new();
        for class in [SloClass::Interactive, SloClass::Batch, SloClass::BestEffort] {
            if self.request_metrics.iter().any(|m| m.class == class) {
                classes.push((class_label(class), class_json(self, class)));
            }
        }
        let parallel = Json::obj([
            ("workers", Json::from(self.parallel.workers)),
            ("phases", Json::from(self.parallel.phases)),
            ("shards", Json::from(self.parallel.shards)),
            ("stolen", Json::from(self.parallel.stolen)),
            ("utilization", Json::from(self.worker_utilization())),
            ("imbalance", Json::from(self.worker_imbalance())),
            ("cost_total", Json::from(self.parallel.cost_total)),
            ("cost_critical", Json::from(self.parallel.cost_critical)),
        ]);
        let topology = Json::obj([
            ("devices", Json::from(self.devices)),
            (
                "device_utilization",
                Json::from(self.parallel.device_utilization()),
            ),
            (
                "device_imbalance",
                Json::from(self.parallel.device_imbalance()),
            ),
            (
                "interconnect_tokens",
                Json::from(self.parallel.interconnect_tokens),
            ),
            ("rebalances", Json::from(self.rebalances)),
            ("heads_migrated", Json::from(self.heads_migrated)),
            (
                "rebalance_migration_tokens",
                Json::from(self.rebalance_migration_tokens),
            ),
        ]);
        let migration = Json::obj([
            (
                "mode",
                Json::from(match self.migration {
                    MigrationMode::Sync => "sync",
                    MigrationMode::Async => "async",
                }),
            ),
            (
                "preemption",
                Json::from(match self.preemption {
                    PreemptionPolicy::Replay => "replay",
                    PreemptionPolicy::Swap => "swap",
                }),
            ),
            ("host_pages", Json::from(self.host_pages)),
            ("nvme", Json::from(self.nvme as u64)),
            ("pages_demoted", Json::from(self.pages_demoted)),
            ("pages_promoted", Json::from(self.pages_promoted)),
            ("pages_spilled", Json::from(self.pages_spilled)),
            ("pages_recalled", Json::from(self.pages_recalled)),
            (
                "swap_resume_work_tokens",
                Json::from(self.swap_resume_work_tokens),
            ),
            (
                "hidden_transfer_tokens",
                Json::from(self.hidden_transfer_tokens),
            ),
            (
                "migration_stall_tokens",
                Json::from(self.migration_stall_tokens),
            ),
            ("overlap_ratio", Json::from(self.migration_overlap_ratio())),
            ("prefetch_issued", Json::from(self.prefetch_issued)),
            ("prefetch_hits", Json::from(self.prefetch_hits)),
            ("prefetch_wasted", Json::from(self.prefetch_wasted)),
        ]);
        let prefix = Json::obj([
            ("hit_tokens", Json::from(self.prefix_hit_tokens)),
            (
                "recomputed_tokens",
                Json::from(self.prefix_recomputed_tokens),
            ),
            ("hit_rate", Json::from(self.prefix_hit_rate())),
            ("insertions", Json::from(self.prefix_insertions)),
            ("evictions", Json::from(self.prefix_evictions)),
            ("spills", Json::from(self.prefix_spills)),
        ]);
        let dag = Json::obj([
            ("forks", Json::from(self.dag.forks)),
            ("branches_spawned", Json::from(self.dag.branches_spawned)),
            ("joins", Json::from(self.dag.joins)),
            ("branch_cancels", Json::from(self.dag.branch_cancels)),
        ]);
        Json::obj([
            ("serving", serving),
            ("classes", Json::obj(classes)),
            ("parallel", parallel),
            ("topology", topology),
            ("migration", migration),
            ("prefix", prefix),
            ("dag", dag),
        ])
    }

    /// A human-readable multi-line rendering of the run — the standard footer
    /// of the example binaries. One line per counter family; no trailing
    /// newline.
    pub fn summary(&self) -> String {
        let (met, total) = self.deadlines();
        let policy = match self.preemption {
            PreemptionPolicy::Replay => "replay",
            PreemptionPolicy::Swap => "swap",
        };
        let mode = match self.migration {
            MigrationMode::Sync => "sync",
            MigrationMode::Async => "async",
        };
        let mut lines = vec![
            format!(
                "serving:   {} completed, {} cancelled, {} rejected in {} steps ({} decode steps)",
                self.completed.len(),
                self.cancelled.len(),
                self.rejections.len(),
                self.scheduler_steps,
                self.decode_steps,
            ),
            format!(
                "batch:     peak {} running (mean {:.1}); peak pages {} hot / {} cold{}; {} preemptions ({policy})",
                self.peak_running,
                self.mean_running(),
                self.peak_pages,
                self.peak_cold_pages,
                if self.nvme {
                    format!(" / {} nvme", self.peak_nvme_pages)
                } else {
                    String::new()
                },
                self.preemptions,
            ),
            format!(
                "latency:   ttft p50 {} / p95 {} work-tokens; tbt p50 {:.2} / p95 {:.2} iters{}",
                self.ttft_work_percentile(0.5),
                self.ttft_work_percentile(0.95),
                self.tbt_percentile(0.5),
                self.tbt_percentile(0.95),
                if total > 0 {
                    format!("; deadlines {met}/{total} met")
                } else {
                    String::new()
                },
            ),
            format!(
                "parallel:  {} workers, utilization {:.1}%, imbalance {:.2}x, {} shards ({} stolen)",
                self.parallel.workers,
                100.0 * self.worker_utilization(),
                self.worker_imbalance(),
                self.parallel.shards,
                self.parallel.stolen,
            ),
            format!(
                "migration: {mode}; {} demoted / {} promoted pages{}; {} stall / {} hidden tokens ({:.1}% overlap); prefetch {} issued / {} hit / {} wasted",
                self.pages_demoted,
                self.pages_promoted,
                if self.nvme {
                    format!(" / {} spilled / {} recalled", self.pages_spilled, self.pages_recalled)
                } else {
                    String::new()
                },
                self.migration_stall_tokens,
                self.hidden_transfer_tokens,
                100.0 * self.migration_overlap_ratio(),
                self.prefetch_issued,
                self.prefetch_hits,
                self.prefetch_wasted,
            ),
        ];
        if self.devices > 1 {
            lines.push(format!(
                "topology:  {} devices, device imbalance {:.2}x, {} interconnect tokens; {} rebalances moved {} heads ({} tokens)",
                self.devices,
                self.parallel.device_imbalance(),
                self.parallel.interconnect_tokens,
                self.rebalances,
                self.heads_migrated,
                self.rebalance_migration_tokens,
            ));
        }
        if self.prefix_hit_tokens + self.prefix_recomputed_tokens + self.prefix_insertions > 0 {
            lines.push(format!(
                "prefix:    hit rate {:.1}% ({} hit / {} recomputed tokens); {} insertions, {} evictions",
                100.0 * self.prefix_hit_rate(),
                self.prefix_hit_tokens,
                self.prefix_recomputed_tokens,
                self.prefix_insertions,
                self.prefix_evictions,
            ));
        }
        if self.dag.forks > 0 {
            lines.push(format!(
                "dag:       {} forks spawned {} branches; {} joins, {} branch cancels",
                self.dag.forks, self.dag.branches_spawned, self.dag.joins, self.dag.branch_cancels,
            ));
        }
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lserve_trace::validate_json;

    fn tiny_report() -> ServingReport {
        ServingReport {
            scheduler_steps: 10,
            decode_steps: 24,
            completed: vec![(1, vec![5, 6, 7]), (2, vec![8])],
            peak_running: 2,
            running_seq_steps: 15,
            peak_pages: 12,
            ..ServingReport::default()
        }
    }

    #[test]
    fn report_json_validates_and_covers_families() {
        let rendered = tiny_report().to_json().render();
        validate_json(&rendered).unwrap();
        for family in [
            "\"serving\"",
            "\"parallel\"",
            "\"migration\"",
            "\"prefix\"",
            "\"dag\"",
        ] {
            assert!(rendered.contains(family), "missing {family} in {rendered}");
        }
        for key in [
            "\"peak_nvme_pages\"",
            "\"host_pages\"",
            "\"nvme\"",
            "\"pages_spilled\"",
            "\"pages_recalled\"",
            "\"spills\"",
        ] {
            assert!(rendered.contains(key), "missing tier key {key}");
        }
        assert!(rendered.contains("\"completed\":2"));
    }

    #[test]
    fn snapshot_renders_in_registration_order() {
        let mut snap = MetricsSnapshot::new();
        snap.insert("b_second", Json::from(2u64));
        snap.insert("a_first", Json::from(1u64));
        let s = snap.render();
        validate_json(&s).unwrap();
        assert!(s.find("b_second").unwrap() < s.find("a_first").unwrap());
    }

    #[test]
    #[should_panic(expected = "duplicate metrics section")]
    fn snapshot_rejects_duplicate_names() {
        let mut snap = MetricsSnapshot::new();
        snap.insert("x", Json::from(1u64));
        snap.insert("x", Json::from(2u64));
    }

    #[test]
    fn summary_mentions_every_family() {
        let s = tiny_report().summary();
        for family in ["serving:", "batch:", "latency:", "parallel:", "migration:"] {
            assert!(s.contains(family), "missing {family} in\n{s}");
        }
        // Prefix line only appears when the cache saw traffic.
        assert!(!s.contains("prefix:"));
        let mut r = tiny_report();
        r.prefix_insertions = 3;
        assert!(r.summary().contains("prefix:"));
        // DAG line only appears when a fork happened.
        assert!(!s.contains("dag:"));
        let mut r = tiny_report();
        r.dag.forks = 1;
        r.dag.branches_spawned = 4;
        assert!(r.summary().contains("dag:"));
    }
}
