//! Cluster front door: N scheduler replicas behind a prefix-affinity router.
//!
//! Long-context serving fleets shard traffic across engine replicas, and the
//! router is what decides whether the prefix cache ever gets a chance to hit:
//! send the follow-up turn of a conversation to a replica that never saw its
//! system prompt and the KV is recomputed from scratch. [`Cluster`] models
//! the Vortex-style front door over the single-engine [`Scheduler`]: each
//! replica owns its own page pool, prefix cache and sharding plan over one
//! `Arc`-shared [`ModelExecutor`], and [`Cluster::submit`] routes each
//! request to the replica that holds its prompt prefix — falling back to the
//! least-loaded replica (fewest queued + running, ties to the lowest index)
//! and recording the prefix so the next request in the family lands on the
//! same replica.
//!
//! Affinity keys on the first [`ClusterConfig::affinity_tokens`] prompt
//! tokens, hashed with [`DefaultHasher`] — SipHash with fixed keys, so
//! routing is deterministic across runs and platforms. Per-replica
//! [`ServingReport`]s roll up into one [`MetricsSnapshot`] whose `cluster`
//! section totals are exact sums of the replica sections (pinned by the
//! topology proptests).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use lserve_trace::Json;

use crate::dag::{BranchSpec, ForkError, ForkOutcome, JoinPolicy, JoinStatus};
use crate::executor::ModelExecutor;
use crate::metrics::MetricsSnapshot;
use crate::serving::{RequestHandle, RequestSpec, Scheduler, SchedulerConfig, ServingReport};

/// Replica names used for metrics sections (and therefore the maximum
/// replica count): [`MetricsSnapshot`] keys are `&'static str`.
const REPLICA_NAMES: &[&str] = &[
    "replica0", "replica1", "replica2", "replica3", "replica4", "replica5", "replica6", "replica7",
];

/// Front-door shape: how many replicas and how much of the prompt keys
/// affinity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Scheduler replicas behind the router (1..=8; each gets its own pool
    /// of the scheduler config's `pool_pages`).
    pub replicas: usize,
    /// Prompt tokens hashed into the affinity key. Requests sharing this
    /// prefix route to the same replica; 0 disables affinity (pure
    /// least-loaded).
    pub affinity_tokens: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            replicas: 2,
            affinity_tokens: 32,
        }
    }
}

impl ClusterConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is 0 or exceeds the metrics naming budget (8).
    pub fn validate(&self) {
        assert!(self.replicas >= 1, "cluster needs at least one replica");
        assert!(
            self.replicas <= REPLICA_NAMES.len(),
            "at most {} replicas supported",
            REPLICA_NAMES.len()
        );
    }
}

/// Router decision counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouterStats {
    /// Requests routed in total.
    pub routed: u64,
    /// Requests that followed a recorded prefix to its replica.
    pub affinity_hits: u64,
    /// Requests placed by least-loaded fallback (first of a prefix family,
    /// or affinity disabled).
    pub least_loaded: u64,
    /// Branches pinned to their parent's replica by [`Cluster::fork`]. A
    /// branch CoW-shares the parent's pages, so routing it anywhere else
    /// (e.g. by its prompt hash) would turn the zero-copy fork into a full
    /// re-prefill on a cold replica.
    pub fork_affinity: u64,
}

/// Per-replica reports plus the router ledger, with exact-sum rollups.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// One report per replica, in replica order (each sorted by request id).
    pub replicas: Vec<ServingReport>,
    /// Router decision counters for the run.
    pub router: RouterStats,
}

impl ClusterReport {
    /// Requests completed across all replicas.
    pub fn completed(&self) -> usize {
        self.replicas.iter().map(|r| r.completed.len()).sum()
    }

    /// Decode steps across all replicas.
    pub fn decode_steps(&self) -> u64 {
        self.replicas.iter().map(|r| r.decode_steps).sum()
    }

    /// Prefix-cache hit tokens across all replicas.
    pub fn prefix_hit_tokens(&self) -> u64 {
        self.replicas.iter().map(|r| r.prefix_hit_tokens).sum()
    }

    /// Interconnect gather tokens across all replicas.
    pub fn interconnect_tokens(&self) -> u64 {
        self.replicas
            .iter()
            .map(|r| r.parallel.interconnect_tokens)
            .sum()
    }

    /// All completions as `(request id, output tokens)`, merged across
    /// replicas and sorted by id.
    pub fn completions(&self) -> Vec<(u64, Vec<u32>)> {
        let mut all: Vec<(u64, Vec<u32>)> = self
            .replicas
            .iter()
            .flat_map(|r| r.completed.iter().cloned())
            .collect();
        all.sort_by_key(|(id, _)| *id);
        all
    }

    /// The cluster as one [`MetricsSnapshot`]: a `cluster` section whose
    /// totals are exact sums over the replica sections, then one full
    /// [`ServingReport::to_json`] section per replica.
    pub fn rollup(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.insert(
            "cluster",
            Json::obj([
                ("replicas", Json::from(self.replicas.len() as u64)),
                ("routed", Json::from(self.router.routed)),
                ("affinity_hits", Json::from(self.router.affinity_hits)),
                ("least_loaded", Json::from(self.router.least_loaded)),
                ("fork_affinity", Json::from(self.router.fork_affinity)),
                ("completed", Json::from(self.completed() as u64)),
                ("decode_steps", Json::from(self.decode_steps())),
                ("prefix_hit_tokens", Json::from(self.prefix_hit_tokens())),
                (
                    "interconnect_tokens",
                    Json::from(self.interconnect_tokens()),
                ),
            ]),
        );
        for (i, report) in self.replicas.iter().enumerate() {
            snap.add_report(REPLICA_NAMES[i], report);
        }
        snap
    }
}

/// A cluster-level fork result: which replica the DAG lives on, plus the
/// per-replica [`ForkOutcome`] (group ids are scoped to their replica's
/// scheduler — pass both back to [`Cluster::join_status`]).
#[derive(Debug)]
pub struct ClusterForkOutcome {
    /// The replica every branch was pinned to (the parent's home).
    pub replica: usize,
    /// The underlying scheduler's fork result (group id + branch handles).
    pub outcome: ForkOutcome,
}

/// N scheduler replicas behind a prefix-affinity router.
pub struct Cluster {
    replicas: Vec<Scheduler>,
    ccfg: ClusterConfig,
    /// Prefix hash → replica that first served it.
    affinity: HashMap<u64, usize>,
    /// Request id → the replica it was routed to. Fork affinity keys on
    /// this, not the branch prompt hash: a branch must land where its
    /// parent's pages live.
    homes: HashMap<u64, usize>,
    router: RouterStats,
}

impl Cluster {
    /// Builds `ccfg.replicas` schedulers, each with its own pool and caches
    /// over the shared executor and a clone of `scfg`.
    ///
    /// # Panics
    ///
    /// Panics if either config is inconsistent (see
    /// [`ClusterConfig::validate`] / `SchedulerConfig::validate`).
    pub fn new(exec: Arc<ModelExecutor>, scfg: SchedulerConfig, ccfg: ClusterConfig) -> Self {
        ccfg.validate();
        let replicas = (0..ccfg.replicas)
            .map(|_| Scheduler::new(Arc::clone(&exec), scfg.clone()))
            .collect();
        Self {
            replicas,
            ccfg,
            affinity: HashMap::new(),
            homes: HashMap::new(),
            router: RouterStats::default(),
        }
    }

    /// The front-door shape.
    pub fn config(&self) -> &ClusterConfig {
        &self.ccfg
    }

    /// Replica count.
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Direct access to replica `i`'s scheduler.
    pub fn replica(&self, i: usize) -> &Scheduler {
        &self.replicas[i]
    }

    /// Router decision counters so far.
    pub fn router_stats(&self) -> RouterStats {
        self.router
    }

    /// Requests waiting for admission, summed across replicas.
    pub fn queued(&self) -> usize {
        self.replicas.iter().map(|r| r.queued()).sum()
    }

    /// Sequences currently prefilling or decoding, summed across replicas.
    pub fn running(&self) -> usize {
        self.replicas.iter().map(|r| r.running()).sum()
    }

    fn prefix_key(&self, prompt: &[u32]) -> u64 {
        let n = prompt.len().min(self.ccfg.affinity_tokens);
        let mut h = DefaultHasher::new();
        prompt[..n].hash(&mut h);
        h.finish()
    }

    /// The replica `spec` would route to right now, without submitting:
    /// `(replica, is_affinity_hit)`.
    pub fn route(&self, spec: &RequestSpec) -> (usize, bool) {
        if self.ccfg.affinity_tokens > 0 {
            let key = self.prefix_key(&spec.prompt);
            if let Some(&replica) = self.affinity.get(&key) {
                return (replica, true);
            }
        }
        let replica = (0..self.replicas.len())
            .min_by_key(|&i| (self.replicas[i].queued() + self.replicas[i].running(), i))
            .expect("at least one replica");
        (replica, false)
    }

    /// Routes and enqueues a request: to the replica holding its prefix when
    /// one is recorded, else to the least-loaded replica (which then becomes
    /// the prefix's home). Returns the request's lifecycle handle.
    pub fn submit(&mut self, spec: impl Into<RequestSpec>) -> RequestHandle {
        let spec = spec.into();
        let (replica, hit) = self.route(&spec);
        self.router.routed += 1;
        if hit {
            self.router.affinity_hits += 1;
        } else {
            self.router.least_loaded += 1;
            if self.ccfg.affinity_tokens > 0 {
                let key = self.prefix_key(&spec.prompt);
                self.affinity.insert(key, replica);
            }
        }
        self.homes.insert(spec.id, replica);
        self.replicas[replica].submit(spec)
    }

    /// Forks `parent` into speculative branches on the replica the parent
    /// was routed to — fork affinity, never the branch prompt hash: the
    /// branches CoW-share the parent's pages, which exist only on its home
    /// replica. Every branch is pinned there (counted in
    /// [`RouterStats::fork_affinity`], not `routed`) and recorded as homed
    /// there, so nested forks follow too.
    ///
    /// # Errors
    ///
    /// [`ForkError::ParentNotRunning`] when the parent was never submitted
    /// here (no home replica); otherwise whatever the home replica's
    /// [`Scheduler::fork`] returns.
    pub fn fork(
        &mut self,
        parent: u64,
        policy: JoinPolicy,
        branches: &[BranchSpec],
    ) -> Result<ClusterForkOutcome, ForkError> {
        let Some(&replica) = self.homes.get(&parent) else {
            return Err(ForkError::ParentNotRunning(parent));
        };
        let outcome = self.replicas[replica].fork(parent, policy, branches)?;
        for b in branches {
            self.homes.insert(b.id, replica);
            self.router.fork_affinity += 1;
        }
        Ok(ClusterForkOutcome { replica, outcome })
    }

    /// Resolution state of fork group `outcome.group` on `replica` (group
    /// ids are per-replica — take both from [`ClusterForkOutcome`]).
    pub fn join_status(&self, replica: usize, group: u64) -> Option<JoinStatus> {
        self.replicas[replica].join_status(group)
    }

    /// One scheduler iteration on every replica, in replica order.
    pub fn step(&mut self) {
        for replica in &mut self.replicas {
            replica.step();
        }
    }

    /// Runs until every replica drains or `max_steps` cluster iterations
    /// pass. Returns per-replica reports plus the router ledger.
    pub fn run_to_completion(&mut self, max_steps: u64) -> ClusterReport {
        let mut steps = 0;
        while self.queued() + self.running() > 0 && steps < max_steps {
            self.step();
            steps += 1;
        }
        ClusterReport {
            replicas: self
                .replicas
                .iter_mut()
                .map(|r| r.run_to_completion(0))
                .collect(),
            router: self.router,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use lserve_model::{ModelConfig, ModelWeights};
    use lserve_trace::validate_json;

    fn tiny_cluster(replicas: usize, affinity_tokens: usize) -> Cluster {
        let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 0xC1A5));
        let exec = Arc::new(ModelExecutor::new(weights, EngineConfig::lserve_fp16()));
        let mut scfg = SchedulerConfig::new(2048);
        scfg.prefix_cache = true;
        // Chunked prefill on a fine tile grid so the families' 24-token
        // shared prefixes sit on cacheable anchors.
        scfg.chunk_tokens = 8;
        Cluster::new(
            exec,
            scfg,
            ClusterConfig {
                replicas,
                affinity_tokens,
            },
        )
    }

    /// `queries` prompts sharing a `len`-token prefix (tokens stay inside
    /// the tiny model's vocab), each with a distinct final token.
    fn family(prefix_seed: u32, queries: usize, len: usize) -> Vec<Vec<u32>> {
        (0..queries)
            .map(|q| {
                let mut p: Vec<u32> = (0..len as u32).map(|t| (prefix_seed + t) % 40).collect();
                p.push(40 + q as u32 % 40);
                p
            })
            .collect()
    }

    #[test]
    fn affinity_routes_a_prefix_family_to_one_replica() {
        let mut cluster = tiny_cluster(2, 16);
        let mut id = 0;
        for prompts in [family(0, 3, 24), family(500, 3, 24)] {
            for p in prompts {
                cluster.submit(RequestSpec::new(id, p).max_new_tokens(4));
                id += 1;
            }
        }
        let stats = cluster.router_stats();
        assert_eq!(stats.routed, 6);
        // First of each family is a least-loaded placement, the rest follow.
        assert_eq!(stats.least_loaded, 2);
        assert_eq!(stats.affinity_hits, 4);
        // The two families landed on different replicas (second family saw
        // replica 0 loaded).
        assert!(cluster.replica(0).queued() + cluster.replica(0).running() > 0);
        assert!(cluster.replica(1).queued() + cluster.replica(1).running() > 0);
    }

    #[test]
    fn zero_affinity_tokens_is_pure_least_loaded() {
        let mut cluster = tiny_cluster(2, 0);
        for (id, p) in family(0, 4, 24).into_iter().enumerate() {
            cluster.submit(RequestSpec::new(id as u64, p).max_new_tokens(4));
        }
        let stats = cluster.router_stats();
        assert_eq!(stats.affinity_hits, 0);
        assert_eq!(stats.least_loaded, 4);
    }

    #[test]
    fn cluster_drains_and_rollup_sums_replica_reports() {
        let mut cluster = tiny_cluster(2, 16);
        let fams = [family(0, 3, 24), family(7, 3, 24)];
        let mut id = 0u64;
        // First query of each family seeds its replica's prefix cache...
        for f in &fams {
            cluster.submit(RequestSpec::new(id, f[0].clone()).max_new_tokens(4));
            id += 1;
        }
        cluster.run_to_completion(10_000);
        // ...and the follow-ups, routed by affinity to the same replica, hit it.
        for f in &fams {
            for p in &f[1..] {
                cluster.submit(RequestSpec::new(id, p.clone()).max_new_tokens(4));
                id += 1;
            }
        }
        let report = cluster.run_to_completion(10_000);
        assert_eq!(report.completed(), 6);
        assert!(cluster.router_stats().affinity_hits >= 4);
        assert_eq!(
            report.completed(),
            report
                .replicas
                .iter()
                .map(|r| r.completed.len())
                .sum::<usize>()
        );
        // Affinity keeps the family together, so later requests hit the
        // replica's prefix cache.
        assert!(report.prefix_hit_tokens() > 0);
        let rendered = report.rollup().render();
        validate_json(&rendered).unwrap();
        assert!(rendered.contains("\"cluster\""));
        assert!(rendered.contains("\"replica0\""));
        assert!(rendered.contains("\"replica1\""));
    }

    #[test]
    fn fork_pins_branches_to_the_parents_replica() {
        use crate::dag::{BranchSpec, ForkError, JoinPolicy};

        let mut cluster = tiny_cluster(2, 16);
        // Unknown parents have no home replica to fork on.
        assert_eq!(
            cluster
                .fork(99, JoinPolicy::All, &[BranchSpec::new(100, vec![1])])
                .unwrap_err(),
            ForkError::ParentNotRunning(99)
        );
        // Parent lands on replica 0 (least-loaded, ties to lowest index)...
        cluster.submit(RequestSpec::new(1, family(0, 1, 24).remove(0)).max_new_tokens(20));
        // ...and a second family on replica 1.
        cluster.submit(RequestSpec::new(2, family(500, 1, 24).remove(0)).max_new_tokens(4));
        for _ in 0..8 {
            cluster.step();
        }
        assert!(cluster.replica(0).running() > 0, "parent is mid-flight");

        // Replica 1 is now idle (request 2 is short); a prompt-hash or
        // least-loaded router would send new work there. Fork affinity must
        // pin the branches to replica 0, where the parent's pages live.
        let before = (cluster.replica(0).queued() + cluster.replica(0).running()) as i64;
        let out = cluster
            .fork(
                1,
                JoinPolicy::FirstFinished,
                &[
                    BranchSpec::new(10, vec![60]).max_new_tokens(2),
                    BranchSpec::new(11, vec![61]).max_new_tokens(2),
                ],
            )
            .unwrap();
        assert_eq!(out.replica, 0);
        assert_eq!(out.outcome.handles.len(), 2);
        assert_eq!(
            (cluster.replica(0).queued() + cluster.replica(0).running()) as i64,
            before + 2,
            "both branches enqueued on the parent's replica"
        );
        let stats = cluster.router_stats();
        assert_eq!(stats.fork_affinity, 2);
        assert_eq!(stats.routed, 2, "fork placements are not routing decisions");

        let report = cluster.run_to_completion(10_000);
        assert!(
            cluster
                .join_status(out.replica, out.outcome.group)
                .unwrap()
                .resolved
        );
        let rendered = report.rollup().render();
        validate_json(&rendered).unwrap();
        assert!(rendered.contains("\"fork_affinity\""));
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_is_rejected() {
        ClusterConfig {
            replicas: 0,
            affinity_tokens: 8,
        }
        .validate();
    }
}
