//! Single-sequence convenience wrapper over the executor/state split.
//!
//! [`Engine`] bundles one shared [`ModelExecutor`] with one private
//! [`SequenceState`] behind the original single-sequence API. New code — and any
//! serving loop — should hold a `ModelExecutor` and per-request `SequenceState`s
//! directly (see [`crate::serving::Scheduler`]); this wrapper exists so
//! single-sequence callers (tests, examples, accuracy sweeps) stay simple.

use std::sync::Arc;

use lserve_attention::HeadKind;
use lserve_kvcache::PagePool;
use lserve_model::{ModelConfig, ModelWeights};

pub use crate::executor::{DecodeOutput, OutOfPagesError, PrefillOutput};
use crate::executor::{ModelExecutor, SequenceState};
use crate::{EngineConfig, EngineStats};

impl EngineConfig {
    /// Builds a page pool sized so one sequence of up to `max_tokens` fits under
    /// this configuration (dense heads grow with context; streaming heads are
    /// bounded by their window). The migration mode is read from
    /// `LSERVE_MIGRATION` (sync when unset), so single-sequence runs exercise
    /// the same copy-engine path the scheduler does under the async CI leg.
    pub fn make_pool_for(&self, model: &ModelConfig, max_tokens: usize) -> PagePool {
        let capacity = crate::serving::sequence_pages_estimate(self, model, max_tokens) + 8;
        PagePool::new_with_migration(
            self.paging,
            capacity,
            model.head_dim,
            lserve_kvcache::migration_from_env(),
        )
    }
}

/// A single-sequence LServe inference pipeline over a caller-provided page pool.
///
/// The engine owns per-sequence state (two-way KV caches, selectors) but *not* the
/// pool, so a serving layer can share one pool (one device memory) across many
/// sequences. Internally it is an `Arc<ModelExecutor>` plus a [`SequenceState`];
/// cloning an engine shares the executor and deep-copies the sequence state.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use lserve_core::{Engine, EngineConfig};
/// use lserve_model::{ModelConfig, ModelWeights};
///
/// let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 1));
/// let cfg = EngineConfig::lserve_fp16();
/// let mut pool = cfg.clone().make_pool_for(&weights.config, 512);
/// let mut engine = Engine::new(weights, cfg);
/// let out = engine.prefill(&mut pool, &[1, 2, 3, 4]).unwrap();
/// assert_eq!(out.logits.len(), 97);
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    exec: Arc<ModelExecutor>,
    state: SequenceState,
}

impl Engine {
    /// Creates an engine for `weights` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is internally inconsistent (see
    /// [`EngineConfig::validate`]).
    pub fn new(weights: Arc<ModelWeights>, cfg: EngineConfig) -> Self {
        let exec = Arc::new(ModelExecutor::new(weights, cfg));
        let state = exec.new_sequence();
        Self { exec, state }
    }

    /// Wraps an existing shared executor with a fresh sequence.
    pub fn from_executor(exec: Arc<ModelExecutor>) -> Self {
        let state = exec.new_sequence();
        Self { exec, state }
    }

    /// The shared executor half.
    pub fn executor(&self) -> &Arc<ModelExecutor> {
        &self.exec
    }

    /// The policy configuration.
    pub fn config(&self) -> &EngineConfig {
        self.exec.config()
    }

    /// The model weights.
    pub fn weights(&self) -> &ModelWeights {
        self.exec.weights()
    }

    /// Tokens absorbed so far (prompt + generated).
    pub fn context_len(&self) -> usize {
        self.state.context_len()
    }

    /// Cumulative work counters.
    pub fn stats(&self) -> EngineStats {
        self.state.stats()
    }

    /// Per-layer streaming masks decided at construction.
    pub fn head_kinds(&self) -> &[Vec<HeadKind>] {
        self.exec.head_kinds()
    }

    /// Processes the whole prompt with the fused block-sparse prefill pipeline and
    /// writes KV into the two-way paged cache.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfPagesError`] if the pool cannot hold the prompt's KV; the
    /// engine should then be [`Engine::release`]d.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or the engine already holds context.
    pub fn prefill(
        &mut self,
        pool: &mut PagePool,
        tokens: &[u32],
    ) -> Result<PrefillOutput, OutOfPagesError> {
        self.exec.prefill(&mut self.state, pool, tokens)
    }

    /// Runs one decode step: absorbs `token`, returns next-token logits.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfPagesError`] when the pool cannot hold the new token's KV.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Engine::prefill`].
    pub fn decode_step(
        &mut self,
        pool: &mut PagePool,
        token: u32,
    ) -> Result<DecodeOutput, OutOfPagesError> {
        self.exec.decode_step(&mut self.state, pool, token)
    }

    /// Greedy generation: prefill `prompt`, then decode `max_new_tokens` tokens
    /// (argmax sampling). Returns the generated tokens.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfPagesError`] on pool exhaustion; tokens generated before the
    /// failure are lost (callers needing partial output should drive
    /// [`Engine::decode_step`] themselves).
    pub fn generate(
        &mut self,
        pool: &mut PagePool,
        prompt: &[u32],
        max_new_tokens: usize,
    ) -> Result<Vec<u32>, OutOfPagesError> {
        let first = self.prefill(pool, prompt)?;
        let mut out = Vec::with_capacity(max_new_tokens);
        let mut next = lserve_model::greedy_next_token(&first.logits);
        for _ in 0..max_new_tokens {
            out.push(next);
            let step = self.decode_step(pool, next)?;
            next = lserve_model::greedy_next_token(&step.logits);
        }
        Ok(out)
    }

    /// Frees every page this engine holds and resets it for a fresh sequence.
    pub fn release(&mut self, pool: &mut PagePool) {
        self.state.release(pool);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;
    use lserve_model::{greedy_next_token, reference_forward_full, ModelConfig};

    fn tiny_weights() -> Arc<ModelWeights> {
        Arc::new(ModelWeights::random(&ModelConfig::tiny(), 42))
    }

    fn run_engine(cfg: EngineConfig, prompt: &[u32], steps: usize) -> (Vec<u32>, EngineStats) {
        let w = tiny_weights();
        let mut pool = cfg.make_pool_for(&w.config, prompt.len() + steps + 8);
        let mut e = Engine::new(w, cfg);
        let toks = e.generate(&mut pool, prompt, steps).unwrap();
        (toks, e.stats())
    }

    #[test]
    fn dense_engine_matches_reference_forward() {
        let w = tiny_weights();
        let cfg = EngineConfig::dense();
        let mut pool = cfg.make_pool_for(&w.config, 64);
        let mut e = Engine::new(Arc::clone(&w), cfg);
        let prompt = [3u32, 14, 15, 92, 65, 35];
        let out = e.prefill(&mut pool, &prompt).unwrap();
        let want = reference_forward_full(&w, &prompt);
        for (a, b) in out.logits.iter().zip(want.row(prompt.len() - 1)) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn dense_decode_matches_reference_incrementally() {
        let w = tiny_weights();
        let cfg = EngineConfig::dense();
        let mut pool = cfg.make_pool_for(&w.config, 64);
        let mut e = Engine::new(Arc::clone(&w), cfg);
        let prompt = [1u32, 2, 3];
        let mut seq = prompt.to_vec();
        let mut logits_row = e.prefill(&mut pool, &prompt).unwrap().logits;
        for _ in 0..5 {
            let next = greedy_next_token(&logits_row);
            seq.push(next);
            logits_row = e.decode_step(&mut pool, next).unwrap().logits;
            let want = reference_forward_full(&w, &seq);
            let want_row = want.row(seq.len() - 1);
            for (a, b) in logits_row.iter().zip(want_row) {
                assert!((a - b).abs() < 2e-3, "{a} vs {b} at len {}", seq.len());
            }
        }
    }

    #[test]
    fn dense_and_reference_generate_identically() {
        let w = tiny_weights();
        let prompt = [7u32, 8, 9, 10];
        let (engine_tokens, _) = run_engine(EngineConfig::dense(), &prompt, 8);
        // Reference greedy decode recomputing the full forward each step.
        let mut seq = prompt.to_vec();
        let mut ref_tokens = Vec::new();
        for _ in 0..8 {
            let l = reference_forward_full(&w, &seq);
            let next = greedy_next_token(l.row(seq.len() - 1));
            ref_tokens.push(next);
            seq.push(next);
        }
        assert_eq!(engine_tokens, ref_tokens);
    }

    #[test]
    fn lserve_with_huge_budget_matches_dense_generation() {
        // Budget >= context and FP16 paging: dynamic sparsity selects everything, so
        // generation must match the dense engine exactly. (Streaming heads off to
        // isolate the selector.)
        let mut cfg = EngineConfig::lserve_fp16();
        cfg.streaming_sparsity = 0.0;
        cfg.dynamic_budget = Some(1 << 20);
        let prompt = [5u32, 6, 7, 8, 9];
        let (a, _) = run_engine(cfg, &prompt, 10);
        let (b, _) = run_engine(EngineConfig::dense(), &prompt, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn streaming_heads_bound_pool_growth() {
        let w = tiny_weights();
        let cfg = EngineConfig::duo_like();
        let mut pool = cfg.make_pool_for(&w.config, 640);
        let mut e = Engine::new(w, cfg);
        let prompt: Vec<u32> = (0..96).map(|i| (i % 90) as u32).collect();
        e.prefill(&mut pool, &prompt).unwrap();
        let after_prefill = pool.in_use();
        for _ in 0..128 {
            let t = e.decode_step(&mut pool, 1).unwrap();
            let _ = t;
        }
        let after_decode = pool.in_use();
        // Dense heads grow; streaming heads must not. With 50% streaming the growth
        // must be well below the all-dense growth of the same span.
        let dense_cfg = EngineConfig::dense();
        let mut dense_pool = dense_cfg.make_pool_for(&tiny_weights().config, 640);
        let mut de = Engine::new(tiny_weights(), dense_cfg);
        de.prefill(&mut dense_pool, &prompt).unwrap();
        let d0 = dense_pool.in_use();
        for _ in 0..128 {
            de.decode_step(&mut dense_pool, 1).unwrap();
        }
        let d1 = dense_pool.in_use();
        assert!(
            after_decode - after_prefill < (d1 - d0),
            "streaming growth {} must be below dense growth {}",
            after_decode - after_prefill,
            d1 - d0
        );
    }

    #[test]
    fn prefill_sparsity_reported_for_streaming_heads() {
        let prompt: Vec<u32> = (0..96).map(|i| (i % 90) as u32).collect();
        // Small tiles so the 96-token prompt spans many blocks and the Λ pattern
        // actually skips some.
        let mut duo = EngineConfig::duo_like();
        duo.prefill_tile = 8;
        let (_, stats) = run_engine(duo, &prompt, 1);
        assert!(stats.prefill_sparsity() > 0.0, "streaming must skip tiles");
        let (_, dense_stats) = run_engine(EngineConfig::dense(), &prompt, 1);
        assert_eq!(dense_stats.prefill_sparsity(), 0.0);
    }

    #[test]
    fn dynamic_budget_caps_decode_pages() {
        // Tiny model, tiny pages: budget of 8 tokens over ~96-token history.
        let mut cfg = EngineConfig::lserve_fp16();
        cfg.streaming_sparsity = 0.0;
        cfg.paging = lserve_kvcache::PagingConfig::new(4, 2, lserve_quant::KvPrecision::Fp16);
        cfg.dynamic_budget = Some(8);
        cfg.prefill_tile = 4;
        let prompt: Vec<u32> = (0..64).map(|i| (i % 90) as u32).collect();
        let (_, stats) = run_engine(cfg, &prompt, 16);
        assert!(
            stats.decode_sparsity() > 0.5,
            "selector must skip most pages: {}",
            stats.decode_sparsity()
        );
    }

    #[test]
    fn reuse_interval_cuts_selector_invocations() {
        let mut cfg = EngineConfig::lserve_fp16();
        cfg.streaming_sparsity = 0.0;
        cfg.paging = lserve_kvcache::PagingConfig::new(4, 2, lserve_quant::KvPrecision::Fp16);
        cfg.dynamic_budget = Some(8);
        cfg.prefill_tile = 4;
        cfg.reuse_interval = 4;
        let prompt: Vec<u32> = (0..64).map(|i| (i % 90) as u32).collect();
        let (_, s4) = run_engine(cfg.clone(), &prompt, 16);
        cfg.reuse_interval = 1;
        let (_, s1) = run_engine(cfg, &prompt, 16);
        assert!(s4.selector_reuses > 0);
        assert_eq!(s1.selector_reuses, 0);
        assert!(
            s4.selector_invocations * 3 < s1.selector_invocations,
            "reuse must cut invocations: {} vs {}",
            s4.selector_invocations,
            s1.selector_invocations
        );
    }

    #[test]
    fn quantized_engine_generates_plausibly() {
        // INT4 KV shifts logits slightly; generation still completes and matches the
        // dense output on a decent prefix.
        let prompt = [11u32, 22, 33, 44];
        let (q, _) = run_engine(EngineConfig::lserve(), &prompt, 12);
        let (d, _) = run_engine(EngineConfig::dense(), &prompt, 12);
        assert_eq!(q.len(), 12);
        let matches = q.iter().zip(&d).filter(|(a, b)| a == b).count();
        assert!(matches >= 6, "int4+sparse should track dense: {matches}/12");
    }

    #[test]
    fn dynamic_prefill_activates_past_threshold() {
        let w = tiny_weights();
        let prompt: Vec<u32> = (0..96).map(|i| (i % 90) as u32).collect();
        // Below threshold: dense prefill on retrieval heads.
        let mut cfg = EngineConfig::dense();
        cfg.prefill_tile = 8;
        cfg.dynamic_prefill_keep = Some(1);
        cfg.dynamic_prefill_after = 1000;
        let mut pool = cfg.make_pool_for(&w.config, 128);
        let mut e = Engine::new(Arc::clone(&w), cfg.clone());
        e.prefill(&mut pool, &prompt).unwrap();
        assert_eq!(e.stats().prefill_sparsity(), 0.0);
        // Above threshold: tiles skipped.
        cfg.dynamic_prefill_after = 32;
        let mut pool2 = cfg.make_pool_for(&w.config, 128);
        let mut e2 = Engine::new(Arc::clone(&w), cfg);
        e2.prefill(&mut pool2, &prompt).unwrap();
        assert!(
            e2.stats().prefill_sparsity() > 0.3,
            "{}",
            e2.stats().prefill_sparsity()
        );
    }

    #[test]
    fn dynamic_prefill_with_huge_keep_matches_dense_logits() {
        let w = tiny_weights();
        let prompt: Vec<u32> = (0..40).map(|i| (i % 90) as u32).collect();
        let dense = {
            let cfg = EngineConfig::dense();
            let mut pool = cfg.make_pool_for(&w.config, 64);
            Engine::new(Arc::clone(&w), cfg)
                .prefill(&mut pool, &prompt)
                .unwrap()
        };
        let mut cfg = EngineConfig::dense();
        cfg.prefill_tile = 8;
        cfg.dynamic_prefill_keep = Some(1000);
        cfg.dynamic_prefill_after = 8;
        let mut pool = cfg.make_pool_for(&w.config, 64);
        let out = Engine::new(Arc::clone(&w), cfg)
            .prefill(&mut pool, &prompt)
            .unwrap();
        for (a, b) in out.logits.iter().zip(&dense.logits) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        let w = tiny_weights();
        let cfg = EngineConfig::dense();
        let mut pool = PagePool::new(cfg.paging, 4, w.config.head_dim);
        let mut e = Engine::new(w, cfg);
        let prompt: Vec<u32> = (0..90).map(|i| i as u32).collect();
        assert!(matches!(
            e.prefill(&mut pool, &prompt),
            Err(OutOfPagesError)
        ));
    }

    #[test]
    fn release_recycles_all_pages() {
        let w = tiny_weights();
        let cfg = EngineConfig::lserve_fp16();
        let mut pool = cfg.make_pool_for(&w.config, 128);
        let mut e = Engine::new(w, cfg);
        e.generate(&mut pool, &[1, 2, 3, 4, 5, 6, 7, 8], 8).unwrap();
        assert!(pool.in_use() > 0);
        e.release(&mut pool);
        assert_eq!(pool.in_use(), 0);
        // Engine is reusable after release.
        let out = e.prefill(&mut pool, &[9, 10, 11]).unwrap();
        assert_eq!(out.logits.len(), 97);
    }
}
