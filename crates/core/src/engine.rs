//! The single-sequence inference engine: fused sparse prefill and decode.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use lserve_attention::{
    fused_decode_layer, fused_prefill_layer, fused_prefill_layer_dynamic, HeadKind,
    LayerAttnConfig,
};
use lserve_kvcache::{HeadCache, LayerKvCache, PagePool};
use lserve_model::forward::{ffn_block, logits, post_attention, pre_attention};
use lserve_model::{ModelConfig, ModelWeights};
use lserve_selector::{
    FlatSelector, HierarchicalSelector, PageSelector, ReusableSelector,
};
use lserve_tensor::rope::RopeTable;
use lserve_tensor::Matrix;
use lserve_workloads::duo_gates;

use crate::{streaming_masks_from_gates, EngineConfig, EngineStats, SelectorKind};

/// The KV page pool is exhausted; the sequence cannot grow.
///
/// Serving layers use this for admission control and retry; it is not a bug, it is
/// the backpressure signal of a memory-constrained device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfPagesError;

impl fmt::Display for OutOfPagesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kv page pool exhausted")
    }
}

impl Error for OutOfPagesError {}

/// Result of a prefill call.
#[derive(Debug, Clone)]
pub struct PrefillOutput {
    /// Logits of the last prompt token (`vocab` wide) — the distribution of the
    /// first generated token.
    pub logits: Vec<f32>,
}

/// Result of one decode step.
#[derive(Debug, Clone)]
pub struct DecodeOutput {
    /// Next-token logits (`vocab` wide).
    pub logits: Vec<f32>,
}

/// A single-sequence LServe inference pipeline over a caller-provided page pool.
///
/// The engine owns the per-layer two-way KV caches and selectors but *not* the pool,
/// so a serving layer can share one pool (one device memory) across many sequences.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use lserve_core::{Engine, EngineConfig};
/// use lserve_model::{ModelConfig, ModelWeights};
///
/// let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 1));
/// let cfg = EngineConfig::lserve_fp16();
/// let mut pool = cfg.clone().make_pool_for(&weights.config, 512);
/// let mut engine = Engine::new(weights, cfg);
/// let out = engine.prefill(&mut pool, &[1, 2, 3, 4]).unwrap();
/// assert_eq!(out.logits.len(), 97);
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    weights: Arc<ModelWeights>,
    cfg: EngineConfig,
    attn_cfg: LayerAttnConfig,
    rope: RopeTable,
    layers: Vec<LayerKvCache>,
    kinds: Vec<Vec<HeadKind>>,
    selectors: Vec<Vec<Option<SelectorBox>>>,
    tokens_processed: usize,
    decode_step_idx: usize,
    stats: EngineStats,
}

/// Concrete selector stack chosen by [`SelectorKind`] (kept as an enum rather than a
/// trait object so the engine stays `Debug` + cheap).
#[derive(Debug, Clone)]
enum SelectorBox {
    Flat(ReusableSelector<FlatSelector>),
    Hierarchical(ReusableSelector<HierarchicalSelector>),
}

impl SelectorBox {
    fn select(
        &mut self,
        pool: &PagePool,
        cache: &lserve_kvcache::DenseHeadCache,
        queries: &[&[f32]],
        budget: usize,
        step: usize,
    ) -> lserve_selector::Selection {
        match self {
            SelectorBox::Flat(s) => s.select(pool, cache, queries, budget, step),
            SelectorBox::Hierarchical(s) => s.select(pool, cache, queries, budget, step),
        }
    }
}

impl EngineConfig {
    /// Builds a page pool sized so one sequence of up to `max_tokens` fits under
    /// this configuration (dense heads grow with context; streaming heads are
    /// bounded by their window).
    pub fn make_pool_for(&self, model: &ModelConfig, max_tokens: usize) -> PagePool {
        let pages_dense = self.paging.pages_for(max_tokens) + 1;
        let pages_stream = self.streaming_window.max_pages() + 2;
        let streaming_heads =
            (self.streaming_sparsity * (model.num_layers * model.num_kv_heads) as f64).round()
                as usize;
        let dense_heads = model.num_layers * model.num_kv_heads - streaming_heads;
        let capacity = dense_heads * pages_dense + streaming_heads * pages_stream + 8;
        PagePool::new(self.paging, capacity, model.head_dim)
    }
}

impl Engine {
    /// Creates an engine for `weights` under `cfg`.
    ///
    /// Head classification runs here, offline, from synthetic DuoAttention gates
    /// seeded by `cfg.gate_seed` (§3.3).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is internally inconsistent (see
    /// [`EngineConfig::validate`]).
    pub fn new(weights: Arc<ModelWeights>, cfg: EngineConfig) -> Self {
        cfg.validate();
        let model = &weights.config;
        let gates = duo_gates(model.num_layers, model.num_kv_heads, cfg.gate_seed);
        let masks = streaming_masks_from_gates(&gates, cfg.streaming_sparsity);
        let kinds: Vec<Vec<HeadKind>> = masks
            .iter()
            .map(|layer| {
                layer
                    .iter()
                    .map(|&s| if s { HeadKind::Streaming } else { HeadKind::Dense })
                    .collect()
            })
            .collect();
        let layers: Vec<LayerKvCache> = masks
            .iter()
            .map(|mask| LayerKvCache::new(mask, cfg.streaming_window))
            .collect();
        let selectors = masks
            .iter()
            .map(|mask| {
                mask.iter()
                    .map(|&streaming| {
                        if streaming || cfg.dynamic_budget.is_none() {
                            return None;
                        }
                        Some(match cfg.selector {
                            SelectorKind::Flat => SelectorBox::Flat(ReusableSelector::new(
                                FlatSelector::new(true),
                                cfg.reuse_interval,
                            )),
                            SelectorKind::Hierarchical => {
                                SelectorBox::Hierarchical(ReusableSelector::new(
                                    HierarchicalSelector::new(true),
                                    cfg.reuse_interval,
                                ))
                            }
                            SelectorKind::None => unreachable!("validated"),
                        })
                    })
                    .collect()
            })
            .collect();
        let attn_cfg = LayerAttnConfig {
            num_q_heads: model.num_q_heads,
            num_kv_heads: model.num_kv_heads,
            head_dim: model.head_dim,
            tile: cfg.prefill_tile,
            sink_blocks: cfg.streaming_window.sink_pages,
            local_blocks: cfg.streaming_window.local_pages,
        };
        let rope = RopeTable::new(model.head_dim, model.rope_base);
        Self {
            weights,
            cfg,
            attn_cfg,
            rope,
            layers,
            kinds,
            selectors,
            tokens_processed: 0,
            decode_step_idx: 0,
            stats: EngineStats::default(),
        }
    }

    /// The policy configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The model weights.
    pub fn weights(&self) -> &ModelWeights {
        &self.weights
    }

    /// Tokens absorbed so far (prompt + generated).
    pub fn context_len(&self) -> usize {
        self.tokens_processed
    }

    /// Cumulative work counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Per-layer streaming masks decided at construction.
    pub fn head_kinds(&self) -> &[Vec<HeadKind>] {
        &self.kinds
    }

    /// Processes the whole prompt with the fused block-sparse prefill pipeline and
    /// writes KV into the two-way paged cache.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfPagesError`] if the pool cannot hold the prompt's KV; the
    /// engine should then be [`Engine::release`]d.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or the engine already holds context.
    pub fn prefill(
        &mut self,
        pool: &mut PagePool,
        tokens: &[u32],
    ) -> Result<PrefillOutput, OutOfPagesError> {
        assert!(!tokens.is_empty(), "empty prompt");
        assert_eq!(self.tokens_processed, 0, "prefill on a non-empty engine");
        let model = self.weights.config.clone();
        let weights = Arc::clone(&self.weights);
        // MInference-style dynamic prefill on retrieval heads, only past the
        // activation threshold (§4.3: "activated after 128K").
        let dynamic_keep = self
            .cfg
            .dynamic_prefill_keep
            .filter(|_| tokens.len() > self.cfg.dynamic_prefill_after);
        let mut x = weights.embed_tokens(tokens);
        for (l, lw) in weights.layers.iter().enumerate() {
            let acts = pre_attention(&model, lw, &x, 0, &self.rope);
            for t in 0..tokens.len() {
                if !self.layers[l].append_token(pool, acts.k.row(t), acts.v.row(t), model.head_dim)
                {
                    return Err(OutOfPagesError);
                }
            }
            let (attn, dense_stats, stream_stats) = match dynamic_keep {
                Some(keep) => fused_prefill_layer_dynamic(
                    &acts.q,
                    &acts.k,
                    &acts.v,
                    &self.attn_cfg,
                    &self.kinds[l],
                    keep,
                ),
                None => fused_prefill_layer(&acts.q, &acts.k, &acts.v, &self.attn_cfg, &self.kinds[l]),
            };
            self.stats.add_prefill(dense_stats, stream_stats);
            x = post_attention(lw, &x, &attn);
            x = ffn_block(lw, &x);
        }
        self.tokens_processed = tokens.len();
        let last = x.slice_rows(tokens.len() - 1, tokens.len());
        let out = logits(&weights, &last);
        Ok(PrefillOutput {
            logits: out.row(0).to_vec(),
        })
    }

    /// Runs one decode step: absorbs `token`, returns next-token logits.
    ///
    /// Dense heads go through dynamic page selection (when configured) and the
    /// fused decode kernel; streaming heads attend their sink+local pages.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfPagesError`] when the pool cannot hold the new token's KV.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Engine::prefill`].
    pub fn decode_step(
        &mut self,
        pool: &mut PagePool,
        token: u32,
    ) -> Result<DecodeOutput, OutOfPagesError> {
        assert!(self.tokens_processed > 0, "decode before prefill");
        let model = self.weights.config.clone();
        let weights = Arc::clone(&self.weights);
        let pos = self.tokens_processed;
        let d = model.head_dim;
        let group = model.gqa_group_size();
        let mut x = weights.embed_tokens(&[token]);
        for (l, lw) in weights.layers.iter().enumerate() {
            let acts = pre_attention(&model, lw, &x, pos, &self.rope);
            if !self.layers[l].append_token(pool, acts.k.row(0), acts.v.row(0), d) {
                return Err(OutOfPagesError);
            }
            let q_row = acts.q.row(0);
            let mut selections: Vec<Option<Vec<usize>>> = vec![None; model.num_kv_heads];
            if let Some(budget) = self.cfg.dynamic_budget {
                for kv in 0..model.num_kv_heads {
                    let Some(selector) = self.selectors[l][kv].as_mut() else {
                        continue;
                    };
                    let HeadCache::Dense(cache) = self.layers[l].head(kv) else {
                        continue;
                    };
                    // Skip selection entirely while the history fits the budget —
                    // the offline-profiled "no slowdown at short contexts" rule
                    // (§5.5).
                    if cache.tokens() <= budget {
                        continue;
                    }
                    let queries: Vec<&[f32]> = (0..group)
                        .map(|i| {
                            let h = kv * group + i;
                            &q_row[h * d..(h + 1) * d]
                        })
                        .collect();
                    let sel =
                        selector.select(pool, cache, &queries, budget, self.decode_step_idx);
                    self.stats.selector_logical_scored += sel.logical_pages_scored;
                    if sel.reused {
                        self.stats.selector_reuses += 1;
                    } else {
                        self.stats.selector_invocations += 1;
                    }
                    selections[kv] = Some(sel.pages);
                }
            }
            let (attn, dense_stats, stream_stats) =
                fused_decode_layer(pool, &self.layers[l], q_row, &self.attn_cfg, &selections);
            self.stats.add_decode(dense_stats, stream_stats);
            let attn_m = Matrix::from_vec(1, attn.len(), attn);
            x = post_attention(lw, &x, &attn_m);
            x = ffn_block(lw, &x);
        }
        self.tokens_processed += 1;
        self.decode_step_idx += 1;
        self.stats.decode_steps += 1;
        let out = logits(&weights, &x);
        Ok(DecodeOutput {
            logits: out.row(0).to_vec(),
        })
    }

    /// Greedy generation: prefill `prompt`, then decode `max_new_tokens` tokens
    /// (argmax sampling). Returns the generated tokens.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfPagesError`] on pool exhaustion; tokens generated before the
    /// failure are lost (callers needing partial output should drive
    /// [`Engine::decode_step`] themselves).
    pub fn generate(
        &mut self,
        pool: &mut PagePool,
        prompt: &[u32],
        max_new_tokens: usize,
    ) -> Result<Vec<u32>, OutOfPagesError> {
        let first = self.prefill(pool, prompt)?;
        let mut out = Vec::with_capacity(max_new_tokens);
        let mut next = lserve_model::greedy_next_token(&first.logits);
        for _ in 0..max_new_tokens {
            out.push(next);
            let step = self.decode_step(pool, next)?;
            next = lserve_model::greedy_next_token(&step.logits);
        }
        Ok(out)
    }

    /// Frees every page this engine holds and resets it for a fresh sequence.
    pub fn release(&mut self, pool: &mut PagePool) {
        for layer in &mut self.layers {
            layer.release(pool);
        }
        self.tokens_processed = 0;
        self.decode_step_idx = 0;
        for layer in &mut self.selectors {
            for s in layer.iter_mut().flatten() {
                match s {
                    SelectorBox::Flat(x) => x.reset(),
                    SelectorBox::Hierarchical(x) => x.reset(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lserve_model::{greedy_next_token, reference_forward_full};

    fn tiny_weights() -> Arc<ModelWeights> {
        Arc::new(ModelWeights::random(&ModelConfig::tiny(), 42))
    }

    fn run_engine(cfg: EngineConfig, prompt: &[u32], steps: usize) -> (Vec<u32>, EngineStats) {
        let w = tiny_weights();
        let mut pool = cfg.make_pool_for(&w.config, prompt.len() + steps + 8);
        let mut e = Engine::new(w, cfg);
        let toks = e.generate(&mut pool, prompt, steps).unwrap();
        (toks, e.stats())
    }

    #[test]
    fn dense_engine_matches_reference_forward() {
        let w = tiny_weights();
        let cfg = EngineConfig::dense();
        let mut pool = cfg.make_pool_for(&w.config, 64);
        let mut e = Engine::new(Arc::clone(&w), cfg);
        let prompt = [3u32, 14, 15, 92, 65, 35];
        let out = e.prefill(&mut pool, &prompt).unwrap();
        let want = reference_forward_full(&w, &prompt);
        for (a, b) in out.logits.iter().zip(want.row(prompt.len() - 1)) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn dense_decode_matches_reference_incrementally() {
        let w = tiny_weights();
        let cfg = EngineConfig::dense();
        let mut pool = cfg.make_pool_for(&w.config, 64);
        let mut e = Engine::new(Arc::clone(&w), cfg);
        let prompt = [1u32, 2, 3];
        let mut seq = prompt.to_vec();
        let mut logits_row = e.prefill(&mut pool, &prompt).unwrap().logits;
        for _ in 0..5 {
            let next = greedy_next_token(&logits_row);
            seq.push(next);
            logits_row = e.decode_step(&mut pool, next).unwrap().logits;
            let want = reference_forward_full(&w, &seq);
            let want_row = want.row(seq.len() - 1);
            for (a, b) in logits_row.iter().zip(want_row) {
                assert!((a - b).abs() < 2e-3, "{a} vs {b} at len {}", seq.len());
            }
        }
    }

    #[test]
    fn dense_and_reference_generate_identically() {
        let w = tiny_weights();
        let prompt = [7u32, 8, 9, 10];
        let (engine_tokens, _) = run_engine(EngineConfig::dense(), &prompt, 8);
        // Reference greedy decode recomputing the full forward each step.
        let mut seq = prompt.to_vec();
        let mut ref_tokens = Vec::new();
        for _ in 0..8 {
            let l = reference_forward_full(&w, &seq);
            let next = greedy_next_token(l.row(seq.len() - 1));
            ref_tokens.push(next);
            seq.push(next);
        }
        assert_eq!(engine_tokens, ref_tokens);
    }

    #[test]
    fn lserve_with_huge_budget_matches_dense_generation() {
        // Budget >= context and FP16 paging: dynamic sparsity selects everything, so
        // generation must match the dense engine exactly. (Streaming heads off to
        // isolate the selector.)
        let mut cfg = EngineConfig::lserve_fp16();
        cfg.streaming_sparsity = 0.0;
        cfg.dynamic_budget = Some(1 << 20);
        let prompt = [5u32, 6, 7, 8, 9];
        let (a, _) = run_engine(cfg, &prompt, 10);
        let (b, _) = run_engine(EngineConfig::dense(), &prompt, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn streaming_heads_bound_pool_growth() {
        let w = tiny_weights();
        let cfg = EngineConfig::duo_like();
        let mut pool = cfg.make_pool_for(&w.config, 640);
        let mut e = Engine::new(w, cfg);
        let prompt: Vec<u32> = (0..96).map(|i| (i % 90) as u32).collect();
        e.prefill(&mut pool, &prompt).unwrap();
        let after_prefill = pool.in_use();
        for _ in 0..128 {
            let t = e.decode_step(&mut pool, 1).unwrap();
            let _ = t;
        }
        let after_decode = pool.in_use();
        // Dense heads grow; streaming heads must not. With 50% streaming the growth
        // must be well below the all-dense growth of the same span.
        let dense_cfg = EngineConfig::dense();
        let mut dense_pool = dense_cfg.make_pool_for(&tiny_weights().config, 640);
        let mut de = Engine::new(tiny_weights(), dense_cfg);
        de.prefill(&mut dense_pool, &prompt).unwrap();
        let d0 = dense_pool.in_use();
        for _ in 0..128 {
            de.decode_step(&mut dense_pool, 1).unwrap();
        }
        let d1 = dense_pool.in_use();
        assert!(
            after_decode - after_prefill < (d1 - d0),
            "streaming growth {} must be below dense growth {}",
            after_decode - after_prefill,
            d1 - d0
        );
    }

    #[test]
    fn prefill_sparsity_reported_for_streaming_heads() {
        let prompt: Vec<u32> = (0..96).map(|i| (i % 90) as u32).collect();
        // Small tiles so the 96-token prompt spans many blocks and the Λ pattern
        // actually skips some.
        let mut duo = EngineConfig::duo_like();
        duo.prefill_tile = 8;
        let (_, stats) = run_engine(duo, &prompt, 1);
        assert!(stats.prefill_sparsity() > 0.0, "streaming must skip tiles");
        let (_, dense_stats) = run_engine(EngineConfig::dense(), &prompt, 1);
        assert_eq!(dense_stats.prefill_sparsity(), 0.0);
    }

    #[test]
    fn dynamic_budget_caps_decode_pages() {
        // Tiny model, tiny pages: budget of 8 tokens over ~96-token history.
        let mut cfg = EngineConfig::lserve_fp16();
        cfg.streaming_sparsity = 0.0;
        cfg.paging = lserve_kvcache::PagingConfig::new(4, 2, lserve_quant::KvPrecision::Fp16);
        cfg.dynamic_budget = Some(8);
        cfg.prefill_tile = 4;
        let prompt: Vec<u32> = (0..64).map(|i| (i % 90) as u32).collect();
        let (_, stats) = run_engine(cfg, &prompt, 16);
        assert!(
            stats.decode_sparsity() > 0.5,
            "selector must skip most pages: {}",
            stats.decode_sparsity()
        );
    }

    #[test]
    fn reuse_interval_cuts_selector_invocations() {
        let mut cfg = EngineConfig::lserve_fp16();
        cfg.streaming_sparsity = 0.0;
        cfg.paging = lserve_kvcache::PagingConfig::new(4, 2, lserve_quant::KvPrecision::Fp16);
        cfg.dynamic_budget = Some(8);
        cfg.prefill_tile = 4;
        cfg.reuse_interval = 4;
        let prompt: Vec<u32> = (0..64).map(|i| (i % 90) as u32).collect();
        let (_, s4) = run_engine(cfg.clone(), &prompt, 16);
        cfg.reuse_interval = 1;
        let (_, s1) = run_engine(cfg, &prompt, 16);
        assert!(s4.selector_reuses > 0);
        assert_eq!(s1.selector_reuses, 0);
        assert!(
            s4.selector_invocations * 3 < s1.selector_invocations,
            "reuse must cut invocations: {} vs {}",
            s4.selector_invocations,
            s1.selector_invocations
        );
    }

    #[test]
    fn quantized_engine_generates_plausibly() {
        // INT4 KV shifts logits slightly; generation still completes and matches the
        // dense output on a decent prefix.
        let prompt = [11u32, 22, 33, 44];
        let (q, _) = run_engine(EngineConfig::lserve(), &prompt, 12);
        let (d, _) = run_engine(EngineConfig::dense(), &prompt, 12);
        assert_eq!(q.len(), 12);
        let matches = q.iter().zip(&d).filter(|(a, b)| a == b).count();
        assert!(matches >= 6, "int4+sparse should track dense: {matches}/12");
    }

    #[test]
    fn dynamic_prefill_activates_past_threshold() {
        let w = tiny_weights();
        let prompt: Vec<u32> = (0..96).map(|i| (i % 90) as u32).collect();
        // Below threshold: dense prefill on retrieval heads.
        let mut cfg = EngineConfig::dense();
        cfg.prefill_tile = 8;
        cfg.dynamic_prefill_keep = Some(1);
        cfg.dynamic_prefill_after = 1000;
        let mut pool = cfg.make_pool_for(&w.config, 128);
        let mut e = Engine::new(Arc::clone(&w), cfg.clone());
        e.prefill(&mut pool, &prompt).unwrap();
        assert_eq!(e.stats().prefill_sparsity(), 0.0);
        // Above threshold: tiles skipped.
        cfg.dynamic_prefill_after = 32;
        let mut pool2 = cfg.make_pool_for(&w.config, 128);
        let mut e2 = Engine::new(Arc::clone(&w), cfg);
        e2.prefill(&mut pool2, &prompt).unwrap();
        assert!(e2.stats().prefill_sparsity() > 0.3, "{}", e2.stats().prefill_sparsity());
    }

    #[test]
    fn dynamic_prefill_with_huge_keep_matches_dense_logits() {
        let w = tiny_weights();
        let prompt: Vec<u32> = (0..40).map(|i| (i % 90) as u32).collect();
        let dense = {
            let cfg = EngineConfig::dense();
            let mut pool = cfg.make_pool_for(&w.config, 64);
            Engine::new(Arc::clone(&w), cfg).prefill(&mut pool, &prompt).unwrap()
        };
        let mut cfg = EngineConfig::dense();
        cfg.prefill_tile = 8;
        cfg.dynamic_prefill_keep = Some(1000);
        cfg.dynamic_prefill_after = 8;
        let mut pool = cfg.make_pool_for(&w.config, 64);
        let out = Engine::new(Arc::clone(&w), cfg).prefill(&mut pool, &prompt).unwrap();
        for (a, b) in out.logits.iter().zip(&dense.logits) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        let w = tiny_weights();
        let cfg = EngineConfig::dense();
        let mut pool = PagePool::new(cfg.paging, 4, w.config.head_dim);
        let mut e = Engine::new(w, cfg);
        let prompt: Vec<u32> = (0..90).map(|i| i as u32).collect();
        assert!(matches!(e.prefill(&mut pool, &prompt), Err(OutOfPagesError)));
    }

    #[test]
    fn release_recycles_all_pages() {
        let w = tiny_weights();
        let cfg = EngineConfig::lserve_fp16();
        let mut pool = cfg.make_pool_for(&w.config, 128);
        let mut e = Engine::new(w, cfg);
        e.generate(&mut pool, &[1, 2, 3, 4, 5, 6, 7, 8], 8).unwrap();
        assert!(pool.in_use() > 0);
        e.release(&mut pool);
        assert_eq!(pool.in_use(), 0);
        // Engine is reusable after release.
        let out = e.prefill(&mut pool, &[9, 10, 11]).unwrap();
        assert_eq!(out.logits.len(), 97);
    }
}
