//! The shared/immutable vs per-sequence split of the inference engine.
//!
//! [`ModelExecutor`] owns everything that is identical for every request served by
//! one model deployment: the weights handle, the policy configuration, the RoPE
//! table, the attention-kernel configuration, and the offline §3.3 head
//! classification. It is cheap to share (`Arc`) and never mutated after
//! construction.
//!
//! [`SequenceState`] owns everything that belongs to one request: the per-layer
//! two-way KV caches, the per-head reusable-selector state, the position counters,
//! and the work stats. It is created by [`ModelExecutor::new_sequence`], costs no
//! pool pages until tokens are appended, and releases all its pages with
//! [`SequenceState::release`].
//!
//! This split is what makes a real serving loop possible: a scheduler holds one
//! executor and N sequence states, batches decode across states
//! ([`ModelExecutor::decode_batch`], layers in the outer loop so weight/config
//! traversal is amortized), and can drop or rebuild any state independently
//! (preemption and resume).

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use lserve_attention::{
    fused_prefill_layer_threads, lpt_assign, run_decode_shard, run_placed, run_sharded,
    BalanceStats, DecodeShard, DecodeStats, HeadKind, LayerAttnConfig, PlacedBalance,
};
use lserve_costmodel::Topology;
use lserve_kvcache::{
    HeadCache, LayerKvCache, MigrationMode, PagePool, StreamingWindow, HOST_TRANSFER_SPEEDUP,
};
use lserve_model::forward::{ffn_block, logits, post_attention, pre_attention};
use lserve_model::ModelWeights;
use lserve_selector::{FlatSelector, HierarchicalSelector, PageSelector, ReusableSelector};
use lserve_tensor::rope::RopeTable;
use lserve_tensor::Matrix;
use lserve_trace::{lane, Tracer, CONTROL_TID};
use lserve_workloads::duo_gates;

use crate::config::decode_threads_from_env;
use crate::dag::SparsitySchedule;
use crate::sharding::ShardingPlan;
use crate::stats::{MigrationDelta, ParallelExecStats};
use crate::{streaming_masks_from_gates, EngineConfig, EngineStats, SelectorKind};

/// The KV page pool is exhausted; the sequence cannot grow.
///
/// Serving layers use this for admission control, preemption, and retry; it is not
/// a bug, it is the backpressure signal of a memory-constrained device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfPagesError;

impl fmt::Display for OutOfPagesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kv page pool exhausted")
    }
}

impl Error for OutOfPagesError {}

/// Result of a prefill call.
#[derive(Debug, Clone)]
pub struct PrefillOutput {
    /// Logits of the last prompt token (`vocab` wide) — the distribution of the
    /// first generated token.
    pub logits: Vec<f32>,
}

/// Result of one decode step.
#[derive(Debug, Clone)]
pub struct DecodeOutput {
    /// Next-token logits (`vocab` wide).
    pub logits: Vec<f32>,
}

/// Concrete selector stack chosen by [`SelectorKind`] (kept as an enum rather than a
/// trait object so sequence state stays `Debug` + `Clone` + cheap).
#[derive(Debug, Clone)]
enum SelectorBox {
    Flat(ReusableSelector<FlatSelector>),
    Hierarchical(ReusableSelector<HierarchicalSelector>),
}

impl SelectorBox {
    fn select(
        &mut self,
        pool: &PagePool,
        cache: &lserve_kvcache::DenseHeadCache,
        queries: &[&[f32]],
        budget: usize,
        step: usize,
    ) -> lserve_selector::Selection {
        match self {
            SelectorBox::Flat(s) => s.select(pool, cache, queries, budget, step),
            SelectorBox::Hierarchical(s) => s.select(pool, cache, queries, budget, step),
        }
    }

    fn reset(&mut self) {
        match self {
            SelectorBox::Flat(s) => s.reset(),
            SelectorBox::Hierarchical(s) => s.reset(),
        }
    }

    /// Last-use tracking for selection-driven demotion: page indices this
    /// head's selector has skipped for at least `k` fresh selection chunks.
    fn stale_pages(&self, k: usize) -> Vec<usize> {
        match self {
            SelectorBox::Flat(s) => s.stale_pages(k),
            SelectorBox::Hierarchical(s) => s.stale_pages(k),
        }
    }

    /// The decode step at which this head's next fresh scoring lands — the
    /// trigger for issuing prefetches one step ahead of the selection.
    fn next_fresh_step(&self) -> Option<usize> {
        match self {
            SelectorBox::Flat(s) => s.next_fresh_step(),
            SelectorBox::Hierarchical(s) => s.next_fresh_step(),
        }
    }

    /// Predicted-hot pages for the next fresh selection, most recently
    /// selected first, restricted to pages that dropped out of the selection
    /// within the last `window` rescores (residency-blind; the caller filters
    /// and caps).
    fn prefetch_candidates(&self, window: u64) -> Vec<usize> {
        match self {
            SelectorBox::Flat(s) => s.prefetch_candidates(window),
            SelectorBox::Hierarchical(s) => s.prefetch_candidates(window),
        }
    }
}

/// Per-request mutable state: KV caches, selector state, position, stats.
///
/// Created by [`ModelExecutor::new_sequence`]; every compute method on the executor
/// takes the state it operates on explicitly. Dropping a state without calling
/// [`SequenceState::release`] leaks its pool pages, so serving layers must release
/// on every exit path (completion, rejection, preemption).
#[derive(Debug, Clone)]
pub struct SequenceState {
    layers: Vec<LayerKvCache>,
    selectors: Vec<Vec<Option<SelectorBox>>>,
    tokens_processed: usize,
    decode_step_idx: usize,
    sparsity: SparsitySchedule,
    stats: EngineStats,
}

impl SequenceState {
    /// Tokens absorbed so far (prompt + generated).
    pub fn context_len(&self) -> usize {
        self.tokens_processed
    }

    /// Cumulative work counters for this sequence.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The positional sparsity-override schedule governing this sequence's
    /// selection budget (empty = engine defaults). Cloned by
    /// [`SequenceState::clone_shared`], so a fork snapshot replays the exact
    /// budget timeline the parent lived under.
    pub fn sparsity_schedule(&self) -> &SparsitySchedule {
        &self.sparsity
    }

    /// Installs the sparsity-override schedule (serving layer, at admission or
    /// fork time).
    pub fn set_sparsity_schedule(&mut self, schedule: SparsitySchedule) {
        self.sparsity = schedule;
    }

    /// Exact number of fresh pool pages one more token will allocate across all
    /// layers and heads (the reservation a scheduler must check before a decode
    /// step to guarantee the step cannot fail mid-layer).
    pub fn pages_needed_for_next_token(&self, pool: &PagePool) -> usize {
        self.layers
            .iter()
            .map(|l| l.pages_needed_for_next_token(pool))
            .sum()
    }

    /// Frees every page this sequence holds and resets it for reuse (fresh prefill).
    pub fn release(&mut self, pool: &mut PagePool) {
        for layer in &mut self.layers {
            layer.release(pool);
        }
        self.tokens_processed = 0;
        self.decode_step_idx = 0;
        for layer in &mut self.selectors {
            for s in layer.iter_mut().flatten() {
                s.reset();
            }
        }
    }

    /// Total pool pages this sequence currently references, across all layers and
    /// heads.
    pub fn resident_pages(&self) -> usize {
        self.layers.iter().map(|l| l.resident_pages()).sum()
    }

    /// Swap-out: demotes every sole-owned hot page this sequence holds to the
    /// cold tier, freeing their hot slots while keeping every page table,
    /// selector history and position counter intact. Pages co-owned with the
    /// prefix cache or another sequence stay hot (they are someone else's
    /// working set). Returns `(pages moved, token-units moved)`.
    pub fn demote_resident(&self, pool: &mut PagePool) -> (u64, u64) {
        self.layers.iter().fold((0, 0), |(p, u), l| {
            let (lp, lu) = l.demote_all(pool);
            (p + lp, u + lu)
        })
    }

    /// Swap-in: promotes every cold page this sequence holds back to the hot
    /// tier so decode can continue exactly where it left off. Returns
    /// `(pages moved, token-units moved)`, or `None` when the hot tier cannot
    /// fit them (callers reserve [`SequenceState::cold_pages`] free slots
    /// first; pages promoted before the failure stay hot).
    pub fn promote_resident(&self, pool: &mut PagePool) -> Option<(u64, u64)> {
        let mut pages = 0;
        let mut units = 0;
        for l in &self.layers {
            let (lp, lu) = l.promote_all(pool)?;
            pages += lp;
            units += lu;
        }
        Some((pages, units))
    }

    /// Resident KV tokens one layer's KV head currently reads (a streaming
    /// head's sink+local window, a dense head's full history) — the token
    /// volume the rebalancer must move across the interconnect when it
    /// migrates that head to another device.
    pub fn kv_head_resident_tokens(&self, pool: &PagePool, layer: usize, kv: usize) -> u64 {
        match self.layers[layer].head(kv) {
            HeadCache::Streaming(c) => c.resident_tokens(pool) as u64,
            HeadCache::Dense(c) => c.tokens() as u64,
        }
    }

    /// Pages this sequence holds that currently sit in the cold tier.
    pub fn cold_pages(&self, pool: &PagePool) -> usize {
        self.layers.iter().map(|l| l.cold_pages(pool)).sum()
    }

    /// The exact hot-tier reservation a swap-in of this sequence needs: cold
    /// pages plus this sequence's own outbound transfers still in flight.
    /// The pool counts an in-flight demotion as a reclaimable free slot, but
    /// forcing one of *ours* lands the page cold and re-enters it as promote
    /// demand — net-zero supply, so it must be reserved as demand up front.
    pub fn swap_in_demand(&self, pool: &PagePool) -> usize {
        self.layers.iter().map(|l| l.swap_in_demand(pool)).sum()
    }

    /// Pages this sequence holds that are both sole-owned and hot — exactly
    /// what [`SequenceState::demote_resident`] would move, and therefore the
    /// swap-out (and later swap-in) transfer cost of preempting this sequence
    /// under the swap policy. Pages co-owned with the prefix cache or another
    /// sequence cost nothing: they stay hot for their other readers.
    pub fn sole_owned_hot_pages(&self, pool: &PagePool) -> usize {
        self.layers
            .iter()
            .map(|l| l.sole_owned_hot_pages(pool))
            .sum()
    }

    /// Modeled ledger-unit cost of returning this sequence's full resident
    /// set to the hot tier: the bill a preemption victim pays at resume time.
    /// Shared hot pages are free (they never left), sole-owned hot pages cost
    /// one swap-out-plus-back round trip, cold pages one host hop, and nvme
    /// pages the recall plus the host hop. Victim selection minimizes this —
    /// the tier truth, not just a hot-page count.
    pub fn promote_back_cost_units(&self, pool: &PagePool) -> u64 {
        self.layers
            .iter()
            .map(|l| l.promote_back_cost_units(pool))
            .sum()
    }

    /// Takes one additional reference on every page this sequence holds (prefix
    /// sharing: the caller co-owns the pages and must `release` its copy of the
    /// state).
    pub fn retain_pages(&self, pool: &mut PagePool) {
        for layer in &self.layers {
            layer.retain_all(pool);
        }
    }

    /// True when this state references at least one page no other owner shares —
    /// releasing it would return physical pages to the pool.
    pub fn holds_sole_reference(&self, pool: &PagePool) -> bool {
        self.layers.iter().any(|l| l.holds_sole_reference(pool))
    }

    /// Deep-copies this state for prefix caching and seeding: page tables,
    /// selector state, position, and decode-step counter are cloned (page *ids*
    /// are copied — callers manage pool refcounts via
    /// [`SequenceState::retain_pages`]), while work counters restart at zero so a
    /// seeded consumer reports only its own work.
    ///
    /// The clone is positionally exact: a consumer continuing from it takes
    /// decode steps with the same step index and the same reusable-selector
    /// history a cold run would have at this context length, which is what makes
    /// cache-hit outputs bit-identical to cold runs.
    pub fn clone_shared(&self) -> SequenceState {
        SequenceState {
            stats: EngineStats::default(),
            ..self.clone()
        }
    }
}

/// The immutable, shareable half of the engine: weights, policy, RoPE table, and
/// the offline head classification. One executor serves any number of concurrent
/// [`SequenceState`]s.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use lserve_core::{EngineConfig, ModelExecutor};
/// use lserve_model::{ModelConfig, ModelWeights};
///
/// let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 1));
/// let cfg = EngineConfig::lserve_fp16();
/// let mut pool = cfg.clone().make_pool_for(&weights.config, 512);
/// let exec = ModelExecutor::new(weights, cfg);
/// let mut seq = exec.new_sequence();
/// let out = exec.prefill(&mut seq, &mut pool, &[1, 2, 3, 4]).unwrap();
/// assert_eq!(out.logits.len(), 97);
/// seq.release(&mut pool);
/// ```
#[derive(Debug)]
pub struct ModelExecutor {
    weights: Arc<ModelWeights>,
    cfg: EngineConfig,
    attn_cfg: LayerAttnConfig,
    rope: RopeTable,
    masks: Vec<Vec<bool>>,
    kinds: Vec<Vec<HeadKind>>,
    /// Worker count for the thread-count-free entry points
    /// ([`ModelExecutor::prefill`], [`ModelExecutor::decode_batch`]), resolved
    /// once from `LSERVE_DECODE_THREADS` at construction — the env read itself
    /// is uncached ([`decode_threads_from_env`]), so tests can vary the knob
    /// between executor constructions without paying a per-token env lookup.
    default_threads: usize,
}

impl ModelExecutor {
    /// Creates an executor for `weights` under `cfg`.
    ///
    /// Head classification runs here, offline, from synthetic DuoAttention gates
    /// seeded by `cfg.gate_seed` (§3.3).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is internally inconsistent (see
    /// [`EngineConfig::validate`]).
    pub fn new(weights: Arc<ModelWeights>, cfg: EngineConfig) -> Self {
        cfg.validate();
        let model = &weights.config;
        let gates = duo_gates(model.num_layers, model.num_kv_heads, cfg.gate_seed);
        let masks = streaming_masks_from_gates(&gates, cfg.streaming_sparsity);
        let kinds: Vec<Vec<HeadKind>> = masks
            .iter()
            .map(|layer| {
                layer
                    .iter()
                    .map(|&s| {
                        if s {
                            HeadKind::Streaming
                        } else {
                            HeadKind::Dense
                        }
                    })
                    .collect()
            })
            .collect();
        let attn_cfg = LayerAttnConfig {
            num_q_heads: model.num_q_heads,
            num_kv_heads: model.num_kv_heads,
            head_dim: model.head_dim,
            tile: cfg.prefill_tile,
            sink_blocks: cfg.streaming_window.sink_pages,
            local_blocks: cfg.streaming_window.local_pages,
        };
        let rope = RopeTable::new(model.head_dim, model.rope_base);
        Self {
            weights,
            cfg,
            attn_cfg,
            rope,
            masks,
            kinds,
            default_threads: decode_threads_from_env(),
        }
    }

    /// The policy configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The model weights.
    pub fn weights(&self) -> &ModelWeights {
        &self.weights
    }

    /// Per-layer streaming masks decided at construction.
    pub fn head_kinds(&self) -> &[Vec<HeadKind>] {
        &self.kinds
    }

    /// Creates an empty per-request state (the selector factory): per-layer two-way
    /// KV caches plus one reusable selector per dense head when dynamic sparsity is
    /// configured. Holds no pool pages until tokens are appended.
    pub fn new_sequence(&self) -> SequenceState {
        self.new_sequence_with_window(None)
    }

    /// [`ModelExecutor::new_sequence`] with a per-request streaming-window
    /// override (`None` inherits the engine config). The window shapes each
    /// streaming head's sink/local ring, which is built here and never resized
    /// — which is why window overrides are admission-time-only and rejected at
    /// fork (children inherit the parent's ring).
    pub fn new_sequence_with_window(&self, window: Option<StreamingWindow>) -> SequenceState {
        let window = window.unwrap_or(self.cfg.streaming_window);
        let layers: Vec<LayerKvCache> = self
            .masks
            .iter()
            .map(|mask| LayerKvCache::new(mask, window))
            .collect();
        let selectors = self
            .masks
            .iter()
            .map(|mask| {
                mask.iter()
                    .map(|&streaming| {
                        if streaming || self.cfg.dynamic_budget.is_none() {
                            return None;
                        }
                        Some(match self.cfg.selector {
                            SelectorKind::Flat => SelectorBox::Flat(ReusableSelector::new(
                                FlatSelector::new(true),
                                self.cfg.reuse_interval,
                            )),
                            SelectorKind::Hierarchical => {
                                SelectorBox::Hierarchical(ReusableSelector::new(
                                    HierarchicalSelector::new(true),
                                    self.cfg.reuse_interval,
                                ))
                            }
                            SelectorKind::None => unreachable!("validated"),
                        })
                    })
                    .collect()
            })
            .collect();
        SequenceState {
            layers,
            selectors,
            tokens_processed: 0,
            decode_step_idx: 0,
            sparsity: SparsitySchedule::new(),
            stats: EngineStats::default(),
        }
    }

    /// Processes a whole prompt (or the first chunk of one) with the fused
    /// block-sparse prefill pipeline and writes KV into the two-way paged cache.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfPagesError`] if the pool cannot hold the prompt's KV; the
    /// state holds a partial cache and should then be [`SequenceState::release`]d.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or the state already holds context.
    pub fn prefill(
        &self,
        state: &mut SequenceState,
        pool: &mut PagePool,
        tokens: &[u32],
    ) -> Result<PrefillOutput, OutOfPagesError> {
        let mut stats = ParallelExecStats::default();
        self.prefill_threads(state, pool, tokens, self.default_threads, &mut stats)
    }

    /// [`ModelExecutor::prefill`] with an explicit worker-thread count: each
    /// layer's per-head attention runs as cost-balanced shards on up to
    /// `threads` scoped worker threads (dense heads cost quadratic tiles,
    /// streaming heads linear — the LPT assignment balances that asymmetry).
    /// Outputs are bit-identical for every thread count; `exec_stats`
    /// accumulates per-phase worker utilization and cost-balance counters.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfPagesError`] exactly as [`ModelExecutor::prefill`] does.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or the state already holds context.
    pub fn prefill_threads(
        &self,
        state: &mut SequenceState,
        pool: &mut PagePool,
        tokens: &[u32],
        threads: usize,
        exec_stats: &mut ParallelExecStats,
    ) -> Result<PrefillOutput, OutOfPagesError> {
        assert!(!tokens.is_empty(), "empty prompt");
        assert_eq!(state.tokens_processed, 0, "prefill on a non-empty sequence");
        let model = &self.weights.config;
        // MInference-style dynamic prefill on retrieval heads, only past the
        // activation threshold (§4.3: "activated after 128K").
        let dynamic_keep = self
            .cfg
            .dynamic_prefill_keep
            .filter(|_| tokens.len() > self.cfg.dynamic_prefill_after);
        let tracer = pool.tracer().clone();
        let mut x = self.weights.embed_tokens(tokens);
        for (l, lw) in self.weights.layers.iter().enumerate() {
            let serial_start = tracer.now();
            let acts = pre_attention(model, lw, &x, 0, &self.rope);
            for t in 0..tokens.len() {
                if !state.layers[l].append_token(pool, acts.k.row(t), acts.v.row(t), model.head_dim)
                {
                    return Err(OutOfPagesError);
                }
            }
            // The serial phase costs one clock tick per prompt token (QKV,
            // RoPE, KV writeback all scale with the chunk).
            tracer.advance(tokens.len() as u64);
            tracer.span(
                "prefill.serial",
                "executor",
                lane::EXECUTOR,
                CONTROL_TID,
                serial_start,
                &[("layer", l as u64)],
            );
            let par_start = tracer.now();
            let (attn, dense_stats, stream_stats, balance) = fused_prefill_layer_threads(
                &acts.q,
                &acts.k,
                &acts.v,
                &self.attn_cfg,
                &self.kinds[l],
                dynamic_keep,
                threads,
            );
            exec_stats.absorb(&balance);
            if tracer.is_enabled() {
                // The parallel phase costs its modeled critical path; worker
                // lanes get one merged span per worker (their LPT-assigned
                // load) so prefill imbalance shows in the flame chart.
                tracer.advance(balance.cost_critical());
                tracer.span(
                    "prefill.attention",
                    "executor",
                    lane::EXECUTOR,
                    CONTROL_TID,
                    par_start,
                    &[("layer", l as u64), ("shards", balance.shards)],
                );
                for (w, &c) in balance.assigned_cost.iter().enumerate() {
                    if c > 0 {
                        tracer.span_at(
                            "shard",
                            "attention",
                            lane::WORKERS,
                            w as u64,
                            par_start,
                            c,
                            &[("cost", c)],
                        );
                    }
                }
            }
            state.stats.add_prefill(dense_stats, stream_stats);
            x = post_attention(lw, &x, &attn);
            x = ffn_block(lw, &x);
        }
        state.tokens_processed = tokens.len();
        // Prefill compute drains in-flight transfers like decode compute does
        // — one prompt token hides `HOST_TRANSFER_SPEEDUP` token-units. This
        // is what lets a swap-resume promotion overlap re-admission prefill.
        pool.advance_transfer_units(tokens.len() as u64 * HOST_TRANSFER_SPEEDUP);
        let last = x.slice_rows(tokens.len() - 1, tokens.len());
        let out = logits(&self.weights, &last);
        Ok(PrefillOutput {
            logits: out.row(0).to_vec(),
        })
    }

    /// Runs dynamic page selection for every dense head of layer `l` (§3.5),
    /// returning the per-KV-head selections plus the selector's sparsity-aware
    /// cost hints (estimated visited tokens per selected head) that feed the
    /// parallel shard balancer.
    fn select_pages(
        &self,
        state: &mut SequenceState,
        pool: &PagePool,
        l: usize,
        q_row: &[f32],
    ) -> LayerSelections {
        let model = &self.weights.config;
        let d = model.head_dim;
        let group = model.gqa_group_size();
        let mut selections: Vec<Option<Vec<usize>>> = vec![None; model.num_kv_heads];
        let mut hints: Vec<Option<u64>> = vec![None; model.num_kv_heads];
        let mut fresh = vec![false; model.num_kv_heads];
        // The per-sequence schedule may tighten (or replace) the engine-wide
        // budget from a given position onward — the per-branch sparsity dial.
        let effective = state
            .sparsity
            .effective_budget(self.cfg.dynamic_budget, state.tokens_processed);
        if let Some(budget) = effective {
            for kv in 0..model.num_kv_heads {
                let Some(selector) = state.selectors[l][kv].as_mut() else {
                    continue;
                };
                let HeadCache::Dense(cache) = state.layers[l].head(kv) else {
                    continue;
                };
                // Skip selection entirely while the history fits the budget —
                // the offline-profiled "no slowdown at short contexts" rule
                // (§5.5).
                if cache.tokens() <= budget {
                    continue;
                }
                let queries: Vec<&[f32]> = (0..group)
                    .map(|i| {
                        let h = kv * group + i;
                        &q_row[h * d..(h + 1) * d]
                    })
                    .collect();
                let sel = selector.select(pool, cache, &queries, budget, state.decode_step_idx);
                state.stats.selector_logical_scored += sel.logical_pages_scored;
                if sel.reused {
                    state.stats.selector_reuses += 1;
                } else {
                    state.stats.selector_invocations += 1;
                    fresh[kv] = true;
                }
                hints[kv] = Some(sel.estimated_cost_tokens(pool, cache));
                selections[kv] = Some(sel.pages);
            }
        }
        (selections, hints, fresh)
    }

    /// The residency pass of the tiered KV memory, run per layer between page
    /// selection and the attention kernels:
    ///
    /// 1. **Selection-driven demotion** (when
    ///    [`EngineConfig::demote_after_chunks`] is `Some(k)`): dense-head
    ///    pages the head's reusable selector has skipped for `k` consecutive
    ///    fresh selection chunks are demoted to the cold tier — except pages
    ///    in the current selection, the table's final page (append target),
    ///    and pages co-owned with the prefix cache or another sequence (the
    ///    pool refuses those). The sweep runs only on steps whose selection
    ///    was freshly scored (`fresh[kv]`): the stale set is a pure function
    ///    of the chunk clock, so reuse steps cannot change it.
    /// 2. **Promotion**: every cold page the current selection picks is
    ///    promoted back before the kernel runs, satisfying the kernels'
    ///    hot-residency precondition. The accounted fetch units are returned
    ///    per KV head so the LPT shard costing can charge the fetch to the
    ///    shard that caused it.
    ///
    /// Migrations move data, never mutate it, so outputs are bit-identical to
    /// the always-resident baseline — and, because the async copy engine only
    /// changes *when* transfers are accounted (never what the kernels read),
    /// bit-identical across [`MigrationMode`]s too.
    ///
    /// Under [`MigrationMode::Async`] demotions are issued into the copy
    /// engine (the hot slot frees when the transfer lands, or earlier if an
    /// allocation forces it), promotions ride [`PagePool::ensure_hot`] so a
    /// page already in flight costs only its unhidden remainder, and the
    /// returned per-head fetch units carry **only the unhidden fraction** —
    /// transfer work the step genuinely stalls on. Under
    /// [`MigrationMode::Sync`] every moved unit is unhidden and the behavior
    /// is exactly the pre-engine baseline.
    ///
    /// All migration accounting funnels through one
    /// [`EngineStats::add_migration`] call per pass, on success and failure
    /// alike.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfPagesError`] when a required promotion cannot fit the
    /// hot tier; the scheduler treats this like any other out-of-memory decode
    /// failure (release and replay).
    fn apply_residency(
        &self,
        state: &mut SequenceState,
        pool: &mut PagePool,
        l: usize,
        selections: &[Option<Vec<usize>>],
        fresh: &[bool],
    ) -> Result<Vec<u64>, OutOfPagesError> {
        let mut delta = MigrationDelta::default();
        let result = self.residency_pass(state, pool, l, selections, fresh, &mut delta);
        state.stats.add_migration(&delta);
        result
    }

    /// The body of [`ModelExecutor::apply_residency`], accumulating all
    /// migration traffic into `delta` so the wrapper commits it exactly once.
    fn residency_pass(
        &self,
        state: &mut SequenceState,
        pool: &mut PagePool,
        l: usize,
        selections: &[Option<Vec<usize>>],
        fresh: &[bool],
        delta: &mut MigrationDelta,
    ) -> Result<Vec<u64>, OutOfPagesError> {
        let sync = pool.migration_mode() == MigrationMode::Sync;
        let mut fetch_units = vec![0u64; selections.len()];
        for (kv, selection) in selections.iter().enumerate() {
            let Some(sel) = selection else {
                // No selection this step: the kernel reads this head's whole
                // page table (full-history dense attention, or a streaming
                // window), so every page must be readable first. Non-resident
                // pages appear here only on sequences seeded from a prefix
                // snapshot captured after demotion — the common case is a
                // no-op scan.
                let head = state.layers[l].head(kv);
                match head.ensure_resident(pool) {
                    Some((p, u, unhidden)) => {
                        delta.pages_promoted += p;
                        delta.token_units += u;
                        delta.unhidden_units += unhidden;
                        fetch_units[kv] += unhidden;
                    }
                    None => return Err(OutOfPagesError),
                }
                continue;
            };
            let HeadCache::Dense(cache) = state.layers[l].head(kv) else {
                continue;
            };
            let table = cache.page_table();
            if let (Some(k), true) = (self.cfg.demote_after_chunks, fresh[kv]) {
                if let Some(selector) = state.selectors[l][kv].as_ref() {
                    for p in selector.stale_pages(k) {
                        // Never demote the append target (the table's final
                        // page) or anything the current selection reads.
                        if p + 1 >= table.len() || sel.contains(&p) {
                            continue;
                        }
                        if let Some(u) = pool.demote(table[p]) {
                            delta.pages_demoted += 1;
                            delta.token_units += u;
                            if sync {
                                // A synchronous demote stalls for the whole
                                // copy; the engine hides it behind compute.
                                delta.unhidden_units += u;
                            }
                        }
                    }
                }
            }
            for &p in sel {
                match pool.ensure_hot(table[p]) {
                    Some((u, unhidden)) => {
                        if u > 0 {
                            delta.pages_promoted += 1;
                        }
                        delta.token_units += u;
                        delta.unhidden_units += unhidden;
                        fetch_units[kv] += unhidden;
                    }
                    None => return Err(OutOfPagesError),
                }
            }
        }
        Ok(fetch_units)
    }

    /// Transfers issued per head per step: only the single most recently
    /// displaced page — the one whose re-pick odds the selector's recency
    /// ranking rates highest — so every bad guess costs at most one transfer.
    const PREFETCH_PER_HEAD: usize = 1;

    /// Fresh rescores a page may have sat unselected and still qualify for
    /// prefetch. Beyond this the query has drifted: the page's re-pick odds
    /// no longer justify a speculative transfer, and issuing one is how the
    /// copy channel fills with `prefetch_wasted` traffic.
    const PREFETCH_RECENCY_WINDOW: u64 = 2;

    /// Cap on speculative transfers a single sequence may have issued per
    /// step across **all** layers and heads. The per-head cap alone lets a
    /// deep model multiply guesses by layers × heads; the per-sequence
    /// budget keeps one sequence's speculation from starving demand traffic.
    const PREFETCH_PER_SEQ: usize = 4;

    /// Selector-driven prefetch (async mode only): for every dense head whose
    /// reusable selector will score afresh on the **next** decode step, start
    /// host→device transfers for the pages that selection is most likely to
    /// re-pick — ranked by selection recency, dropped entirely once they fall
    /// outside [`Self::PREFETCH_RECENCY_WINDOW`] — so by the time the fresh
    /// selection demands them the copy has already ridden one step of
    /// overlapped bandwidth. Wrong guesses cost only spare link bandwidth and
    /// a genuinely free hot slot ([`PagePool::prefetch`] never evicts), and
    /// are tallied as `prefetch_wasted` in [`lserve_kvcache::MigrationStats`].
    /// `budget` is the sequence's remaining step-wide allowance
    /// ([`Self::PREFETCH_PER_SEQ`]), decremented across layers.
    fn issue_prefetches(
        &self,
        state: &mut SequenceState,
        pool: &mut PagePool,
        l: usize,
        budget: &mut usize,
    ) {
        let next_step = state.decode_step_idx + 1;
        for kv in 0..state.selectors[l].len() {
            if *budget == 0 {
                return;
            }
            let Some(selector) = state.selectors[l][kv].as_ref() else {
                continue;
            };
            if selector.next_fresh_step() != Some(next_step) {
                continue;
            }
            let HeadCache::Dense(cache) = state.layers[l].head(kv) else {
                continue;
            };
            let table = cache.page_table();
            let mut issued = 0;
            for p in selector.prefetch_candidates(Self::PREFETCH_RECENCY_WINDOW) {
                if issued >= Self::PREFETCH_PER_HEAD || *budget == 0 {
                    break;
                }
                // Never the append target (the table's final page).
                if p + 1 >= table.len() {
                    continue;
                }
                if pool.prefetch(table[p]) {
                    issued += 1;
                    *budget -= 1;
                }
            }
        }
    }

    /// Runs one decode step for one sequence: absorbs `token`, returns next-token
    /// logits.
    ///
    /// Dense heads go through dynamic page selection (when configured) and the
    /// fused decode kernel; streaming heads attend their sink+local pages.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfPagesError`] when the pool cannot hold the new token's KV;
    /// the sequence's cache is then partially written and the state must be
    /// released (and, in a serving loop, replayed) rather than advanced.
    ///
    /// # Panics
    ///
    /// Panics if called before [`ModelExecutor::prefill`].
    pub fn decode_step(
        &self,
        state: &mut SequenceState,
        pool: &mut PagePool,
        token: u32,
    ) -> Result<DecodeOutput, OutOfPagesError> {
        let mut out = self.decode_batch(pool, &mut [(state, token)]);
        out.pop().expect("one result per input sequence")
    }

    /// Batched decode: one token for every sequence in `batch`, walking **layers in
    /// the outer loop** so the weight and config traversal of each layer is
    /// amortized across the whole batch (iteration-level batching, the
    /// memory-access pattern real batched decode kernels use). Uses the
    /// process-wide default thread count ([`decode_threads_from_env`]).
    ///
    /// Each sequence's computation is independent, so outputs are bit-identical to
    /// calling [`ModelExecutor::decode_step`] per sequence in any order — the
    /// property the scheduler's determinism guarantee rests on.
    ///
    /// Returns one result per sequence, in input order. A sequence that runs out of
    /// pages mid-step gets `Err(OutOfPagesError)` and is left partially written
    /// (release/replay it); the other sequences are unaffected.
    ///
    /// # Panics
    ///
    /// Panics if any sequence has no context yet (prefill first).
    pub fn decode_batch(
        &self,
        pool: &mut PagePool,
        batch: &mut [(&mut SequenceState, u32)],
    ) -> Vec<Result<DecodeOutput, OutOfPagesError>> {
        let mut stats = ParallelExecStats::default();
        self.decode_batch_threads(pool, batch, self.default_threads, &mut stats)
    }

    /// [`ModelExecutor::decode_batch`] with an explicit worker-thread count.
    ///
    /// Every layer runs in three phases:
    ///
    /// 1. **Serial writeback** (per sequence, in batch order): QKV + RoPE, KV
    ///    append into the paged cache (the only pool mutation), and dynamic
    ///    page selection. Allocation order is identical to the serial path.
    /// 2. **Parallel attention**: one shard per *(sequence × KV-head)*, each
    ///    costed by the sparsity-aware estimate (streaming ≈ resident window,
    ///    selected dense ≈ the selector's page set, unselected dense ≈ full
    ///    history), LPT-assigned across up to `threads` scoped workers with
    ///    work-stealing for stragglers. Every shard writes only its own
    ///    preallocated output slice — no locks on the hot path.
    /// 3. **Serial reduction** (per sequence, in batch order): output
    ///    projection and FFN.
    ///
    /// Shards read only shared immutable state and own disjoint outputs, and
    /// both serial phases run in fixed batch order, so the result is
    /// **bit-identical for every thread count** — the property
    /// `tests/proptest_scheduler.rs` and the golden suite pin down.
    ///
    /// `exec_stats` accumulates one [`ParallelExecStats`] phase per layer:
    /// measured worker busy time (utilization/imbalance) plus the
    /// deterministic cost-model critical path (modeled speedup).
    ///
    /// # Panics
    ///
    /// Panics if any sequence has no context yet (prefill first).
    pub fn decode_batch_threads(
        &self,
        pool: &mut PagePool,
        batch: &mut [(&mut SequenceState, u32)],
        threads: usize,
        exec_stats: &mut ParallelExecStats,
    ) -> Vec<Result<DecodeOutput, OutOfPagesError>> {
        // Transient per-call plan seeded from `LSERVE_DEVICES` (read here, per
        // call, like every other env knob). Callers that need placement to
        // persist across steps — the scheduler, whose rebalancer tracks load
        // history — hold their own plan and call `decode_batch_sharded`.
        let model = &self.weights.config;
        let mut plan = ShardingPlan::new(
            Topology::from_env(),
            lserve_costmodel::PlacementPolicy::SparsityAware,
            model.num_layers,
            model.num_kv_heads,
        );
        self.decode_batch_sharded(pool, batch, threads, &mut plan, exec_stats)
    }

    /// [`ModelExecutor::decode_batch_threads`] against an explicit, caller-owned
    /// [`ShardingPlan`]: parallel attention executes placed — each shard runs on
    /// its KV head's simulated device (per-device LPT worker queues,
    /// device-local stealing), a sequence's shards on non-home devices charge
    /// the topology's modeled interconnect gather cost into `exec_stats` and
    /// the trace, and the plan accumulates the per-head cost signal its
    /// rebalancer acts on.
    ///
    /// With a single-device plan this is exactly the anonymous-pool path.
    /// Outputs are bit-identical for every topology, placement policy, and
    /// thread count — devices are simulated, so placement moves modeled cost,
    /// never arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if any sequence has no context yet (prefill first), or if the
    /// plan's layer/head geometry disagrees with the model's.
    pub fn decode_batch_sharded(
        &self,
        pool: &mut PagePool,
        batch: &mut [(&mut SequenceState, u32)],
        threads: usize,
        plan: &mut ShardingPlan,
        exec_stats: &mut ParallelExecStats,
    ) -> Vec<Result<DecodeOutput, OutOfPagesError>> {
        for (state, _) in batch.iter() {
            assert!(state.tokens_processed > 0, "decode before prefill");
        }
        let model = &self.weights.config;
        let d = model.head_dim;
        let group = model.gqa_group_size();
        let width = model.q_width();
        let positions: Vec<usize> = batch.iter().map(|(s, _)| s.tokens_processed).collect();
        let mut xs: Vec<Option<Matrix>> = batch
            .iter()
            .map(|(_, token)| Some(self.weights.embed_tokens(&[*token])))
            .collect();
        let tracer = pool.tracer().clone();
        // Step-wide speculative-transfer allowance per sequence, spent by
        // issue_prefetches across all layers (async migration only).
        let mut prefetch_budget: Vec<usize> = vec![Self::PREFETCH_PER_SEQ; batch.len()];
        for (l, lw) in self.weights.layers.iter().enumerate() {
            // Phase 1 (serial, batch order): QKV + RoPE, KV writeback, dynamic
            // page selection. A failed append kills only that sequence.
            let serial_start = tracer.now();
            let mut qrows: Vec<Option<Vec<f32>>> = vec![None; batch.len()];
            let mut selections: Vec<Vec<Option<Vec<usize>>>> = Vec::with_capacity(batch.len());
            let mut cost_hints: Vec<Vec<Option<u64>>> = Vec::with_capacity(batch.len());
            let mut fetch_units: Vec<Vec<u64>> = Vec::with_capacity(batch.len());
            for (i, (state, _)) in batch.iter_mut().enumerate() {
                let Some(x) = xs[i].as_ref() else {
                    selections.push(Vec::new());
                    cost_hints.push(Vec::new());
                    fetch_units.push(Vec::new());
                    continue;
                };
                let acts = pre_attention(model, lw, x, positions[i], &self.rope);
                if !state.layers[l].append_token(pool, acts.k.row(0), acts.v.row(0), d) {
                    xs[i] = None;
                    selections.push(Vec::new());
                    cost_hints.push(Vec::new());
                    fetch_units.push(Vec::new());
                    continue;
                }
                let q_row = acts.q.row(0).to_vec();
                let (sel, hint, fresh) = self.select_pages(state, pool, l, &q_row);
                if tracer.is_enabled() {
                    for (kv, &f) in fresh.iter().enumerate() {
                        if f {
                            tracer.instant(
                                "rescore",
                                "selector",
                                lane::SELECTOR,
                                i as u64,
                                &[("layer", l as u64), ("head", kv as u64)],
                            );
                        }
                    }
                }
                // Residency pass: demote selector-stale pages, promote any
                // cold page the selection wants, before the kernels read.
                match self.apply_residency(state, pool, l, &sel, &fresh) {
                    Ok(fetch) => fetch_units.push(fetch),
                    Err(_) => {
                        // A required promotion did not fit the hot tier; the
                        // sequence fails this step like any other OOM and the
                        // serving layer replays it.
                        xs[i] = None;
                        selections.push(Vec::new());
                        cost_hints.push(Vec::new());
                        fetch_units.push(Vec::new());
                        continue;
                    }
                }
                selections.push(sel);
                cost_hints.push(hint);
                qrows[i] = Some(q_row);
                // Overlap window: promotions issued above ride the rest of
                // this step's compute; prefetches below start a step early.
                if pool.migration_mode() == MigrationMode::Async {
                    self.issue_prefetches(state, pool, l, &mut prefetch_budget[i]);
                }
            }
            // The serial phase costs one clock tick per live batch token.
            tracer.advance(qrows.iter().filter(|q| q.is_some()).count() as u64);
            tracer.span(
                "decode.serial",
                "executor",
                lane::EXECUTOR,
                CONTROL_TID,
                serial_start,
                &[("layer", l as u64)],
            );
            let par_start = tracer.now();
            // Phase 2 (parallel): sharded attention into preallocated,
            // disjoint per-(sequence × KV-head) output slices.
            let mut outs: Vec<Vec<f32>> = qrows
                .iter()
                .map(|q| {
                    if q.is_some() {
                        vec![0.0f32; width]
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            let shard_stats: Vec<(usize, DecodeStats, DecodeStats)> = {
                let pool_ref: &PagePool = pool;
                let scale = self.attn_cfg.scale();
                let mut shards: Vec<DecodeShard<'_>> = Vec::new();
                let mut shard_seq: Vec<usize> = Vec::new();
                let mut shard_kv: Vec<usize> = Vec::new();
                let mut costs: Vec<u64> = Vec::new();
                for (i, ((state, _), out)) in batch.iter().zip(outs.iter_mut()).enumerate() {
                    let Some(q) = qrows[i].as_ref() else { continue };
                    let cache = &state.layers[l];
                    for (kv, out_chunk) in out.chunks_mut(group * d).enumerate() {
                        let selection = selections[i][kv].as_deref();
                        costs.push(decode_shard_cost(
                            pool_ref,
                            cache.head(kv),
                            selection,
                            cost_hints[i][kv],
                            fetch_units[i][kv],
                            group,
                        ));
                        shard_seq.push(i);
                        shard_kv.push(kv);
                        shards.push(DecodeShard {
                            head: cache.head(kv),
                            queries: &q[kv * group * d..(kv + 1) * group * d],
                            selection,
                            head_dim: d,
                            scale,
                            out: out_chunk,
                            dense: DecodeStats::default(),
                            streaming: DecodeStats::default(),
                        });
                    }
                }
                let devices = plan.devices();
                if devices <= 1 {
                    let balance = run_sharded(threads, &costs, &mut shards, |shard| {
                        run_decode_shard(pool_ref, shard)
                    });
                    exec_stats.absorb(&balance);
                    trace_attention_phase(&tracer, par_start, l, &balance, &costs, &shard_seq);
                } else {
                    // Per-head cost signal for this phase: the placement (and
                    // later the rebalancer) act on exactly what the worker-level
                    // LPT balances.
                    let mut head_costs = vec![0u64; model.num_kv_heads];
                    for (s, &kv) in shard_kv.iter().enumerate() {
                        head_costs[kv] += costs[s];
                    }
                    let assign = plan.layer_assignment(l, &head_costs).to_vec();
                    // A sequence's home device is where the plurality of its
                    // shard cost lives (ties to the lower device id): its other
                    // shards' outputs must cross the mesh before the serial
                    // output projection, and each such gather charges the
                    // topology's modeled interconnect cost — onto the shard
                    // (the gather delays it) and into the interconnect ledger.
                    let mut seq_dev_cost = vec![vec![0u64; devices]; batch.len()];
                    for s in 0..costs.len() {
                        seq_dev_cost[shard_seq[s]][assign[shard_kv[s]]] += costs[s];
                    }
                    let home: Vec<usize> = seq_dev_cost
                        .iter()
                        .map(|loads| {
                            (0..devices)
                                .max_by_key(|&dev| (loads[dev], std::cmp::Reverse(dev)))
                                .expect("devices > 0")
                        })
                        .collect();
                    let gather = plan.topology().gather_cost_tokens();
                    let mut device_of = vec![0usize; costs.len()];
                    let mut placed_costs = costs.clone();
                    let mut gather_tokens = 0u64;
                    for s in 0..costs.len() {
                        let dev = assign[shard_kv[s]];
                        device_of[s] = dev;
                        if dev != home[shard_seq[s]] {
                            placed_costs[s] += gather;
                            gather_tokens += gather;
                        }
                    }
                    let placed = run_placed(
                        threads,
                        devices,
                        &device_of,
                        &placed_costs,
                        &mut shards,
                        |shard| run_decode_shard(pool_ref, shard),
                    );
                    exec_stats.absorb_placed(&placed, gather_tokens);
                    trace_attention_phase_placed(
                        &tracer,
                        par_start,
                        l,
                        &placed,
                        &placed_costs,
                        &shard_seq,
                        &device_of,
                        exec_stats.interconnect_tokens,
                    );
                }
                shard_seq
                    .iter()
                    .zip(shards.iter())
                    .map(|(&i, s)| (i, s.dense, s.streaming))
                    .collect()
            };
            // Work counters attributed per sequence in shard-construction
            // order, so stats stay deterministic too.
            for (i, dense, streaming) in shard_stats {
                batch[i].0.stats.add_decode(dense, streaming);
            }
            // Phase 3 (serial, batch order): output projection + FFN.
            for i in 0..batch.len() {
                if qrows[i].is_none() {
                    continue;
                }
                let x = xs[i].take().expect("live sequence has activations");
                let attn_m = Matrix::from_vec(1, width, std::mem::take(&mut outs[i]));
                let x = post_attention(lw, &x, &attn_m);
                xs[i] = Some(ffn_block(lw, &x));
            }
        }
        // One decode step of compute hides one step of host-link bandwidth:
        // each batched token buys `HOST_TRANSFER_SPEEDUP` token-units of
        // transfer drain, the exact inverse of `transfer_cost_tokens`. A
        // transfer fully drained by these advances cost the step nothing —
        // that is the overlap the async engine models. (No-op in sync mode.)
        pool.advance_transfer_units(batch.len() as u64 * HOST_TRANSFER_SPEEDUP);
        xs.into_iter()
            .zip(batch.iter_mut())
            .map(|(x, (state, _))| match x {
                Some(x) => {
                    state.tokens_processed += 1;
                    state.decode_step_idx += 1;
                    state.stats.decode_steps += 1;
                    let out = logits(&self.weights, &x);
                    Ok(DecodeOutput {
                        logits: out.row(0).to_vec(),
                    })
                }
                None => Err(OutOfPagesError),
            })
            .collect()
    }
}

/// One layer's per-KV-head selection results: the selected page sets, the
/// selector's cost hints for LPT balancing, and whether each head's selection
/// was freshly scored this step (the demotion sweep runs only then).
type LayerSelections = (Vec<Option<Vec<usize>>>, Vec<Option<u64>>, Vec<bool>);

/// Emits one decode layer's parallel-phase trace: advances the work-token
/// clock by the phase's modeled critical path, closes the `decode.attention`
/// span, and lays per-shard spans on the worker lanes.
///
/// The worker lanes show the *modeled LPT schedule* — [`lpt_assign`] re-run
/// over the same deterministic costs [`run_sharded`] balanced with — not the
/// measured execution (work stealing may move a straggler shard at runtime).
/// That is the right chart for imbalance analysis: it is bit-reproducible,
/// and the per-shard `cost` args are exactly the sparsity-aware estimates the
/// balancer acted on.
fn trace_attention_phase(
    tracer: &Tracer,
    par_start: u64,
    l: usize,
    balance: &BalanceStats,
    costs: &[u64],
    shard_seq: &[usize],
) {
    if !tracer.is_enabled() {
        return;
    }
    tracer.advance(balance.cost_critical());
    tracer.span(
        "decode.attention",
        "executor",
        lane::EXECUTOR,
        CONTROL_TID,
        par_start,
        &[("layer", l as u64), ("shards", balance.shards)],
    );
    if costs.is_empty() {
        return;
    }
    for (w, queue) in lpt_assign(costs, balance.workers.max(1)).iter().enumerate() {
        let mut cursor = par_start;
        for &s in queue {
            tracer.span_at(
                "shard",
                "attention",
                lane::WORKERS,
                w as u64,
                cursor,
                costs[s],
                &[("seq", shard_seq[s] as u64), ("cost", costs[s])],
            );
            cursor += costs[s];
        }
    }
}

/// [`trace_attention_phase`] for a placed phase: per-shard spans land on
/// per-device worker lanes (`tid = device * DEVICE_TID_STRIDE + worker`, the
/// same per-device LPT schedule [`run_placed`] executed), and the cumulative
/// cross-device gather charge is emitted as an `interconnect` counter track.
#[allow(clippy::too_many_arguments)]
fn trace_attention_phase_placed(
    tracer: &Tracer,
    par_start: u64,
    l: usize,
    placed: &PlacedBalance,
    costs: &[u64],
    shard_seq: &[usize],
    device_of: &[usize],
    interconnect_total: u64,
) {
    if !tracer.is_enabled() {
        return;
    }
    tracer.advance(placed.stats.cost_critical());
    tracer.span(
        "decode.attention",
        "executor",
        lane::EXECUTOR,
        CONTROL_TID,
        par_start,
        &[
            ("layer", l as u64),
            ("shards", placed.stats.shards),
            ("devices", placed.devices as u64),
        ],
    );
    for dev in 0..placed.devices {
        let group: Vec<usize> = (0..costs.len()).filter(|&s| device_of[s] == dev).collect();
        if group.is_empty() {
            continue;
        }
        let local_costs: Vec<u64> = group.iter().map(|&s| costs[s]).collect();
        let workers = placed.device_workers[dev].max(1);
        for (w, queue) in lpt_assign(&local_costs, workers).iter().enumerate() {
            let mut cursor = par_start;
            for &local in queue {
                let s = group[local];
                tracer.span_at(
                    "shard",
                    "attention",
                    lane::WORKERS,
                    lane::device_worker_tid(dev, w),
                    cursor,
                    costs[s],
                    &[("seq", shard_seq[s] as u64), ("cost", costs[s])],
                );
                cursor += costs[s];
            }
        }
    }
    // After the shard spans: the counter's tid-0 timestamp (the advanced
    // clock) must not precede device 0's span closes within the lane.
    tracer.counter(
        "interconnect",
        lane::WORKERS,
        &[("tokens", interconnect_total)],
    );
}

/// Sparsity-aware cost estimate of one *(sequence × KV-head)* decode shard, in
/// visited KV tokens times query heads served (the work the kernel actually
/// does):
///
/// * streaming head → resident sink+local window tokens (constant-bounded);
/// * selected dense head → the selector's cost hint (its selected page set),
///   clamped to the real history;
/// * unselected dense head → the full history;
/// * plus the modeled host-link fetch cost of any cold pages the residency
///   pass just promoted for this shard — a shard whose pages crossed the host
///   link is genuinely slower this step, and the LPT balancer should know.
fn decode_shard_cost(
    pool: &PagePool,
    head: &HeadCache,
    selection: Option<&[usize]>,
    hint: Option<u64>,
    fetch_units: u64,
    group: usize,
) -> u64 {
    let tokens = match head {
        HeadCache::Streaming(c) => c.resident_tokens(pool) as u64,
        HeadCache::Dense(c) => match (selection, hint) {
            (Some(_), Some(h)) => h.min(c.tokens() as u64),
            (Some(sel), None) => (sel.len() as u64 * pool.config().physical_page_size() as u64)
                .min(c.tokens() as u64),
            _ => c.tokens() as u64,
        },
    };
    (tokens * group as u64).max(1) + lserve_kvcache::transfer_cost_tokens(fetch_units)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lserve_model::{greedy_next_token, ModelConfig};

    fn tiny_weights() -> Arc<ModelWeights> {
        Arc::new(ModelWeights::random(&ModelConfig::tiny(), 42))
    }

    #[test]
    fn sequences_share_one_executor() {
        let cfg = EngineConfig::lserve_fp16();
        let w = tiny_weights();
        let mut pool = cfg.make_pool_for(&w.config, 512);
        let exec = ModelExecutor::new(w, cfg);
        let mut a = exec.new_sequence();
        let mut b = exec.new_sequence();
        exec.prefill(&mut a, &mut pool, &[1, 2, 3]).unwrap();
        exec.prefill(&mut b, &mut pool, &[4, 5, 6, 7]).unwrap();
        assert_eq!(a.context_len(), 3);
        assert_eq!(b.context_len(), 4);
        a.release(&mut pool);
        b.release(&mut pool);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn batched_decode_matches_sequential_decode() {
        let cfg = EngineConfig::lserve_fp16();
        let w = tiny_weights();
        let exec = ModelExecutor::new(Arc::clone(&w), cfg.clone());
        let prompts: [&[u32]; 3] = [&[1, 2, 3, 4], &[9, 8, 7], &[20, 30, 40, 50, 60]];

        // Sequential: each sequence decoded alone (still sharing the pool).
        let mut pool_seq = cfg.make_pool_for(&w.config, 1024);
        let mut seq_states: Vec<SequenceState> =
            prompts.iter().map(|_| exec.new_sequence()).collect();
        let mut seq_tokens: Vec<Vec<u32>> = Vec::new();
        for (state, prompt) in seq_states.iter_mut().zip(prompts) {
            let first = exec.prefill(state, &mut pool_seq, prompt).unwrap();
            let mut next = greedy_next_token(&first.logits);
            let mut toks = vec![next];
            for _ in 0..6 {
                let out = exec.decode_step(state, &mut pool_seq, next).unwrap();
                next = greedy_next_token(&out.logits);
                toks.push(next);
            }
            seq_tokens.push(toks);
        }

        // Batched: all three advanced one token per decode_batch call.
        let mut pool_b = cfg.make_pool_for(&w.config, 1024);
        let mut b_states: Vec<SequenceState> =
            prompts.iter().map(|_| exec.new_sequence()).collect();
        let mut pending: Vec<u32> = b_states
            .iter_mut()
            .zip(prompts)
            .map(|(state, prompt)| {
                greedy_next_token(&exec.prefill(state, &mut pool_b, prompt).unwrap().logits)
            })
            .collect();
        let mut b_tokens: Vec<Vec<u32>> = pending.iter().map(|&t| vec![t]).collect();
        for _ in 0..6 {
            let mut batch: Vec<(&mut SequenceState, u32)> = b_states
                .iter_mut()
                .zip(pending.iter())
                .map(|(s, &t)| (s, t))
                .collect();
            let outs = exec.decode_batch(&mut pool_b, &mut batch);
            for (i, out) in outs.into_iter().enumerate() {
                let next = greedy_next_token(&out.unwrap().logits);
                pending[i] = next;
                b_tokens[i].push(next);
            }
        }
        assert_eq!(seq_tokens, b_tokens);
    }

    /// The tentpole invariant at the executor level: for every thread count,
    /// `decode_batch_threads` emits bit-identical logits to the serial path —
    /// including a mixed dense/streaming batch with active page selection.
    #[test]
    fn parallel_decode_bit_identical_across_thread_counts() {
        let mut cfg = EngineConfig::lserve_fp16();
        cfg.paging = lserve_kvcache::PagingConfig::new(8, 4, lserve_quant::KvPrecision::Fp16);
        cfg.dynamic_budget = Some(16); // selection active at toy context lengths
        let w = tiny_weights();
        let exec = ModelExecutor::new(Arc::clone(&w), cfg.clone());
        let prompts: [&[u32]; 3] = [&[1, 2, 3, 4], &[9, 8, 7], &[20, 30, 40, 50, 60]];

        let run = |threads: usize| -> (Vec<Vec<Vec<f32>>>, u64) {
            let mut pool = cfg.make_pool_for(&w.config, 1024);
            let mut states: Vec<SequenceState> =
                prompts.iter().map(|_| exec.new_sequence()).collect();
            let mut exec_stats = ParallelExecStats::default();
            let mut pending: Vec<u32> = states
                .iter_mut()
                .zip(prompts)
                .map(|(state, prompt)| {
                    let out = exec
                        .prefill_threads(state, &mut pool, prompt, threads, &mut exec_stats)
                        .unwrap();
                    greedy_next_token(&out.logits)
                })
                .collect();
            let mut all_logits: Vec<Vec<Vec<f32>>> = prompts.iter().map(|_| Vec::new()).collect();
            for _ in 0..24 {
                let mut batch: Vec<(&mut SequenceState, u32)> = states
                    .iter_mut()
                    .zip(pending.iter())
                    .map(|(s, &t)| (s, t))
                    .collect();
                let outs =
                    exec.decode_batch_threads(&mut pool, &mut batch, threads, &mut exec_stats);
                for (i, out) in outs.into_iter().enumerate() {
                    let logits = out.unwrap().logits;
                    pending[i] = greedy_next_token(&logits);
                    all_logits[i].push(logits);
                }
            }
            (all_logits, exec_stats.shards)
        };

        let (want, shards1) = run(1);
        assert!(shards1 > 0);
        for threads in [2, 3, 8] {
            let (got, shards_t) = run(threads);
            assert_eq!(got, want, "logits diverged at {threads} threads");
            assert_eq!(shards_t, shards1, "shard count must not depend on threads");
        }
    }

    #[test]
    fn shard_cost_reflects_sparsity() {
        let cfg = EngineConfig::lserve_fp16();
        let w = tiny_weights();
        let mut pool = cfg.make_pool_for(&w.config, 2048);
        let exec = ModelExecutor::new(Arc::clone(&w), cfg);
        let mut s = exec.new_sequence();
        let prompt: Vec<u32> = (0..200).map(|i| (i % 90) as u32).collect();
        exec.prefill(&mut s, &mut pool, &prompt).unwrap();
        let layer = &s.layers[0];
        let (dense_kv, stream_kv) = {
            let mut dense = None;
            let mut stream = None;
            for kv in 0..layer.num_heads() {
                match layer.head(kv) {
                    HeadCache::Dense(_) => dense = Some(kv),
                    HeadCache::Streaming(_) => stream = Some(kv),
                }
            }
            (dense.expect("mixed layer"), stream.expect("mixed layer"))
        };
        let full = decode_shard_cost(&pool, layer.head(dense_kv), None, None, 0, 2);
        let selected =
            decode_shard_cost(&pool, layer.head(dense_kv), Some(&[0, 1]), Some(128), 0, 2);
        let streaming = decode_shard_cost(&pool, layer.head(stream_kv), None, None, 0, 2);
        assert!(
            full > selected && full > streaming,
            "full {full}, selected {selected}, streaming {streaming}"
        );
        assert_eq!(full, 200 * 2, "unselected dense head costed by history");
        assert_eq!(selected, 128 * 2, "selected head costed by selector hint");
        // Streaming heads are window-bounded no matter how long the context.
        let window = exec.config().streaming_window;
        let np = pool.config().physical_page_size();
        assert!(streaming <= (window.max_pages() * np * 2) as u64);
        // A shard whose pages just crossed the host link costs strictly more.
        let fetched = decode_shard_cost(
            &pool,
            layer.head(dense_kv),
            Some(&[0, 1]),
            Some(128),
            256,
            2,
        );
        assert!(fetched > selected, "fetch cost must surface in the shard");
        s.release(&mut pool);
    }

    /// Selection-driven demotion (tiered KV memory): with `demote_after_chunks`
    /// on, selector-stale dense pages migrate to the cold tier and come back
    /// when a selection re-picks them — and the emitted logits are
    /// bit-identical to the always-resident baseline at every step.
    #[test]
    fn selection_driven_demotion_is_bit_identical_and_migrates() {
        let mut base = EngineConfig::lserve_fp16();
        base.paging = lserve_kvcache::PagingConfig::new(8, 4, lserve_quant::KvPrecision::Fp16);
        base.dynamic_budget = Some(16);
        base.reuse_interval = 2;
        let w = tiny_weights();

        let run = |demote: Option<usize>| -> (Vec<Vec<f32>>, u64, u64, usize) {
            let mut cfg = base.clone();
            cfg.demote_after_chunks = demote;
            let exec = ModelExecutor::new(Arc::clone(&w), cfg.clone());
            let mut pool = cfg.make_pool_for(&w.config, 1024);
            let mut s = exec.new_sequence();
            let prompt: Vec<u32> = (0..40).map(|i| (i % 90) as u32).collect();
            let first = exec.prefill(&mut s, &mut pool, &prompt).unwrap();
            let mut next = greedy_next_token(&first.logits);
            let mut all = Vec::new();
            let mut peak_cold = 0;
            for _ in 0..40 {
                let out = exec.decode_step(&mut s, &mut pool, next).unwrap();
                next = greedy_next_token(&out.logits);
                peak_cold = peak_cold.max(pool.cold_in_use());
                all.push(out.logits);
            }
            let stats = s.stats();
            s.release(&mut pool);
            assert_eq!(pool.in_use(), 0);
            assert_eq!(pool.cold_in_use(), 0, "release must drain the cold tier");
            (all, stats.pages_demoted, stats.pages_promoted, peak_cold)
        };

        let (want, d0, p0, cold0) = run(None);
        assert_eq!((d0, p0, cold0), (0, 0, 0), "baseline stays resident");
        let (got, demoted, _promoted, peak_cold) = run(Some(1));
        assert_eq!(got, want, "demotion changed the logits");
        assert!(demoted > 0, "stale pages must actually demote");
        assert!(peak_cold > 0, "cold tier must hold the demoted pages");
    }

    #[test]
    fn page_demand_reservation_is_exact() {
        let cfg = EngineConfig::lserve_fp16();
        let w = tiny_weights();
        let mut pool = cfg.make_pool_for(&w.config, 512);
        let exec = ModelExecutor::new(w, cfg);
        let mut s = exec.new_sequence();
        exec.prefill(&mut s, &mut pool, &[1, 2, 3, 4, 5]).unwrap();
        let mut next = 7u32;
        for _ in 0..80 {
            let need = s.pages_needed_for_next_token(&pool);
            let before = pool.in_use();
            let out = exec.decode_step(&mut s, &mut pool, next).unwrap();
            // Streaming heads may free a page after allocating, so actual growth is
            // at most the predicted transient demand.
            assert!(
                pool.in_use() <= before + need,
                "grew {} but predicted {}",
                pool.in_use() - before,
                need
            );
            next = greedy_next_token(&out.logits);
        }
    }

    #[test]
    fn batch_failure_isolated_to_one_sequence() {
        let cfg = EngineConfig::dense();
        let w = tiny_weights();
        let exec = ModelExecutor::new(Arc::clone(&w), cfg.clone());
        // Both sequences start on one page per head (2 * lh pages). At the first
        // 64-token page boundary each wants `lh` more; capacity 3*lh + 2 lets the
        // first sequence allocate all of its pages and strands the second partway.
        let m = &w.config;
        let lh = m.num_layers * m.num_kv_heads;
        let mut pool = lserve_kvcache::PagePool::new(cfg.paging, 3 * lh + 2, m.head_dim);
        let mut a = exec.new_sequence();
        let mut b = exec.new_sequence();
        exec.prefill(&mut a, &mut pool, &[1, 2, 3, 4]).unwrap();
        exec.prefill(&mut b, &mut pool, &[5, 6, 7, 8]).unwrap();
        let mut results = Vec::new();
        for step in 0..200 {
            let mut batch: Vec<(&mut SequenceState, u32)> =
                vec![(&mut a, step as u32 % 90), (&mut b, (step + 1) as u32 % 90)];
            let out = exec.decode_batch(&mut pool, &mut batch);
            if out.iter().any(|r| r.is_err()) {
                results = out;
                break;
            }
        }
        assert!(!results.is_empty(), "pool should exhaust");
        // Exactly the failing sequence errored; at least one other succeeded.
        assert!(results.iter().any(|r| r.is_ok()));
        a.release(&mut pool);
        b.release(&mut pool);
        assert_eq!(pool.in_use(), 0);
    }
}
