//! Aggregate work counters reported by the engine.

use lserve_attention::{BalanceStats, DecodeStats, PlacedBalance, PrefillStats};

/// Cumulative work counters across an engine's lifetime.
///
/// These are the units the analytical cost model prices: visited prefill tiles,
/// visited decode pages, selector scoring work. Accuracy experiments read recall off
/// the workloads; efficiency experiments read these counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Prefill tiles computed on dense (retrieval) heads.
    pub prefill_dense_tiles: u64,
    /// Prefill tiles computed on streaming heads.
    pub prefill_streaming_tiles: u64,
    /// Prefill tiles a fully dense model would have computed.
    pub prefill_total_causal_tiles: u64,
    /// Decode pages visited on dense heads.
    pub decode_dense_pages: u64,
    /// Decode pages visited on streaming heads.
    pub decode_streaming_pages: u64,
    /// Decode pages a dense engine would have visited.
    pub decode_total_pages: u64,
    /// Decode KV token rows actually folded into attention.
    pub decode_tokens_visited: u64,
    /// Logical pages scored by selectors.
    pub selector_logical_scored: u64,
    /// Selector invocations that actually scored (not reused).
    pub selector_invocations: u64,
    /// Selector calls answered from the reuse cache.
    pub selector_reuses: u64,
    /// Decode steps executed.
    pub decode_steps: u64,
    /// Pages this sequence demoted to the cold tier (selection-driven).
    pub pages_demoted: u64,
    /// Cold pages this sequence promoted back because a selection picked them.
    pub pages_promoted: u64,
    /// Token-units this sequence moved across the host link in either
    /// direction (see [`lserve_kvcache::transfer_cost_tokens`] for the
    /// conversion into forward-pass token-equivalents).
    pub migrated_token_units: u64,
    /// The fraction of `migrated_token_units` this sequence actually stalled
    /// on: transfer work the copy engine could not hide behind compute
    /// (demand fetches, forced completions). Under synchronous migration
    /// every moved unit lands here.
    pub unhidden_token_units: u64,
}

/// One residency pass's migration traffic, accumulated across a layer and
/// committed into [`EngineStats`] in a single [`EngineStats::add_migration`]
/// call — the one place per-sequence migration accounting happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MigrationDelta {
    /// Pages demoted to the cold tier (selection-driven).
    pub pages_demoted: u64,
    /// Cold pages promoted back because a selection picked them.
    pub pages_promoted: u64,
    /// Token-units issued across the host link in either direction.
    pub token_units: u64,
    /// The unhidden fraction of `token_units` (all of it under synchronous
    /// migration; only demand-forced remainders under the async copy engine).
    pub unhidden_units: u64,
}

impl EngineStats {
    /// Folds one layer's prefill counters in.
    pub fn add_prefill(&mut self, dense: PrefillStats, streaming: PrefillStats) {
        self.prefill_dense_tiles += dense.tiles_visited;
        self.prefill_streaming_tiles += streaming.tiles_visited;
        self.prefill_total_causal_tiles += dense.tiles_total_causal + streaming.tiles_total_causal;
    }

    /// Folds one layer's decode counters in.
    pub fn add_decode(&mut self, dense: DecodeStats, streaming: DecodeStats) {
        self.decode_dense_pages += dense.pages_visited;
        self.decode_streaming_pages += streaming.pages_visited;
        self.decode_total_pages += dense.pages_total + streaming.pages_total;
        self.decode_tokens_visited += dense.tokens_visited + streaming.tokens_visited;
    }

    /// Overall prefill block sparsity `r` (fraction of causal tiles skipped).
    pub fn prefill_sparsity(&self) -> f64 {
        if self.prefill_total_causal_tiles == 0 {
            return 0.0;
        }
        1.0 - (self.prefill_dense_tiles + self.prefill_streaming_tiles) as f64
            / self.prefill_total_causal_tiles as f64
    }

    /// Folds one residency pass's migration counters in (see
    /// [`MigrationDelta`]).
    pub fn add_migration(&mut self, delta: &MigrationDelta) {
        self.pages_demoted += delta.pages_demoted;
        self.pages_promoted += delta.pages_promoted;
        self.migrated_token_units += delta.token_units;
        self.unhidden_token_units += delta.unhidden_units;
    }

    /// Modeled transfer work of this sequence's tier migrations, in
    /// forward-pass token-equivalents.
    pub fn migration_work_tokens(&self) -> u64 {
        lserve_kvcache::transfer_cost_tokens(self.migrated_token_units)
    }

    /// The stalled part of [`EngineStats::migration_work_tokens`]: transfer
    /// work this sequence waited for rather than overlapped.
    pub fn migration_stall_tokens(&self) -> u64 {
        lserve_kvcache::transfer_cost_tokens(self.unhidden_token_units)
    }

    /// Overall decode page sparsity (fraction of pages skipped).
    pub fn decode_sparsity(&self) -> f64 {
        if self.decode_total_pages == 0 {
            return 0.0;
        }
        1.0 - (self.decode_dense_pages + self.decode_streaming_pages) as f64
            / self.decode_total_pages as f64
    }
}

/// Aggregate counters of the sparsity-aware parallel execution layer, folded
/// over every prefill/decode parallel phase an executor ran.
///
/// Two families of numbers live here:
///
/// * **Measured** (`busy_ns_*`, `stolen`): wall-clock worker activity. Useful
///   for utilization/imbalance reporting; inherently nondeterministic.
/// * **Modeled** (`cost_*`): the sparsity-aware shard cost estimates the LPT
///   assignment balanced. `cost_total / cost_critical` is the speedup a
///   perfectly parallel machine would get from this schedule — deterministic,
///   so tests and benches can assert on it regardless of host core count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParallelExecStats {
    /// Largest worker count used by any phase.
    pub workers: usize,
    /// Parallel phases executed (one per layer per prefill/decode call).
    pub phases: u64,
    /// Attention shards executed across all phases.
    pub shards: u64,
    /// Shards executed by a worker other than their LPT assignee (work
    /// stealing fired).
    pub stolen: u64,
    /// Total measured worker busy time, nanoseconds.
    pub busy_ns_total: u64,
    /// Sum over phases of the busiest worker's time — the measured critical
    /// path across all phases.
    pub busy_ns_critical: u64,
    /// Sum over phases of `phase workers × busiest worker's time` — the total
    /// worker-seconds the pool was open. Per-phase accumulation matters:
    /// phases clamp their worker count to the shard count, so a run mixing
    /// 2-worker and 8-worker phases must not divide every phase by 8.
    pub busy_ns_capacity: u64,
    /// Total estimated shard cost (serial work) across all phases.
    pub cost_total: u64,
    /// Sum over phases of the most-loaded worker's estimated cost — the
    /// modeled critical path of the LPT schedule.
    pub cost_critical: u64,
    /// Largest simulated device count any phase was placed onto (1 when
    /// attention ran against the anonymous single-device pool).
    pub devices: usize,
    /// Modeled interconnect tokens charged for cross-device gathers (a
    /// sequence's shards produced on a non-home device).
    pub interconnect_tokens: u64,
    /// Sum over phases of total modeled cost landed across devices (gather
    /// charges included).
    pub device_cost_total: u64,
    /// Sum over phases of the busiest device's modeled cost — the
    /// device-level critical path (devices run concurrently in the model).
    pub device_cost_critical: u64,
    /// Sum over phases of `phase devices × busiest device's cost` — the
    /// device-seconds the mesh was open, mirroring `busy_ns_capacity`.
    pub device_cost_capacity: u64,
}

impl ParallelExecStats {
    /// Folds one parallel phase's balance report in.
    pub fn absorb(&mut self, b: &BalanceStats) {
        self.workers = self.workers.max(b.workers);
        self.phases += 1;
        self.shards += b.shards;
        self.stolen += b.stolen;
        self.busy_ns_total += b.total_busy_ns();
        self.busy_ns_critical += b.max_busy_ns();
        self.busy_ns_capacity += b.workers as u64 * b.max_busy_ns();
        self.cost_total += b.cost_total();
        self.cost_critical += b.cost_critical();
        // An anonymous-pool phase is a 1-device placement: fold it into the
        // device ledger so device metrics stay meaningful on one device.
        self.devices = self.devices.max(1);
        self.device_cost_total += b.cost_total();
        self.device_cost_critical += b.cost_total();
        self.device_cost_capacity += b.cost_total();
    }

    /// Folds one *placed* parallel phase in: worker-level balance plus the
    /// per-device ledger and the phase's cross-device gather charge.
    pub fn absorb_placed(&mut self, p: &PlacedBalance, gather_tokens: u64) {
        self.workers = self.workers.max(p.stats.workers);
        self.phases += 1;
        self.shards += p.stats.shards;
        self.stolen += p.stats.stolen;
        self.busy_ns_total += p.stats.total_busy_ns();
        self.busy_ns_critical += p.stats.max_busy_ns();
        self.busy_ns_capacity += p.stats.workers as u64 * p.stats.max_busy_ns();
        self.cost_total += p.stats.cost_total();
        self.cost_critical += p.stats.cost_critical();
        self.devices = self.devices.max(p.devices);
        self.interconnect_tokens += gather_tokens;
        self.device_cost_total += p.device_cost_total();
        self.device_cost_critical += p.device_cost_critical();
        self.device_cost_capacity += p.devices as u64 * p.device_cost_critical();
    }

    /// Merges another accumulator (e.g. per-step stats into a run total).
    pub fn merge(&mut self, other: &ParallelExecStats) {
        self.workers = self.workers.max(other.workers);
        self.phases += other.phases;
        self.shards += other.shards;
        self.stolen += other.stolen;
        self.busy_ns_total += other.busy_ns_total;
        self.busy_ns_critical += other.busy_ns_critical;
        self.busy_ns_capacity += other.busy_ns_capacity;
        self.cost_total += other.cost_total;
        self.cost_critical += other.cost_critical;
        self.devices = self.devices.max(other.devices);
        self.interconnect_tokens += other.interconnect_tokens;
        self.device_cost_total += other.device_cost_total;
        self.device_cost_critical += other.device_cost_critical;
        self.device_cost_capacity += other.device_cost_capacity;
    }

    /// Measured mean worker utilization in `(0, 1]`: busy time divided by the
    /// worker-seconds the pool was open (per phase, that phase's worker count
    /// × its critical path). 1.0 when no parallel phase ran.
    pub fn utilization(&self) -> f64 {
        if self.busy_ns_capacity == 0 {
            return 1.0;
        }
        self.busy_ns_total as f64 / self.busy_ns_capacity as f64
    }

    /// Measured imbalance `>= 1`: how much longer the critical path ran than a
    /// perfectly balanced schedule would have (the reciprocal of utilization).
    pub fn imbalance(&self) -> f64 {
        let u = self.utilization();
        if u == 0.0 {
            return 1.0;
        }
        1.0 / u
    }

    /// Modeled speedup of the LPT schedule over serial execution
    /// (`cost_total / cost_critical`, deterministic). 1.0 when nothing ran.
    pub fn modeled_speedup(&self) -> f64 {
        if self.cost_critical == 0 {
            return 1.0;
        }
        self.cost_total as f64 / self.cost_critical as f64
    }

    /// Modeled mean device utilization in `(0, 1]`: cost landed across the
    /// mesh divided by the device-seconds the mesh was open. Deterministic
    /// (pure placement arithmetic, no wall clock). 1.0 when nothing ran.
    pub fn device_utilization(&self) -> f64 {
        if self.device_cost_capacity == 0 {
            return 1.0;
        }
        self.device_cost_total as f64 / self.device_cost_capacity as f64
    }

    /// Modeled device imbalance `>= 1`: how much longer the busiest device
    /// ran than a perfectly balanced placement would have (the reciprocal of
    /// [`ParallelExecStats::device_utilization`]). This is the number the
    /// sparsity-aware-vs-round-robin placement bench asserts on.
    pub fn device_imbalance(&self) -> f64 {
        let u = self.device_utilization();
        if u == 0.0 {
            return 1.0;
        }
        1.0 / u
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparsity_zero_when_empty() {
        let s = EngineStats::default();
        assert_eq!(s.prefill_sparsity(), 0.0);
        assert_eq!(s.decode_sparsity(), 0.0);
    }

    #[test]
    fn add_prefill_accumulates() {
        let mut s = EngineStats::default();
        s.add_prefill(
            PrefillStats {
                tiles_visited: 10,
                tiles_total_causal: 20,
            },
            PrefillStats {
                tiles_visited: 5,
                tiles_total_causal: 20,
            },
        );
        assert_eq!(s.prefill_dense_tiles, 10);
        assert_eq!(s.prefill_streaming_tiles, 5);
        assert!((s.prefill_sparsity() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn add_decode_accumulates() {
        let mut s = EngineStats::default();
        s.add_decode(
            DecodeStats {
                pages_visited: 4,
                tokens_visited: 64,
                pages_total: 10,
            },
            DecodeStats {
                pages_visited: 2,
                tokens_visited: 32,
                pages_total: 10,
            },
        );
        assert_eq!(s.decode_tokens_visited, 96);
        assert!((s.decode_sparsity() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn parallel_stats_absorb_and_model() {
        let mut p = ParallelExecStats::default();
        assert_eq!(p.utilization(), 1.0);
        assert_eq!(p.modeled_speedup(), 1.0);
        p.absorb(&BalanceStats {
            workers: 4,
            shards: 8,
            stolen: 1,
            busy_ns: vec![100, 100, 100, 100],
            assigned_cost: vec![30, 30, 20, 20],
        });
        assert_eq!(p.phases, 1);
        assert_eq!(p.shards, 8);
        assert_eq!(p.cost_total, 100);
        assert_eq!(p.cost_critical, 30);
        assert!((p.modeled_speedup() - 100.0 / 30.0).abs() < 1e-12);
        assert!((p.utilization() - 1.0).abs() < 1e-12);
        let mut q = ParallelExecStats::default();
        q.merge(&p);
        q.merge(&p);
        assert_eq!(q.phases, 2);
        assert_eq!(q.cost_total, 200);
        assert!(q.imbalance() >= 1.0);
    }

    #[test]
    fn absorb_placed_tracks_device_ledger_and_interconnect() {
        let mut p = ParallelExecStats::default();
        assert_eq!(p.device_imbalance(), 1.0);
        p.absorb_placed(
            &PlacedBalance {
                devices: 2,
                device_cost: vec![30, 10],
                device_workers: vec![1, 1],
                stats: BalanceStats {
                    workers: 2,
                    shards: 4,
                    stolen: 0,
                    busy_ns: vec![10, 10],
                    assigned_cost: vec![30, 10],
                },
            },
            8,
        );
        assert_eq!(p.devices, 2);
        assert_eq!(p.interconnect_tokens, 8);
        assert_eq!(p.device_cost_total, 40);
        assert_eq!(p.device_cost_critical, 30);
        assert_eq!(p.device_cost_capacity, 60);
        assert!((p.device_imbalance() - 1.5).abs() < 1e-12);
        // A plain absorb folds in as a balanced 1-device phase.
        p.absorb(&BalanceStats {
            workers: 1,
            shards: 1,
            stolen: 0,
            busy_ns: vec![5],
            assigned_cost: vec![20],
        });
        assert_eq!(p.device_cost_total, 60);
        assert_eq!(p.device_cost_critical, 50);
        let mut q = ParallelExecStats::default();
        q.merge(&p);
        assert_eq!(q.devices, 2);
        assert_eq!(q.interconnect_tokens, 8);
        assert_eq!(q.device_cost_capacity, p.device_cost_capacity);
    }

    #[test]
    fn utilization_weights_phases_by_their_own_worker_count() {
        // A fully-busy 2-worker phase followed by a fully-busy 8-worker phase:
        // utilization must be 1.0, not deflated by dividing the small phase by
        // the run-wide maximum worker count.
        let mut p = ParallelExecStats::default();
        p.absorb(&BalanceStats {
            workers: 2,
            shards: 2,
            stolen: 0,
            busy_ns: vec![50, 50],
            assigned_cost: vec![5, 5],
        });
        p.absorb(&BalanceStats {
            workers: 8,
            shards: 8,
            stolen: 0,
            busy_ns: vec![100; 8],
            assigned_cost: vec![10; 8],
        });
        assert_eq!(p.workers, 8);
        assert_eq!(p.busy_ns_capacity, 2 * 50 + 8 * 100);
        assert!((p.utilization() - 1.0).abs() < 1e-12);
        assert!((p.imbalance() - 1.0).abs() < 1e-12);
    }
}
