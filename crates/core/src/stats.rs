//! Aggregate work counters reported by the engine.

use lserve_attention::{DecodeStats, PrefillStats};

/// Cumulative work counters across an engine's lifetime.
///
/// These are the units the analytical cost model prices: visited prefill tiles,
/// visited decode pages, selector scoring work. Accuracy experiments read recall off
/// the workloads; efficiency experiments read these counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Prefill tiles computed on dense (retrieval) heads.
    pub prefill_dense_tiles: u64,
    /// Prefill tiles computed on streaming heads.
    pub prefill_streaming_tiles: u64,
    /// Prefill tiles a fully dense model would have computed.
    pub prefill_total_causal_tiles: u64,
    /// Decode pages visited on dense heads.
    pub decode_dense_pages: u64,
    /// Decode pages visited on streaming heads.
    pub decode_streaming_pages: u64,
    /// Decode pages a dense engine would have visited.
    pub decode_total_pages: u64,
    /// Decode KV token rows actually folded into attention.
    pub decode_tokens_visited: u64,
    /// Logical pages scored by selectors.
    pub selector_logical_scored: u64,
    /// Selector invocations that actually scored (not reused).
    pub selector_invocations: u64,
    /// Selector calls answered from the reuse cache.
    pub selector_reuses: u64,
    /// Decode steps executed.
    pub decode_steps: u64,
}

impl EngineStats {
    /// Folds one layer's prefill counters in.
    pub fn add_prefill(&mut self, dense: PrefillStats, streaming: PrefillStats) {
        self.prefill_dense_tiles += dense.tiles_visited;
        self.prefill_streaming_tiles += streaming.tiles_visited;
        self.prefill_total_causal_tiles += dense.tiles_total_causal + streaming.tiles_total_causal;
    }

    /// Folds one layer's decode counters in.
    pub fn add_decode(&mut self, dense: DecodeStats, streaming: DecodeStats) {
        self.decode_dense_pages += dense.pages_visited;
        self.decode_streaming_pages += streaming.pages_visited;
        self.decode_total_pages += dense.pages_total + streaming.pages_total;
        self.decode_tokens_visited += dense.tokens_visited + streaming.tokens_visited;
    }

    /// Overall prefill block sparsity `r` (fraction of causal tiles skipped).
    pub fn prefill_sparsity(&self) -> f64 {
        if self.prefill_total_causal_tiles == 0 {
            return 0.0;
        }
        1.0 - (self.prefill_dense_tiles + self.prefill_streaming_tiles) as f64
            / self.prefill_total_causal_tiles as f64
    }

    /// Overall decode page sparsity (fraction of pages skipped).
    pub fn decode_sparsity(&self) -> f64 {
        if self.decode_total_pages == 0 {
            return 0.0;
        }
        1.0 - (self.decode_dense_pages + self.decode_streaming_pages) as f64
            / self.decode_total_pages as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparsity_zero_when_empty() {
        let s = EngineStats::default();
        assert_eq!(s.prefill_sparsity(), 0.0);
        assert_eq!(s.decode_sparsity(), 0.0);
    }

    #[test]
    fn add_prefill_accumulates() {
        let mut s = EngineStats::default();
        s.add_prefill(
            PrefillStats {
                tiles_visited: 10,
                tiles_total_causal: 20,
            },
            PrefillStats {
                tiles_visited: 5,
                tiles_total_causal: 20,
            },
        );
        assert_eq!(s.prefill_dense_tiles, 10);
        assert_eq!(s.prefill_streaming_tiles, 5);
        assert!((s.prefill_sparsity() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn add_decode_accumulates() {
        let mut s = EngineStats::default();
        s.add_decode(
            DecodeStats {
                pages_visited: 4,
                tokens_visited: 64,
                pages_total: 10,
            },
            DecodeStats {
                pages_visited: 2,
                tokens_visited: 32,
                pages_total: 10,
            },
        );
        assert_eq!(s.decode_tokens_visited, 96);
        assert!((s.decode_sparsity() - 0.7).abs() < 1e-12);
    }
}
