//! Static sparsity determination (§3.3): gate values → head classification.

use lserve_workloads::HeadProfile;

/// Classifies heads from flat gate values: heads whose `α` falls below the
/// `target_sparsity` quantile become streaming heads (`true` in the returned mask).
///
/// With `target_sparsity = 0.5` the threshold `τ` is the median gate value, so half
/// of all heads stream — the paper's default configuration.
///
/// # Panics
///
/// Panics if `alphas` is empty or `target_sparsity` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use lserve_core::classify_heads;
///
/// let mask = classify_heads(&[0.1, 0.9, 0.2, 0.8], 0.5);
/// assert_eq!(mask, vec![true, false, true, false]);
/// ```
pub fn classify_heads(alphas: &[f32], target_sparsity: f64) -> Vec<bool> {
    assert!(!alphas.is_empty(), "no gate values");
    assert!(
        (0.0..=1.0).contains(&target_sparsity),
        "sparsity must be in [0,1]"
    );
    let mut sorted: Vec<f32> = alphas.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let cutoff_count = (target_sparsity * alphas.len() as f64).round() as usize;
    if cutoff_count == 0 {
        return vec![false; alphas.len()];
    }
    if cutoff_count >= alphas.len() {
        return vec![true; alphas.len()];
    }
    let tau = sorted[cutoff_count]; // α < τ → streaming
                                    // Guard against ties at τ pushing the count over target: mark the lowest
                                    // `cutoff_count` heads streaming, breaking ties by index.
    let mut idx: Vec<usize> = (0..alphas.len()).collect();
    idx.sort_by(|&a, &b| {
        alphas[a]
            .partial_cmp(&alphas[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut mask = vec![false; alphas.len()];
    for &i in idx.iter().take(cutoff_count) {
        mask[i] = true;
    }
    debug_assert!(mask.iter().filter(|&&m| m).count() == cutoff_count);
    let _ = tau;
    mask
}

/// Per-layer streaming masks from per-layer head profiles, thresholding over the
/// *global* gate distribution (the paper's quantile is across all attention heads).
pub fn streaming_masks_from_gates(
    gates: &[Vec<HeadProfile>],
    target_sparsity: f64,
) -> Vec<Vec<bool>> {
    let flat: Vec<f32> = gates.iter().flatten().map(|p| p.alpha).collect();
    let mask_flat = classify_heads(&flat, target_sparsity);
    let mut out = Vec::with_capacity(gates.len());
    let mut cursor = 0;
    for layer in gates {
        out.push(mask_flat[cursor..cursor + layer.len()].to_vec());
        cursor += layer.len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lserve_workloads::duo_gates;

    #[test]
    fn half_sparsity_halves_heads() {
        let alphas = [0.9f32, 0.1, 0.8, 0.2, 0.7, 0.3, 0.6, 0.4];
        let mask = classify_heads(&alphas, 0.5);
        assert_eq!(mask.iter().filter(|&&m| m).count(), 4);
        assert!(mask[1] && mask[3]); // lowest gates stream
        assert!(!mask[0] && !mask[2]);
    }

    #[test]
    fn zero_and_full_sparsity() {
        let alphas = [0.5f32, 0.5, 0.5];
        assert_eq!(classify_heads(&alphas, 0.0), vec![false; 3]);
        assert_eq!(classify_heads(&alphas, 1.0), vec![true; 3]);
    }

    #[test]
    fn ties_respect_exact_count() {
        let alphas = [0.5f32; 10];
        let mask = classify_heads(&alphas, 0.3);
        assert_eq!(mask.iter().filter(|&&m| m).count(), 3);
    }

    #[test]
    fn global_quantile_across_layers() {
        let gates = duo_gates(32, 8, 17);
        let masks = streaming_masks_from_gates(&gates, 0.5);
        let total: usize = masks.iter().map(|m| m.iter().filter(|&&x| x).count()).sum();
        assert_eq!(total, 32 * 8 / 2);
        // Bimodal gates → classification matches the underlying locality.
        for (layer, mask) in gates.iter().zip(&masks) {
            for (p, &streaming) in layer.iter().zip(mask) {
                if p.locality > 0.8 {
                    assert!(streaming, "strongly local head must stream");
                }
                if p.locality < 0.2 {
                    assert!(!streaming, "strongly retrieval head must stay dense");
                }
            }
        }
    }
}
