//! Scheduler-owned multi-device sharding state: per-layer head placements
//! plus the periodic rebalancer.
//!
//! The executor is immutable (`&self`) by design, so anything that *evolves*
//! across steps — which device each KV head lives on, the load history that
//! decides when placement has gone stale — lives here and is threaded into
//! `ModelExecutor::decode_batch_sharded` by the scheduler (or directly by
//! tests and benches).
//!
//! Placement is lazy and signal-driven: the first decode phase of each layer
//! computes it from that phase's per-head sparsity cost signal (the same
//! estimates the worker-level LPT balances), then it sticks — real head
//! migration moves KV between devices, so placement must not churn every
//! step. Instead the plan accumulates per-head cost and, every
//! [`ShardingPlan::rebalance_interval`] steps, compares the busiest device
//! against the mesh mean; past [`ShardingPlan::rebalance_threshold`] it
//! recomputes placement from the accumulated signal and charges the moved
//! heads' KV across the interconnect at the copy engine's token-unit price
//! ([`Topology::migration_cost_tokens`]).
//!
//! None of this changes outputs: placement and rebalancing move modeled cost
//! between simulated devices, never the arithmetic.

use lserve_costmodel::{Placement, PlacementPolicy, Topology};

/// Counters the rebalancer accumulates over a plan's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardingStats {
    /// Rebalance passes that actually moved at least one head.
    pub rebalances: u64,
    /// (layer, head) assignments changed across all rebalances.
    pub heads_migrated: u64,
    /// KV token-units moved between devices by those migrations.
    pub migration_token_units: u64,
    /// Modeled work tokens the migrations charged on the interconnect.
    pub migration_cost_tokens: u64,
}

/// One rebalance pass's outcome, for the caller to charge into its work
/// clock and trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceOutcome {
    /// Heads whose device changed.
    pub heads_migrated: u64,
    /// KV token-units those heads had to move.
    pub token_units: u64,
    /// Modeled interconnect tokens the move cost.
    pub cost_tokens: u64,
    /// Measured max-over-mean device load that triggered the pass.
    pub imbalance: f64,
}

/// Mutable multi-device placement state for one engine.
#[derive(Debug, Clone)]
pub struct ShardingPlan {
    topology: Topology,
    policy: PlacementPolicy,
    /// Per-layer placement, computed on the layer's first decode phase.
    layers: Vec<Option<Placement>>,
    /// Per-(layer, head) modeled cost accumulated since the last rebalance.
    load: Vec<Vec<u64>>,
    steps: u64,
    /// Steps between imbalance checks.
    pub rebalance_interval: u64,
    /// Max-over-mean device load ratio that triggers a rebalance.
    pub rebalance_threshold: f64,
    /// Lifetime rebalance counters.
    pub stats: ShardingStats,
}

impl ShardingPlan {
    /// A plan for `num_layers` layers of `num_kv_heads` KV heads each.
    pub fn new(
        topology: Topology,
        policy: PlacementPolicy,
        num_layers: usize,
        num_kv_heads: usize,
    ) -> Self {
        Self {
            topology,
            policy,
            layers: vec![None; num_layers],
            load: vec![vec![0; num_kv_heads]; num_layers],
            steps: 0,
            rebalance_interval: 16,
            rebalance_threshold: 1.5,
            stats: ShardingStats::default(),
        }
    }

    /// A single-device plan — the degenerate topology every pre-multi-device
    /// call path runs against.
    pub fn single(num_layers: usize, num_kv_heads: usize) -> Self {
        Self::new(
            Topology::single(),
            PlacementPolicy::SparsityAware,
            num_layers,
            num_kv_heads,
        )
    }

    /// The plan's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The plan's placement policy.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Simulated devices heads are placed onto.
    pub fn devices(&self) -> usize {
        self.topology.devices()
    }

    /// Layer `l`'s head → device assignment, computing it from `head_costs`
    /// (this phase's per-head sparsity cost signal) on first use, and
    /// accumulating the signal into the rebalancer's load history either way.
    pub fn layer_assignment(&mut self, l: usize, head_costs: &[u64]) -> &[usize] {
        for (h, &c) in head_costs.iter().enumerate() {
            self.load[l][h] += c;
        }
        if self.layers[l].is_none() {
            self.layers[l] = Some(Placement::compute(
                head_costs,
                self.topology.devices(),
                self.policy,
            ));
        }
        self.layers[l]
            .as_ref()
            .expect("placement just seeded")
            .assignment()
    }

    /// Overrides layer `l`'s placement (benches use this to stage a
    /// deliberately bad placement the rebalancer must recover from).
    ///
    /// # Panics
    ///
    /// Panics if the placement's device count disagrees with the topology.
    pub fn force_assignment(&mut self, l: usize, placement: Placement) {
        assert_eq!(
            placement.devices(),
            self.topology.devices(),
            "placement must match the plan's topology"
        );
        self.layers[l] = Some(placement);
    }

    /// Accumulated per-device load since the last rebalance, summed over
    /// layers with a placement.
    pub fn device_loads(&self) -> Vec<u64> {
        let mut loads = vec![0u64; self.topology.devices()];
        for (l, placement) in self.layers.iter().enumerate() {
            if let Some(p) = placement {
                for (d, c) in p.device_loads(&self.load[l]).into_iter().enumerate() {
                    loads[d] += c;
                }
            }
        }
        loads
    }

    /// Max-over-mean of [`ShardingPlan::device_loads`]; 1.0 with no load.
    pub fn measured_imbalance(&self) -> f64 {
        let loads = self.device_loads();
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let max = *loads.iter().max().expect("devices > 0");
        max as f64 * loads.len() as f64 / total as f64
    }

    /// Advances the plan's step clock and, every `rebalance_interval` steps,
    /// rebalances if the measured device imbalance exceeds the threshold:
    /// every layer's placement is recomputed from the accumulated cost
    /// signal, and each head whose device changed is charged `head_tokens(l,
    /// h)` KV token-units across the interconnect.
    ///
    /// Returns the outcome when a pass moved at least one head, so the
    /// caller can charge `cost_tokens` into its work clock and trace the
    /// migration; `None` otherwise. Single-device plans never rebalance.
    pub fn maybe_rebalance(
        &mut self,
        head_tokens: impl Fn(usize, usize) -> u64,
    ) -> Option<RebalanceOutcome> {
        self.steps += 1;
        if self.topology.devices() <= 1
            || self.rebalance_interval == 0
            || !self.steps.is_multiple_of(self.rebalance_interval)
        {
            return None;
        }
        let imbalance = self.measured_imbalance();
        if imbalance <= self.rebalance_threshold {
            self.reset_load();
            return None;
        }
        let mut heads_migrated = 0u64;
        let mut token_units = 0u64;
        for l in 0..self.layers.len() {
            let Some(old) = self.layers[l].take() else {
                continue;
            };
            let new = Placement::compute(&self.load[l], self.topology.devices(), self.policy);
            for h in 0..new.heads() {
                if new.device_of(h) != old.device_of(h) {
                    heads_migrated += 1;
                    token_units += head_tokens(l, h);
                }
            }
            self.layers[l] = Some(new);
        }
        self.reset_load();
        if heads_migrated == 0 {
            return None;
        }
        let cost_tokens = self.topology.migration_cost_tokens(token_units.max(1));
        self.stats.rebalances += 1;
        self.stats.heads_migrated += heads_migrated;
        self.stats.migration_token_units += token_units;
        self.stats.migration_cost_tokens += cost_tokens;
        Some(RebalanceOutcome {
            heads_migrated,
            token_units,
            cost_tokens,
            imbalance,
        })
    }

    fn reset_load(&mut self) {
        for layer in &mut self.load {
            layer.iter_mut().for_each(|c| *c = 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_device_plan_never_rebalances() {
        let mut plan = ShardingPlan::single(2, 4);
        plan.rebalance_interval = 1;
        for _ in 0..8 {
            plan.layer_assignment(0, &[100, 1, 1, 1]);
            assert!(plan.maybe_rebalance(|_, _| 100).is_none());
        }
        assert_eq!(plan.stats, ShardingStats::default());
    }

    #[test]
    fn placement_is_lazy_and_sticky() {
        let mut plan = ShardingPlan::new(
            Topology::symmetric(2, 4),
            PlacementPolicy::SparsityAware,
            1,
            4,
        );
        let first = plan.layer_assignment(0, &[9, 9, 1, 1]).to_vec();
        // A later phase with a different signal does not move heads.
        let second = plan.layer_assignment(0, &[1, 1, 9, 9]).to_vec();
        assert_eq!(first, second);
    }

    #[test]
    fn rebalancer_recovers_from_a_stale_placement_and_charges_migration() {
        let mut plan = ShardingPlan::new(
            Topology::symmetric(2, 4),
            PlacementPolicy::SparsityAware,
            1,
            4,
        );
        plan.rebalance_interval = 4;
        // Stage the worst placement: both heavy heads on device 0.
        plan.force_assignment(0, {
            // RoundRobin over [h0,h2 heavy] — build via compute on a crafted
            // cost vector that lands 0,1 together.
            let p = Placement::compute(&[1, 1, 0, 0], 2, PlacementPolicy::RoundRobin);
            assert_eq!(p.assignment(), &[0, 1, 0, 1]);
            p
        });
        // Workload signal: heads 0 and 2 are the heavy ones — both live on
        // device 0, so measured imbalance approaches 2.0.
        let mut outcome = None;
        for _ in 0..4 {
            plan.layer_assignment(0, &[100, 1, 100, 1]);
            if let Some(o) = plan.maybe_rebalance(|_, _| 64) {
                outcome = Some(o);
            }
        }
        let o = outcome.expect("imbalance above threshold must trigger");
        assert!(
            o.imbalance > 1.9,
            "staged imbalance ~2.0, got {}",
            o.imbalance
        );
        assert!(o.heads_migrated >= 1);
        assert_eq!(o.token_units, 64 * o.heads_migrated);
        assert!(o.cost_tokens >= 1, "migration is never free");
        assert_eq!(plan.stats.rebalances, 1);
        // The new placement splits the heavy heads across devices.
        let loads =
            Placement::compute(&[100, 1, 100, 1], 2, plan.policy()).device_loads(&[100, 1, 100, 1]);
        assert_eq!(*loads.iter().max().unwrap(), 101);
    }

    #[test]
    fn balanced_load_does_not_trigger() {
        let mut plan = ShardingPlan::new(
            Topology::symmetric(2, 4),
            PlacementPolicy::SparsityAware,
            1,
            4,
        );
        plan.rebalance_interval = 2;
        for _ in 0..8 {
            plan.layer_assignment(0, &[5, 5, 5, 5]);
            assert!(plan.maybe_rebalance(|_, _| 10).is_none());
        }
        assert_eq!(plan.stats.rebalances, 0);
    }
}
