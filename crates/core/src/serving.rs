//! Continuous-batching serving layer: shared page pool, chunked prefill,
//! preemption, batched decode.
//!
//! The paper's efficiency results are measured inside serving systems (vLLM,
//! QServe) whose scheduler interleaves many sequences over one device memory. This
//! module reproduces that control plane at small scale around the
//! executor/state split:
//!
//! * **Iteration-level continuous batching** (Orca): every scheduler iteration
//!   advances all running sequences by one token through
//!   [`ModelExecutor::decode_batch`], which walks layers in the outer loop so the
//!   weight/config traversal is amortized across the batch.
//! * **Chunked prefill**: long prompts are admitted immediately and fed in bounded
//!   chunks interleaved with decode iterations, so one long prompt no longer
//!   head-of-line-blocks the whole batch. The first
//!   `min(chunk_tokens, prompt_len)` tokens go through the fused tile prefill;
//!   the rest advance token-by-token through the decode path, which makes the
//!   numerics independent of how the scheduler slices the remainder across
//!   iterations.
//! * **Preemption and resume**: page demand is computed *exactly* before every
//!   decode iteration ([`SequenceState::pages_needed_for_next_token`]); when
//!   demand exceeds the free pool, the lowest-priority sequence releases all its
//!   pages and re-queues. On re-admission it re-feeds its prompt *plus* the tokens
//!   it had already generated through the identical deterministic pipeline, which
//!   reconstructs a bit-identical cache — so preemption never changes the tokens a
//!   request produces.
//! * **Cross-request prefix caching** (opt-in via
//!   [`SchedulerConfig::prefix_cache`]): prompts are matched against a radix tree
//!   of previously computed prefixes ([`lserve_prefixcache::PrefixCache`]). A hit
//!   seeds the new sequence with the cached pages (refcount-shared, copy-on-write
//!   on append) and only the prompt suffix is prefilled. Sequences donate anchors
//!   into the tree on every prefill-grid boundary and donate their full
//!   conversation on completion, and the tree's LRU entries are evicted before any
//!   running sequence is preempted. Prefix stability rests on the *fixed prefill
//!   tile grid* (see [`tile_grid_boundary`]): every token position at or beyond
//!   `chunk_tokens` is always computed by the per-token decode path, so the KV for
//!   a shared prefix is bit-identical no matter which request computed it.
//!
//! * **Sparsity-aware parallel decode** ([`SchedulerConfig::decode_threads`],
//!   default from `LSERVE_DECODE_THREADS`): every prefill/decode attention
//!   phase runs as *(sequence × KV-head)* shards, LPT-balanced by the per-head
//!   sparsity cost (streaming window vs. selected/full dense pages) across a
//!   scoped-thread worker pool with work stealing. The report aggregates
//!   worker utilization/imbalance and the deterministic cost-balance counters
//!   ([`ServingReport::worker_utilization`], [`ParallelExecStats`]).
//!
//! The determinism guarantee that falls out: for any request set, the batched
//! scheduler's greedy outputs are token-identical to running each request alone on
//! a fresh pool under the same [`SchedulerConfig`] — with or without the prefix
//! cache, across chunk sizes, pool pressures, KV precisions, and decode
//! worker-thread counts.

use std::collections::VecDeque;
use std::sync::Arc;

use lserve_kvcache::PagePool;
use lserve_model::{greedy_next_token, ModelConfig, ModelWeights};
use lserve_prefixcache::{PrefixCache, PrefixCacheStats};

use crate::config::decode_threads_from_env;
use crate::executor::{ModelExecutor, SequenceState};
use crate::prefix::CachedPrefix;
use crate::stats::ParallelExecStats;
use crate::EngineConfig;

/// The prefill tile grid: the fused tile-prefill path covers absolute token
/// positions `[0, chunk_tokens)` — the first grid cell — and every position at or
/// beyond the grid boundary is always fed through the per-token decode path, no
/// matter how the scheduler slices iterations, whether the sequence is resuming
/// from preemption, or how much of its prompt came from the prefix cache.
///
/// Because the boundary is a pure function of absolute token position (not of how
/// much of this particular prompt remains), the KV written for any prompt prefix
/// of at least `chunk_tokens` tokens is bit-identical across requests that share
/// it — the invariant that lets the prefix cache hand one request's pages to
/// another without changing a single output token. A prompt shorter than the grid
/// cell lies entirely inside it and prefills in one fused call; such prompts are
/// below the cache's minimum match and are never shared.
pub fn tile_grid_boundary(chunk_tokens: usize, prompt_len: usize) -> usize {
    chunk_tokens.min(prompt_len)
}

/// Pages needed to hold `tokens` tokens of context for one sequence under
/// `cfg` — dense heads grow with context, streaming heads are bounded by their
/// window. This is the footprint estimate the scheduler's admission control
/// uses; tests and benches that want to size a pool relative to "N sequences"
/// should use it instead of re-deriving the formula.
pub fn sequence_pages_estimate(cfg: &EngineConfig, model: &ModelConfig, tokens: usize) -> usize {
    let streaming_heads =
        (cfg.streaming_sparsity * (model.num_layers * model.num_kv_heads) as f64).round() as usize;
    let dense_heads = model.num_layers * model.num_kv_heads - streaming_heads;
    dense_heads * (cfg.paging.pages_for(tokens) + 1)
        + streaming_heads * (cfg.streaming_window.max_pages() + 2)
}

/// A generation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Caller-chosen identifier.
    pub id: u64,
    /// Prompt token ids.
    pub prompt: Vec<u32>,
    /// Number of tokens to generate (greedy).
    pub max_new_tokens: usize,
}

/// Lifecycle state of a request inside the serving engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestStatus {
    /// Waiting for admission (fresh or preempted).
    Queued,
    /// Currently prefilling or decoding.
    Running,
    /// Completed with the generated tokens.
    Finished(Vec<u32>),
    /// Could never fit in the pool (prompt larger than device memory).
    Rejected,
}

/// How the scheduler relieves pool pressure when decode demand exceeds the
/// free hot tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PreemptionPolicy {
    /// Release every page the victim holds and re-queue it; on re-admission
    /// its prompt *plus* already-generated tokens are re-fed through the
    /// deterministic pipeline (the classic recompute-based preemption).
    #[default]
    Replay,
    /// Demote the victim's sole-owned pages to the cold (host) tier and park
    /// its sequence state; on re-admission the cold pages are promoted back —
    /// modeled transfer work instead of recompute — and decode continues
    /// exactly where it stopped. Pages co-owned with the prefix cache or
    /// another sequence stay hot for their other readers (the CoW/refcount
    /// discipline), so a swap never disturbs shared prefixes. Outputs are
    /// bit-identical to [`PreemptionPolicy::Replay`].
    Swap,
}

/// Process-wide default preemption policy, read once from the
/// `LSERVE_PREEMPTION` environment variable (`replay` | `swap`, defaulting to
/// replay; unknown values fall back to replay). CI runs the test suite under
/// both values, so the determinism suite exercises swap-based preemption on
/// every push.
pub fn preemption_from_env() -> PreemptionPolicy {
    static CACHE: std::sync::OnceLock<PreemptionPolicy> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        match std::env::var("LSERVE_PREEMPTION")
            .unwrap_or_default()
            .trim()
            .to_ascii_lowercase()
            .as_str()
        {
            "swap" => PreemptionPolicy::Swap,
            _ => PreemptionPolicy::Replay,
        }
    })
}

/// How the scheduler decides a queued request may start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Admit only when the estimated *full* footprint (prompt + all generated
    /// tokens) fits the free pool. Conservative: preemption is rare, utilization
    /// lower.
    FullFootprint,
    /// Admit as soon as the first prefill chunk fits. Aggressive: memory
    /// oversubscription is resolved by preemption.
    FirstChunk,
}

/// Scheduler policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Physical pages in the shared pool (the device-memory budget).
    pub pool_pages: usize,
    /// Per-sequence prompt tokens fed per scheduler iteration, and the size of the
    /// fused tile-prefill first chunk. Larger values lower prefill cost but stall
    /// the decode batch longer per iteration.
    pub chunk_tokens: usize,
    /// Maximum concurrently running sequences.
    pub max_batch: usize,
    /// Admission policy.
    pub admission: AdmissionPolicy,
    /// Enables the cross-request KV prefix cache: admission matches prompts
    /// against previously computed prefixes, prefill donates anchors on tile-grid
    /// boundaries, completed sequences donate their conversation, and cached
    /// entries are LRU-evicted under pool pressure (before any preemption).
    /// Outputs are token-identical with the cache on or off.
    pub prefix_cache: bool,
    /// Worker threads for the sharded attention phases of prefill and decode
    /// (the *(sequence × KV-head)* LPT-balanced executor). Defaults to the
    /// `LSERVE_DECODE_THREADS` environment variable (1 when unset). Outputs
    /// are bit-identical for every value — the knob trades wall-clock only.
    pub decode_threads: usize,
    /// How pool pressure is relieved: recompute-based [`PreemptionPolicy::Replay`]
    /// or the tiered memory's [`PreemptionPolicy::Swap`]. Defaults to the
    /// `LSERVE_PREEMPTION` environment variable (replay when unset). Outputs
    /// are bit-identical for both values.
    pub preemption: PreemptionPolicy,
}

impl SchedulerConfig {
    /// Defaults: 128-token prefill chunks, batch of up to 64, first-chunk
    /// admission (preemption-backed), prefix cache off, decode threads from
    /// the `LSERVE_DECODE_THREADS` environment (1 when unset), preemption
    /// policy from `LSERVE_PREEMPTION` (replay when unset).
    pub fn new(pool_pages: usize) -> Self {
        Self {
            pool_pages,
            chunk_tokens: 128,
            max_batch: 64,
            admission: AdmissionPolicy::FirstChunk,
            prefix_cache: false,
            decode_threads: decode_threads_from_env(),
            preemption: preemption_from_env(),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_tokens`, `max_batch`, `pool_pages` or `decode_threads`
    /// is zero.
    pub fn validate(&self) {
        assert!(self.pool_pages > 0, "pool must hold at least one page");
        assert!(self.chunk_tokens > 0, "chunk must be at least one token");
        assert!(self.max_batch > 0, "batch must admit at least one sequence");
        assert!(self.decode_threads > 0, "need at least one decode worker");
    }
}

/// Per-request latency/scheduling metrics, in scheduler iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestMetrics {
    /// Request id.
    pub id: u64,
    /// Iterations from submission until the first generated token (time to first
    /// token). Zero when the request finished without emitting any token.
    pub ttft_iters: u64,
    /// Model work (tokens pushed through the forward pass, all sequences counted)
    /// between submission and the first generated token. Unlike iterations, this
    /// is a faithful time proxy when per-iteration prefill work is unbounded —
    /// it is the unit in which chunked prefill's head-of-line win shows up.
    pub ttft_work_tokens: u64,
    /// Iterations between the first and the last generated token.
    pub decode_span_iters: u64,
    /// Tokens generated.
    pub tokens: usize,
    /// Times this request was preempted (pages released, later re-prefilled).
    pub preemptions: u32,
    /// Prompt tokens served from the prefix cache at admission (the deepest
    /// value across admissions, for requests that were preempted and resumed).
    pub cached_prompt_tokens: usize,
}

impl RequestMetrics {
    /// Mean iterations between consecutive generated tokens (0 for fewer than two
    /// tokens).
    pub fn mean_tbt_iters(&self) -> f64 {
        if self.tokens > 1 {
            self.decode_span_iters as f64 / (self.tokens - 1) as f64
        } else {
            0.0
        }
    }
}

/// Summary of a serving run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServingReport {
    /// `(request id, generated tokens)` for every completed request.
    pub completed: Vec<(u64, Vec<u32>)>,
    /// Requests that could never be admitted.
    pub rejected: Vec<u64>,
    /// Scheduler iterations executed.
    pub scheduler_steps: u64,
    /// Total decode steps across all sequences (prompt-continuation feeding
    /// excluded).
    pub decode_steps: u64,
    /// High-water mark of pool pages in use.
    pub peak_pages: usize,
    /// Total preemption events across the run.
    pub preemptions: u64,
    /// Per-request latency metrics, sorted by request id on completion.
    pub request_metrics: Vec<RequestMetrics>,
    /// Prompt tokens served from the prefix cache, summed over admission events
    /// (a preempted request that re-admits with a hit counts again, exactly as
    /// its recomputed tokens would).
    pub prefix_hit_tokens: u64,
    /// Prompt tokens actually computed by prefill (tile chunk + per-token feed),
    /// summed over admission events. Zero when the prefix cache is disabled.
    pub prefix_recomputed_tokens: u64,
    /// Prefixes donated into the cache (anchors and completed conversations).
    pub prefix_insertions: u64,
    /// Prefix-cache entries evicted under pool pressure.
    pub prefix_evictions: u64,
    /// Worker threads the run's sharded attention phases were configured with.
    pub decode_threads: usize,
    /// Preemption policy the run was configured with.
    pub preemption: PreemptionPolicy,
    /// Pages migrated hot → cold over the run (selection-driven demotion plus
    /// swap-outs), from the pool's lifetime tier ledger.
    pub pages_demoted: u64,
    /// Pages migrated cold → hot over the run (selection re-picks plus
    /// swap-resume promotions).
    pub pages_promoted: u64,
    /// Modeled transfer work of swap-resume promotions specifically, in
    /// forward-pass token-equivalents — the number to hold against the replay
    /// tokens the swap policy avoided re-feeding. Counted into the `work
    /// tokens` clock, so TTFT under swap honestly pays for its transfers.
    pub swap_resume_work_tokens: u64,
    /// High-water mark of cold-tier (host) pages in use.
    pub peak_cold_pages: usize,
    /// High-water mark of concurrently running sequences.
    pub peak_running: usize,
    /// Sum over scheduler iterations of the running-sequence count (after
    /// admission). `running_seq_steps / scheduler_steps` is the *sustained*
    /// concurrency of the run — the oversubscription win of the tiered memory
    /// shows up here: a replay victim spends iterations out of the running set
    /// re-feeding its context, while a swapped victim resumes for the cost of
    /// a transfer.
    pub running_seq_steps: u64,
    /// Aggregate parallel-execution counters across every prefill/decode
    /// phase: measured per-step worker utilization/imbalance and the
    /// deterministic cost-balance critical path (see
    /// [`ParallelExecStats::utilization`], [`ParallelExecStats::imbalance`],
    /// [`ParallelExecStats::modeled_speedup`]).
    pub parallel: ParallelExecStats,
}

impl ServingReport {
    /// Measured mean worker utilization of the sharded attention phases, in
    /// `(0, 1]` (1.0 when no parallel phase ran).
    pub fn worker_utilization(&self) -> f64 {
        self.parallel.utilization()
    }

    /// Measured worker imbalance `>= 1` (critical path over perfect balance).
    pub fn worker_imbalance(&self) -> f64 {
        self.parallel.imbalance()
    }

    /// Mean concurrently running sequences per scheduler iteration (0 when no
    /// iteration ran) — the sustained-concurrency number the tiered memory's
    /// oversubscription win is measured by.
    pub fn mean_running(&self) -> f64 {
        if self.scheduler_steps == 0 {
            return 0.0;
        }
        self.running_seq_steps as f64 / self.scheduler_steps as f64
    }
    /// Fraction of prompt-prefill tokens served from the prefix cache, in
    /// `[0, 1]` (0 when no prompt token was processed).
    pub fn prefix_hit_rate(&self) -> f64 {
        let total = self.prefix_hit_tokens + self.prefix_recomputed_tokens;
        if total == 0 {
            return 0.0;
        }
        self.prefix_hit_tokens as f64 / total as f64
    }

    /// Nearest-rank percentile (`q` in `(0, 1]`, e.g. 0.5 / 0.95) of per-request
    /// TTFT in work tokens. Returns 0 when no request completed.
    pub fn ttft_work_percentile(&self, q: f64) -> u64 {
        let mut v: Vec<u64> = self
            .request_metrics
            .iter()
            .map(|m| m.ttft_work_tokens)
            .collect();
        v.sort_unstable();
        nearest_rank(&v, q).copied().unwrap_or(0)
    }

    /// Nearest-rank percentile (`q` in `(0, 1]`) of per-request mean
    /// time-between-tokens in scheduler iterations. Returns 0 when no request
    /// completed.
    pub fn tbt_percentile(&self, q: f64) -> f64 {
        let mut v: Vec<f64> = self
            .request_metrics
            .iter()
            .map(RequestMetrics::mean_tbt_iters)
            .collect();
        v.sort_by(f64::total_cmp);
        nearest_rank(&v, q).copied().unwrap_or(0.0)
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn nearest_rank<T>(sorted: &[T], q: f64) -> Option<&T> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted.get(rank.max(1) - 1)
}

/// Metrics bookkeeping that survives a request's whole lifetime, moved as one
/// unit between the queued and running representations (including across
/// preemption cycles).
#[derive(Debug, Clone, Copy)]
struct RequestProgress {
    submit_iter: u64,
    submit_work: u64,
    first_token_iter: Option<u64>,
    first_token_work: Option<u64>,
    last_token_iter: u64,
    preemptions: u32,
    cached_tokens: usize,
}

/// A swapped-out sequence parked in the queue: its full executor state (page
/// tables pointing at cold — or still-shared hot — pages, selector history,
/// position counters) plus the feed bookkeeping needed to continue exactly
/// where preemption stopped. Only clean states are parked (nothing
/// half-written); the unclean OOM fallbacks always take the replay path.
#[derive(Debug)]
struct SwappedSeq {
    state: SequenceState,
    /// Feed tokens (prompt + resume_feed) consumed before the swap.
    fed: usize,
    /// The resume-feed snapshot `fed` indexes into (frozen at swap time so
    /// `feed_token` stays stable even though `generated` kept the full list).
    resume_feed: Vec<u32>,
    /// Most recently emitted token, not yet consumed by a decode step.
    last_token: Option<u32>,
}

/// A request waiting for (re-)admission; carries generation progress across
/// preemptions.
#[derive(Debug)]
struct QueuedSeq {
    req: Request,
    priority: u64,
    /// Tokens already generated (and emitted) before a preemption.
    generated: Vec<u32>,
    progress: RequestProgress,
    /// Present when the sequence was swapped out instead of released: admission
    /// promotes its cold pages back and resumes without any re-feeding.
    swap: Option<SwappedSeq>,
}

/// A running sequence: executor state plus feed/generation progress.
#[derive(Debug)]
struct SchedSeq {
    req: Request,
    priority: u64,
    state: SequenceState,
    /// Tokens generated before the last preemption; re-fed after the prompt on
    /// resume so the cache is reconstructed exactly.
    resume_feed: Vec<u32>,
    /// Feed tokens (prompt + resume_feed) consumed so far.
    fed: usize,
    /// All tokens emitted for this request (including pre-preemption ones).
    generated: Vec<u32>,
    /// Most recently emitted token, not yet consumed by a decode step.
    last_token: Option<u32>,
    progress: RequestProgress,
}

impl SchedSeq {
    fn feed_len(&self) -> usize {
        self.req.prompt.len() + self.resume_feed.len()
    }

    fn feed_token(&self, i: usize) -> u32 {
        if i < self.req.prompt.len() {
            self.req.prompt[i]
        } else {
            self.resume_feed[i - self.req.prompt.len()]
        }
    }
}

/// Continuous-batching scheduler over one shared page pool.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use lserve_core::{EngineConfig, ModelExecutor, Request, Scheduler, SchedulerConfig};
/// use lserve_model::{ModelConfig, ModelWeights};
///
/// let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 3));
/// let exec = Arc::new(ModelExecutor::new(weights, EngineConfig::lserve_fp16()));
/// let mut scfg = SchedulerConfig::new(2048);
/// scfg.chunk_tokens = 4; // prompts longer than 4 tokens prefill across iterations
/// let mut sched = Scheduler::new(exec, scfg);
/// sched.submit(Request { id: 1, prompt: (0..16).collect(), max_new_tokens: 4 });
/// let report = sched.run_to_completion(10_000);
/// assert_eq!(report.completed.len(), 1);
/// assert_eq!(report.request_metrics.len(), 1);
/// ```
#[derive(Debug)]
pub struct Scheduler {
    exec: Arc<ModelExecutor>,
    scfg: SchedulerConfig,
    pool: PagePool,
    queue: VecDeque<QueuedSeq>,
    running: Vec<SchedSeq>,
    report: ServingReport,
    next_priority: u64,
    /// Monotone clock: tokens pushed through the forward pass across all
    /// sequences (tile prefill, prompt-continuation feed, and decode), plus
    /// the modeled transfer work of swap-resume promotions.
    work_tokens: u64,
    /// Accumulated swap-resume promotion cost in token-equivalents, summed
    /// per resume event — exactly the amounts charged to `work_tokens`, so
    /// the report field can never drift from the clock.
    swap_resume_work: u64,
    /// Cross-request KV prefix cache (unused unless `scfg.prefix_cache`).
    prefix: PrefixCache<CachedPrefix>,
}

impl Scheduler {
    /// Creates a scheduler over `exec` with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if `scfg` is inconsistent (see [`SchedulerConfig::validate`]).
    pub fn new(exec: Arc<ModelExecutor>, scfg: SchedulerConfig) -> Self {
        scfg.validate();
        let pool = PagePool::new(
            exec.config().paging,
            scfg.pool_pages,
            exec.weights().config.head_dim,
        );
        Self {
            exec,
            scfg,
            pool,
            queue: VecDeque::new(),
            running: Vec::new(),
            report: ServingReport {
                decode_threads: scfg.decode_threads,
                preemption: scfg.preemption,
                ..ServingReport::default()
            },
            next_priority: 0,
            work_tokens: 0,
            swap_resume_work: 0,
            prefix: PrefixCache::new(),
        }
    }

    /// The shared executor.
    pub fn executor(&self) -> &Arc<ModelExecutor> {
        &self.exec
    }

    /// The scheduling policy.
    pub fn config(&self) -> &SchedulerConfig {
        &self.scfg
    }

    /// Enqueues a request. Earlier submissions have higher priority (FCFS).
    pub fn submit(&mut self, req: Request) {
        let priority = self.next_priority;
        self.next_priority += 1;
        self.queue.push_back(QueuedSeq {
            req,
            priority,
            generated: Vec::new(),
            swap: None,
            progress: RequestProgress {
                submit_iter: self.report.scheduler_steps,
                submit_work: self.work_tokens,
                first_token_iter: None,
                first_token_work: None,
                last_token_iter: 0,
                preemptions: 0,
                cached_tokens: 0,
            },
        });
    }

    /// Requests waiting for admission (fresh or preempted).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Sequences currently prefilling or decoding.
    pub fn running(&self) -> usize {
        self.running.len()
    }

    /// Hot (device) pages currently in use in the shared pool.
    pub fn pool_in_use(&self) -> usize {
        self.pool.in_use()
    }

    /// Cold (host) pages currently in use in the shared pool — swapped-out
    /// victims and selection-demoted stale context.
    pub fn pool_cold_in_use(&self) -> usize {
        self.pool.cold_in_use()
    }

    /// The live (unsorted) report accumulated so far.
    pub fn report_snapshot(&self) -> &ServingReport {
        &self.report
    }

    /// Prefixes currently cached in the radix tree.
    pub fn prefix_cache_entries(&self) -> usize {
        self.prefix.entries()
    }

    /// Page references the prefix cache currently holds (shared pages counted
    /// once per referencing entry; the physical footprint is bounded by
    /// `pool_in_use`).
    pub fn prefix_cached_page_refs(&self) -> usize {
        self.prefix.page_refs()
    }

    /// Lifetime hit/miss/eviction counters of the prefix cache.
    pub fn prefix_cache_stats(&self) -> PrefixCacheStats {
        self.prefix.stats()
    }

    /// Evicts every cached prefix, returning its pages to the pool (pages shared
    /// with running sequences survive until those release them). After a run has
    /// drained, `pool_in_use` returns to zero once this is called.
    pub fn flush_prefix_cache(&mut self) {
        self.prefix.clear(&mut self.pool);
    }

    /// Lifecycle state of request `id`, or `None` for an unknown id. A preempted
    /// request reports [`RequestStatus::Queued`] until it is re-admitted. With
    /// duplicate ids the live states (queued/running) win over finished ones.
    pub fn status(&self, id: u64) -> Option<RequestStatus> {
        if self.queue.iter().any(|q| q.req.id == id) {
            return Some(RequestStatus::Queued);
        }
        if self.running.iter().any(|s| s.req.id == id) {
            return Some(RequestStatus::Running);
        }
        if let Some((_, tokens)) = self.report.completed.iter().find(|(cid, _)| *cid == id) {
            return Some(RequestStatus::Finished(tokens.clone()));
        }
        if self.report.rejected.contains(&id) {
            return Some(RequestStatus::Rejected);
        }
        None
    }

    /// Pages needed to hold `tokens` tokens of context for one sequence under the
    /// current policy (see [`sequence_pages_estimate`]).
    fn pages_estimate(&self, tokens: usize) -> usize {
        sequence_pages_estimate(self.exec.config(), &self.exec.weights().config, tokens)
    }

    /// One scheduler iteration: admit, feed prompt chunks, reserve decode pages
    /// (preempting on pressure), then advance every ready sequence by one decode
    /// step (continuous batching).
    pub fn step(&mut self) {
        self.report.scheduler_steps += 1;
        let now = self.report.scheduler_steps;
        self.admit();
        self.report.peak_running = self.report.peak_running.max(self.running.len());
        self.report.running_seq_steps += self.running.len() as u64;
        self.prefill_phase(now);
        self.decode_phase(now);
        self.report.peak_pages = self.report.peak_pages.max(self.pool.peak_in_use());
        self.report.peak_cold_pages = self.report.peak_cold_pages.max(self.pool.cold_in_use());
        // Tier-migration counters come straight from the pool's lifetime
        // ledger (selection-driven moves in the executor and swap moves here
        // both land in it); swap-resume work is scheduler-side only.
        let tier = self.pool.tier_stats();
        self.report.pages_demoted = tier.pages_demoted;
        self.report.pages_promoted = tier.pages_promoted;
        self.report.swap_resume_work_tokens = self.swap_resume_work;
        // Hit/insert counters come from the cache's own ledger so the report can
        // never drift from `prefix_cache_stats()` (evictions stay scheduler-side:
        // the report counts pressure evictions only, not flushes).
        let stats = self.prefix.stats();
        self.report.prefix_hit_tokens = stats.hit_tokens;
        self.report.prefix_insertions = stats.insertions;
    }

    /// Runs until every request completes or `max_steps` scheduler iterations
    /// pass. Returns the report (sorted by request id).
    pub fn run_to_completion(&mut self, max_steps: u64) -> ServingReport {
        let mut steps = 0;
        while (!self.queue.is_empty() || !self.running.is_empty()) && steps < max_steps {
            self.step();
            steps += 1;
        }
        let mut report = self.report.clone();
        report.completed.sort_by_key(|(id, _)| *id);
        report.rejected.sort_unstable();
        report.request_metrics.sort_by_key(|m| m.id);
        report
    }

    /// FCFS admission from the queue head, seeding from the prefix cache when a
    /// prompt matches a cached prefix.
    fn admit(&mut self) {
        while self.running.len() < self.scfg.max_batch {
            let Some(front) = self.queue.front() else {
                break;
            };
            let full_tokens = front.req.prompt.len() + front.req.max_new_tokens;
            // A generation needs at least one prompt token (the first logits come
            // from prefill); an empty prompt can never become decode-ready.
            if front.req.prompt.is_empty()
                || self.pages_estimate(full_tokens) > self.pool.capacity()
            {
                let q = self.queue.pop_front().expect("front checked");
                self.report.rejected.push(q.req.id);
                continue;
            }
            // A swapped-out victim resumes by promotion, not by re-feeding:
            // its exact hot demand is its cold page count. Evict idle cached
            // prefixes first, exactly like fresh admission does.
            if let Some(parked) = &front.swap {
                let need = parked.state.cold_pages(&self.pool);
                while need > self.pool.free_pages() {
                    if !self.evict_prefix_one() {
                        break;
                    }
                }
                if need > self.pool.free_pages() {
                    // With nothing running, no future completion will free hot
                    // pages — spill the swap-parked states (including this
                    // one) back to replay so admission can always make
                    // progress, then retry.
                    if self.running.is_empty() && self.spill_swapped_queue() {
                        continue;
                    }
                    break; // wait for hot pages to free up
                }
                let q = self.queue.pop_front().expect("front checked");
                let swap = q.swap.expect("checked above");
                let (_, units) = swap
                    .state
                    .promote_resident(&mut self.pool)
                    .expect("cold-page demand reserved above");
                // The promotion is accounted work on the run's monotone clock:
                // TTFT/TBT under swap honestly pay for the transfer.
                let cost = lserve_kvcache::transfer_cost_tokens(units);
                self.swap_resume_work += cost;
                self.work_tokens += cost;
                self.running.push(SchedSeq {
                    req: q.req,
                    priority: q.priority,
                    state: swap.state,
                    resume_feed: swap.resume_feed,
                    fed: swap.fed,
                    generated: q.generated,
                    last_token: swap.last_token,
                    progress: q.progress,
                });
                continue;
            }
            let feed_len = front.req.prompt.len() + front.generated.len();
            // A cached match makes the request cheaper to admit and must survive
            // the eviction loop below, so LRU-protect it before evicting and size
            // the first-chunk estimate by the uncached remainder.
            let matched = if self.scfg.prefix_cache {
                let min_match = self.scfg.chunk_tokens;
                let max_match = front.req.prompt.len().saturating_sub(1);
                if max_match >= min_match {
                    self.prefix
                        .touch(&front.req.prompt, min_match, max_match)
                        .unwrap_or(0)
                } else {
                    0
                }
            } else {
                0
            };
            let admit_tokens = match self.scfg.admission {
                AdmissionPolicy::FullFootprint => full_tokens,
                AdmissionPolicy::FirstChunk => self.scfg.chunk_tokens.min(feed_len - matched),
            };
            while self.pages_estimate(admit_tokens) > self.pool.free_pages() {
                if !self.evict_prefix_one() {
                    break;
                }
            }
            if self.pages_estimate(admit_tokens) > self.pool.free_pages() {
                // Swap-parked states can pin shared prefix pages the eviction
                // loop cannot free; with nothing running, spilling them back
                // to replay is the only way admission can make progress.
                if self.running.is_empty() && self.spill_swapped_queue() {
                    continue;
                }
                break; // wait for running sequences to finish or be preempted
            }
            let q = self.queue.pop_front().expect("front checked");
            let (cached, state) = self.seeded_state(&q.req.prompt);
            self.running.push(SchedSeq {
                generated: q.generated.clone(),
                resume_feed: q.generated,
                req: q.req,
                priority: q.priority,
                state,
                fed: cached,
                last_token: None,
                progress: RequestProgress {
                    cached_tokens: q.progress.cached_tokens.max(cached),
                    ..q.progress
                },
            });
        }
        // Resumed sequences have old (small) priorities; keep the running list in
        // priority order so phases and victim selection stay O(1) to reason about.
        self.running.sort_by_key(|s| s.priority);
    }

    /// Looks `prompt` up in the prefix cache and seeds a sequence from the
    /// deepest usable match, or creates a fresh sequence on a miss. Matches are
    /// bounded below by the prefill tile grid (the suffix must run entirely on
    /// the position-stable decode path) and above by `prompt_len - 1` (at least
    /// one token must be computed to produce first-token logits).
    fn seeded_state(&mut self, prompt: &[u32]) -> (usize, SequenceState) {
        if self.scfg.prefix_cache {
            let min_match = self.scfg.chunk_tokens;
            let max_match = prompt.len().saturating_sub(1);
            if max_match >= min_match {
                if let Some((depth, hit)) = self.prefix.lookup(prompt, min_match, max_match) {
                    return (depth, hit.seed(&mut self.pool));
                }
            }
        }
        (0, self.exec.new_sequence())
    }

    /// Donates the current prompt prefix of running sequence `i` into the cache
    /// when its feed position sits on a donation point: a tile-grid boundary
    /// inside the prompt, or the end of the prompt. Idempotent — a prefix that is
    /// already cached is refused by the tree (and LRU-touched).
    fn maybe_donate(&mut self, i: usize) {
        if !self.scfg.prefix_cache {
            return;
        }
        let seq = &self.running[i];
        let fed = seq.fed;
        let plen = seq.req.prompt.len();
        let chunk = self.scfg.chunk_tokens;
        let on_grid = fed > 0 && fed.is_multiple_of(chunk);
        if fed < chunk || fed > plen || !(on_grid || fed == plen) {
            return;
        }
        debug_assert_eq!(
            seq.state.context_len(),
            fed,
            "donation off a clean feed position"
        );
        // Skip the state capture entirely when the prefix is already cached (the
        // common case on warm traffic re-walking a donated prompt).
        if self.prefix.is_cached(&seq.req.prompt[..fed]) {
            return;
        }
        let value = CachedPrefix::capture(&seq.state);
        self.prefix
            .insert(&mut self.pool, &seq.req.prompt[..fed], value);
    }

    /// One pressure-relief eviction: removes the LRU cache entry whose removal
    /// actually frees physical pages, skipping (and keeping warm) entries whose
    /// pages are all co-owned elsewhere — nested grid anchors covered by deeper
    /// entries, or prefixes pinned by running sequences. Returns `false` when no
    /// eviction can relieve the pool and the caller needs preemption instead.
    fn evict_prefix_one(&mut self) -> bool {
        if self.prefix.evict_lru_freeing(&mut self.pool).is_none() {
            return false;
        }
        self.report.prefix_evictions += 1;
        true
    }

    /// Drains the prefix cache entirely — the last resort before truncating a
    /// lone sequence that cannot grow, where reclaiming every tree-only page
    /// matters more than cache warmth. Returns `true` if any page was freed.
    fn evict_prefix_all(&mut self) -> bool {
        let before = self.pool.free_pages();
        while self.prefix.evict_lru(&mut self.pool).is_some() {
            self.report.prefix_evictions += 1;
        }
        self.pool.free_pages() > before
    }

    /// Feeds prompt (and resume) tokens, up to `chunk_tokens` per sequence per
    /// iteration, in priority order.
    fn prefill_phase(&mut self, now: u64) {
        let exec = Arc::clone(&self.exec);
        let order: Vec<u64> = self.running.iter().map(|s| s.priority).collect();
        for pr in order {
            // Re-locate: earlier work in this phase may have preempted sequences.
            let Some(i) = self.running.iter().position(|s| s.priority == pr) else {
                continue;
            };
            if self.running[i].fed >= self.running[i].feed_len() {
                continue;
            }
            let mut budget = self.scfg.chunk_tokens;
            // First grid cell: fused tile prefill over the fixed tile grid (a pure
            // function of absolute token position), so replays after preemption and
            // prefix-cached peers compute bit-identical KV. Sequences seeded from
            // the prefix cache start with `fed > 0` and never take this path.
            if self.running[i].fed == 0 {
                let boundary =
                    tile_grid_boundary(self.scfg.chunk_tokens, self.running[i].req.prompt.len());
                loop {
                    if self.pages_estimate(boundary) <= self.pool.free_pages() {
                        break;
                    }
                    if self.evict_prefix_one() {
                        continue;
                    }
                    if self.make_room_below(pr) {
                        continue;
                    }
                    // Swap-parked states may pin the very prefix pages the
                    // eviction loop needs; spill them to replay (what Replay
                    // freed at preemption time) before giving up.
                    if !self.spill_swapped_queue() {
                        break;
                    }
                }
                let tokens: Vec<u32> = (0..boundary)
                    .map(|t| self.running[i].feed_token(t))
                    .collect();
                match exec.prefill_threads(
                    &mut self.running[i].state,
                    &mut self.pool,
                    &tokens,
                    self.scfg.decode_threads,
                    &mut self.report.parallel,
                ) {
                    Ok(out) => {
                        self.running[i].fed = boundary;
                        self.work_tokens += boundary as u64;
                        if self.scfg.prefix_cache {
                            self.report.prefix_recomputed_tokens += boundary as u64;
                        }
                        budget = budget.saturating_sub(boundary);
                        self.maybe_donate(i);
                        if self.running[i].fed == self.running[i].feed_len() {
                            self.finish_feed(i, &out.logits, now);
                            continue;
                        }
                    }
                    Err(_) => {
                        // The estimate was optimistic and no lower-priority victim
                        // is left. Give the partial pages back and retry on a later
                        // iteration — unless this sequence is alone, in which case
                        // it can never fit and must fail.
                        self.running[i].state.release(&mut self.pool);
                        self.running[i].fed = 0;
                        if self.running.len() == 1 && self.queue.is_empty() {
                            let seq = self.running.remove(i);
                            self.report.rejected.push(seq.req.id);
                        }
                        continue;
                    }
                }
            }
            // Continuation: token-by-token through the decode path. Numerically
            // independent of how many tokens any iteration feeds.
            while budget > 0 && self.running[i].fed < self.running[i].feed_len() {
                let need = self.running[i]
                    .state
                    .pages_needed_for_next_token(&self.pool);
                if need > self.pool.free_pages() {
                    if self.evict_prefix_one() {
                        continue;
                    }
                    if self.make_room_below(pr) {
                        continue;
                    }
                    // Unpin prefix pages held by swap-parked peers (degrading
                    // them to replay) before stalling the feed.
                    if self.spill_swapped_queue() {
                        continue;
                    }
                    break; // wait for a later iteration
                }
                let fed_pos = self.running[i].fed;
                let t = self.running[i].feed_token(fed_pos);
                let mut one = [(&mut self.running[i].state, t)];
                let result = exec
                    .decode_batch_threads(
                        &mut self.pool,
                        &mut one,
                        self.scfg.decode_threads,
                        &mut self.report.parallel,
                    )
                    .pop()
                    .expect("one result per input sequence");
                match result {
                    Ok(out) => {
                        self.running[i].fed += 1;
                        self.work_tokens += 1;
                        if self.scfg.prefix_cache && fed_pos < self.running[i].req.prompt.len() {
                            self.report.prefix_recomputed_tokens += 1;
                        }
                        budget -= 1;
                        self.maybe_donate(i);
                        if self.running[i].fed == self.running[i].feed_len() {
                            self.finish_feed(i, &out.logits, now);
                            break;
                        }
                    }
                    Err(_) => {
                        // Exact reservation should prevent this; self-preempt to
                        // discard the partially-written token and replay later.
                        // Always the replay path: the state is unclean and must
                        // not be parked for swap-resume.
                        self.preempt_index_replay(i);
                        break;
                    }
                }
            }
        }
    }

    /// Reserve pages for one decode token per ready sequence, preempting from the
    /// lowest priority until demand fits, then run the batched decode step.
    fn decode_phase(&mut self, now: u64) {
        loop {
            let demand: usize = self
                .running
                .iter()
                .filter(|s| s.last_token.is_some())
                .map(|s| s.state.pages_needed_for_next_token(&self.pool))
                .sum();
            if demand <= self.pool.free_pages() {
                break;
            }
            // Cached-but-idle prefixes go first; preemption is the last resort.
            if self.evict_prefix_one() {
                continue;
            }
            if self.running.len() <= 1 {
                // Before truncating the lone sequence, spill swap-parked
                // states back to replay: releasing their pages unpins any
                // prefix-cache entries they co-own — exactly what the Replay
                // policy would already have freed at preemption time — and
                // keeps bounded-memory truncation policy-independent.
                if self.spill_swapped_queue() {
                    continue;
                }
                // Then reclaim every page the cache still holds exclusively.
                if self.evict_prefix_all() {
                    continue;
                }
                // Nothing to preempt in favor of: the lone sequence cannot grow any
                // further. Finish it with what it has (bounded-memory truncation).
                if let Some(seq) = self.running.pop() {
                    self.complete(seq);
                }
                return;
            }
            // Victim: lowest priority = last in the sorted running list.
            let victim = self.running.len() - 1;
            self.preempt_index(victim);
        }
        // Batched decode: one token for every sequence whose feed is complete.
        let exec = Arc::clone(&self.exec);
        let mut batch_idx: Vec<usize> = Vec::new();
        let mut batch: Vec<(&mut SequenceState, u32)> = Vec::new();
        for (i, seq) in self.running.iter_mut().enumerate() {
            if let Some(t) = seq.last_token {
                batch_idx.push(i);
                batch.push((&mut seq.state, t));
            }
        }
        if batch.is_empty() {
            return;
        }
        let results = exec.decode_batch_threads(
            &mut self.pool,
            &mut batch,
            self.scfg.decode_threads,
            &mut self.report.parallel,
        );
        drop(batch);
        // Walk results in reverse index order so removals (completion, fallback
        // preemption) do not shift the indices still to be visited.
        for (&i, result) in batch_idx.iter().zip(results.iter()).rev() {
            match result {
                Ok(out) => {
                    self.report.decode_steps += 1;
                    self.work_tokens += 1;
                    let next = greedy_next_token(&out.logits);
                    self.emit_token(i, next, now);
                }
                Err(_) => {
                    // Reservation makes this unreachable in practice; keep the
                    // conservative fallback anyway. Replay, never swap: the
                    // failed step left the state partially written.
                    self.preempt_index_replay(i);
                }
            }
        }
    }

    /// The feed (prompt + resume) is fully consumed: the last logits determine the
    /// next token to emit.
    fn finish_feed(&mut self, i: usize, last_logits: &[f32], now: u64) {
        let next = greedy_next_token(last_logits);
        if self.running[i].req.max_new_tokens == 0 {
            let seq = self.running.remove(i);
            self.complete(seq);
            return;
        }
        self.emit_token(i, next, now);
    }

    /// Records a newly generated token for running sequence `i`, completing the
    /// request when it reaches its token budget.
    fn emit_token(&mut self, i: usize, token: u32, now: u64) {
        let work_now = self.work_tokens;
        let seq = &mut self.running[i];
        debug_assert!(seq.generated.len() < seq.req.max_new_tokens);
        seq.generated.push(token);
        seq.last_token = Some(token);
        if seq.progress.first_token_iter.is_none() {
            seq.progress.first_token_iter = Some(now);
        }
        if seq.progress.first_token_work.is_none() {
            seq.progress.first_token_work = Some(work_now);
        }
        seq.progress.last_token_iter = now;
        if seq.generated.len() >= seq.req.max_new_tokens {
            let seq = self.running.remove(i);
            self.complete(seq);
        }
    }

    /// Releases a finished sequence — donating its conversation (prompt plus
    /// absorbed generated tokens) into the prefix cache first, so follow-up turns
    /// that extend this conversation start from its pages — and records its
    /// report entries.
    fn complete(&mut self, mut seq: SchedSeq) {
        self.donate_completed(&seq);
        seq.state.release(&mut self.pool);
        let p = seq.progress;
        self.report.request_metrics.push(RequestMetrics {
            id: seq.req.id,
            ttft_iters: p.first_token_iter.map_or(0, |first| first - p.submit_iter),
            ttft_work_tokens: p.first_token_work.map_or(0, |first| first - p.submit_work),
            decode_span_iters: p
                .first_token_iter
                .map_or(0, |first| p.last_token_iter - first),
            tokens: seq.generated.len(),
            preemptions: p.preemptions,
            cached_prompt_tokens: p.cached_tokens,
        });
        self.report.completed.push((seq.req.id, seq.generated));
    }

    /// Donates a completed sequence's absorbed token sequence (prompt plus all
    /// generated tokens except the final, never-absorbed one) into the prefix
    /// cache. Decode-path KV is cold-prefill-equivalent — the continuation feed
    /// uses the same per-token pipeline — so a multi-turn follow-up whose prompt
    /// extends this conversation gets a bit-identical warm start.
    fn donate_completed(&mut self, seq: &SchedSeq) {
        // The prompt itself must clear the tile grid: a sub-grid prompt tiled
        // only `[0, prompt_len)` and based its decode-step indices there, so its
        // KV is *not* what a cold run of a longer prompt would compute — donating
        // it would break the fixed-tile-grid provenance invariant, however long
        // the generated tail grew.
        if !self.scfg.prefix_cache
            || seq.fed < seq.feed_len()
            || seq.req.prompt.len() < self.scfg.chunk_tokens
        {
            return;
        }
        let absorbed = seq.state.context_len();
        let mut key = seq.req.prompt.clone();
        let absorbed_generated = absorbed - seq.req.prompt.len();
        key.extend(&seq.generated[..absorbed_generated]);
        debug_assert_eq!(key.len(), absorbed);
        if self.prefix.is_cached(&key) {
            return;
        }
        let value = CachedPrefix::capture(&seq.state);
        self.prefix.insert(&mut self.pool, &key, value);
    }

    /// Preempts the lowest-priority running sequence whose priority is *lower*
    /// than `than` (i.e. a strictly later arrival). Returns `false` when no such
    /// victim exists.
    fn make_room_below(&mut self, than: u64) -> bool {
        match self.running.last() {
            Some(seq) if seq.priority > than => {
                let victim = self.running.len() - 1;
                self.preempt_index(victim);
                true
            }
            _ => false,
        }
    }

    /// Preempts running sequence `i` under the configured policy. The sequence
    /// must be at a clean step boundary (nothing half-written) — the unclean
    /// OOM fallbacks call [`Scheduler::preempt_index_replay`] directly.
    fn preempt_index(&mut self, i: usize) {
        match self.scfg.preemption {
            PreemptionPolicy::Replay => self.preempt_index_replay(i),
            PreemptionPolicy::Swap => self.preempt_index_swap(i),
        }
    }

    /// Replay preemption: releases every page sequence `i` holds and re-queues
    /// it with its generation progress, to be re-fed later.
    fn preempt_index_replay(&mut self, i: usize) {
        let mut seq = self.running.remove(i);
        seq.state.release(&mut self.pool);
        self.report.preemptions += 1;
        self.requeue(QueuedSeq {
            req: seq.req,
            priority: seq.priority,
            generated: seq.generated,
            swap: None,
            progress: RequestProgress {
                preemptions: seq.progress.preemptions + 1,
                ..seq.progress
            },
        });
    }

    /// Swap preemption: demotes every sole-owned page sequence `i` holds to
    /// the cold tier (pages co-owned with the prefix cache or other sequences
    /// stay hot for their readers) and parks the intact sequence state in the
    /// queue. Resume is an accounted promotion instead of a replay.
    fn preempt_index_swap(&mut self, i: usize) {
        let seq = self.running.remove(i);
        seq.state.demote_resident(&mut self.pool);
        self.report.preemptions += 1;
        self.requeue(QueuedSeq {
            req: seq.req,
            priority: seq.priority,
            generated: seq.generated,
            swap: Some(SwappedSeq {
                state: seq.state,
                fed: seq.fed,
                resume_feed: seq.resume_feed,
                last_token: seq.last_token,
            }),
            progress: RequestProgress {
                preemptions: seq.progress.preemptions + 1,
                ..seq.progress
            },
        });
    }

    /// Last-resort pressure relief under [`PreemptionPolicy::Swap`]: releases
    /// every swap-parked state in the queue, degrading those requests to a
    /// replay resume. This returns their cold pages and — crucially — drops
    /// their references on shared prefix pages, so the eviction loop regains
    /// everything the Replay policy would have freed at preemption time.
    /// Returns `true` if any state was spilled.
    fn spill_swapped_queue(&mut self) -> bool {
        let mut any = false;
        for q in self.queue.iter_mut() {
            if let Some(mut swap) = q.swap.take() {
                swap.state.release(&mut self.pool);
                any = true;
            }
        }
        any
    }

    /// Inserts a preempted request back into the queue, keeping it sorted by
    /// priority so FCFS order survives preemption.
    fn requeue(&mut self, q: QueuedSeq) {
        let pos = self
            .queue
            .iter()
            .position(|other| other.priority > q.priority)
            .unwrap_or(self.queue.len());
        self.queue.insert(pos, q);
    }
}

/// Multi-sequence serving engine over one shared page pool.
///
/// Compatibility facade over [`Scheduler`]: monolithic prefill (unbounded chunk)
/// and conservative full-footprint admission, which is the original FCFS
/// continuous-batching behaviour. New code that wants chunked prefill or
/// preemption should construct a [`Scheduler`] directly.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use lserve_core::{EngineConfig, Request, ServingEngine};
/// use lserve_model::{ModelConfig, ModelWeights};
///
/// let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 3));
/// let mut srv = ServingEngine::new(weights, EngineConfig::lserve_fp16(), 2048);
/// srv.submit(Request { id: 1, prompt: vec![1, 2, 3], max_new_tokens: 4 });
/// let report = srv.run_to_completion(10_000);
/// assert_eq!(report.completed.len(), 1);
/// ```
#[derive(Debug)]
pub struct ServingEngine {
    inner: Scheduler,
}

impl ServingEngine {
    /// Creates a serving engine whose shared pool holds `pool_pages` physical pages
    /// (the device-memory budget).
    pub fn new(weights: Arc<ModelWeights>, cfg: EngineConfig, pool_pages: usize) -> Self {
        let exec = Arc::new(ModelExecutor::new(weights, cfg));
        let scfg = SchedulerConfig {
            pool_pages,
            chunk_tokens: usize::MAX,
            max_batch: usize::MAX,
            admission: AdmissionPolicy::FullFootprint,
            prefix_cache: false,
            decode_threads: decode_threads_from_env(),
            preemption: preemption_from_env(),
        };
        Self {
            inner: Scheduler::new(exec, scfg),
        }
    }

    /// Enqueues a request.
    pub fn submit(&mut self, req: Request) {
        self.inner.submit(req);
    }

    /// Requests waiting for admission.
    pub fn queued(&self) -> usize {
        self.inner.queued()
    }

    /// Sequences currently decoding.
    pub fn running(&self) -> usize {
        self.inner.running()
    }

    /// One scheduler iteration: admit what fits, then advance every running
    /// sequence by one decode step (continuous batching).
    pub fn step(&mut self) {
        self.inner.step();
    }

    /// Runs until every request completes or `max_steps` scheduler iterations
    /// pass. Returns the report (sorted by request id).
    pub fn run_to_completion(&mut self, max_steps: u64) -> ServingReport {
        self.inner.run_to_completion(max_steps)
    }

    /// Pages currently in use in the shared pool.
    pub fn pool_in_use(&self) -> usize {
        self.inner.pool_in_use()
    }

    /// Lifecycle state of request `id` (see [`Scheduler::status`]).
    pub fn status(&self, id: u64) -> Option<RequestStatus> {
        self.inner.status(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use lserve_model::ModelConfig;

    fn weights() -> Arc<ModelWeights> {
        Arc::new(ModelWeights::random(&ModelConfig::tiny(), 5))
    }

    fn request(id: u64, len: usize, gen: usize) -> Request {
        Request {
            id,
            prompt: (0..len).map(|i| (i % 90) as u32).collect(),
            max_new_tokens: gen,
        }
    }

    fn scheduler(cfg: EngineConfig, scfg: SchedulerConfig) -> Scheduler {
        Scheduler::new(Arc::new(ModelExecutor::new(weights(), cfg)), scfg)
    }

    #[test]
    fn single_request_completes() {
        let mut srv = ServingEngine::new(weights(), EngineConfig::lserve_fp16(), 2048);
        srv.submit(request(1, 8, 5));
        let r = srv.run_to_completion(1000);
        assert_eq!(r.completed.len(), 1);
        assert_eq!(r.completed[0].1.len(), 5);
        assert!(r.rejected.is_empty());
        assert_eq!(srv.pool_in_use(), 0, "all pages returned");
    }

    #[test]
    fn serving_output_matches_standalone_engine() {
        let w = weights();
        let mut srv = ServingEngine::new(Arc::clone(&w), EngineConfig::dense(), 4096);
        srv.submit(request(1, 6, 6));
        let r = srv.run_to_completion(1000);
        let cfg = EngineConfig::dense();
        let mut pool = cfg.make_pool_for(&w.config, 64);
        let mut e = Engine::new(w, cfg);
        let want = e.generate(&mut pool, &request(1, 6, 6).prompt, 6).unwrap();
        assert_eq!(r.completed[0].1, want);
    }

    #[test]
    fn batch_of_requests_all_complete() {
        let mut srv = ServingEngine::new(weights(), EngineConfig::lserve_fp16(), 8192);
        for id in 0..6 {
            srv.submit(request(id, 6 + id as usize, 4));
        }
        let r = srv.run_to_completion(10_000);
        assert_eq!(r.completed.len(), 6);
        let ids: Vec<u64> = r.completed.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn oversized_request_rejected_not_deadlocked() {
        let mut srv = ServingEngine::new(weights(), EngineConfig::dense(), 16);
        srv.submit(request(1, 512, 4)); // needs ~40 pages, can never fit in 16
        srv.submit(request(2, 4, 2));
        let r = srv.run_to_completion(1000);
        assert_eq!(r.rejected, vec![1]);
        assert_eq!(r.completed.len(), 1);
        assert_eq!(r.completed[0].0, 2);
    }

    #[test]
    fn status_tracks_request_lifecycle() {
        // 24 pages: request 1 (est. 14 pages) fits, request 2 (est. 32) never can.
        let mut srv = ServingEngine::new(weights(), EngineConfig::lserve_fp16(), 24);
        assert_eq!(srv.status(1), None);
        srv.submit(request(1, 4, 20));
        srv.submit(request(2, 600, 4)); // can never fit: rejected at admission
        assert_eq!(srv.status(1), Some(RequestStatus::Queued));
        srv.step();
        assert_eq!(srv.status(1), Some(RequestStatus::Running));
        assert_eq!(srv.status(2), Some(RequestStatus::Rejected));
        let r = srv.run_to_completion(1000);
        match srv.status(1) {
            Some(RequestStatus::Finished(tokens)) => {
                assert_eq!(tokens.len(), 20);
                assert_eq!(tokens, r.completed[0].1);
            }
            other => panic!("expected finished, got {other:?}"),
        }
    }

    #[test]
    fn empty_prompt_rejected_not_stuck() {
        let mut srv = ServingEngine::new(weights(), EngineConfig::lserve_fp16(), 2048);
        srv.submit(request(1, 0, 3));
        srv.submit(request(2, 4, 3));
        let r = srv.run_to_completion(1000);
        assert_eq!(r.rejected, vec![1]);
        assert_eq!(r.completed.len(), 1);
        assert!(r.scheduler_steps < 100, "must not spin to the step cap");
    }

    #[test]
    fn memory_pressure_serializes_admission() {
        // Pool fits roughly one dense sequence at a time; both must still finish.
        let w = weights();
        let cfg = EngineConfig::dense();
        let one_seq_pages = {
            let m = &w.config;
            m.num_layers * m.num_kv_heads * (cfg.paging.pages_for(40) + 1)
        };
        let mut srv = ServingEngine::new(w, cfg, one_seq_pages + 4);
        srv.submit(request(1, 16, 8));
        srv.submit(request(2, 16, 8));
        let r = srv.run_to_completion(10_000);
        assert_eq!(r.completed.len(), 2);
        assert!(r.peak_pages <= one_seq_pages + 4);
    }

    #[test]
    fn continuous_batching_interleaves() {
        let mut srv = ServingEngine::new(weights(), EngineConfig::lserve_fp16(), 8192);
        srv.submit(request(1, 4, 10));
        srv.submit(request(2, 4, 10));
        srv.step();
        assert_eq!(srv.running(), 2, "both admitted in one step");
    }

    #[test]
    fn chunked_prefill_interleaves_long_prompt_with_decode() {
        // One long prompt plus one short request: with chunked prefill, the short
        // request must finish long before the long prompt is even fully fed.
        let mut scfg = SchedulerConfig::new(8192);
        scfg.chunk_tokens = 8;
        let mut sched = scheduler(EngineConfig::lserve_fp16(), scfg);
        sched.submit(request(1, 96, 4)); // 96-token prompt: 12 iterations of feeding
        sched.submit(request(2, 4, 3));
        let mut short_done_at = None;
        for iter in 1..200u64 {
            sched.step();
            if short_done_at.is_none()
                && sched
                    .report_snapshot()
                    .completed
                    .iter()
                    .any(|(id, _)| *id == 2)
            {
                short_done_at = Some(iter);
            }
            if sched.queued() == 0 && sched.running() == 0 {
                break;
            }
        }
        let r = sched.run_to_completion(1);
        assert_eq!(r.completed.len(), 2);
        let short_done_at = short_done_at.expect("short request completed");
        assert!(
            short_done_at <= 6,
            "short request head-of-line blocked until iteration {short_done_at}"
        );
    }

    #[test]
    fn chunked_prefill_output_matches_monolithic_prefill() {
        // With FP16 paging and no sparsity interference, feeding the prompt in
        // chunks must not change the greedy output of a solo request (chunk
        // boundaries only move computation between the tile and decode paths of the
        // same deterministic pipeline; the greedy argmax survives the reordering
        // at this scale).
        let w = weights();
        let cfg = EngineConfig::dense();
        let mut mono = ServingEngine::new(Arc::clone(&w), cfg.clone(), 4096);
        mono.submit(request(7, 24, 8));
        let want = mono.run_to_completion(10_000).completed[0].1.clone();

        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 7; // does not divide 24: exercises a ragged last chunk
        let mut sched = scheduler(cfg, scfg);
        sched.submit(request(7, 24, 8));
        let r = sched.run_to_completion(10_000);
        assert_eq!(r.completed[0].1, want);
    }

    #[test]
    fn preemption_fires_and_everything_completes() {
        // First-chunk admission over a pool that cannot hold both sequences'
        // full footprint: the scheduler must preempt (not deadlock, not reject)
        // and still complete both requests.
        let w = weights();
        let cfg = EngineConfig::dense();
        let m = &w.config;
        // Both prompts fit at admission; decoding both to completion overflows.
        let one_seq_pages = m.num_layers * m.num_kv_heads * (cfg.paging.pages_for(70) + 1);
        let mut scfg = SchedulerConfig::new(one_seq_pages + 2);
        scfg.chunk_tokens = 16;
        scfg.admission = AdmissionPolicy::FirstChunk;
        let mut sched = Scheduler::new(Arc::new(ModelExecutor::new(w, cfg)), scfg);
        sched.submit(request(1, 60, 10));
        sched.submit(request(2, 60, 10));
        let r = sched.run_to_completion(100_000);
        assert_eq!(r.completed.len(), 2, "rejected: {:?}", r.rejected);
        assert!(r.preemptions > 0, "pool pressure must trigger preemption");
        assert_eq!(sched.pool_in_use(), 0, "all pages returned");
        assert_eq!(r.completed[0].1.len(), 10);
        assert_eq!(r.completed[1].1.len(), 10);
    }

    #[test]
    fn preemption_does_not_change_tokens() {
        // The preempted-and-resumed run must emit exactly the tokens of an
        // unconstrained run.
        let w = weights();
        let cfg = EngineConfig::dense();
        let m = &w.config;
        let one_seq_pages = m.num_layers * m.num_kv_heads * (cfg.paging.pages_for(70) + 1);

        let mut roomy_cfg = SchedulerConfig::new(8192);
        roomy_cfg.chunk_tokens = 16;
        let mut roomy = scheduler(cfg.clone(), roomy_cfg);
        roomy.submit(request(1, 60, 10));
        roomy.submit(request(2, 60, 10));
        let want = roomy.run_to_completion(100_000);
        assert_eq!(want.preemptions, 0);

        let mut tight_cfg = SchedulerConfig::new(one_seq_pages + 2);
        tight_cfg.chunk_tokens = 16;
        tight_cfg.admission = AdmissionPolicy::FirstChunk;
        let mut tight = scheduler(cfg, tight_cfg);
        tight.submit(request(1, 60, 10));
        tight.submit(request(2, 60, 10));
        let got = tight.run_to_completion(100_000);
        assert!(got.preemptions > 0);
        assert_eq!(got.completed, want.completed);
    }

    #[test]
    fn tile_grid_boundary_is_position_pure() {
        // The grid cell is [0, chunk): any prompt at least chunk long has the
        // same boundary, so shared prefixes >= chunk produce identical tile work.
        assert_eq!(tile_grid_boundary(8, 8), 8);
        assert_eq!(tile_grid_boundary(8, 100), 8);
        assert_eq!(tile_grid_boundary(8, 9), 8);
        // Prompts inside the first cell prefill whole (and are never shared: the
        // cache's minimum match is the grid boundary).
        assert_eq!(tile_grid_boundary(8, 5), 5);
    }

    /// Builds a request whose prompt is `shared ++ suffix`.
    fn extend(shared: &[u32], suffix: &[u32], id: u64, gen: usize) -> Request {
        let mut prompt = shared.to_vec();
        prompt.extend_from_slice(suffix);
        Request {
            id,
            prompt,
            max_new_tokens: gen,
        }
    }

    fn shared_tokens(len: usize) -> Vec<u32> {
        (0..len).map(|i| ((i * 5 + 3) % 90) as u32).collect()
    }

    #[test]
    fn prefix_hit_matches_cold_run_and_skips_prefill() {
        let cfg = EngineConfig::lserve_fp16();
        let shared = shared_tokens(40);
        let donor = extend(&shared, &[1, 2, 3, 4, 5, 6, 7, 8], 1, 6);
        let consumer = extend(&shared, &[70, 71, 72, 73, 74, 75, 76, 77], 2, 6);

        // Cold reference: same scheduler policy, prefix cache off.
        let mut cold_cfg = SchedulerConfig::new(4096);
        cold_cfg.chunk_tokens = 8;
        let mut cold = scheduler(cfg.clone(), cold_cfg);
        cold.submit(consumer.clone());
        let cold_report = cold.run_to_completion(10_000);
        let cold_tokens = cold_report.completed[0].1.clone();
        let cold_ttft = cold_report.request_metrics[0].ttft_work_tokens;

        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 8;
        scfg.prefix_cache = true;
        let mut sched = scheduler(cfg, scfg);
        sched.submit(donor);
        sched.run_to_completion(10_000);
        assert!(sched.prefix_cache_entries() > 0, "donor donated anchors");
        sched.submit(consumer);
        let report = sched.run_to_completion(10_000);
        let m2 = report
            .request_metrics
            .iter()
            .find(|m| m.id == 2)
            .expect("consumer completed");
        // The 40 shared tokens sit on tile-grid anchors (multiples of 8).
        assert_eq!(m2.cached_prompt_tokens, 40);
        assert_eq!(
            report.completed.iter().find(|(id, _)| *id == 2).unwrap().1,
            cold_tokens,
            "warm outputs must be bit-identical to cold"
        );
        // Acceptance: warm TTFT (work tokens) at least 3x better than cold.
        assert!(
            m2.ttft_work_tokens * 3 <= cold_ttft,
            "warm ttft {} vs cold {}",
            m2.ttft_work_tokens,
            cold_ttft
        );
        assert!(report.prefix_hit_tokens >= 40);
        assert!(report.prefix_hit_rate() > 0.0);
    }

    #[test]
    fn flush_prefix_cache_returns_all_pages() {
        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 8;
        scfg.prefix_cache = true;
        let mut sched = scheduler(EngineConfig::lserve_fp16(), scfg);
        sched.submit(request(1, 32, 4));
        sched.run_to_completion(10_000);
        assert!(sched.pool_in_use() > 0, "cache retains the donor's pages");
        assert!(sched.prefix_cache_entries() > 0);
        assert!(sched.prefix_cached_page_refs() >= sched.pool_in_use());
        sched.flush_prefix_cache();
        assert_eq!(sched.pool_in_use(), 0, "flush releases everything");
        assert_eq!(sched.prefix_cache_entries(), 0);
    }

    #[test]
    fn multi_turn_followup_hits_completed_conversation() {
        let cfg = EngineConfig::lserve_fp16();
        let mut scfg = SchedulerConfig::new(8192);
        scfg.chunk_tokens = 8;
        scfg.prefix_cache = true;
        let mut sched = scheduler(cfg, scfg);
        let turn1 = request(1, 32, 8);
        sched.submit(turn1.clone());
        let r1 = sched.run_to_completion(10_000);
        let generated = r1.completed[0].1.clone();
        assert_eq!(generated.len(), 8);
        // Turn 2: the whole first exchange plus a new query.
        let mut prompt2 = turn1.prompt.clone();
        prompt2.extend_from_slice(&generated);
        prompt2.extend_from_slice(&[33, 44, 55, 66]);
        sched.submit(Request {
            id: 2,
            prompt: prompt2,
            max_new_tokens: 4,
        });
        let r2 = sched.run_to_completion(10_000);
        let m2 = r2.request_metrics.iter().find(|m| m.id == 2).unwrap();
        // The completed-conversation entry covers prompt + generated[..7]: the
        // deepest match beats every prompt-only anchor.
        assert_eq!(m2.cached_prompt_tokens, 32 + generated.len() - 1);
    }

    #[test]
    fn sub_grid_prompt_never_donates_even_after_long_generation() {
        // A prompt shorter than the tile grid cell tiles only [0, prompt_len)
        // and bases its decode-step indices there, so its KV is not what a cold
        // run of a longer prompt would compute. Even when generation pushes the
        // absorbed conversation past chunk_tokens, nothing may be donated.
        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 16;
        scfg.prefix_cache = true;
        let mut sched = scheduler(EngineConfig::lserve_fp16(), scfg);
        sched.submit(request(1, 4, 40)); // absorbed conversation: 43 tokens
        let r = sched.run_to_completion(10_000);
        assert_eq!(r.completed[0].1.len(), 40);
        assert_eq!(
            sched.prefix_cache_entries(),
            0,
            "sub-grid prompt must not donate its conversation"
        );
        assert_eq!(sched.pool_in_use(), 0);
    }

    #[test]
    fn prefix_cache_evicts_under_pressure_instead_of_blocking() {
        // Pool sized for roughly one sequence: distinct prompts fill the cache,
        // and later admissions must evict stale entries rather than wedge.
        let w = weights();
        let cfg = EngineConfig::dense();
        let m = &w.config;
        let one_seq_pages = m.num_layers * m.num_kv_heads * (cfg.paging.pages_for(48) + 1);
        let mut scfg = SchedulerConfig::new(one_seq_pages + 4);
        scfg.chunk_tokens = 8;
        scfg.prefix_cache = true;
        let mut sched = Scheduler::new(Arc::new(ModelExecutor::new(w, cfg)), scfg);
        for id in 0..4u64 {
            sched.submit(Request {
                id,
                prompt: (0..24)
                    .map(|t| ((t * 7 + id as usize * 13) % 90) as u32)
                    .collect(),
                max_new_tokens: 6,
            });
        }
        let r = sched.run_to_completion(100_000);
        assert_eq!(r.completed.len(), 4, "rejected: {:?}", r.rejected);
        assert!(r.prefix_evictions > 0, "pressure must evict cache entries");
        sched.flush_prefix_cache();
        assert_eq!(sched.pool_in_use(), 0);
    }

    #[test]
    fn swap_preemption_matches_replay_and_reports_migrations() {
        // Same tight-pool workload as `preemption_does_not_change_tokens`, but
        // under PreemptionPolicy::Swap: victims demote their page set instead
        // of releasing it and resume by promotion — outputs must still be
        // bit-identical, and the tier counters must show real traffic.
        let w = weights();
        let cfg = EngineConfig::dense();
        let m = &w.config;
        let one_seq_pages = m.num_layers * m.num_kv_heads * (cfg.paging.pages_for(70) + 1);

        let run = |policy: PreemptionPolicy| {
            let mut scfg = SchedulerConfig::new(one_seq_pages + 2);
            scfg.chunk_tokens = 16;
            scfg.admission = AdmissionPolicy::FirstChunk;
            scfg.preemption = policy;
            let mut sched = scheduler(cfg.clone(), scfg);
            sched.submit(request(1, 60, 10));
            sched.submit(request(2, 60, 10));
            let r = sched.run_to_completion(100_000);
            assert_eq!(sched.pool_in_use(), 0, "hot pages leaked under {policy:?}");
            assert_eq!(
                sched.pool_cold_in_use(),
                0,
                "cold pages leaked under {policy:?}"
            );
            r
        };
        let replay = run(PreemptionPolicy::Replay);
        let swap = run(PreemptionPolicy::Swap);
        assert!(
            swap.preemptions > 0,
            "pool pressure must trigger preemption"
        );
        assert_eq!(swap.completed, replay.completed, "swap changed outputs");
        assert!(swap.pages_demoted > 0, "swap must demote victim pages");
        assert!(swap.pages_promoted > 0, "resume must promote them back");
        assert!(swap.swap_resume_work_tokens > 0, "resume work is accounted");
        assert!(swap.peak_cold_pages > 0);
        assert_eq!(swap.preemption, PreemptionPolicy::Swap);
        assert_eq!(replay.pages_demoted, 0, "replay never touches the tiers");
        assert_eq!(replay.swap_resume_work_tokens, 0);
        // The whole point: resuming by transfer is far cheaper than replaying
        // the victim's context through the forward pass.
        let replayed_tokens: u64 = 60 + 10; // upper bound of one victim replay
        assert!(
            swap.swap_resume_work_tokens < replayed_tokens,
            "swap resume ({}) should undercut replay (~{replayed_tokens})",
            swap.swap_resume_work_tokens
        );
    }

    #[test]
    fn swap_preemption_never_demotes_shared_prefix_pages() {
        // A victim seeded from the prefix cache co-owns its prefix pages with
        // the tree. Swapping it out must leave those pages hot (the tree's
        // readers may need them) and demote only the sole-owned suffix.
        let cfg = EngineConfig::lserve_fp16();
        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 8;
        scfg.prefix_cache = true;
        scfg.preemption = PreemptionPolicy::Swap;
        let mut sched = scheduler(cfg, scfg);
        sched.submit(request(1, 32, 4));
        sched.run_to_completion(10_000);
        assert!(sched.prefix_cache_entries() > 0);
        let tree_pages = sched.pool_in_use();
        // Manually drive a second consumer to a running state, then swap it.
        sched.submit(request(2, 32, 30));
        while sched.running() == 0 {
            sched.step();
        }
        let m2 = sched
            .report_snapshot()
            .request_metrics
            .iter()
            .find(|m| m.id == 2);
        assert!(m2.is_none(), "request 2 still running");
        sched.preempt_index(0);
        assert_eq!(sched.running(), 0);
        assert!(
            sched.pool_in_use() >= tree_pages,
            "co-owned prefix pages must stay hot through a swap-out"
        );
        let r = sched.run_to_completion(10_000);
        assert_eq!(r.completed.len(), 2, "rejected: {:?}", r.rejected);
        sched.flush_prefix_cache();
        assert_eq!(sched.pool_in_use(), 0);
        assert_eq!(sched.pool_cold_in_use(), 0);
    }

    #[test]
    fn report_metrics_track_latency_and_preemptions() {
        let mut scfg = SchedulerConfig::new(8192);
        scfg.chunk_tokens = 8;
        let mut sched = scheduler(EngineConfig::lserve_fp16(), scfg);
        sched.submit(request(1, 32, 6)); // 4 feed iterations before the first token
        sched.submit(request(2, 4, 6));
        let r = sched.run_to_completion(10_000);
        assert_eq!(r.request_metrics.len(), 2);
        let m1 = r.request_metrics[0];
        let m2 = r.request_metrics[1];
        assert_eq!((m1.id, m2.id), (1, 2));
        assert!(
            m1.ttft_iters > m2.ttft_iters,
            "longer prompt must have higher TTFT: {} vs {}",
            m1.ttft_iters,
            m2.ttft_iters
        );
        assert_eq!(m1.tokens, 6);
        assert_eq!(m2.tokens, 6);
        // Decode proceeds one token per iteration once feeding is done (the first
        // iteration emits two tokens — feed completion plus one decode — so the
        // mean sits just below 1).
        assert!(m2.mean_tbt_iters() > 0.0 && m2.mean_tbt_iters() <= 1.0);
        assert_eq!(m1.preemptions + m2.preemptions, 0);
    }
}
