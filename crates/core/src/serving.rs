//! Continuous-batching serving layer: shared page pool, chunked prefill,
//! preemption, batched decode.
//!
//! The paper's efficiency results are measured inside serving systems (vLLM,
//! QServe) whose scheduler interleaves many sequences over one device memory. This
//! module reproduces that control plane at small scale around the
//! executor/state split:
//!
//! * **Iteration-level continuous batching** (Orca): every scheduler iteration
//!   advances all running sequences by one token through
//!   [`ModelExecutor::decode_batch`], which walks layers in the outer loop so the
//!   weight/config traversal is amortized across the batch.
//! * **Chunked prefill**: long prompts are admitted immediately and fed in bounded
//!   chunks interleaved with decode iterations, so one long prompt no longer
//!   head-of-line-blocks the whole batch. The first
//!   `min(chunk_tokens, prompt_len)` tokens go through the fused tile prefill;
//!   the rest advance token-by-token through the decode path, which makes the
//!   numerics independent of how the scheduler slices the remainder across
//!   iterations.
//! * **Preemption and resume**: page demand is computed *exactly* before every
//!   decode iteration ([`SequenceState::pages_needed_for_next_token`]); when
//!   demand exceeds the free pool, the lowest-priority sequence releases all its
//!   pages and re-queues. On re-admission it re-feeds its prompt *plus* the tokens
//!   it had already generated through the identical deterministic pipeline, which
//!   reconstructs a bit-identical cache — so preemption never changes the tokens a
//!   request produces.
//!
//! The determinism guarantee that falls out: for any request set, the batched
//! scheduler's greedy outputs are token-identical to running each request alone on
//! a fresh pool under the same [`SchedulerConfig`].

use std::collections::VecDeque;
use std::sync::Arc;

use lserve_kvcache::PagePool;
use lserve_model::{greedy_next_token, ModelConfig, ModelWeights};

use crate::executor::{ModelExecutor, SequenceState};
use crate::EngineConfig;

/// Pages needed to hold `tokens` tokens of context for one sequence under
/// `cfg` — dense heads grow with context, streaming heads are bounded by their
/// window. This is the footprint estimate the scheduler's admission control
/// uses; tests and benches that want to size a pool relative to "N sequences"
/// should use it instead of re-deriving the formula.
pub fn sequence_pages_estimate(cfg: &EngineConfig, model: &ModelConfig, tokens: usize) -> usize {
    let streaming_heads =
        (cfg.streaming_sparsity * (model.num_layers * model.num_kv_heads) as f64).round() as usize;
    let dense_heads = model.num_layers * model.num_kv_heads - streaming_heads;
    dense_heads * (cfg.paging.pages_for(tokens) + 1)
        + streaming_heads * (cfg.streaming_window.max_pages() + 2)
}

/// A generation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Caller-chosen identifier.
    pub id: u64,
    /// Prompt token ids.
    pub prompt: Vec<u32>,
    /// Number of tokens to generate (greedy).
    pub max_new_tokens: usize,
}

/// Lifecycle state of a request inside the serving engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestStatus {
    /// Waiting for admission (fresh or preempted).
    Queued,
    /// Currently prefilling or decoding.
    Running,
    /// Completed with the generated tokens.
    Finished(Vec<u32>),
    /// Could never fit in the pool (prompt larger than device memory).
    Rejected,
}

/// How the scheduler decides a queued request may start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Admit only when the estimated *full* footprint (prompt + all generated
    /// tokens) fits the free pool. Conservative: preemption is rare, utilization
    /// lower.
    FullFootprint,
    /// Admit as soon as the first prefill chunk fits. Aggressive: memory
    /// oversubscription is resolved by preemption.
    FirstChunk,
}

/// Scheduler policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Physical pages in the shared pool (the device-memory budget).
    pub pool_pages: usize,
    /// Per-sequence prompt tokens fed per scheduler iteration, and the size of the
    /// fused tile-prefill first chunk. Larger values lower prefill cost but stall
    /// the decode batch longer per iteration.
    pub chunk_tokens: usize,
    /// Maximum concurrently running sequences.
    pub max_batch: usize,
    /// Admission policy.
    pub admission: AdmissionPolicy,
}

impl SchedulerConfig {
    /// Defaults: 128-token prefill chunks, batch of up to 64, first-chunk
    /// admission (preemption-backed).
    pub fn new(pool_pages: usize) -> Self {
        Self {
            pool_pages,
            chunk_tokens: 128,
            max_batch: 64,
            admission: AdmissionPolicy::FirstChunk,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_tokens`, `max_batch` or `pool_pages` is zero.
    pub fn validate(&self) {
        assert!(self.pool_pages > 0, "pool must hold at least one page");
        assert!(self.chunk_tokens > 0, "chunk must be at least one token");
        assert!(self.max_batch > 0, "batch must admit at least one sequence");
    }
}

/// Per-request latency/scheduling metrics, in scheduler iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestMetrics {
    /// Request id.
    pub id: u64,
    /// Iterations from submission until the first generated token (time to first
    /// token). Zero when the request finished without emitting any token.
    pub ttft_iters: u64,
    /// Model work (tokens pushed through the forward pass, all sequences counted)
    /// between submission and the first generated token. Unlike iterations, this
    /// is a faithful time proxy when per-iteration prefill work is unbounded —
    /// it is the unit in which chunked prefill's head-of-line win shows up.
    pub ttft_work_tokens: u64,
    /// Iterations between the first and the last generated token.
    pub decode_span_iters: u64,
    /// Tokens generated.
    pub tokens: usize,
    /// Times this request was preempted (pages released, later re-prefilled).
    pub preemptions: u32,
}

impl RequestMetrics {
    /// Mean iterations between consecutive generated tokens (0 for fewer than two
    /// tokens).
    pub fn mean_tbt_iters(&self) -> f64 {
        if self.tokens > 1 {
            self.decode_span_iters as f64 / (self.tokens - 1) as f64
        } else {
            0.0
        }
    }
}

/// Summary of a serving run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServingReport {
    /// `(request id, generated tokens)` for every completed request.
    pub completed: Vec<(u64, Vec<u32>)>,
    /// Requests that could never be admitted.
    pub rejected: Vec<u64>,
    /// Scheduler iterations executed.
    pub scheduler_steps: u64,
    /// Total decode steps across all sequences (prompt-continuation feeding
    /// excluded).
    pub decode_steps: u64,
    /// High-water mark of pool pages in use.
    pub peak_pages: usize,
    /// Total preemption events across the run.
    pub preemptions: u64,
    /// Per-request latency metrics, sorted by request id on completion.
    pub request_metrics: Vec<RequestMetrics>,
}

/// Metrics bookkeeping that survives a request's whole lifetime, moved as one
/// unit between the queued and running representations (including across
/// preemption cycles).
#[derive(Debug, Clone, Copy)]
struct RequestProgress {
    submit_iter: u64,
    submit_work: u64,
    first_token_iter: Option<u64>,
    first_token_work: Option<u64>,
    last_token_iter: u64,
    preemptions: u32,
}

/// A request waiting for (re-)admission; carries generation progress across
/// preemptions.
#[derive(Debug, Clone)]
struct QueuedSeq {
    req: Request,
    priority: u64,
    /// Tokens already generated (and emitted) before a preemption.
    generated: Vec<u32>,
    progress: RequestProgress,
}

/// A running sequence: executor state plus feed/generation progress.
#[derive(Debug)]
struct SchedSeq {
    req: Request,
    priority: u64,
    state: SequenceState,
    /// Tokens generated before the last preemption; re-fed after the prompt on
    /// resume so the cache is reconstructed exactly.
    resume_feed: Vec<u32>,
    /// Feed tokens (prompt + resume_feed) consumed so far.
    fed: usize,
    /// All tokens emitted for this request (including pre-preemption ones).
    generated: Vec<u32>,
    /// Most recently emitted token, not yet consumed by a decode step.
    last_token: Option<u32>,
    progress: RequestProgress,
}

impl SchedSeq {
    fn feed_len(&self) -> usize {
        self.req.prompt.len() + self.resume_feed.len()
    }

    fn feed_token(&self, i: usize) -> u32 {
        if i < self.req.prompt.len() {
            self.req.prompt[i]
        } else {
            self.resume_feed[i - self.req.prompt.len()]
        }
    }

    /// Feed prefix that goes through the fused tile prefill. A function of the
    /// prompt length and the chunk size only — *not* of resume state — so a resumed
    /// sequence replays the exact computation of its first run.
    fn tile_boundary(&self, chunk_tokens: usize) -> usize {
        chunk_tokens.min(self.req.prompt.len())
    }
}

/// Continuous-batching scheduler over one shared page pool.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use lserve_core::{EngineConfig, ModelExecutor, Request, Scheduler, SchedulerConfig};
/// use lserve_model::{ModelConfig, ModelWeights};
///
/// let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 3));
/// let exec = Arc::new(ModelExecutor::new(weights, EngineConfig::lserve_fp16()));
/// let mut scfg = SchedulerConfig::new(2048);
/// scfg.chunk_tokens = 4; // prompts longer than 4 tokens prefill across iterations
/// let mut sched = Scheduler::new(exec, scfg);
/// sched.submit(Request { id: 1, prompt: (0..16).collect(), max_new_tokens: 4 });
/// let report = sched.run_to_completion(10_000);
/// assert_eq!(report.completed.len(), 1);
/// assert_eq!(report.request_metrics.len(), 1);
/// ```
#[derive(Debug)]
pub struct Scheduler {
    exec: Arc<ModelExecutor>,
    scfg: SchedulerConfig,
    pool: PagePool,
    queue: VecDeque<QueuedSeq>,
    running: Vec<SchedSeq>,
    report: ServingReport,
    next_priority: u64,
    /// Monotone clock: tokens pushed through the forward pass across all
    /// sequences (tile prefill, prompt-continuation feed, and decode).
    work_tokens: u64,
}

impl Scheduler {
    /// Creates a scheduler over `exec` with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if `scfg` is inconsistent (see [`SchedulerConfig::validate`]).
    pub fn new(exec: Arc<ModelExecutor>, scfg: SchedulerConfig) -> Self {
        scfg.validate();
        let pool = PagePool::new(
            exec.config().paging,
            scfg.pool_pages,
            exec.weights().config.head_dim,
        );
        Self {
            exec,
            scfg,
            pool,
            queue: VecDeque::new(),
            running: Vec::new(),
            report: ServingReport::default(),
            next_priority: 0,
            work_tokens: 0,
        }
    }

    /// The shared executor.
    pub fn executor(&self) -> &Arc<ModelExecutor> {
        &self.exec
    }

    /// The scheduling policy.
    pub fn config(&self) -> &SchedulerConfig {
        &self.scfg
    }

    /// Enqueues a request. Earlier submissions have higher priority (FCFS).
    pub fn submit(&mut self, req: Request) {
        let priority = self.next_priority;
        self.next_priority += 1;
        self.queue.push_back(QueuedSeq {
            req,
            priority,
            generated: Vec::new(),
            progress: RequestProgress {
                submit_iter: self.report.scheduler_steps,
                submit_work: self.work_tokens,
                first_token_iter: None,
                first_token_work: None,
                last_token_iter: 0,
                preemptions: 0,
            },
        });
    }

    /// Requests waiting for admission (fresh or preempted).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Sequences currently prefilling or decoding.
    pub fn running(&self) -> usize {
        self.running.len()
    }

    /// Pages currently in use in the shared pool.
    pub fn pool_in_use(&self) -> usize {
        self.pool.in_use()
    }

    /// The live (unsorted) report accumulated so far.
    pub fn report_snapshot(&self) -> &ServingReport {
        &self.report
    }

    /// Lifecycle state of request `id`, or `None` for an unknown id. A preempted
    /// request reports [`RequestStatus::Queued`] until it is re-admitted. With
    /// duplicate ids the live states (queued/running) win over finished ones.
    pub fn status(&self, id: u64) -> Option<RequestStatus> {
        if self.queue.iter().any(|q| q.req.id == id) {
            return Some(RequestStatus::Queued);
        }
        if self.running.iter().any(|s| s.req.id == id) {
            return Some(RequestStatus::Running);
        }
        if let Some((_, tokens)) = self.report.completed.iter().find(|(cid, _)| *cid == id) {
            return Some(RequestStatus::Finished(tokens.clone()));
        }
        if self.report.rejected.contains(&id) {
            return Some(RequestStatus::Rejected);
        }
        None
    }

    /// Pages needed to hold `tokens` tokens of context for one sequence under the
    /// current policy (see [`sequence_pages_estimate`]).
    fn pages_estimate(&self, tokens: usize) -> usize {
        sequence_pages_estimate(self.exec.config(), &self.exec.weights().config, tokens)
    }

    /// One scheduler iteration: admit, feed prompt chunks, reserve decode pages
    /// (preempting on pressure), then advance every ready sequence by one decode
    /// step (continuous batching).
    pub fn step(&mut self) {
        self.report.scheduler_steps += 1;
        let now = self.report.scheduler_steps;
        self.admit();
        self.prefill_phase(now);
        self.decode_phase(now);
        self.report.peak_pages = self.report.peak_pages.max(self.pool.peak_in_use());
    }

    /// Runs until every request completes or `max_steps` scheduler iterations
    /// pass. Returns the report (sorted by request id).
    pub fn run_to_completion(&mut self, max_steps: u64) -> ServingReport {
        let mut steps = 0;
        while (!self.queue.is_empty() || !self.running.is_empty()) && steps < max_steps {
            self.step();
            steps += 1;
        }
        let mut report = self.report.clone();
        report.completed.sort_by_key(|(id, _)| *id);
        report.rejected.sort_unstable();
        report.request_metrics.sort_by_key(|m| m.id);
        report
    }

    /// FCFS admission from the queue head.
    fn admit(&mut self) {
        while self.running.len() < self.scfg.max_batch {
            let Some(front) = self.queue.front() else {
                break;
            };
            let full_tokens = front.req.prompt.len() + front.req.max_new_tokens;
            // A generation needs at least one prompt token (the first logits come
            // from prefill); an empty prompt can never become decode-ready.
            if front.req.prompt.is_empty()
                || self.pages_estimate(full_tokens) > self.pool.capacity()
            {
                let q = self.queue.pop_front().expect("front checked");
                self.report.rejected.push(q.req.id);
                continue;
            }
            let feed_len = front.req.prompt.len() + front.generated.len();
            let admit_tokens = match self.scfg.admission {
                AdmissionPolicy::FullFootprint => full_tokens,
                AdmissionPolicy::FirstChunk => self.scfg.chunk_tokens.min(feed_len),
            };
            if self.pages_estimate(admit_tokens) > self.pool.free_pages() {
                break; // wait for running sequences to finish or be preempted
            }
            let q = self.queue.pop_front().expect("front checked");
            let state = self.exec.new_sequence();
            self.running.push(SchedSeq {
                generated: q.generated.clone(),
                resume_feed: q.generated,
                req: q.req,
                priority: q.priority,
                state,
                fed: 0,
                last_token: None,
                progress: q.progress,
            });
        }
        // Resumed sequences have old (small) priorities; keep the running list in
        // priority order so phases and victim selection stay O(1) to reason about.
        self.running.sort_by_key(|s| s.priority);
    }

    /// Feeds prompt (and resume) tokens, up to `chunk_tokens` per sequence per
    /// iteration, in priority order.
    fn prefill_phase(&mut self, now: u64) {
        let exec = Arc::clone(&self.exec);
        let order: Vec<u64> = self.running.iter().map(|s| s.priority).collect();
        for pr in order {
            // Re-locate: earlier work in this phase may have preempted sequences.
            let Some(i) = self.running.iter().position(|s| s.priority == pr) else {
                continue;
            };
            if self.running[i].fed >= self.running[i].feed_len() {
                continue;
            }
            let mut budget = self.scfg.chunk_tokens;
            // First chunk: fused tile prefill over a boundary that depends only on
            // (prompt, chunk_tokens), so replays after preemption are identical.
            if self.running[i].fed == 0 {
                let boundary = self.running[i].tile_boundary(self.scfg.chunk_tokens);
                loop {
                    if self.pages_estimate(boundary) <= self.pool.free_pages() {
                        break;
                    }
                    if !self.make_room_below(pr) {
                        break;
                    }
                }
                let tokens: Vec<u32> = (0..boundary)
                    .map(|t| self.running[i].feed_token(t))
                    .collect();
                match exec.prefill(&mut self.running[i].state, &mut self.pool, &tokens) {
                    Ok(out) => {
                        self.running[i].fed = boundary;
                        self.work_tokens += boundary as u64;
                        budget = budget.saturating_sub(boundary);
                        if self.running[i].fed == self.running[i].feed_len() {
                            self.finish_feed(i, &out.logits, now);
                            continue;
                        }
                    }
                    Err(_) => {
                        // The estimate was optimistic and no lower-priority victim
                        // is left. Give the partial pages back and retry on a later
                        // iteration — unless this sequence is alone, in which case
                        // it can never fit and must fail.
                        self.running[i].state.release(&mut self.pool);
                        self.running[i].fed = 0;
                        if self.running.len() == 1 && self.queue.is_empty() {
                            let seq = self.running.remove(i);
                            self.report.rejected.push(seq.req.id);
                        }
                        continue;
                    }
                }
            }
            // Continuation: token-by-token through the decode path. Numerically
            // independent of how many tokens any iteration feeds.
            while budget > 0 && self.running[i].fed < self.running[i].feed_len() {
                let need = self.running[i]
                    .state
                    .pages_needed_for_next_token(&self.pool);
                if need > self.pool.free_pages() {
                    if self.make_room_below(pr) {
                        continue;
                    }
                    break; // wait for a later iteration
                }
                let t = self.running[i].feed_token(self.running[i].fed);
                match exec.decode_step(&mut self.running[i].state, &mut self.pool, t) {
                    Ok(out) => {
                        self.running[i].fed += 1;
                        self.work_tokens += 1;
                        budget -= 1;
                        if self.running[i].fed == self.running[i].feed_len() {
                            self.finish_feed(i, &out.logits, now);
                            break;
                        }
                    }
                    Err(_) => {
                        // Exact reservation should prevent this; self-preempt to
                        // discard the partially-written token and replay later.
                        self.preempt_index(i);
                        break;
                    }
                }
            }
        }
    }

    /// Reserve pages for one decode token per ready sequence, preempting from the
    /// lowest priority until demand fits, then run the batched decode step.
    fn decode_phase(&mut self, now: u64) {
        loop {
            let demand: usize = self
                .running
                .iter()
                .filter(|s| s.last_token.is_some())
                .map(|s| s.state.pages_needed_for_next_token(&self.pool))
                .sum();
            if demand <= self.pool.free_pages() {
                break;
            }
            if self.running.len() <= 1 {
                // Nothing to preempt in favor of: the lone sequence cannot grow any
                // further. Finish it with what it has (bounded-memory truncation).
                if let Some(seq) = self.running.pop() {
                    self.complete(seq);
                }
                return;
            }
            // Victim: lowest priority = last in the sorted running list.
            let victim = self.running.len() - 1;
            self.preempt_index(victim);
        }
        // Batched decode: one token for every sequence whose feed is complete.
        let exec = Arc::clone(&self.exec);
        let mut batch_idx: Vec<usize> = Vec::new();
        let mut batch: Vec<(&mut SequenceState, u32)> = Vec::new();
        for (i, seq) in self.running.iter_mut().enumerate() {
            if let Some(t) = seq.last_token {
                batch_idx.push(i);
                batch.push((&mut seq.state, t));
            }
        }
        if batch.is_empty() {
            return;
        }
        let results = exec.decode_batch(&mut self.pool, &mut batch);
        drop(batch);
        // Walk results in reverse index order so removals (completion, fallback
        // preemption) do not shift the indices still to be visited.
        for (&i, result) in batch_idx.iter().zip(results.iter()).rev() {
            match result {
                Ok(out) => {
                    self.report.decode_steps += 1;
                    self.work_tokens += 1;
                    let next = greedy_next_token(&out.logits);
                    self.emit_token(i, next, now);
                }
                Err(_) => {
                    // Reservation makes this unreachable in practice; keep the
                    // conservative fallback anyway.
                    self.preempt_index(i);
                }
            }
        }
    }

    /// The feed (prompt + resume) is fully consumed: the last logits determine the
    /// next token to emit.
    fn finish_feed(&mut self, i: usize, last_logits: &[f32], now: u64) {
        let next = greedy_next_token(last_logits);
        if self.running[i].req.max_new_tokens == 0 {
            let seq = self.running.remove(i);
            self.complete(seq);
            return;
        }
        self.emit_token(i, next, now);
    }

    /// Records a newly generated token for running sequence `i`, completing the
    /// request when it reaches its token budget.
    fn emit_token(&mut self, i: usize, token: u32, now: u64) {
        let work_now = self.work_tokens;
        let seq = &mut self.running[i];
        debug_assert!(seq.generated.len() < seq.req.max_new_tokens);
        seq.generated.push(token);
        seq.last_token = Some(token);
        if seq.progress.first_token_iter.is_none() {
            seq.progress.first_token_iter = Some(now);
        }
        if seq.progress.first_token_work.is_none() {
            seq.progress.first_token_work = Some(work_now);
        }
        seq.progress.last_token_iter = now;
        if seq.generated.len() >= seq.req.max_new_tokens {
            let seq = self.running.remove(i);
            self.complete(seq);
        }
    }

    /// Releases a finished sequence and records its report entries.
    fn complete(&mut self, mut seq: SchedSeq) {
        seq.state.release(&mut self.pool);
        let p = seq.progress;
        self.report.request_metrics.push(RequestMetrics {
            id: seq.req.id,
            ttft_iters: p.first_token_iter.map_or(0, |first| first - p.submit_iter),
            ttft_work_tokens: p.first_token_work.map_or(0, |first| first - p.submit_work),
            decode_span_iters: p
                .first_token_iter
                .map_or(0, |first| p.last_token_iter - first),
            tokens: seq.generated.len(),
            preemptions: p.preemptions,
        });
        self.report.completed.push((seq.req.id, seq.generated));
    }

    /// Preempts the lowest-priority running sequence whose priority is *lower*
    /// than `than` (i.e. a strictly later arrival). Returns `false` when no such
    /// victim exists.
    fn make_room_below(&mut self, than: u64) -> bool {
        match self.running.last() {
            Some(seq) if seq.priority > than => {
                let victim = self.running.len() - 1;
                self.preempt_index(victim);
                true
            }
            _ => false,
        }
    }

    /// Preempts running sequence `i`: releases every page it holds and re-queues
    /// it (by priority) with its generation progress, to be re-fed later.
    fn preempt_index(&mut self, i: usize) {
        let mut seq = self.running.remove(i);
        seq.state.release(&mut self.pool);
        self.report.preemptions += 1;
        let q = QueuedSeq {
            req: seq.req,
            priority: seq.priority,
            generated: seq.generated,
            progress: RequestProgress {
                preemptions: seq.progress.preemptions + 1,
                ..seq.progress
            },
        };
        // Keep the queue sorted by priority so FCFS order survives preemption.
        let pos = self
            .queue
            .iter()
            .position(|other| other.priority > q.priority)
            .unwrap_or(self.queue.len());
        self.queue.insert(pos, q);
    }
}

/// Multi-sequence serving engine over one shared page pool.
///
/// Compatibility facade over [`Scheduler`]: monolithic prefill (unbounded chunk)
/// and conservative full-footprint admission, which is the original FCFS
/// continuous-batching behaviour. New code that wants chunked prefill or
/// preemption should construct a [`Scheduler`] directly.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use lserve_core::{EngineConfig, Request, ServingEngine};
/// use lserve_model::{ModelConfig, ModelWeights};
///
/// let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 3));
/// let mut srv = ServingEngine::new(weights, EngineConfig::lserve_fp16(), 2048);
/// srv.submit(Request { id: 1, prompt: vec![1, 2, 3], max_new_tokens: 4 });
/// let report = srv.run_to_completion(10_000);
/// assert_eq!(report.completed.len(), 1);
/// ```
#[derive(Debug)]
pub struct ServingEngine {
    inner: Scheduler,
}

impl ServingEngine {
    /// Creates a serving engine whose shared pool holds `pool_pages` physical pages
    /// (the device-memory budget).
    pub fn new(weights: Arc<ModelWeights>, cfg: EngineConfig, pool_pages: usize) -> Self {
        let exec = Arc::new(ModelExecutor::new(weights, cfg));
        let scfg = SchedulerConfig {
            pool_pages,
            chunk_tokens: usize::MAX,
            max_batch: usize::MAX,
            admission: AdmissionPolicy::FullFootprint,
        };
        Self {
            inner: Scheduler::new(exec, scfg),
        }
    }

    /// Enqueues a request.
    pub fn submit(&mut self, req: Request) {
        self.inner.submit(req);
    }

    /// Requests waiting for admission.
    pub fn queued(&self) -> usize {
        self.inner.queued()
    }

    /// Sequences currently decoding.
    pub fn running(&self) -> usize {
        self.inner.running()
    }

    /// One scheduler iteration: admit what fits, then advance every running
    /// sequence by one decode step (continuous batching).
    pub fn step(&mut self) {
        self.inner.step();
    }

    /// Runs until every request completes or `max_steps` scheduler iterations
    /// pass. Returns the report (sorted by request id).
    pub fn run_to_completion(&mut self, max_steps: u64) -> ServingReport {
        self.inner.run_to_completion(max_steps)
    }

    /// Pages currently in use in the shared pool.
    pub fn pool_in_use(&self) -> usize {
        self.inner.pool_in_use()
    }

    /// Lifecycle state of request `id` (see [`Scheduler::status`]).
    pub fn status(&self, id: u64) -> Option<RequestStatus> {
        self.inner.status(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use lserve_model::ModelConfig;

    fn weights() -> Arc<ModelWeights> {
        Arc::new(ModelWeights::random(&ModelConfig::tiny(), 5))
    }

    fn request(id: u64, len: usize, gen: usize) -> Request {
        Request {
            id,
            prompt: (0..len).map(|i| (i % 90) as u32).collect(),
            max_new_tokens: gen,
        }
    }

    fn scheduler(cfg: EngineConfig, scfg: SchedulerConfig) -> Scheduler {
        Scheduler::new(Arc::new(ModelExecutor::new(weights(), cfg)), scfg)
    }

    #[test]
    fn single_request_completes() {
        let mut srv = ServingEngine::new(weights(), EngineConfig::lserve_fp16(), 2048);
        srv.submit(request(1, 8, 5));
        let r = srv.run_to_completion(1000);
        assert_eq!(r.completed.len(), 1);
        assert_eq!(r.completed[0].1.len(), 5);
        assert!(r.rejected.is_empty());
        assert_eq!(srv.pool_in_use(), 0, "all pages returned");
    }

    #[test]
    fn serving_output_matches_standalone_engine() {
        let w = weights();
        let mut srv = ServingEngine::new(Arc::clone(&w), EngineConfig::dense(), 4096);
        srv.submit(request(1, 6, 6));
        let r = srv.run_to_completion(1000);
        let cfg = EngineConfig::dense();
        let mut pool = cfg.make_pool_for(&w.config, 64);
        let mut e = Engine::new(w, cfg);
        let want = e.generate(&mut pool, &request(1, 6, 6).prompt, 6).unwrap();
        assert_eq!(r.completed[0].1, want);
    }

    #[test]
    fn batch_of_requests_all_complete() {
        let mut srv = ServingEngine::new(weights(), EngineConfig::lserve_fp16(), 8192);
        for id in 0..6 {
            srv.submit(request(id, 6 + id as usize, 4));
        }
        let r = srv.run_to_completion(10_000);
        assert_eq!(r.completed.len(), 6);
        let ids: Vec<u64> = r.completed.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn oversized_request_rejected_not_deadlocked() {
        let mut srv = ServingEngine::new(weights(), EngineConfig::dense(), 16);
        srv.submit(request(1, 512, 4)); // needs ~40 pages, can never fit in 16
        srv.submit(request(2, 4, 2));
        let r = srv.run_to_completion(1000);
        assert_eq!(r.rejected, vec![1]);
        assert_eq!(r.completed.len(), 1);
        assert_eq!(r.completed[0].0, 2);
    }

    #[test]
    fn status_tracks_request_lifecycle() {
        // 24 pages: request 1 (est. 14 pages) fits, request 2 (est. 32) never can.
        let mut srv = ServingEngine::new(weights(), EngineConfig::lserve_fp16(), 24);
        assert_eq!(srv.status(1), None);
        srv.submit(request(1, 4, 20));
        srv.submit(request(2, 600, 4)); // can never fit: rejected at admission
        assert_eq!(srv.status(1), Some(RequestStatus::Queued));
        srv.step();
        assert_eq!(srv.status(1), Some(RequestStatus::Running));
        assert_eq!(srv.status(2), Some(RequestStatus::Rejected));
        let r = srv.run_to_completion(1000);
        match srv.status(1) {
            Some(RequestStatus::Finished(tokens)) => {
                assert_eq!(tokens.len(), 20);
                assert_eq!(tokens, r.completed[0].1);
            }
            other => panic!("expected finished, got {other:?}"),
        }
    }

    #[test]
    fn empty_prompt_rejected_not_stuck() {
        let mut srv = ServingEngine::new(weights(), EngineConfig::lserve_fp16(), 2048);
        srv.submit(request(1, 0, 3));
        srv.submit(request(2, 4, 3));
        let r = srv.run_to_completion(1000);
        assert_eq!(r.rejected, vec![1]);
        assert_eq!(r.completed.len(), 1);
        assert!(r.scheduler_steps < 100, "must not spin to the step cap");
    }

    #[test]
    fn memory_pressure_serializes_admission() {
        // Pool fits roughly one dense sequence at a time; both must still finish.
        let w = weights();
        let cfg = EngineConfig::dense();
        let one_seq_pages = {
            let m = &w.config;
            m.num_layers * m.num_kv_heads * (cfg.paging.pages_for(40) + 1)
        };
        let mut srv = ServingEngine::new(w, cfg, one_seq_pages + 4);
        srv.submit(request(1, 16, 8));
        srv.submit(request(2, 16, 8));
        let r = srv.run_to_completion(10_000);
        assert_eq!(r.completed.len(), 2);
        assert!(r.peak_pages <= one_seq_pages + 4);
    }

    #[test]
    fn continuous_batching_interleaves() {
        let mut srv = ServingEngine::new(weights(), EngineConfig::lserve_fp16(), 8192);
        srv.submit(request(1, 4, 10));
        srv.submit(request(2, 4, 10));
        srv.step();
        assert_eq!(srv.running(), 2, "both admitted in one step");
    }

    #[test]
    fn chunked_prefill_interleaves_long_prompt_with_decode() {
        // One long prompt plus one short request: with chunked prefill, the short
        // request must finish long before the long prompt is even fully fed.
        let mut scfg = SchedulerConfig::new(8192);
        scfg.chunk_tokens = 8;
        let mut sched = scheduler(EngineConfig::lserve_fp16(), scfg);
        sched.submit(request(1, 96, 4)); // 96-token prompt: 12 iterations of feeding
        sched.submit(request(2, 4, 3));
        let mut short_done_at = None;
        for iter in 1..200u64 {
            sched.step();
            if short_done_at.is_none()
                && sched
                    .report_snapshot()
                    .completed
                    .iter()
                    .any(|(id, _)| *id == 2)
            {
                short_done_at = Some(iter);
            }
            if sched.queued() == 0 && sched.running() == 0 {
                break;
            }
        }
        let r = sched.run_to_completion(1);
        assert_eq!(r.completed.len(), 2);
        let short_done_at = short_done_at.expect("short request completed");
        assert!(
            short_done_at <= 6,
            "short request head-of-line blocked until iteration {short_done_at}"
        );
    }

    #[test]
    fn chunked_prefill_output_matches_monolithic_prefill() {
        // With FP16 paging and no sparsity interference, feeding the prompt in
        // chunks must not change the greedy output of a solo request (chunk
        // boundaries only move computation between the tile and decode paths of the
        // same deterministic pipeline; the greedy argmax survives the reordering
        // at this scale).
        let w = weights();
        let cfg = EngineConfig::dense();
        let mut mono = ServingEngine::new(Arc::clone(&w), cfg.clone(), 4096);
        mono.submit(request(7, 24, 8));
        let want = mono.run_to_completion(10_000).completed[0].1.clone();

        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 7; // does not divide 24: exercises a ragged last chunk
        let mut sched = scheduler(cfg, scfg);
        sched.submit(request(7, 24, 8));
        let r = sched.run_to_completion(10_000);
        assert_eq!(r.completed[0].1, want);
    }

    #[test]
    fn preemption_fires_and_everything_completes() {
        // First-chunk admission over a pool that cannot hold both sequences'
        // full footprint: the scheduler must preempt (not deadlock, not reject)
        // and still complete both requests.
        let w = weights();
        let cfg = EngineConfig::dense();
        let m = &w.config;
        // Both prompts fit at admission; decoding both to completion overflows.
        let one_seq_pages = m.num_layers * m.num_kv_heads * (cfg.paging.pages_for(70) + 1);
        let mut scfg = SchedulerConfig::new(one_seq_pages + 2);
        scfg.chunk_tokens = 16;
        scfg.admission = AdmissionPolicy::FirstChunk;
        let mut sched = Scheduler::new(Arc::new(ModelExecutor::new(w, cfg)), scfg);
        sched.submit(request(1, 60, 10));
        sched.submit(request(2, 60, 10));
        let r = sched.run_to_completion(100_000);
        assert_eq!(r.completed.len(), 2, "rejected: {:?}", r.rejected);
        assert!(r.preemptions > 0, "pool pressure must trigger preemption");
        assert_eq!(sched.pool_in_use(), 0, "all pages returned");
        assert_eq!(r.completed[0].1.len(), 10);
        assert_eq!(r.completed[1].1.len(), 10);
    }

    #[test]
    fn preemption_does_not_change_tokens() {
        // The preempted-and-resumed run must emit exactly the tokens of an
        // unconstrained run.
        let w = weights();
        let cfg = EngineConfig::dense();
        let m = &w.config;
        let one_seq_pages = m.num_layers * m.num_kv_heads * (cfg.paging.pages_for(70) + 1);

        let mut roomy_cfg = SchedulerConfig::new(8192);
        roomy_cfg.chunk_tokens = 16;
        let mut roomy = scheduler(cfg.clone(), roomy_cfg);
        roomy.submit(request(1, 60, 10));
        roomy.submit(request(2, 60, 10));
        let want = roomy.run_to_completion(100_000);
        assert_eq!(want.preemptions, 0);

        let mut tight_cfg = SchedulerConfig::new(one_seq_pages + 2);
        tight_cfg.chunk_tokens = 16;
        tight_cfg.admission = AdmissionPolicy::FirstChunk;
        let mut tight = scheduler(cfg, tight_cfg);
        tight.submit(request(1, 60, 10));
        tight.submit(request(2, 60, 10));
        let got = tight.run_to_completion(100_000);
        assert!(got.preemptions > 0);
        assert_eq!(got.completed, want.completed);
    }

    #[test]
    fn report_metrics_track_latency_and_preemptions() {
        let mut scfg = SchedulerConfig::new(8192);
        scfg.chunk_tokens = 8;
        let mut sched = scheduler(EngineConfig::lserve_fp16(), scfg);
        sched.submit(request(1, 32, 6)); // 4 feed iterations before the first token
        sched.submit(request(2, 4, 6));
        let r = sched.run_to_completion(10_000);
        assert_eq!(r.request_metrics.len(), 2);
        let m1 = r.request_metrics[0];
        let m2 = r.request_metrics[1];
        assert_eq!((m1.id, m2.id), (1, 2));
        assert!(
            m1.ttft_iters > m2.ttft_iters,
            "longer prompt must have higher TTFT: {} vs {}",
            m1.ttft_iters,
            m2.ttft_iters
        );
        assert_eq!(m1.tokens, 6);
        assert_eq!(m2.tokens, 6);
        // Decode proceeds one token per iteration once feeding is done (the first
        // iteration emits two tokens — feed completion plus one decode — so the
        // mean sits just below 1).
        assert!(m2.mean_tbt_iters() > 0.0 && m2.mean_tbt_iters() <= 1.0);
        assert_eq!(m1.preemptions + m2.preemptions, 0);
    }
}
