//! Continuous-batching serving layer: streamed request lifecycles over a shared
//! page pool, chunked prefill, SLO-class scheduling, preemption, batched decode.
//!
//! The paper's efficiency results are measured inside serving systems (vLLM,
//! QServe) whose scheduler interleaves many sequences over one device memory, and
//! its headline metrics — TTFT and per-token decode latency — are *interactive*
//! metrics. This module reproduces that control plane at small scale around the
//! executor/state split, fronted by a request-handle API:
//!
//! * **Request handles with a streamed event lifecycle**: callers build a
//!   [`RequestSpec`] (SLO class, optional work-token deadline, stop conditions,
//!   optional multi-turn session) and [`Scheduler::submit`] returns a
//!   [`RequestHandle`] whose drainable event queue yields [`ServingEvent`]s —
//!   `Admitted`, `FirstToken`, `Token`, `Preempted`, `Resumed`, `Finished`,
//!   `Cancelled`, `Rejected` — as [`Scheduler::step`] produces them. Std-only,
//!   no async runtime: events cross an `Arc<Mutex<VecDeque>>`, the same
//!   discipline as the scoped-thread executor. Handles support
//!   [`RequestHandle::cancel`]: pages are released at the next step boundary,
//!   the completed prefix is donated to the prefix cache, and survivors'
//!   outputs remain bit-identical to solo runs.
//! * **Class- and cost-aware scheduling**: admission ordering and preemption
//!   victim selection consult the [`SloClass`] (`Interactive` beats `Batch`
//!   beats `BestEffort`), the request's virtual deadline (EDF within a class,
//!   in work tokens; requests without a deadline age via
//!   [`SchedulerConfig::no_deadline_slack`], so nothing starves within its
//!   class), and — under [`PreemptionPolicy::Swap`] — the per-victim swap cost
//!   (fewest sole-owned hot pages).
//! * **Iteration-level continuous batching** (Orca): every scheduler iteration
//!   advances all running sequences by one token through
//!   [`ModelExecutor::decode_batch`], which walks layers in the outer loop so the
//!   weight/config traversal is amortized across the batch.
//! * **Chunked prefill**: long prompts are admitted immediately and fed in bounded
//!   chunks interleaved with decode iterations, so one long prompt no longer
//!   head-of-line-blocks the whole batch. The first
//!   `min(chunk_tokens, prompt_len)` tokens go through the fused tile prefill;
//!   the rest advance token-by-token through the decode path, which makes the
//!   numerics independent of how the scheduler slices the remainder across
//!   iterations.
//! * **Preemption and resume**: page demand is computed *exactly* before every
//!   decode iteration ([`SequenceState::pages_needed_for_next_token`]); when
//!   demand exceeds the free pool, a cost- and class-chosen victim releases (or
//!   swap-parks) its pages and re-queues. On re-admission it re-feeds its prompt
//!   *plus* the tokens it had already generated through the identical
//!   deterministic pipeline (or promotes its swapped pages), which reconstructs a
//!   bit-identical cache — so preemption never changes the tokens a request
//!   produces.
//! * **Cross-request prefix caching** (opt-in via
//!   [`SchedulerConfig::prefix_cache`]): prompts are matched against a radix tree
//!   of previously computed prefixes ([`lserve_prefixcache::PrefixCache`]). A hit
//!   seeds the new sequence with the cached pages (refcount-shared, copy-on-write
//!   on append) and only the prompt suffix is prefilled. Sequences donate anchors
//!   into the tree on every prefill-grid boundary and donate their full
//!   conversation on completion *or cancellation*, and the tree's LRU entries are
//!   evicted before any running sequence is preempted. Prefix stability rests on
//!   the *fixed prefill tile grid* (see [`tile_grid_boundary`]).
//! * **Multi-turn sessions**: a [`RequestSpec::session`] id makes the new turn's
//!   prompt extend the session's recorded conversation (prior prompt + output),
//!   so with the prefix cache enabled a follow-up turn starts from the donated
//!   pages of the previous one.
//! * **Sparsity-aware parallel decode** ([`SchedulerConfig::decode_threads`],
//!   default from `LSERVE_DECODE_THREADS`): every prefill/decode attention
//!   phase runs as *(sequence × KV-head)* shards, LPT-balanced by the per-head
//!   sparsity cost across a scoped-thread worker pool with work stealing.
//!
//! The determinism guarantee that falls out: for any request set — including
//! arbitrary cancellations and stop-condition terminations — every surviving
//! request's greedy outputs are token-identical to running it alone on a fresh
//! pool under the same [`SchedulerConfig`], with or without the prefix cache,
//! across chunk sizes, pool pressures, KV precisions, preemption policies, and
//! decode worker-thread counts.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use lserve_kvcache::{
    migration_from_env, tier_config_from_env, MigrationMode, PagePool, TierConfig,
};
use lserve_model::{greedy_next_token, ModelConfig, ModelWeights};
use lserve_prefixcache::{PrefixCache, PrefixCacheStats};
use lserve_trace::{lane, Tracer};

use lserve_costmodel::{devices_from_env, PlacementPolicy, Topology, DEFAULT_GATHER_COST_TOKENS};

use crate::config::decode_threads_from_env;
use crate::dag::{
    BranchSpec, DagStats, DagStore, ForkError, ForkOutcome, JoinPolicy, JoinStatus,
    SparsityOverride, SparsitySchedule,
};
use crate::executor::{ModelExecutor, SequenceState};
use crate::prefix::CachedPrefix;
use crate::sharding::ShardingPlan;
use crate::stats::ParallelExecStats;
use crate::EngineConfig;

/// The prefill tile grid: the fused tile-prefill path covers absolute token
/// positions `[0, chunk_tokens)` — the first grid cell — and every position at or
/// beyond the grid boundary is always fed through the per-token decode path, no
/// matter how the scheduler slices iterations, whether the sequence is resuming
/// from preemption, or how much of its prompt came from the prefix cache.
///
/// Because the boundary is a pure function of absolute token position (not of how
/// much of this particular prompt remains), the KV written for any prompt prefix
/// of at least `chunk_tokens` tokens is bit-identical across requests that share
/// it — the invariant that lets the prefix cache hand one request's pages to
/// another without changing a single output token. A prompt shorter than the grid
/// cell lies entirely inside it and prefills in one fused call; such prompts are
/// below the cache's minimum match and are never shared.
pub fn tile_grid_boundary(chunk_tokens: usize, prompt_len: usize) -> usize {
    chunk_tokens.min(prompt_len)
}

/// Pages needed to hold `tokens` tokens of context for one sequence under
/// `cfg` — dense heads grow with context, streaming heads are bounded by their
/// window. This is the footprint estimate the scheduler's admission control
/// uses; tests and benches that want to size a pool relative to "N sequences"
/// should use it instead of re-deriving the formula.
///
/// The estimate is of the **hot** footprint. When selection-driven demotion is
/// on (`demote_after_chunks` with a `dynamic_budget`), a dense head's
/// steady-state hot set is not its full residency: once history outgrows the
/// selection budget, the selector keeps roughly `budget` tokens hot and the
/// demotion sweep pushes the rest cold. The bound has to cover the demotion
/// *lag*, though — a page only demotes after going unselected for
/// `demote_after_chunks` consecutive fresh scorings, so in the worst case
/// (the top-k churning completely every rescore) up to `k` selections' worth
/// of pages plus `k × reuse_interval` freshly appended tokens are hot at
/// once, on top of the append page and the forced sink page. That caps the
/// per-head hot set at `k × (budget + reuse_interval) + 2 pages` — constant
/// in context length — instead of the whole history. Without demotion (or
/// while the context still fits inside that cap) the full-residency formula
/// stands.
pub fn sequence_pages_estimate(cfg: &EngineConfig, model: &ModelConfig, tokens: usize) -> usize {
    let streaming_heads =
        (cfg.streaming_sparsity * (model.num_layers * model.num_kv_heads) as f64).round() as usize;
    let dense_heads = model.num_layers * model.num_kv_heads - streaming_heads;
    let dense_hot_tokens = match (cfg.demote_after_chunks, cfg.dynamic_budget) {
        (Some(k), Some(budget)) => {
            let churn = k.max(1) * (budget + cfg.reuse_interval.max(1));
            tokens.min(churn + 2 * cfg.paging.physical_page_size())
        }
        _ => tokens,
    };
    dense_heads * (cfg.paging.pages_for(dense_hot_tokens) + 1)
        + streaming_heads * (cfg.streaming_window.max_pages() + 2)
}

/// [`sequence_pages_estimate`] under a per-request [`SparsitySchedule`]: the
/// effective selection budget at position `tokens` replaces the engine-wide
/// budget in the demotion-churn cap, and a position-0 window override replaces
/// the streaming-head window. With an empty schedule this is exactly the base
/// estimate.
pub fn sequence_pages_estimate_sparsity(
    cfg: &EngineConfig,
    model: &ModelConfig,
    tokens: usize,
    sparsity: &SparsitySchedule,
) -> usize {
    let window = sparsity.window_override().unwrap_or(cfg.streaming_window);
    let streaming_heads =
        (cfg.streaming_sparsity * (model.num_layers * model.num_kv_heads) as f64).round() as usize;
    let dense_heads = model.num_layers * model.num_kv_heads - streaming_heads;
    let dense_hot_tokens = match (
        cfg.demote_after_chunks,
        sparsity.effective_budget(cfg.dynamic_budget, tokens),
    ) {
        (Some(k), Some(budget)) => {
            let churn = k.max(1) * (budget + cfg.reuse_interval.max(1));
            tokens.min(churn + 2 * cfg.paging.physical_page_size())
        }
        _ => tokens,
    };
    dense_heads * (cfg.paging.pages_for(dense_hot_tokens) + 1)
        + streaming_heads * (window.max_pages() + 2)
}

/// A flat generation request — the pre-handle API, kept as a compatibility
/// shim. `Request` converts into a [`RequestSpec`] with the defaults (Batch
/// class, no deadline, no stop conditions, no session), so existing call sites
/// keep working; new code should build a [`RequestSpec`] directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Caller-chosen identifier.
    pub id: u64,
    /// Prompt token ids.
    pub prompt: Vec<u32>,
    /// Number of tokens to generate (greedy).
    pub max_new_tokens: usize,
}

/// Service-level-objective class of a request. Scheduling is strict-priority
/// across classes (admission ordering and preemption victim selection both
/// consult it) and starvation-free *within* a class (EDF over virtual
/// deadlines whose no-deadline fallback ages with the work clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SloClass {
    /// Latency-sensitive traffic: admitted ahead of other classes and shielded
    /// from preemption while any lower class is running.
    Interactive,
    /// Throughput traffic with ordinary guarantees — the default, and the
    /// behaviour of the pre-SLO scheduler when every request uses it.
    #[default]
    Batch,
    /// Scavenger traffic: first to be preempted, last to be admitted.
    BestEffort,
}

impl SloClass {
    /// Strict-priority rank: lower is more important.
    fn rank(self) -> u8 {
        match self {
            SloClass::Interactive => 0,
            SloClass::Batch => 1,
            SloClass::BestEffort => 2,
        }
    }
}

/// Why a request finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishReason {
    /// Generated its full `max_new_tokens` budget.
    Length,
    /// Emitted a token in [`RequestSpec::stop_tokens`]; the stop token itself
    /// is excluded from the output (and never streamed).
    StopToken,
    /// The generated tail matched a [`RequestSpec::stop_sequences`] entry; the
    /// matched sequence is *included* in the output (its tokens were already
    /// streamed before the match completed).
    StopSequence,
    /// Bounded-memory truncation: the lone running sequence could not grow any
    /// further and was finished with what it had.
    Truncated,
}

/// Why a request was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The spec is degenerate: an empty (resolved) prompt, a zero
    /// `max_new_tokens` budget, or a streaming-window override scheduled past
    /// position 0 (the ring is built at sequence creation). Rejected at
    /// `submit` so a degenerate sequence never reaches admission.
    Invalid,
    /// The estimated full footprint can never fit the pool.
    TooLarge,
    /// A request with this id is already known to the scheduler (live or
    /// terminal). The earlier request is untouched; duplicate ids are an
    /// explicit rejection instead of silent shadowing.
    DuplicateId,
}

/// A generation request under the handle-based API: what to generate, how it
/// terminates, and how the scheduler should treat it relative to other
/// traffic.
///
/// Built with the builder methods:
///
/// ```
/// use lserve_core::{RequestSpec, SloClass};
///
/// let spec = RequestSpec::new(7, vec![1, 2, 3])
///     .max_new_tokens(32)
///     .class(SloClass::Interactive)
///     .deadline_work_tokens(400)
///     .stop_token(0)
///     .stop_sequence(vec![5, 6])
///     .session(1);
/// assert_eq!(spec.id, 7);
/// assert_eq!(spec.class, SloClass::Interactive);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestSpec {
    /// Caller-chosen identifier; must be unique across the scheduler's
    /// lifetime (duplicates are rejected with [`RejectReason::DuplicateId`]).
    pub id: u64,
    /// Prompt token ids for this turn. With a [`RequestSpec::session`], the
    /// effective prompt is the session's recorded conversation followed by
    /// these tokens.
    pub prompt: Vec<u32>,
    /// Generation budget (greedy). Defaults to 16.
    pub max_new_tokens: usize,
    /// SLO class (defaults to [`SloClass::Batch`]).
    pub class: SloClass,
    /// Optional TTFT deadline in *work tokens* (forward-pass tokens across all
    /// sequences) from submission. Within a class, admission and victim
    /// selection order by earliest virtual deadline; [`RequestMetrics`]
    /// records whether it was met.
    pub deadline_work_tokens: Option<u64>,
    /// Generation stops when an emitted token is in this set; the stop token
    /// is excluded from the output.
    pub stop_tokens: Vec<u32>,
    /// Generation stops when the generated tail matches any of these
    /// sequences; the matched sequence stays in the output (its tokens were
    /// already streamed).
    pub stop_sequences: Vec<Vec<u32>>,
    /// Optional session id: the request continues the session's conversation
    /// (prior effective prompt + output), and its own conversation is recorded
    /// back on completion — multi-turn chat over the prefix cache.
    ///
    /// Turns of one session are sequential by contract: submit a follow-up
    /// only after the prior turn's terminal event. A turn submitted while the
    /// session's previous turn is still in flight sees the conversation as it
    /// was last *recorded* (it does not wait), and concurrent turns of one
    /// session record last-completion-wins.
    pub session: Option<u64>,
    /// Positional sparsity-override schedule: each phase applies its knobs
    /// (selection budget, retention ratio, streaming window) from an absolute
    /// token position onward. Empty = engine defaults. Requests carrying
    /// overrides are excluded from prefix-cache sharing in both directions:
    /// their selector history is budget-dependent, so their pages are only
    /// reusable by a consumer replaying the identical schedule.
    pub sparsity: SparsitySchedule,
}

impl RequestSpec {
    /// A spec with the defaults: 16 new tokens, [`SloClass::Batch`], no
    /// deadline, no stop conditions, no session.
    pub fn new(id: u64, prompt: Vec<u32>) -> Self {
        Self {
            id,
            prompt,
            max_new_tokens: 16,
            class: SloClass::Batch,
            deadline_work_tokens: None,
            stop_tokens: Vec::new(),
            stop_sequences: Vec::new(),
            session: None,
            sparsity: SparsitySchedule::new(),
        }
    }

    /// Sets the generation budget.
    pub fn max_new_tokens(mut self, n: usize) -> Self {
        self.max_new_tokens = n;
        self
    }

    /// Sets the SLO class.
    pub fn class(mut self, class: SloClass) -> Self {
        self.class = class;
        self
    }

    /// Sets a TTFT deadline in work tokens from submission.
    pub fn deadline_work_tokens(mut self, deadline: u64) -> Self {
        self.deadline_work_tokens = Some(deadline);
        self
    }

    /// Adds a stop token (excluded from the output when hit).
    pub fn stop_token(mut self, token: u32) -> Self {
        self.stop_tokens.push(token);
        self
    }

    /// Adds a stop sequence (included in the output when matched). Empty
    /// sequences are ignored.
    pub fn stop_sequence(mut self, seq: Vec<u32>) -> Self {
        self.stop_sequences.push(seq);
        self
    }

    /// Attaches the request to a multi-turn session. Session turns are
    /// sequential by contract: submit a follow-up turn only after the prior
    /// turn's terminal event (see [`RequestSpec::session`]).
    pub fn session(mut self, session: u64) -> Self {
        self.session = Some(session);
        self
    }

    /// Applies a sparsity override from position 0 (the whole request).
    pub fn sparsity(self, over: SparsityOverride) -> Self {
        self.sparsity_from(0, over)
    }

    /// Applies a sparsity override from absolute token position `from`
    /// onward — the knob a solo run uses to replay a branch's exact budget
    /// timeline (override active only past the fork point).
    pub fn sparsity_from(mut self, from: usize, over: SparsityOverride) -> Self {
        self.sparsity.push(from, over);
        self
    }
}

impl From<Request> for RequestSpec {
    fn from(req: Request) -> Self {
        RequestSpec::new(req.id, req.prompt).max_new_tokens(req.max_new_tokens)
    }
}

/// One step of a request's lifecycle, streamed through its
/// [`RequestHandle`] as the scheduler produces it.
///
/// Event-stream invariants (pinned by the test suite): events arrive in
/// lifecycle order — `Admitted` first, token events only between
/// `Admitted`/`Resumed` and the next `Preempted` or terminal event,
/// `FirstToken` exactly once before any `Token`, every `Resumed` preceded by a
/// matching `Preempted` — and every request sees **exactly one terminal
/// event** (`Finished`, `Cancelled`, or `Rejected`), always last. The
/// concatenated payloads of `FirstToken` + `Token` equal the terminal event's
/// `tokens`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServingEvent {
    /// The request was admitted into the running batch for the first time.
    Admitted,
    /// The first output token.
    FirstToken {
        /// The token id.
        token: u32,
    },
    /// A subsequent output token.
    Token {
        /// The token id.
        token: u32,
    },
    /// The request was preempted under pool pressure; it keeps its progress
    /// and will resume.
    Preempted {
        /// How the victim's pages were handled (released for replay, or
        /// demoted for swap-resume).
        policy: PreemptionPolicy,
    },
    /// The request re-entered the running batch after a preemption.
    Resumed,
    /// Terminal: the request completed with `tokens` as its output.
    Finished {
        /// Why generation stopped.
        reason: FinishReason,
        /// The full output (stop-token truncation already applied).
        tokens: Vec<u32>,
    },
    /// Terminal: the request was cancelled; `tokens` is the output produced
    /// before cancellation took effect.
    Cancelled {
        /// Output tokens emitted before the cancellation boundary.
        tokens: Vec<u32>,
    },
    /// Terminal: the request was rejected.
    Rejected {
        /// Why it could not be served.
        reason: RejectReason,
    },
}

impl ServingEvent {
    /// True for `Finished`, `Cancelled`, and `Rejected` — the events that end
    /// a request's stream.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            ServingEvent::Finished { .. }
                | ServingEvent::Cancelled { .. }
                | ServingEvent::Rejected { .. }
        )
    }
}

/// The scheduler/handle shared half of a request's lifecycle: the event
/// queue, the cancellation flag, and the terminal marker.
#[derive(Debug)]
struct HandleShared {
    id: u64,
    events: Mutex<VecDeque<ServingEvent>>,
    cancel: AtomicBool,
    terminal: AtomicBool,
}

impl HandleShared {
    fn new(id: u64) -> Arc<Self> {
        Arc::new(Self {
            id,
            events: Mutex::new(VecDeque::new()),
            cancel: AtomicBool::new(false),
            terminal: AtomicBool::new(false),
        })
    }

    fn push(&self, event: ServingEvent) {
        debug_assert!(
            !self.terminal.load(Ordering::Acquire),
            "event after terminal for request {}",
            self.id
        );
        let terminal = event.is_terminal();
        let mut events = self.events.lock().expect("event queue lock poisoned");
        events.push_back(event);
        if terminal {
            // Flagged only after the event is enqueued (and while the queue
            // lock is still held), so a consumer that observes
            // `is_terminal() == true` is guaranteed to find the terminal
            // event in its next drain.
            self.terminal.store(true, Ordering::Release);
        }
    }

    fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::Acquire)
    }
}

/// A caller's view of one submitted request: a drainable stream of
/// [`ServingEvent`]s plus cooperative cancellation.
///
/// Handles are cheap to clone (an `Arc`) and `Send`, so a driver thread can
/// hand them out; dropping a handle never affects the request — events simply
/// accumulate until the terminal event, after which the scheduler drops its
/// side.
#[derive(Debug, Clone)]
pub struct RequestHandle {
    shared: Arc<HandleShared>,
}

impl RequestHandle {
    /// The request id this handle tracks.
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// Requests cancellation. The scheduler acts at the next
    /// [`Scheduler::step`] boundary: pages are released, the completed prefix
    /// is donated to the prefix cache, and the terminal
    /// [`ServingEvent::Cancelled`] is pushed. Cancelling an already-terminal
    /// request is a no-op.
    pub fn cancel(&self) {
        self.shared.cancel.store(true, Ordering::Release);
    }

    /// Pops the oldest undrained event, if any.
    pub fn try_next_event(&self) -> Option<ServingEvent> {
        self.shared
            .events
            .lock()
            .expect("event queue lock poisoned")
            .pop_front()
    }

    /// Drains every currently queued event.
    pub fn drain_events(&self) -> Vec<ServingEvent> {
        self.shared
            .events
            .lock()
            .expect("event queue lock poisoned")
            .drain(..)
            .collect()
    }

    /// True once a terminal event (`Finished`/`Cancelled`/`Rejected`) has been
    /// *produced* — it may still be waiting in the queue to be drained.
    pub fn is_terminal(&self) -> bool {
        self.shared.terminal.load(Ordering::Acquire)
    }
}

/// Lifecycle state of a request inside the serving engine — the poll-style
/// compatibility view over the event stream ([`Scheduler::status`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestStatus {
    /// Waiting for admission (fresh or preempted).
    Queued,
    /// Currently prefilling or decoding.
    Running,
    /// Completed with the generated tokens.
    Finished(Vec<u32>),
    /// Cancelled via its handle, with the tokens generated before the
    /// cancellation boundary.
    Cancelled(Vec<u32>),
    /// Could never fit in the pool (or was otherwise rejected at admission).
    Rejected,
}

/// How the scheduler relieves pool pressure when decode demand exceeds the
/// free hot tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PreemptionPolicy {
    /// Release every page the victim holds and re-queue it; on re-admission
    /// its prompt *plus* already-generated tokens are re-fed through the
    /// deterministic pipeline (the classic recompute-based preemption).
    #[default]
    Replay,
    /// Demote the victim's sole-owned pages to the cold (host) tier and park
    /// its sequence state; on re-admission the cold pages are promoted back —
    /// modeled transfer work instead of recompute — and decode continues
    /// exactly where it stopped. Pages co-owned with the prefix cache or
    /// another sequence stay hot for their other readers (the CoW/refcount
    /// discipline), so a swap never disturbs shared prefixes. Outputs are
    /// bit-identical to [`PreemptionPolicy::Replay`].
    Swap,
}

/// Default preemption policy from the `LSERVE_PREEMPTION` environment variable
/// (`replay` | `swap`, defaulting to replay; unknown values fall back to
/// replay).
///
/// Read on every call — deliberately *not* cached in a process-wide
/// `OnceLock` — so tests and benches can vary the knob in-process;
/// [`SchedulerConfig::from_env`] reads it once at construction and pins the
/// result. CI runs the test suite under both values, so the determinism suite
/// exercises swap-based preemption on every push.
pub fn preemption_from_env() -> PreemptionPolicy {
    match std::env::var("LSERVE_PREEMPTION")
        .unwrap_or_default()
        .trim()
        .to_ascii_lowercase()
        .as_str()
    {
        "swap" => PreemptionPolicy::Swap,
        _ => PreemptionPolicy::Replay,
    }
}

/// How the scheduler decides a queued request may start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Admit only when the estimated *full* footprint (prompt + all generated
    /// tokens) fits the free pool. Conservative: preemption is rare, utilization
    /// lower.
    FullFootprint,
    /// Admit as soon as the first prefill chunk fits. Aggressive: memory
    /// oversubscription is resolved by preemption.
    FirstChunk,
}

/// Scheduler policy knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Physical pages in the shared pool (the device-memory budget).
    pub pool_pages: usize,
    /// Per-sequence prompt tokens fed per scheduler iteration, and the size of the
    /// fused tile-prefill first chunk. Larger values lower prefill cost but stall
    /// the decode batch longer per iteration.
    pub chunk_tokens: usize,
    /// Maximum concurrently running sequences.
    pub max_batch: usize,
    /// Admission policy.
    pub admission: AdmissionPolicy,
    /// Enables the cross-request KV prefix cache: admission matches prompts
    /// against previously computed prefixes, prefill donates anchors on tile-grid
    /// boundaries, completed (and cancelled) sequences donate their
    /// conversation, and cached entries are LRU-evicted under pool pressure
    /// (before any preemption). Outputs are token-identical with the cache on
    /// or off.
    pub prefix_cache: bool,
    /// Worker threads for the sharded attention phases of prefill and decode
    /// (the *(sequence × KV-head)* LPT-balanced executor). Defaults to the
    /// `LSERVE_DECODE_THREADS` environment variable (1 when unset). Outputs
    /// are bit-identical for every value — the knob trades wall-clock only.
    pub decode_threads: usize,
    /// Simulated devices decode attention is placed onto
    /// ([`ShardingPlan`]-driven head-parallel sharding). Defaults to the
    /// `LSERVE_DEVICES` environment variable (1 when unset). Outputs are
    /// bit-identical for every value — devices move modeled cost and trace
    /// lanes only.
    pub devices: usize,
    /// How KV heads are assigned to those devices: sparsity-aware device-level
    /// LPT (the default) or the round-robin baseline.
    pub placement: PlacementPolicy,
    /// Scheduler steps between the sharding plan's device-imbalance checks.
    pub rebalance_interval: u64,
    /// Max-over-mean device load ratio past which the plan recomputes
    /// placement and migrates heads (charging their KV across the modeled
    /// interconnect).
    pub rebalance_threshold: f64,
    /// How pool pressure is relieved: recompute-based [`PreemptionPolicy::Replay`]
    /// or the tiered memory's [`PreemptionPolicy::Swap`]. Defaults to the
    /// `LSERVE_PREEMPTION` environment variable (replay when unset). Outputs
    /// are bit-identical for both values.
    pub preemption: PreemptionPolicy,
    /// How tier migrations are executed and accounted: inline
    /// [`MigrationMode::Sync`] (every transfer stalls its issuing step) or
    /// the overlapped [`MigrationMode::Async`] copy engine (transfers drain
    /// behind compute; only demand-forced remainders stall). Defaults to the
    /// `LSERVE_MIGRATION` environment variable (sync when unset). Outputs
    /// are bit-identical for both values — the knob trades modeled stall
    /// time only.
    pub migration: MigrationMode,
    /// Host (cold-tier) page capacity: `0` models an unbounded host — the
    /// historical behavior. A bounded host forces the pool to spill its
    /// oldest cold page to nvme before each demotion (when `nvme` is on) or
    /// to refuse the demotion entirely (drop-and-replay fallback). Defaults
    /// to the `LSERVE_HOST_PAGES` environment variable (0 when unset).
    /// Outputs are bit-identical for every value — tiers move modeled cost
    /// only.
    pub host_pages: usize,
    /// Enables the modeled nvme tier below the host ([`lserve_kvcache::
    /// NVME_TRANSFER_SPEEDUP`], an order of magnitude slower per hop than
    /// the host link). Defaults to the `LSERVE_NVME` environment variable
    /// (off when unset). Outputs are bit-identical either way.
    pub nvme: bool,
    /// Enables SLO-class- and deadline-aware scheduling (the default). When
    /// `false`, admission and victim selection fall back to class-blind FCFS
    /// arrival order — the baseline the interactive-class win is measured
    /// against. Outputs per request are bit-identical either way; only
    /// ordering (and therefore latency) changes.
    pub class_aware: bool,
    /// Virtual-deadline slack, in work tokens, assigned to requests that carry
    /// no explicit deadline. Within a class the scheduler orders by virtual
    /// deadline (`submit-time work clock + deadline-or-slack`), so this is the
    /// aging horizon: a deadline-less request outranks any later arrival once
    /// the work clock has advanced past the difference — starvation-freedom
    /// within the class.
    pub no_deadline_slack: u64,
    /// Shared trace handle threaded through the scheduler, the executor's
    /// per-layer phases, the attention shard workers, the copy engine, and the
    /// page selector. Defaults to [`Tracer::from_env`] (the `LSERVE_TRACE`
    /// variable; disabled when unset). Tracing never changes outputs — the
    /// trace clock is a parallel work-token ledger, not a scheduling input.
    pub tracer: Tracer,
}

impl SchedulerConfig {
    /// Environment-seeded defaults: 128-token prefill chunks, batch of up to
    /// 64, first-chunk admission (preemption-backed), prefix cache off,
    /// class-aware scheduling on, decode threads read once from
    /// `LSERVE_DECODE_THREADS` (1 when unset), preemption policy read once
    /// from `LSERVE_PREEMPTION` (replay when unset), migration mode read
    /// once from `LSERVE_MIGRATION` (sync when unset), tier shape read once
    /// from `LSERVE_HOST_PAGES` / `LSERVE_NVME` (unbounded host, no nvme
    /// when unset), tracing read once from `LSERVE_TRACE` (disabled when
    /// unset).
    ///
    /// The environment is read here, at construction — never cached
    /// process-wide — so tests and benches can vary the variables between
    /// scheduler constructions in one process.
    pub fn from_env(pool_pages: usize) -> Self {
        let tiers = tier_config_from_env();
        Self {
            pool_pages,
            chunk_tokens: 128,
            max_batch: 64,
            admission: AdmissionPolicy::FirstChunk,
            prefix_cache: false,
            decode_threads: decode_threads_from_env(),
            devices: devices_from_env(),
            placement: PlacementPolicy::SparsityAware,
            rebalance_interval: 16,
            rebalance_threshold: 1.5,
            preemption: preemption_from_env(),
            migration: migration_from_env(),
            host_pages: tiers.host_pages,
            nvme: tiers.nvme,
            class_aware: true,
            no_deadline_slack: 1 << 20,
            tracer: Tracer::from_env(),
        }
    }

    /// Alias for [`SchedulerConfig::from_env`] (the historical constructor
    /// name).
    pub fn new(pool_pages: usize) -> Self {
        Self::from_env(pool_pages)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_tokens`, `max_batch`, `pool_pages`, `decode_threads`
    /// or `no_deadline_slack` is zero.
    pub fn validate(&self) {
        assert!(self.pool_pages > 0, "pool must hold at least one page");
        assert!(self.chunk_tokens > 0, "chunk must be at least one token");
        assert!(self.max_batch > 0, "batch must admit at least one sequence");
        assert!(self.decode_threads > 0, "need at least one decode worker");
        assert!(self.devices > 0, "need at least one device");
        assert!(
            self.rebalance_interval > 0,
            "rebalance interval must be at least one step"
        );
        assert!(
            self.rebalance_threshold >= 1.0,
            "rebalance threshold is a max-over-mean ratio (>= 1.0)"
        );
        assert!(
            self.no_deadline_slack > 0,
            "aging horizon must be positive for starvation-freedom"
        );
    }
}

/// Per-request latency/scheduling metrics, in scheduler iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestMetrics {
    /// Request id.
    pub id: u64,
    /// SLO class the request ran under.
    pub class: SloClass,
    /// Why generation stopped.
    pub finish: FinishReason,
    /// Iterations from submission until the first generated token (time to first
    /// token). Zero when the request finished without emitting any token.
    pub ttft_iters: u64,
    /// Model work (tokens pushed through the forward pass, all sequences counted)
    /// between submission and the first generated token. Unlike iterations, this
    /// is a faithful time proxy when per-iteration prefill work is unbounded —
    /// it is the unit in which chunked prefill's head-of-line win shows up.
    pub ttft_work_tokens: u64,
    /// Iterations between the first and the last generated token.
    pub decode_span_iters: u64,
    /// Tokens generated (output tokens; stop-token truncation applied).
    pub tokens: usize,
    /// Times this request was preempted (pages released, later re-prefilled).
    pub preemptions: u32,
    /// Prompt tokens served from the prefix cache at admission (the deepest
    /// value across admissions, for requests that were preempted and resumed).
    pub cached_prompt_tokens: usize,
    /// The TTFT deadline the request carried, if any (work tokens from
    /// submission).
    pub deadline_work_tokens: Option<u64>,
    /// Whether the deadline was met (`None` when no deadline was set; a
    /// request that never emitted a token misses by definition).
    pub deadline_met: Option<bool>,
}

impl RequestMetrics {
    /// Mean iterations between consecutive generated tokens (0 for fewer than two
    /// tokens).
    pub fn mean_tbt_iters(&self) -> f64 {
        if self.tokens > 1 {
            self.decode_span_iters as f64 / (self.tokens - 1) as f64
        } else {
            0.0
        }
    }
}

/// Summary of a serving run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServingReport {
    /// `(request id, output tokens)` for every completed request.
    pub completed: Vec<(u64, Vec<u32>)>,
    /// Requests that could never be admitted (admission-time rejections;
    /// duplicate-id rejections appear only in [`ServingReport::rejections`]).
    pub rejected: Vec<u64>,
    /// Every rejection with its reason, including duplicate-id rejections
    /// made at submit time.
    pub rejections: Vec<(u64, RejectReason)>,
    /// `(request id, output tokens at the cancellation boundary)` for every
    /// cancelled request.
    pub cancelled: Vec<(u64, Vec<u32>)>,
    /// Scheduler iterations executed.
    pub scheduler_steps: u64,
    /// Total decode steps across all sequences (prompt-continuation feeding
    /// excluded).
    pub decode_steps: u64,
    /// High-water mark of pool pages in use.
    pub peak_pages: usize,
    /// Total preemption events across the run.
    pub preemptions: u64,
    /// Per-request latency metrics for completed requests, sorted by request
    /// id on completion.
    pub request_metrics: Vec<RequestMetrics>,
    /// Prompt tokens served from the prefix cache, summed over admission events
    /// (a preempted request that re-admits with a hit counts again, exactly as
    /// its recomputed tokens would).
    pub prefix_hit_tokens: u64,
    /// Prompt tokens actually computed by prefill (tile chunk + per-token feed),
    /// summed over admission events. Zero when the prefix cache is disabled.
    pub prefix_recomputed_tokens: u64,
    /// Prefixes donated into the cache (anchors, completed conversations, and
    /// cancelled requests' completed prefixes).
    pub prefix_insertions: u64,
    /// Prefix-cache entries evicted under pool pressure.
    pub prefix_evictions: u64,
    /// Worker threads the run's sharded attention phases were configured with.
    pub decode_threads: usize,
    /// Preemption policy the run was configured with.
    pub preemption: PreemptionPolicy,
    /// Pages migrated hot → cold over the run (selection-driven demotion plus
    /// swap-outs), from the pool's lifetime tier ledger.
    pub pages_demoted: u64,
    /// Pages migrated cold → hot over the run (selection re-picks plus
    /// swap-resume promotions).
    pub pages_promoted: u64,
    /// Modeled transfer work of swap-resume promotions specifically, in
    /// forward-pass token-equivalents — the number to hold against the replay
    /// tokens the swap policy avoided re-feeding. Counted into the `work
    /// tokens` clock, so TTFT under swap honestly pays for its transfers.
    pub swap_resume_work_tokens: u64,
    /// High-water mark of cold-tier (host) pages in use.
    pub peak_cold_pages: usize,
    /// High-water mark of nvme-tier pages in use (0 without the nvme tier).
    pub peak_nvme_pages: usize,
    /// Pages spilled host → nvme over the run (bounded-host relief), from
    /// the pool's lifetime tier ledger.
    pub pages_spilled: u64,
    /// Pages recalled nvme → host over the run (demand recalls plus
    /// prefetch-chained recalls).
    pub pages_recalled: u64,
    /// Prefix-cache entries spilled down-tier under pool pressure (the
    /// entry stays cached; contrast [`ServingReport::prefix_evictions`]).
    pub prefix_spills: u64,
    /// Host page capacity the run was configured with (0 = unbounded).
    pub host_pages: usize,
    /// Whether the modeled nvme tier was enabled.
    pub nvme: bool,
    /// Migration mode the run was configured with.
    pub migration: MigrationMode,
    /// Selector-driven prefetches issued into the copy engine (async mode;
    /// always zero under [`MigrationMode::Sync`]).
    pub prefetch_issued: u64,
    /// Prefetched pages a later demand actually read — each one a transfer
    /// that would otherwise have stalled a decode step.
    pub prefetch_hits: u64,
    /// Prefetched pages demoted or freed without ever being demanded (the
    /// cost of wrong guesses: wasted link bandwidth, never wasted hot slots).
    pub prefetch_wasted: u64,
    /// Modeled transfer work the copy engine hid behind compute, in
    /// forward-pass token-equivalents. Always zero under sync migration.
    pub hidden_transfer_tokens: u64,
    /// Modeled transfer work steps actually stalled on, in forward-pass
    /// token-equivalents: everything under sync migration, only demand
    /// fetches and forced completions under async. The cross-mode comparable
    /// stall metric — the async engine's win is this number shrinking while
    /// outputs stay bit-identical.
    pub migration_stall_tokens: u64,
    /// High-water mark of concurrently running sequences.
    pub peak_running: usize,
    /// Sum over scheduler iterations of the running-sequence count (after
    /// admission). `running_seq_steps / scheduler_steps` is the *sustained*
    /// concurrency of the run.
    pub running_seq_steps: u64,
    /// Aggregate parallel-execution counters across every prefill/decode
    /// phase (see [`ParallelExecStats`]).
    pub parallel: ParallelExecStats,
    /// Simulated devices the run's decode attention was placed onto.
    pub devices: usize,
    /// Rebalance passes that moved at least one head (see [`ShardingPlan`]).
    pub rebalances: u64,
    /// (layer, head) placements changed across those passes.
    pub heads_migrated: u64,
    /// Modeled interconnect tokens head migrations charged into the work
    /// clock (priced per KV token-unit moved, like the copy engine's
    /// host-link transfers but over the faster device mesh).
    pub rebalance_migration_tokens: u64,
    /// Request-DAG counters (speculative fork/join branching): successful
    /// `fork()` calls, branches spawned, groups whose join policy resolved,
    /// and branch cancellations requested by join policies or cascade-cancel.
    pub dag: DagStats,
}

impl ServingReport {
    /// Measured mean worker utilization of the sharded attention phases, in
    /// `(0, 1]` (1.0 when no parallel phase ran).
    pub fn worker_utilization(&self) -> f64 {
        self.parallel.utilization()
    }

    /// Measured worker imbalance `>= 1` (critical path over perfect balance).
    pub fn worker_imbalance(&self) -> f64 {
        self.parallel.imbalance()
    }

    /// Mean concurrently running sequences per scheduler iteration (0 when no
    /// iteration ran) — the sustained-concurrency number the tiered memory's
    /// oversubscription win is measured by.
    pub fn mean_running(&self) -> f64 {
        if self.scheduler_steps == 0 {
            return 0.0;
        }
        self.running_seq_steps as f64 / self.scheduler_steps as f64
    }

    /// Fraction of prompt-prefill tokens served from the prefix cache, in
    /// `[0, 1]` (0 when no prompt token was processed).
    pub fn prefix_hit_rate(&self) -> f64 {
        let total = self.prefix_hit_tokens + self.prefix_recomputed_tokens;
        if total == 0 {
            return 0.0;
        }
        self.prefix_hit_tokens as f64 / total as f64
    }

    /// Nearest-rank percentile (`q` in `(0, 1]`, e.g. 0.5 / 0.95) of per-request
    /// TTFT in work tokens. Returns 0 when no request completed.
    pub fn ttft_work_percentile(&self, q: f64) -> u64 {
        let mut v: Vec<u64> = self
            .request_metrics
            .iter()
            .map(|m| m.ttft_work_tokens)
            .collect();
        v.sort_unstable();
        nearest_rank(&v, q).copied().unwrap_or(0)
    }

    /// Nearest-rank percentile of TTFT (work tokens) restricted to one
    /// [`SloClass`] — the per-class SLO view. Returns 0 when no request of
    /// that class completed.
    pub fn ttft_work_percentile_class(&self, class: SloClass, q: f64) -> u64 {
        let mut v: Vec<u64> = self
            .request_metrics
            .iter()
            .filter(|m| m.class == class)
            .map(|m| m.ttft_work_tokens)
            .collect();
        v.sort_unstable();
        nearest_rank(&v, q).copied().unwrap_or(0)
    }

    /// `(met, total)` deadline counts over completed requests that carried a
    /// deadline.
    pub fn deadlines(&self) -> (usize, usize) {
        let total = self
            .request_metrics
            .iter()
            .filter(|m| m.deadline_met.is_some())
            .count();
        let met = self
            .request_metrics
            .iter()
            .filter(|m| m.deadline_met == Some(true))
            .count();
        (met, total)
    }

    /// Fraction of this run's modeled transfer work the copy engine hid
    /// behind compute, in `[0, 1]` (1.0 when nothing migrated — no transfers
    /// means no stall). Sync migration hides nothing, so it reports 0 the
    /// moment any page moves; the async engine's overlap win is this ratio
    /// approaching 1.
    pub fn migration_overlap_ratio(&self) -> f64 {
        let total = self.hidden_transfer_tokens + self.migration_stall_tokens;
        if total == 0 {
            return 1.0;
        }
        self.hidden_transfer_tokens as f64 / total as f64
    }

    /// Nearest-rank percentile (`q` in `(0, 1]`) of per-request mean
    /// time-between-tokens in scheduler iterations. Returns 0 when no request
    /// completed.
    pub fn tbt_percentile(&self, q: f64) -> f64 {
        let mut v: Vec<f64> = self
            .request_metrics
            .iter()
            .map(RequestMetrics::mean_tbt_iters)
            .collect();
        v.sort_by(f64::total_cmp);
        nearest_rank(&v, q).copied().unwrap_or(0.0)
    }

    /// Nearest-rank percentile of per-request mean time-between-tokens
    /// restricted to one [`SloClass`] — the per-class SLO view. Returns 0
    /// when no request of that class completed.
    pub fn tbt_percentile_class(&self, class: SloClass, q: f64) -> f64 {
        let mut v: Vec<f64> = self
            .request_metrics
            .iter()
            .filter(|m| m.class == class)
            .map(RequestMetrics::mean_tbt_iters)
            .collect();
        v.sort_by(f64::total_cmp);
        nearest_rank(&v, q).copied().unwrap_or(0.0)
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn nearest_rank<T>(sorted: &[T], q: f64) -> Option<&T> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted.get(rank.max(1) - 1)
}

/// Metrics bookkeeping that survives a request's whole lifetime, moved as one
/// unit between the queued and running representations (including across
/// preemption cycles).
#[derive(Debug, Clone, Copy)]
struct RequestProgress {
    submit_iter: u64,
    submit_work: u64,
    first_token_iter: Option<u64>,
    first_token_work: Option<u64>,
    last_token_iter: u64,
    preemptions: u32,
    cached_tokens: usize,
    /// Whether the request has ever entered the running batch — decides
    /// between the `Admitted` and `Resumed` events at (re-)admission.
    ever_admitted: bool,
    /// Trace-clock tick at which the request's current lifecycle phase began
    /// (queued at submit/preempt, running at admit/resume). Pure trace
    /// bookkeeping: it closes the retrospective `queued`/`running` spans and
    /// never feeds a scheduling decision.
    trace_mark: u64,
}

/// The scheduling rank of a request: strict priority by class, earliest
/// virtual deadline within a class, FCFS arrival as the final tiebreak. Lower
/// orders first. With [`SchedulerConfig::class_aware`] off, class and
/// deadline collapse to zero and the key degenerates to pure arrival order
/// (class-blind FCFS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct SloKey {
    class: u8,
    vdeadline: u64,
    arrival: u64,
}

/// The identity-and-policy core of a request, shared by its queued and running
/// representations.
#[derive(Debug)]
struct SeqCore {
    spec: RequestSpec,
    /// Session-resolved effective prompt (the session's conversation followed
    /// by this turn's tokens; equal to `spec.prompt` without a session).
    prompt: Vec<u32>,
    /// Monotone submission counter — the unique identity used for re-location
    /// and FCFS tiebreaks.
    arrival: u64,
    /// Scheduling rank (see [`SloKey`]).
    key: SloKey,
    /// The caller's event stream.
    handle: Arc<HandleShared>,
    /// For a fork branch: tokens already absorbed into the CoW-shared
    /// snapshot at fork time (0 for ordinary requests). Admission charges the
    /// branch's page demand *incrementally* — the shared prefix is already
    /// paid for by the parent — but only while the snapshot is parked; once a
    /// spill drops it to a replay, the demand is genuinely the full estimate.
    fork_base_tokens: usize,
}

/// A swapped-out sequence parked in the queue: its full executor state (page
/// tables pointing at cold — or still-shared hot — pages, selector history,
/// position counters) plus the feed bookkeeping needed to continue exactly
/// where preemption stopped. Only clean states are parked (nothing
/// half-written); the unclean OOM fallbacks always take the replay path.
#[derive(Debug)]
struct SwappedSeq {
    state: SequenceState,
    /// Feed tokens (prompt + resume_feed) consumed before the swap.
    fed: usize,
    /// The resume-feed snapshot `fed` indexes into (frozen at swap time so
    /// `feed_token` stays stable even though `generated` kept the full list).
    resume_feed: Vec<u32>,
    /// Most recently emitted token, not yet consumed by a decode step.
    last_token: Option<u32>,
}

/// A request waiting for (re-)admission; carries generation progress across
/// preemptions.
#[derive(Debug)]
struct QueuedSeq {
    core: SeqCore,
    /// Tokens already generated (and emitted) before a preemption.
    generated: Vec<u32>,
    progress: RequestProgress,
    /// Present when the sequence was swapped out instead of released: admission
    /// promotes its cold pages back and resumes without any re-feeding.
    swap: Option<SwappedSeq>,
}

/// A running sequence: executor state plus feed/generation progress.
#[derive(Debug)]
struct SchedSeq {
    core: SeqCore,
    state: SequenceState,
    /// Tokens generated before the last preemption; re-fed after the prompt on
    /// resume so the cache is reconstructed exactly.
    resume_feed: Vec<u32>,
    /// Feed tokens (prompt + resume_feed) consumed so far.
    fed: usize,
    /// All tokens emitted for this request (including pre-preemption ones).
    generated: Vec<u32>,
    /// Most recently emitted token, not yet consumed by a decode step.
    last_token: Option<u32>,
    progress: RequestProgress,
}

impl SchedSeq {
    fn feed_len(&self) -> usize {
        self.core.prompt.len() + self.resume_feed.len()
    }

    fn feed_token(&self, i: usize) -> u32 {
        if i < self.core.prompt.len() {
            self.core.prompt[i]
        } else {
            self.resume_feed[i - self.core.prompt.len()]
        }
    }
}

/// Where a known request id currently lives — the O(1) backing of
/// [`Scheduler::status`] (indices point into the report's `completed` /
/// `cancelled` vectors, which only ever grow).
#[derive(Debug, Clone, Copy)]
enum Phase {
    Queued,
    Running,
    Finished(usize),
    Cancelled(usize),
    Rejected,
}

/// Continuous-batching scheduler over one shared page pool.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use lserve_core::{
///     EngineConfig, ModelExecutor, RequestSpec, Scheduler, SchedulerConfig, ServingEvent,
///     SloClass,
/// };
/// use lserve_model::{ModelConfig, ModelWeights};
///
/// let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 3));
/// let exec = Arc::new(ModelExecutor::new(weights, EngineConfig::lserve_fp16()));
/// let mut scfg = SchedulerConfig::new(2048);
/// scfg.chunk_tokens = 4; // prompts longer than 4 tokens prefill across iterations
/// let mut sched = Scheduler::new(exec, scfg);
/// let handle = sched.submit(
///     RequestSpec::new(1, (0..16).collect())
///         .max_new_tokens(4)
///         .class(SloClass::Interactive),
/// );
/// while !handle.is_terminal() {
///     sched.step();
/// }
/// let events = handle.drain_events();
/// assert_eq!(events.first(), Some(&ServingEvent::Admitted));
/// assert!(matches!(events.last(), Some(ServingEvent::Finished { tokens, .. }) if tokens.len() == 4));
/// ```
#[derive(Debug)]
pub struct Scheduler {
    exec: Arc<ModelExecutor>,
    scfg: SchedulerConfig,
    pool: PagePool,
    queue: VecDeque<QueuedSeq>,
    running: Vec<SchedSeq>,
    report: ServingReport,
    next_arrival: u64,
    /// Monotone clock: tokens pushed through the forward pass across all
    /// sequences (tile prefill, prompt-continuation feed, and decode), plus
    /// the modeled transfer work of swap-resume promotions.
    work_tokens: u64,
    /// Accumulated swap-resume promotion cost in token-equivalents, summed
    /// per resume event — exactly the amounts charged to `work_tokens`, so
    /// the report field can never drift from the clock.
    swap_resume_work: u64,
    /// Cross-request KV prefix cache (unused unless `scfg.prefix_cache`).
    prefix: PrefixCache<CachedPrefix>,
    /// id → lifecycle phase, the O(1) index behind [`Scheduler::status`] and
    /// the duplicate-id check.
    index: HashMap<u64, Phase>,
    /// session id → recorded conversation (effective prompt + output of the
    /// session's last *completed* turn; in-flight turns are invisible here —
    /// the sequential-turns contract of [`RequestSpec::session`]).
    sessions: HashMap<u64, Vec<u32>>,
    /// Multi-device placement state: per-layer head → device assignments plus
    /// the load history the periodic rebalancer acts on. Persistent across
    /// steps by design — placement must be sticky for head migration to mean
    /// anything.
    plan: ShardingPlan,
    /// The request-DAG branch graph: fork groups, join policies, and
    /// parent→child edges for cascade-cancel.
    dag: DagStore,
}

impl Scheduler {
    /// Creates a scheduler over `exec` with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if `scfg` is inconsistent (see [`SchedulerConfig::validate`]).
    pub fn new(exec: Arc<ModelExecutor>, scfg: SchedulerConfig) -> Self {
        scfg.validate();
        let mut pool = PagePool::new_with_tiers(
            exec.config().paging,
            scfg.pool_pages,
            exec.weights().config.head_dim,
            scfg.migration,
            TierConfig {
                host_pages: scfg.host_pages,
                nvme: scfg.nvme,
            },
        );
        // One shared handle: the pool emission sites (copy engine, prefetch)
        // and the executor (which reaches the tracer through the pool) record
        // into the same ring as the scheduler's lifecycle events.
        pool.set_tracer(scfg.tracer.clone());
        let report = ServingReport {
            decode_threads: scfg.decode_threads,
            preemption: scfg.preemption,
            migration: scfg.migration,
            devices: scfg.devices,
            host_pages: scfg.host_pages,
            nvme: scfg.nvme,
            ..ServingReport::default()
        };
        let model = &exec.weights().config;
        let mut plan = ShardingPlan::new(
            Topology::symmetric(scfg.devices, DEFAULT_GATHER_COST_TOKENS),
            scfg.placement,
            model.num_layers,
            model.num_kv_heads,
        );
        plan.rebalance_interval = scfg.rebalance_interval;
        plan.rebalance_threshold = scfg.rebalance_threshold;
        Self {
            exec,
            scfg,
            pool,
            queue: VecDeque::new(),
            running: Vec::new(),
            report,
            next_arrival: 0,
            work_tokens: 0,
            swap_resume_work: 0,
            prefix: PrefixCache::new(),
            index: HashMap::new(),
            sessions: HashMap::new(),
            plan,
            dag: DagStore::new(),
        }
    }

    /// The shared executor.
    pub fn executor(&self) -> &Arc<ModelExecutor> {
        &self.exec
    }

    /// The scheduling policy.
    pub fn config(&self) -> &SchedulerConfig {
        &self.scfg
    }

    /// The scheduling rank of a spec at the current work clock: strict
    /// priority by class, EDF within a class over `submit work + deadline`
    /// (no-deadline requests age in after `no_deadline_slack`), FCFS arrival
    /// as the tiebreak. With `class_aware` off everything collapses to
    /// arrival order.
    fn slo_key(&self, spec: &RequestSpec, arrival: u64) -> SloKey {
        if !self.scfg.class_aware {
            return SloKey {
                class: 0,
                vdeadline: 0,
                arrival,
            };
        }
        let slack = spec
            .deadline_work_tokens
            .unwrap_or(self.scfg.no_deadline_slack);
        SloKey {
            class: spec.class.rank(),
            vdeadline: self.work_tokens.saturating_add(slack),
            arrival,
        }
    }

    /// Submits a request and returns its lifecycle handle. The queue is
    /// ordered by scheduling rank (class, then virtual deadline, then
    /// arrival), so an interactive or tight-deadline request enters ahead of
    /// queued batch traffic. A spec whose id the scheduler already knows is
    /// rejected immediately with [`RejectReason::DuplicateId`] (the earlier
    /// request is untouched).
    pub fn submit(&mut self, spec: impl Into<RequestSpec>) -> RequestHandle {
        let spec = spec.into();
        let handle = HandleShared::new(spec.id);
        if self.index.contains_key(&spec.id) {
            handle.push(ServingEvent::Rejected {
                reason: RejectReason::DuplicateId,
            });
            self.report
                .rejections
                .push((spec.id, RejectReason::DuplicateId));
            return RequestHandle { shared: handle };
        }
        let prompt = match spec.session.and_then(|sid| self.sessions.get(&sid)) {
            Some(history) => {
                let mut p = history.clone();
                p.extend_from_slice(&spec.prompt);
                p
            }
            None => spec.prompt.clone(),
        };
        // Degenerate specs are rejected here, before they consume an arrival
        // slot — an empty (resolved) prompt has nothing to prefill, a zero
        // decode budget has nothing to generate, and a streaming-window
        // override past position 0 can never be honoured (the ring is built
        // at sequence creation).
        if prompt.is_empty() || spec.max_new_tokens == 0 || spec.sparsity.has_late_window_override()
        {
            handle.push(ServingEvent::Rejected {
                reason: RejectReason::Invalid,
            });
            self.index.insert(spec.id, Phase::Rejected);
            self.report.rejected.push(spec.id);
            self.report
                .rejections
                .push((spec.id, RejectReason::Invalid));
            return RequestHandle { shared: handle };
        }
        let arrival = self.next_arrival;
        self.next_arrival += 1;
        let key = self.slo_key(&spec, arrival);
        self.index.insert(spec.id, Phase::Queued);
        self.scfg.tracer.instant(
            "submit",
            "scheduler",
            lane::SCHEDULER,
            spec.id,
            &[
                ("prompt", prompt.len() as u64),
                ("class", u64::from(spec.class.rank())),
            ],
        );
        self.enqueue(QueuedSeq {
            core: SeqCore {
                spec,
                prompt,
                arrival,
                key,
                handle: Arc::clone(&handle),
                fork_base_tokens: 0,
            },
            generated: Vec::new(),
            swap: None,
            progress: RequestProgress {
                submit_iter: self.report.scheduler_steps,
                submit_work: self.work_tokens,
                first_token_iter: None,
                first_token_work: None,
                last_token_iter: 0,
                preemptions: 0,
                cached_tokens: 0,
                ever_admitted: false,
                trace_mark: self.scfg.tracer.now(),
            },
        });
        RequestHandle { shared: handle }
    }

    /// Forks a *running* sequence into speculative branches that CoW-share
    /// every page up to the fork point.
    ///
    /// Each branch gets a [`SequenceState::clone_shared`] snapshot of the
    /// parent — page tables, streaming rings, selector history, position
    /// counters — with one extra reference taken on every page and **zero
    /// pages copied** (copy-on-write happens lazily when either side appends
    /// into a shared page). The branch's effective prompt is the parent's
    /// full token history at the fork point (`prompt ++ generated`) followed
    /// by the branch suffix; the snapshot enters the queue parked like a
    /// swap victim, so admission promotes it at its *incremental* cost (zero
    /// for a fully-hot snapshot) and its first event is `Admitted`.
    ///
    /// Branches race under [`SloClass::BestEffort`]. When the group's
    /// [`JoinPolicy`] resolves, losers are cancelled with prefix donation so
    /// the winner's shared pages stay warm; track resolution with
    /// [`Scheduler::join_status`]. A branch's [`BranchSpec::sparsity`]
    /// override applies from the fork point onward, so a surviving branch is
    /// bit-identical to a solo run of its full history with the same
    /// override scheduled at the same position
    /// ([`RequestSpec::sparsity_from`]).
    ///
    /// # Errors
    ///
    /// [`ForkError::ParentNotRunning`] unless `parent` is currently in the
    /// running batch (fork is a live-sequence operation; queued or terminal
    /// parents have no snapshot to share), [`ForkError::NoBranches`] for an
    /// empty branch list, [`ForkError::DuplicateId`] for a branch id the
    /// scheduler already knows (or repeated within the call), and
    /// [`ForkError::InvalidBranch`] for a zero decode budget or a
    /// streaming-window override (children inherit the parent's rings —
    /// windows are admission-time-only).
    pub fn fork(
        &mut self,
        parent: u64,
        policy: JoinPolicy,
        branches: &[BranchSpec],
    ) -> Result<ForkOutcome, ForkError> {
        if branches.is_empty() {
            return Err(ForkError::NoBranches);
        }
        let Some(pi) = self.running.iter().position(|s| s.core.spec.id == parent) else {
            return Err(ForkError::ParentNotRunning(parent));
        };
        for (bi, b) in branches.iter().enumerate() {
            if self.index.contains_key(&b.id) || branches[..bi].iter().any(|o| o.id == b.id) {
                return Err(ForkError::DuplicateId(b.id));
            }
            if b.max_new_tokens == 0 || b.sparsity.streaming_window.is_some() {
                return Err(ForkError::InvalidBranch(b.id));
            }
        }
        let (full, absorbed, parent_schedule) = {
            let p = &self.running[pi];
            let mut full = p.core.prompt.clone();
            full.extend_from_slice(&p.generated);
            (
                full,
                p.state.context_len(),
                p.state.sparsity_schedule().clone(),
            )
        };
        debug_assert!(absorbed <= full.len(), "snapshot never ahead of history");
        self.scfg.tracer.instant(
            "fork",
            "dag",
            lane::DAG,
            parent,
            &[("branches", branches.len() as u64), ("at", absorbed as u64)],
        );
        let members: Vec<(u64, i64)> = branches.iter().map(|b| (b.id, b.score_bias)).collect();
        let group = self.dag.fork(parent, policy, &members);
        let mut handles = Vec::with_capacity(branches.len());
        for b in branches {
            // The CoW snapshot: clone the parent's tables/rings/selectors and
            // take one extra reference per page — refcounts rise, `in_use`
            // does not (pinned by the pool-accounting test).
            let mut snapshot = self.running[pi].state.clone_shared();
            snapshot.retain_pages(&mut self.pool);
            // The branch replays the parent's budget timeline and adds its
            // own override from the fork point (= the parent's full history
            // length, so the parent's still-pending token is fed under the
            // budget the parent itself would have used).
            let mut schedule = parent_schedule.clone();
            schedule.push(full.len(), b.sparsity);
            snapshot.set_sparsity_schedule(schedule.clone());
            let mut prompt = full.clone();
            prompt.extend_from_slice(&b.suffix);
            let mut spec = RequestSpec::new(b.id, prompt.clone())
                .max_new_tokens(b.max_new_tokens)
                .class(SloClass::BestEffort);
            for &t in &b.stop_tokens {
                spec = spec.stop_token(t);
            }
            spec.sparsity = schedule;
            let handle = HandleShared::new(b.id);
            let arrival = self.next_arrival;
            self.next_arrival += 1;
            let key = self.slo_key(&spec, arrival);
            self.index.insert(b.id, Phase::Queued);
            self.scfg.tracer.instant(
                "branch.spawn",
                "dag",
                lane::DAG,
                b.id,
                &[("suffix", b.suffix.len() as u64)],
            );
            self.enqueue(QueuedSeq {
                core: SeqCore {
                    spec,
                    prompt,
                    arrival,
                    key,
                    handle: Arc::clone(&handle),
                    fork_base_tokens: absorbed,
                },
                generated: Vec::new(),
                swap: Some(SwappedSeq {
                    state: snapshot,
                    fed: absorbed,
                    resume_feed: Vec::new(),
                    last_token: None,
                }),
                progress: RequestProgress {
                    submit_iter: self.report.scheduler_steps,
                    submit_work: self.work_tokens,
                    first_token_iter: None,
                    first_token_work: None,
                    last_token_iter: 0,
                    preemptions: 0,
                    cached_tokens: 0,
                    ever_admitted: false,
                    trace_mark: self.scfg.tracer.now(),
                },
            });
            handles.push(RequestHandle { shared: handle });
        }
        Ok(ForkOutcome { group, handles })
    }

    /// Resolution state of fork group `group` (the id in [`ForkOutcome`]):
    /// whether the join policy has fired, and the winning branch id if any
    /// branch finished.
    pub fn join_status(&self, group: u64) -> Option<JoinStatus> {
        self.dag.join_status(group)
    }

    /// The monotone work clock: tokens pushed through the forward pass across
    /// all sequences plus modeled swap-resume transfer work — the denominator
    /// of every work-normalized metric, exposed for cost comparisons (e.g.
    /// speculative fork-out vs. solo runs).
    pub fn work_tokens(&self) -> u64 {
        self.work_tokens
    }

    /// Requests waiting for admission (fresh or preempted).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Sequences currently prefilling or decoding.
    pub fn running(&self) -> usize {
        self.running.len()
    }

    /// Hot (device) pages currently in use in the shared pool.
    pub fn pool_in_use(&self) -> usize {
        self.pool.in_use()
    }

    /// Cold (host) pages currently in use in the shared pool — swapped-out
    /// victims and selection-demoted stale context.
    pub fn pool_cold_in_use(&self) -> usize {
        self.pool.cold_in_use()
    }

    /// Nvme-tier pages currently in use in the shared pool (always 0 without
    /// the modeled nvme tier).
    pub fn pool_nvme_in_use(&self) -> usize {
        self.pool.nvme_in_use()
    }

    /// The live (unsorted) report accumulated so far.
    pub fn report_snapshot(&self) -> &ServingReport {
        &self.report
    }

    /// Prefixes currently cached in the radix tree.
    pub fn prefix_cache_entries(&self) -> usize {
        self.prefix.entries()
    }

    /// Page references the prefix cache currently holds (shared pages counted
    /// once per referencing entry; the physical footprint is bounded by
    /// `pool_in_use`).
    pub fn prefix_cached_page_refs(&self) -> usize {
        self.prefix.page_refs()
    }

    /// Lifetime hit/miss/eviction counters of the prefix cache.
    pub fn prefix_cache_stats(&self) -> PrefixCacheStats {
        self.prefix.stats()
    }

    /// Evicts every cached prefix, returning its pages to the pool (pages shared
    /// with running sequences survive until those release them). After a run has
    /// drained, `pool_in_use` returns to zero once this is called.
    pub fn flush_prefix_cache(&mut self) {
        self.prefix.clear(&mut self.pool);
    }

    /// Lifecycle state of request `id`, or `None` for an unknown id — an O(1)
    /// index lookup. A preempted request reports [`RequestStatus::Queued`]
    /// until it is re-admitted. Duplicate submissions never enter the index
    /// (they are rejected at submit time), so every id maps to exactly one
    /// lifecycle.
    pub fn status(&self, id: u64) -> Option<RequestStatus> {
        Some(match *self.index.get(&id)? {
            Phase::Queued => RequestStatus::Queued,
            Phase::Running => RequestStatus::Running,
            Phase::Finished(i) => RequestStatus::Finished(self.report.completed[i].1.clone()),
            Phase::Cancelled(i) => RequestStatus::Cancelled(self.report.cancelled[i].1.clone()),
            Phase::Rejected => RequestStatus::Rejected,
        })
    }

    /// Pages needed to hold `tokens` tokens under a request's own sparsity schedule
    /// (see [`sequence_pages_estimate_sparsity`]); identical to the base
    /// estimate for requests without overrides.
    fn pages_estimate_spec(&self, spec: &RequestSpec, tokens: usize) -> usize {
        sequence_pages_estimate_sparsity(
            self.exec.config(),
            &self.exec.weights().config,
            tokens,
            &spec.sparsity,
        )
    }

    /// Admission headroom in *total* pages across the bounded tiers. With a
    /// bounded host and no nvme below it, every page an admission creates
    /// must eventually fit somewhere in hot + host — once both are full,
    /// demotion refuses and swap victims degrade to drop-and-replay, so
    /// reserving against free hot slots alone over-admits into thrash.
    /// An unbounded host or an nvme backstop lifts the constraint
    /// (`usize::MAX`): the hierarchy always has a tier to absorb demotions.
    fn tier_free_total(&self) -> usize {
        let tiers = self.pool.tier_config();
        if tiers.host_pages == 0 || tiers.nvme {
            return usize::MAX;
        }
        (self.pool.capacity() + tiers.host_pages).saturating_sub(self.pool.total_in_use())
    }

    /// True when admitting `need` pages of new demand would overdraw either
    /// the free hot slots (the demotion-aware estimate) or the bounded
    /// hierarchy's total headroom ([`Scheduler::tier_free_total`]). Callers
    /// size `need` with the per-spec estimate so sparsity overrides are
    /// charged at their own footprint.
    fn admission_blocked(&self, need: usize) -> bool {
        need > self.pool.free_pages() || need > self.tier_free_total()
    }

    /// One scheduler iteration: apply pending cancellations, admit, feed
    /// prompt chunks, reserve decode pages (preempting on pressure), then
    /// advance every ready sequence by one decode step (continuous batching).
    pub fn step(&mut self) {
        self.report.scheduler_steps += 1;
        let now = self.report.scheduler_steps;
        let step_start = self.scfg.tracer.now();
        self.apply_cancellations();
        self.admit();
        self.report.peak_running = self.report.peak_running.max(self.running.len());
        self.report.running_seq_steps += self.running.len() as u64;
        self.prefill_phase(now);
        self.decode_phase(now);
        self.rebalance_phase();
        if self.scfg.tracer.is_enabled() {
            let tracer = self.scfg.tracer.clone();
            tracer.span(
                "step",
                "scheduler",
                lane::SCHEDULER,
                lserve_trace::CONTROL_TID,
                step_start,
                &[("iter", now)],
            );
            // Counter tracks: pool residency and batch occupancy, sampled at
            // every step boundary — Perfetto renders these as area charts
            // above the lanes.
            tracer.counter(
                "pages",
                lane::SCHEDULER,
                &[
                    ("hot", self.pool.in_use() as u64),
                    ("cold", self.pool.cold_in_use() as u64),
                    ("nvme", self.pool.nvme_in_use() as u64),
                ],
            );
            tracer.counter(
                "sequences",
                lane::SCHEDULER,
                &[
                    ("running", self.running.len() as u64),
                    ("queued", self.queue.len() as u64),
                ],
            );
        }
        self.report.peak_pages = self.report.peak_pages.max(self.pool.peak_in_use());
        self.report.peak_cold_pages = self.report.peak_cold_pages.max(self.pool.cold_in_use());
        self.report.peak_nvme_pages = self.report.peak_nvme_pages.max(self.pool.nvme_in_use());
        // Tier-migration counters come straight from the pool's lifetime
        // ledger (selection-driven moves in the executor and swap moves here
        // both land in it); swap-resume work is scheduler-side only.
        let tier = self.pool.tier_stats();
        self.report.pages_demoted = tier.pages_demoted;
        self.report.pages_promoted = tier.pages_promoted;
        self.report.pages_spilled = tier.pages_spilled;
        self.report.pages_recalled = tier.pages_recalled;
        self.report.swap_resume_work_tokens = self.swap_resume_work;
        // Copy-engine ledger: prefetch outcomes and the hidden/unhidden split
        // of every transfer, straight from the pool so the report can never
        // drift from `PagePool::migration_stats`.
        let mig = self.pool.migration_stats();
        self.report.prefetch_issued = mig.prefetch_issued;
        self.report.prefetch_hits = mig.prefetch_hits;
        self.report.prefetch_wasted = mig.prefetch_wasted;
        self.report.hidden_transfer_tokens = mig.hidden_transfer_tokens();
        self.report.migration_stall_tokens = mig.migration_stall_tokens();
        // Hit/insert counters come from the cache's own ledger so the report can
        // never drift from `prefix_cache_stats()` (evictions stay scheduler-side:
        // the report counts pressure evictions only, not flushes).
        let stats = self.prefix.stats();
        self.report.prefix_hit_tokens = stats.hit_tokens;
        self.report.prefix_insertions = stats.insertions;
        self.report.rebalances = self.plan.stats.rebalances;
        self.report.heads_migrated = self.plan.stats.heads_migrated;
        self.report.rebalance_migration_tokens = self.plan.stats.migration_cost_tokens;
        // DAG ledger: fork/join/cancel counters live in the branch graph.
        self.report.dag = self.dag.stats();
    }

    /// Checks the multi-device placement for staleness and, when the
    /// rebalancer fires, charges the head migration's interconnect cost into
    /// the work clock (the copy engine's token-unit price over the mesh
    /// link) and traces it on the copy lane.
    fn rebalance_phase(&mut self) {
        if self.plan.devices() <= 1 {
            // Still tick the step clock so enabling devices mid-experiment
            // (fresh scheduler) and single-device runs stay comparable.
            let _ = self.plan.maybe_rebalance(|_, _| 0);
            return;
        }
        let running = &self.running;
        let pool = &self.pool;
        let outcome = self.plan.maybe_rebalance(|l, kv| {
            running
                .iter()
                .map(|s| s.state.kv_head_resident_tokens(pool, l, kv))
                .sum()
        });
        if let Some(o) = outcome {
            self.work_tokens += o.cost_tokens;
            if self.scfg.tracer.is_enabled() {
                let tracer = self.scfg.tracer.clone();
                let start = tracer.now();
                tracer.advance(o.cost_tokens);
                tracer.span(
                    "rebalance.migrate",
                    "copy",
                    lane::COPY,
                    1,
                    start,
                    &[
                        ("heads", o.heads_migrated),
                        ("token_units", o.token_units),
                        ("cost", o.cost_tokens),
                    ],
                );
            }
        }
    }

    /// Runs until every request completes or `max_steps` scheduler iterations
    /// pass. Returns the report (sorted by request id).
    pub fn run_to_completion(&mut self, max_steps: u64) -> ServingReport {
        let mut steps = 0;
        while (!self.queue.is_empty() || !self.running.is_empty()) && steps < max_steps {
            self.step();
            steps += 1;
        }
        let mut report = self.report.clone();
        report.completed.sort_by_key(|(id, _)| *id);
        report.rejected.sort_unstable();
        report.rejections.sort_by_key(|(id, _)| *id);
        report.cancelled.sort_by_key(|(id, _)| *id);
        report.request_metrics.sort_by_key(|m| m.id);
        report
    }

    /// Acts on every pending [`RequestHandle::cancel`] at the step boundary:
    /// running victims donate their completed prefix to the cache (when
    /// enabled) and release their pages; queued victims release any swapped
    /// state. Each gets its terminal [`ServingEvent::Cancelled`] carrying the
    /// output produced so far.
    fn apply_cancellations(&mut self) {
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].core.handle.cancel_requested() {
                let seq = self.running.remove(i);
                self.cancel_running(seq);
            } else {
                i += 1;
            }
        }
        let mut j = 0;
        while j < self.queue.len() {
            if self.queue[j].core.handle.cancel_requested() {
                let q = self.queue.remove(j).expect("index in bounds");
                self.cancel_queued(q);
            } else {
                j += 1;
            }
        }
    }

    fn cancel_running(&mut self, mut seq: SchedSeq) {
        // Loser branches land here when a join policy cancels them: the
        // donation keeps the fork prefix (and the shared pages under it) warm
        // for the winner and for future forks. Overridden sequences never
        // donate — their selector history is budget-dependent.
        if seq.core.spec.sparsity.is_empty() {
            self.donate_tokens(&seq.core.prompt, &seq.generated, &seq.state);
        }
        seq.state.release(&mut self.pool);
        self.scfg.tracer.span(
            "running",
            "scheduler",
            lane::SCHEDULER,
            seq.core.spec.id,
            seq.progress.trace_mark,
            &[],
        );
        self.finish_cancelled(seq.core, seq.generated);
    }

    fn cancel_queued(&mut self, mut q: QueuedSeq) {
        if let Some(mut swap) = q.swap.take() {
            // The parked state is clean, so its completed prefix is donatable
            // like any other; its pages may sit in the cold tier, which the
            // prefix contract supports (a later consumer's residency pass
            // promotes on first use).
            if q.core.spec.sparsity.is_empty() {
                self.donate_tokens(&q.core.prompt, &q.generated, &swap.state);
            }
            swap.state.release(&mut self.pool);
        }
        self.scfg.tracer.span(
            "queued",
            "scheduler",
            lane::SCHEDULER,
            q.core.spec.id,
            q.progress.trace_mark,
            &[],
        );
        self.finish_cancelled(q.core, q.generated);
    }

    /// Terminal rejection bookkeeping for a request that owned a queue/running
    /// slot: the event, the status index, and both report vectors move
    /// together. (Duplicate-id rejections at submit time deliberately bypass
    /// this — they never owned a slot, so only the handle event and the
    /// reasons vector apply there.)
    fn finish_rejected(&mut self, core: SeqCore, reason: RejectReason) {
        self.scfg
            .tracer
            .instant("reject", "scheduler", lane::SCHEDULER, core.spec.id, &[]);
        core.handle.push(ServingEvent::Rejected { reason });
        self.index.insert(core.spec.id, Phase::Rejected);
        self.report.rejected.push(core.spec.id);
        self.report.rejections.push((core.spec.id, reason));
    }

    fn finish_cancelled(&mut self, core: SeqCore, output: Vec<u32>) {
        self.scfg.tracer.instant(
            "cancel",
            "scheduler",
            lane::SCHEDULER,
            core.spec.id,
            &[("tokens", output.len() as u64)],
        );
        core.handle.push(ServingEvent::Cancelled {
            tokens: output.clone(),
        });
        self.index
            .insert(core.spec.id, Phase::Cancelled(self.report.cancelled.len()));
        self.report.cancelled.push((core.spec.id, output));
        // Cascade-cancel: cancelling a request takes its whole speculative
        // subtree with it (the descendants' results can never be consumed).
        let cascade = self.dag.on_cancelled(core.spec.id);
        for id in cascade {
            self.flag_branch_cancel(id);
        }
    }

    /// Sets the cooperative cancel flag on a live request on behalf of the
    /// DAG (join-policy losers and cascade-cancel victims); the cancellation
    /// lands at the next `apply_cancellations` boundary, with prefix donation
    /// like any user cancellation. No-op for ids that are already terminal.
    fn flag_branch_cancel(&mut self, id: u64) {
        let handle = self
            .running
            .iter()
            .find(|s| s.core.spec.id == id)
            .map(|s| &s.core.handle)
            .or_else(|| {
                self.queue
                    .iter()
                    .find(|q| q.core.spec.id == id)
                    .map(|q| &q.core.handle)
            });
        if let Some(h) = handle {
            h.cancel.store(true, Ordering::Release);
            self.scfg
                .tracer
                .instant("branch.cancel", "dag", lane::DAG, id, &[]);
        }
    }

    /// Rank-ordered admission from the queue head, seeding from the prefix
    /// cache when a prompt matches a cached prefix. The queue is kept sorted
    /// by [`SloKey`], so the head is always the most entitled request
    /// (interactive before batch before best-effort; EDF within a class);
    /// admission never skips the head, which preserves within-class FCFS
    /// fairness under pressure.
    fn admit(&mut self) {
        while self.running.len() < self.scfg.max_batch {
            let Some(front) = self.queue.front() else {
                break;
            };
            let full_tokens = front.core.prompt.len() + front.core.spec.max_new_tokens;
            // Capacity check, per-spec (a sparsity override changes the
            // footprint) and *incremental* for a fork branch whose CoW
            // snapshot is still parked: the pages up to the fork point are
            // already paid for by the parent, so only the branch's growth
            // beyond them is new demand. A spilled branch lost its snapshot
            // and replays from scratch — full demand again.
            let full_est = self.pages_estimate_spec(&front.core.spec, full_tokens);
            let base_est = if front.swap.is_some() && front.core.fork_base_tokens > 0 {
                self.pages_estimate_spec(&front.core.spec, front.core.fork_base_tokens)
            } else {
                0
            };
            if full_est.saturating_sub(base_est) > self.pool.capacity() {
                let q = self.queue.pop_front().expect("front checked");
                self.finish_rejected(q.core, RejectReason::TooLarge);
                continue;
            }
            // A swapped-out victim resumes by promotion, not by re-feeding:
            // its exact hot demand is its cold page count plus its own
            // demotions still in flight on the copy engine (forcing one frees
            // a slot but lands a new cold page — net-zero supply). Evict idle
            // cached prefixes first, exactly like fresh admission does.
            if let Some(parked) = &front.swap {
                let need = parked.state.swap_in_demand(&self.pool);
                while need > self.pool.free_pages() {
                    if !self.evict_prefix_one() {
                        break;
                    }
                }
                if need > self.pool.free_pages() {
                    // With nothing running, no future completion will free hot
                    // pages — spill the swap-parked states (including this
                    // one) back to replay so admission can always make
                    // progress, then retry.
                    if self.running.is_empty() && self.spill_swapped_queue() {
                        continue;
                    }
                    break; // wait for hot pages to free up
                }
                let q = self.queue.pop_front().expect("front checked");
                let swap = q.swap.expect("checked above");
                let (_, units) = swap
                    .state
                    .promote_resident(&mut self.pool)
                    .expect("swap-in demand reserved above");
                // Under sync migration the promotion is accounted work on the
                // run's monotone clock: TTFT/TBT honestly pay for the
                // transfer. The async engine instead queues it on the copy
                // engine, where it drains behind the very compute that
                // resumes the sequence — only remainders a decode step
                // demand-forces surface, in the pool's migration ledger.
                if self.scfg.migration == MigrationMode::Sync {
                    let cost = lserve_kvcache::transfer_cost_tokens(units);
                    self.swap_resume_work += cost;
                    self.work_tokens += cost;
                    // The stall is real work on the request's critical path,
                    // so it advances the trace clock too — the resume instant
                    // lands *after* the promotion it paid for.
                    self.scfg.tracer.advance(cost);
                }
                let id = q.core.spec.id;
                self.scfg.tracer.span(
                    "queued",
                    "scheduler",
                    lane::SCHEDULER,
                    id,
                    q.progress.trace_mark,
                    &[("swapped", 1)],
                );
                // A fork branch enters through this same promote path (its
                // CoW snapshot is parked like a swap victim's, with zero cold
                // pages), but it was never admitted before — its first event
                // is `Admitted`, not `Resumed`.
                self.scfg.tracer.instant(
                    if q.progress.ever_admitted {
                        "resume"
                    } else {
                        "admit"
                    },
                    "scheduler",
                    lane::SCHEDULER,
                    id,
                    &[("units", units)],
                );
                q.core.handle.push(if q.progress.ever_admitted {
                    ServingEvent::Resumed
                } else {
                    ServingEvent::Admitted
                });
                self.index.insert(id, Phase::Running);
                self.running.push(SchedSeq {
                    core: q.core,
                    state: swap.state,
                    resume_feed: swap.resume_feed,
                    fed: swap.fed,
                    generated: q.generated,
                    last_token: swap.last_token,
                    progress: RequestProgress {
                        ever_admitted: true,
                        trace_mark: self.scfg.tracer.now(),
                        ..q.progress
                    },
                });
                continue;
            }
            let feed_len = front.core.prompt.len() + front.generated.len();
            // Sparsity-overridden requests are excluded from prefix sharing in
            // both directions: the selector history inside a cached snapshot
            // is budget-dependent, so pages cached under the base budget would
            // poison an overridden consumer's replay (and vice versa).
            let has_overrides = !front.core.spec.sparsity.is_empty();
            // A cached match makes the request cheaper to admit and must survive
            // the eviction loop below, so LRU-protect it before evicting and size
            // the first-chunk estimate by the uncached remainder.
            let matched = if self.scfg.prefix_cache && !has_overrides {
                let min_match = self.scfg.chunk_tokens;
                let max_match = front.core.prompt.len().saturating_sub(1);
                if max_match >= min_match {
                    self.prefix
                        .touch(&front.core.prompt, min_match, max_match)
                        .unwrap_or(0)
                } else {
                    0
                }
            } else {
                0
            };
            let admit_tokens = match self.scfg.admission {
                AdmissionPolicy::FullFootprint => full_tokens,
                AdmissionPolicy::FirstChunk => self.scfg.chunk_tokens.min(feed_len - matched),
            };
            let need = self.pages_estimate_spec(&front.core.spec, admit_tokens);
            while self.admission_blocked(need) {
                if !self.evict_prefix_one() {
                    break;
                }
            }
            if self.admission_blocked(need) {
                // Swap-parked states can pin shared prefix pages the eviction
                // loop cannot free; with nothing running, spilling them back
                // to replay is the only way admission can make progress.
                if self.running.is_empty() && self.spill_swapped_queue() {
                    continue;
                }
                break; // wait for running sequences to finish or be preempted
            }
            let q = self.queue.pop_front().expect("front checked");
            let (cached, mut state) = self.seeded_state(&q.core.prompt, &q.core.spec.sparsity);
            state.set_sparsity_schedule(q.core.spec.sparsity.clone());
            let id = q.core.spec.id;
            if self.scfg.tracer.is_enabled() {
                self.scfg.tracer.span(
                    "queued",
                    "scheduler",
                    lane::SCHEDULER,
                    id,
                    q.progress.trace_mark,
                    &[],
                );
                let name = if q.progress.ever_admitted {
                    "resume"
                } else {
                    "admit"
                };
                self.scfg.tracer.instant(
                    name,
                    "scheduler",
                    lane::SCHEDULER,
                    id,
                    &[("cached", cached as u64)],
                );
                if cached > 0 {
                    self.scfg.tracer.instant(
                        "prefix.hit",
                        "prefix",
                        lane::SCHEDULER,
                        id,
                        &[("tokens", cached as u64)],
                    );
                }
            }
            q.core.handle.push(if q.progress.ever_admitted {
                ServingEvent::Resumed
            } else {
                ServingEvent::Admitted
            });
            self.index.insert(id, Phase::Running);
            self.running.push(SchedSeq {
                generated: q.generated.clone(),
                resume_feed: q.generated,
                core: q.core,
                state,
                fed: cached,
                last_token: None,
                progress: RequestProgress {
                    cached_tokens: q.progress.cached_tokens.max(cached),
                    ever_admitted: true,
                    trace_mark: self.scfg.tracer.now(),
                    ..q.progress
                },
            });
        }
        // Resumed sequences have old (small) ranks; keep the running list in
        // rank order so the prefill phase serves the most entitled sequences
        // first and victim reasoning stays simple.
        self.running.sort_by_key(|s| s.core.key);
    }

    /// Looks `prompt` up in the prefix cache and seeds a sequence from the
    /// deepest usable match, or creates a fresh sequence on a miss. Matches are
    /// bounded below by the prefill tile grid (the suffix must run entirely on
    /// the position-stable decode path) and above by `prompt_len - 1` (at least
    /// one token must be computed to produce first-token logits).
    fn seeded_state(
        &mut self,
        prompt: &[u32],
        sparsity: &SparsitySchedule,
    ) -> (usize, SequenceState) {
        if !sparsity.is_empty() {
            // Overridden requests never consume the cache (budget-dependent
            // selector history, see `admit`); a position-0 window override is
            // honoured here, where the streaming rings are built.
            return (
                0,
                self.exec
                    .new_sequence_with_window(sparsity.window_override()),
            );
        }
        if self.scfg.prefix_cache {
            let min_match = self.scfg.chunk_tokens;
            let max_match = prompt.len().saturating_sub(1);
            if max_match >= min_match {
                if let Some((depth, hit)) = self.prefix.lookup(prompt, min_match, max_match) {
                    return (depth, hit.seed(&mut self.pool));
                }
            }
        }
        (0, self.exec.new_sequence())
    }

    /// Donates the current prompt prefix of running sequence `i` into the cache
    /// when its feed position sits on a donation point: a tile-grid boundary
    /// inside the prompt, or the end of the prompt. Idempotent — a prefix that is
    /// already cached is refused by the tree (and LRU-touched).
    fn maybe_donate(&mut self, i: usize) {
        if !self.scfg.prefix_cache {
            return;
        }
        let seq = &self.running[i];
        // Budget-dependent selector history: overridden sequences never seed
        // the cache (see `admit`).
        if !seq.core.spec.sparsity.is_empty() {
            return;
        }
        let fed = seq.fed;
        let plen = seq.core.prompt.len();
        let chunk = self.scfg.chunk_tokens;
        let on_grid = fed > 0 && fed.is_multiple_of(chunk);
        if fed < chunk || fed > plen || !(on_grid || fed == plen) {
            return;
        }
        debug_assert_eq!(
            seq.state.context_len(),
            fed,
            "donation off a clean feed position"
        );
        // Skip the state capture entirely when the prefix is already cached (the
        // common case on warm traffic re-walking a donated prompt).
        if self.prefix.is_cached(&seq.core.prompt[..fed]) {
            return;
        }
        let value = CachedPrefix::capture(&seq.state);
        self.prefix
            .insert(&mut self.pool, &seq.core.prompt[..fed], value);
    }

    /// Donates the absorbed token stream of a clean state — `prompt ++
    /// generated`, truncated to `state.context_len()` — into the prefix
    /// cache. The generalization of completion donation that also serves
    /// cancellation: whatever prefix the request got through is warm for the
    /// next request that walks it. Sub-grid prompts never donate (their tile
    /// covered `[0, prompt_len)`, so their KV is not what a longer prompt's
    /// cold run would compute).
    fn donate_tokens(&mut self, prompt: &[u32], generated: &[u32], state: &SequenceState) {
        if !self.scfg.prefix_cache {
            return;
        }
        let chunk = self.scfg.chunk_tokens;
        let absorbed = state.context_len();
        if prompt.len() < chunk || absorbed < chunk {
            return;
        }
        let mut key: Vec<u32> = prompt[..prompt.len().min(absorbed)].to_vec();
        if absorbed > prompt.len() {
            key.extend(&generated[..absorbed - prompt.len()]);
        }
        debug_assert_eq!(key.len(), absorbed);
        if self.prefix.is_cached(&key) {
            return;
        }
        let value = CachedPrefix::capture(state);
        self.prefix.insert(&mut self.pool, &key, value);
    }

    /// One pressure-relief step against the prefix cache. With a memory
    /// hierarchy configured (bounded host and/or nvme), the cache first
    /// *spills*: the LRU entry's sole-owned hot pages demote into the cold
    /// tiers while the entry stays cached — long-tail prefixes keep their
    /// warm-capacity value, and a later hit pays an accounted promotion
    /// instead of a prefill recompute. Only when nothing can spill (all
    /// cold already, or the bounded tiers are full) does it fall back to
    /// real eviction: removing the LRU entry whose removal actually frees
    /// physical pages, skipping entries whose pages are all co-owned
    /// elsewhere. Returns `false` when neither lever can relieve the pool
    /// and the caller needs preemption instead.
    ///
    /// Under the default tier shape (unbounded host, no nvme) spilling is
    /// skipped entirely: an unbounded modeled host would be free fake
    /// capacity, and the historical evict-under-pressure behavior stands.
    fn evict_prefix_one(&mut self) -> bool {
        let tiers = self.pool.tier_config();
        if (tiers.host_pages > 0 || tiers.nvme) && self.prefix.spill_lru(&mut self.pool).is_some() {
            self.report.prefix_spills += 1;
            self.scfg.tracer.instant(
                "prefix.spill",
                "prefix",
                lane::SCHEDULER,
                lserve_trace::CONTROL_TID,
                &[],
            );
            return true;
        }
        if self.prefix.evict_lru_freeing(&mut self.pool).is_none() {
            return false;
        }
        self.report.prefix_evictions += 1;
        self.scfg.tracer.instant(
            "prefix.evict",
            "prefix",
            lane::SCHEDULER,
            lserve_trace::CONTROL_TID,
            &[],
        );
        true
    }

    /// Drains the prefix cache entirely — the last resort before truncating a
    /// lone sequence that cannot grow, where reclaiming every tree-only page
    /// matters more than cache warmth. Returns `true` if any page was freed.
    fn evict_prefix_all(&mut self) -> bool {
        let before = self.pool.free_pages();
        while self.prefix.evict_lru(&mut self.pool).is_some() {
            self.report.prefix_evictions += 1;
        }
        self.pool.free_pages() > before
    }

    /// Feeds prompt (and resume) tokens, up to `chunk_tokens` per sequence per
    /// iteration, in rank order (interactive sequences feed before batch ones).
    fn prefill_phase(&mut self, now: u64) {
        let exec = Arc::clone(&self.exec);
        let order: Vec<u64> = self.running.iter().map(|s| s.core.arrival).collect();
        for ar in order {
            // Re-locate: earlier work in this phase may have preempted sequences.
            let Some(i) = self.running.iter().position(|s| s.core.arrival == ar) else {
                continue;
            };
            if self.running[i].fed >= self.running[i].feed_len() {
                continue;
            }
            let my_key = self.running[i].core.key;
            let mut budget = self.scfg.chunk_tokens;
            // First grid cell: fused tile prefill over the fixed tile grid (a pure
            // function of absolute token position), so replays after preemption and
            // prefix-cached peers compute bit-identical KV. Sequences seeded from
            // the prefix cache start with `fed > 0` and never take this path.
            if self.running[i].fed == 0 {
                let boundary =
                    tile_grid_boundary(self.scfg.chunk_tokens, self.running[i].core.prompt.len());
                loop {
                    let need = self.pages_estimate_spec(&self.running[i].core.spec, boundary);
                    if need <= self.pool.free_pages() {
                        break;
                    }
                    if self.evict_prefix_one() {
                        continue;
                    }
                    if self.make_room_below(my_key) {
                        continue;
                    }
                    // Swap-parked states may pin the very prefix pages the
                    // eviction loop needs; spill them to replay (what Replay
                    // freed at preemption time) before giving up.
                    if !self.spill_swapped_queue() {
                        break;
                    }
                }
                let tokens: Vec<u32> = (0..boundary)
                    .map(|t| self.running[i].feed_token(t))
                    .collect();
                let chunk_start = self.scfg.tracer.now();
                match exec.prefill_threads(
                    &mut self.running[i].state,
                    &mut self.pool,
                    &tokens,
                    self.scfg.decode_threads,
                    &mut self.report.parallel,
                ) {
                    Ok(out) => {
                        self.scfg.tracer.span(
                            "prefill.chunk",
                            "scheduler",
                            lane::SCHEDULER,
                            self.running[i].core.spec.id,
                            chunk_start,
                            &[("tokens", boundary as u64)],
                        );
                        self.running[i].fed = boundary;
                        self.work_tokens += boundary as u64;
                        if self.scfg.prefix_cache {
                            self.report.prefix_recomputed_tokens += boundary as u64;
                        }
                        budget = budget.saturating_sub(boundary);
                        self.maybe_donate(i);
                        if self.running[i].fed == self.running[i].feed_len() {
                            self.finish_feed(i, &out.logits, now);
                            continue;
                        }
                    }
                    Err(_) => {
                        // The estimate was optimistic and no lower-rank victim
                        // is left. Give the partial pages back and retry on a later
                        // iteration — unless this sequence is alone, in which case
                        // it can never fit and must fail.
                        self.running[i].state.release(&mut self.pool);
                        self.running[i].fed = 0;
                        if self.running.len() == 1 && self.queue.is_empty() {
                            let seq = self.running.remove(i);
                            self.finish_rejected(seq.core, RejectReason::TooLarge);
                        }
                        continue;
                    }
                }
            }
            // Continuation: token-by-token through the decode path. Numerically
            // independent of how many tokens any iteration feeds.
            let cont_start = self.scfg.tracer.now();
            let cont_id = self.running[i].core.spec.id;
            let mut cont_fed = 0u64;
            while budget > 0 && self.running[i].fed < self.running[i].feed_len() {
                let need = self.running[i]
                    .state
                    .pages_needed_for_next_token(&self.pool);
                if need > self.pool.free_pages() {
                    if self.evict_prefix_one() {
                        continue;
                    }
                    if self.make_room_below(my_key) {
                        continue;
                    }
                    // Unpin prefix pages held by swap-parked peers (degrading
                    // them to replay) before stalling the feed.
                    if self.spill_swapped_queue() {
                        continue;
                    }
                    break; // wait for a later iteration
                }
                let fed_pos = self.running[i].fed;
                let t = self.running[i].feed_token(fed_pos);
                let mut one = [(&mut self.running[i].state, t)];
                let result = exec
                    .decode_batch_sharded(
                        &mut self.pool,
                        &mut one,
                        self.scfg.decode_threads,
                        &mut self.plan,
                        &mut self.report.parallel,
                    )
                    .pop()
                    .expect("one result per input sequence");
                match result {
                    Ok(out) => {
                        self.running[i].fed += 1;
                        self.work_tokens += 1;
                        cont_fed += 1;
                        if self.scfg.prefix_cache && fed_pos < self.running[i].core.prompt.len() {
                            self.report.prefix_recomputed_tokens += 1;
                        }
                        budget -= 1;
                        self.maybe_donate(i);
                        if self.running[i].fed == self.running[i].feed_len() {
                            self.finish_feed(i, &out.logits, now);
                            break;
                        }
                    }
                    Err(_) => {
                        // Exact reservation should prevent this; self-preempt to
                        // discard the partially-written token and replay later.
                        // Always the replay path: the state is unclean and must
                        // not be parked for swap-resume.
                        self.preempt_index_replay(i);
                        break;
                    }
                }
            }
            if cont_fed > 0 {
                // One span per iteration's continuation feed (not per token):
                // the decode-path re-feed is the same "prompt chunk" unit to
                // the flame chart, however the scheduler sliced it.
                self.scfg.tracer.span(
                    "prefill.chunk",
                    "scheduler",
                    lane::SCHEDULER,
                    cont_id,
                    cont_start,
                    &[("tokens", cont_fed)],
                );
            }
        }
    }

    /// Reserve pages for one decode token per ready sequence, preempting the
    /// cost- and class-chosen victim until demand fits, then run the batched
    /// decode step.
    fn decode_phase(&mut self, now: u64) {
        loop {
            let demand: usize = self
                .running
                .iter()
                .filter(|s| s.last_token.is_some())
                .map(|s| s.state.pages_needed_for_next_token(&self.pool))
                .sum();
            if demand <= self.pool.free_pages() {
                break;
            }
            // Cached-but-idle prefixes go first; preemption is the last resort.
            if self.evict_prefix_one() {
                continue;
            }
            if self.running.len() <= 1 {
                // Before truncating the lone sequence, spill swap-parked
                // states back to replay: releasing their pages unpins any
                // prefix-cache entries they co-own — exactly what the Replay
                // policy would already have freed at preemption time — and
                // keeps bounded-memory truncation policy-independent.
                if self.spill_swapped_queue() {
                    continue;
                }
                // Then reclaim every page the cache still holds exclusively.
                if self.evict_prefix_all() {
                    continue;
                }
                // Nothing to preempt in favor of: the lone sequence cannot grow any
                // further. Finish it with what it has (bounded-memory truncation).
                if let Some(seq) = self.running.pop() {
                    self.complete(seq, FinishReason::Truncated);
                }
                return;
            }
            // Progress guarantee: the best-ranked running sequence is never a
            // victim here, so the most entitled live request always advances —
            // without this, the swap-cost choice could ping-pong a cheap
            // victim through resume/preempt cycles forever.
            let best = self
                .running
                .iter()
                .map(|s| s.core.key)
                .min()
                .expect("running list non-empty");
            let victim = self
                .pick_victim(Some(best))
                .expect("more than one running sequence with unique ranks");
            self.preempt_index(victim);
        }
        // Batched decode: one token for every sequence whose feed is complete.
        let exec = Arc::clone(&self.exec);
        let mut batch_idx: Vec<usize> = Vec::new();
        let mut batch: Vec<(&mut SequenceState, u32)> = Vec::new();
        for (i, seq) in self.running.iter_mut().enumerate() {
            if let Some(t) = seq.last_token {
                batch_idx.push(i);
                batch.push((&mut seq.state, t));
            }
        }
        if batch.is_empty() {
            return;
        }
        let results = exec.decode_batch_sharded(
            &mut self.pool,
            &mut batch,
            self.scfg.decode_threads,
            &mut self.plan,
            &mut self.report.parallel,
        );
        drop(batch);
        // Walk results in reverse index order so removals (completion, fallback
        // preemption) do not shift the indices still to be visited.
        for (&i, result) in batch_idx.iter().zip(results.iter()).rev() {
            match result {
                Ok(out) => {
                    self.report.decode_steps += 1;
                    self.work_tokens += 1;
                    let next = greedy_next_token(&out.logits);
                    self.emit_token(i, next, now);
                }
                Err(_) => {
                    // Reservation makes this unreachable in practice; keep the
                    // conservative fallback anyway. Replay, never swap: the
                    // failed step left the state partially written.
                    self.preempt_index_replay(i);
                }
            }
        }
    }

    /// The feed (prompt + resume) is fully consumed: the last logits determine the
    /// next token to emit.
    fn finish_feed(&mut self, i: usize, last_logits: &[f32], now: u64) {
        let next = greedy_next_token(last_logits);
        if self.running[i].core.spec.max_new_tokens == 0 {
            let seq = self.running.remove(i);
            self.complete(seq, FinishReason::Length);
            return;
        }
        self.emit_token(i, next, now);
    }

    /// Records a newly generated token for running sequence `i`: streams the
    /// token event, applies stop conditions, and completes the request when it
    /// hits a stop or its token budget.
    fn emit_token(&mut self, i: usize, token: u32, now: u64) {
        let work_now = self.work_tokens;
        let stop_token = {
            let seq = &mut self.running[i];
            debug_assert!(seq.generated.len() < seq.core.spec.max_new_tokens);
            seq.generated.push(token);
            seq.last_token = Some(token);
            if seq.core.spec.stop_tokens.contains(&token) {
                true
            } else {
                let first = seq.progress.first_token_work.is_none();
                if seq.progress.first_token_iter.is_none() {
                    seq.progress.first_token_iter = Some(now);
                }
                if first {
                    seq.progress.first_token_work = Some(work_now);
                }
                seq.progress.last_token_iter = now;
                self.scfg.tracer.instant(
                    if first { "first_token" } else { "token" },
                    "scheduler",
                    lane::SCHEDULER,
                    seq.core.spec.id,
                    &[],
                );
                seq.core.handle.push(if first {
                    ServingEvent::FirstToken { token }
                } else {
                    ServingEvent::Token { token }
                });
                false
            }
        };
        if stop_token {
            // The stop token terminates generation and is excluded from the
            // output (it was never streamed).
            let seq = self.running.remove(i);
            self.complete(seq, FinishReason::StopToken);
            return;
        }
        let seq = &self.running[i];
        if seq
            .core
            .spec
            .stop_sequences
            .iter()
            .any(|s| !s.is_empty() && seq.generated.ends_with(s))
        {
            let seq = self.running.remove(i);
            self.complete(seq, FinishReason::StopSequence);
            return;
        }
        if seq.generated.len() >= seq.core.spec.max_new_tokens {
            let seq = self.running.remove(i);
            self.complete(seq, FinishReason::Length);
        }
    }

    /// Releases a finished sequence — donating its conversation (prompt plus
    /// absorbed generated tokens) into the prefix cache first, so follow-up turns
    /// that extend this conversation start from its pages — then records its
    /// report entries, terminal event, and (for session requests) the session's
    /// updated conversation.
    fn complete(&mut self, mut seq: SchedSeq, reason: FinishReason) {
        if seq.core.spec.sparsity.is_empty() {
            self.donate_tokens(&seq.core.prompt, &seq.generated, &seq.state);
        }
        seq.state.release(&mut self.pool);
        let output = match reason {
            FinishReason::StopToken => {
                let mut g = seq.generated;
                g.pop();
                g
            }
            _ => seq.generated,
        };
        if self.scfg.tracer.is_enabled() {
            let id = seq.core.spec.id;
            self.scfg.tracer.span(
                "running",
                "scheduler",
                lane::SCHEDULER,
                id,
                seq.progress.trace_mark,
                &[],
            );
            self.scfg.tracer.instant(
                "finish",
                "scheduler",
                lane::SCHEDULER,
                id,
                &[("tokens", output.len() as u64)],
            );
        }
        let p = seq.progress;
        let ttft_work = p.first_token_work.map_or(0, |first| first - p.submit_work);
        let deadline = seq.core.spec.deadline_work_tokens;
        self.report.request_metrics.push(RequestMetrics {
            id: seq.core.spec.id,
            class: seq.core.spec.class,
            finish: reason,
            ttft_iters: p.first_token_iter.map_or(0, |first| first - p.submit_iter),
            ttft_work_tokens: ttft_work,
            decode_span_iters: p
                .first_token_iter
                .map_or(0, |first| p.last_token_iter - first),
            tokens: output.len(),
            preemptions: p.preemptions,
            cached_prompt_tokens: p.cached_tokens,
            deadline_work_tokens: deadline,
            deadline_met: deadline
                .map(|d| p.first_token_work.is_some_and(|fw| fw - p.submit_work <= d)),
        });
        if let Some(sid) = seq.core.spec.session {
            let mut conversation = seq.core.prompt.clone();
            conversation.extend_from_slice(&output);
            self.sessions.insert(sid, conversation);
        }
        seq.core.handle.push(ServingEvent::Finished {
            reason,
            tokens: output.clone(),
        });
        self.index.insert(
            seq.core.spec.id,
            Phase::Finished(self.report.completed.len()),
        );
        // Join bookkeeping: a finishing branch may resolve its fork group,
        // in which case the policy's losers get their cancel flags now and
        // are cancelled (with prefix donation) at the next step boundary.
        let joins_before = self.dag.stats().joins;
        let losers = self.dag.on_finished(seq.core.spec.id, output.len());
        if self.dag.stats().joins > joins_before {
            self.scfg.tracer.instant(
                "join",
                "dag",
                lane::DAG,
                seq.core.spec.id,
                &[("losers", losers.len() as u64)],
            );
        }
        for id in losers {
            self.flag_branch_cancel(id);
        }
        self.report.completed.push((seq.core.spec.id, output));
    }

    /// Chooses the preemption victim among running sequences whose rank is
    /// strictly worse than `than` (all of them when `than` is `None`).
    ///
    /// Selection is class-first (the worst class present loses), then
    /// cost-aware within that class: under [`PreemptionPolicy::Swap`] the
    /// victim is the sequence with the smallest modeled promote-back cost
    /// ([`SequenceState::promote_back_cost_units`] — shared hot pages free,
    /// sole-owned hot pages one round trip, cold pages one host hop, nvme
    /// pages recall plus hop), i.e. the cheapest to move across the tiers
    /// now *and* to bring back later, priced by where its pages actually
    /// sit (latest virtual deadline, then latest arrival, break ties) —
    /// while under [`PreemptionPolicy::Replay`] it is the least entitled
    /// sequence (latest virtual deadline, then latest arrival), whose
    /// replayed context is the least urgent work to redo.
    fn pick_victim(&self, than: Option<SloKey>) -> Option<usize> {
        let candidates: Vec<usize> = (0..self.running.len())
            .filter(|&i| than.is_none_or(|k| self.running[i].core.key > k))
            .collect();
        let worst_class = candidates
            .iter()
            .map(|&i| self.running[i].core.key.class)
            .max()?;
        let same_class = candidates
            .into_iter()
            .filter(|&i| self.running[i].core.key.class == worst_class);
        // The cost-aware choice is part of SLO-aware scheduling; with
        // `class_aware` off the baseline is honestly class-blind FCFS under
        // *both* policies (latest arrival loses, exactly the pre-SLO rule).
        if self.scfg.class_aware && self.scfg.preemption == PreemptionPolicy::Swap {
            same_class.min_by_key(|&i| {
                let s = &self.running[i];
                (
                    s.state.promote_back_cost_units(&self.pool),
                    std::cmp::Reverse(s.core.key.vdeadline),
                    std::cmp::Reverse(s.core.key.arrival),
                )
            })
        } else {
            same_class.max_by_key(|&i| {
                let s = &self.running[i];
                (s.core.key.vdeadline, s.core.key.arrival)
            })
        }
    }

    /// Preempts the chosen victim among sequences ranked strictly worse than
    /// `than`. Returns `false` when no such victim exists.
    fn make_room_below(&mut self, than: SloKey) -> bool {
        match self.pick_victim(Some(than)) {
            Some(victim) => {
                self.preempt_index(victim);
                true
            }
            None => false,
        }
    }

    /// Preempts running sequence `i` under the configured policy. The sequence
    /// must be at a clean step boundary (nothing half-written) — the unclean
    /// OOM fallbacks call [`Scheduler::preempt_index_replay`] directly.
    fn preempt_index(&mut self, i: usize) {
        match self.scfg.preemption {
            PreemptionPolicy::Replay => self.preempt_index_replay(i),
            PreemptionPolicy::Swap => self.preempt_index_swap(i),
        }
    }

    /// Replay preemption: releases every page sequence `i` holds and re-queues
    /// it with its generation progress, to be re-fed later.
    fn preempt_index_replay(&mut self, i: usize) {
        let mut seq = self.running.remove(i);
        seq.state.release(&mut self.pool);
        self.report.preemptions += 1;
        let id = seq.core.spec.id;
        self.scfg.tracer.span(
            "running",
            "scheduler",
            lane::SCHEDULER,
            id,
            seq.progress.trace_mark,
            &[],
        );
        self.scfg
            .tracer
            .instant("preempt", "scheduler", lane::SCHEDULER, id, &[("swap", 0)]);
        seq.core.handle.push(ServingEvent::Preempted {
            policy: PreemptionPolicy::Replay,
        });
        self.index.insert(id, Phase::Queued);
        self.enqueue(QueuedSeq {
            core: seq.core,
            generated: seq.generated,
            swap: None,
            progress: RequestProgress {
                preemptions: seq.progress.preemptions + 1,
                trace_mark: self.scfg.tracer.now(),
                ..seq.progress
            },
        });
    }

    /// Swap preemption: demotes every sole-owned page sequence `i` holds to
    /// the cold tier (pages co-owned with the prefix cache or other sequences
    /// stay hot for their readers) and parks the intact sequence state in the
    /// queue. Resume is an accounted promotion instead of a replay.
    ///
    /// Drop-and-replay is the final fallback: when a bounded host (with no
    /// nvme below it) refuses the *entire* swap-out — nothing demoted while
    /// the victim still holds sole-owned hot pages — parking the state would
    /// relieve no hot pressure at all, so the preemption degrades to
    /// [`Scheduler::preempt_index_replay`] and releases the pages instead.
    /// A partially refused swap-out still parks: every page that did move is
    /// a hot slot relieved, and the remainder stays hot for a cheap resume.
    fn preempt_index_swap(&mut self, i: usize) {
        let (moved, _) = self.running[i].state.demote_resident(&mut self.pool);
        if moved == 0 && self.running[i].state.sole_owned_hot_pages(&self.pool) > 0 {
            self.preempt_index_replay(i);
            return;
        }
        let seq = self.running.remove(i);
        self.report.preemptions += 1;
        let id = seq.core.spec.id;
        self.scfg.tracer.span(
            "running",
            "scheduler",
            lane::SCHEDULER,
            id,
            seq.progress.trace_mark,
            &[],
        );
        self.scfg
            .tracer
            .instant("preempt", "scheduler", lane::SCHEDULER, id, &[("swap", 1)]);
        seq.core.handle.push(ServingEvent::Preempted {
            policy: PreemptionPolicy::Swap,
        });
        self.index.insert(id, Phase::Queued);
        self.enqueue(QueuedSeq {
            core: seq.core,
            generated: seq.generated,
            swap: Some(SwappedSeq {
                state: seq.state,
                fed: seq.fed,
                resume_feed: seq.resume_feed,
                last_token: seq.last_token,
            }),
            progress: RequestProgress {
                preemptions: seq.progress.preemptions + 1,
                trace_mark: self.scfg.tracer.now(),
                ..seq.progress
            },
        });
    }

    /// Last-resort pressure relief under [`PreemptionPolicy::Swap`]: spills
    /// every swap-parked state in the queue. With the prefix cache on, the
    /// spill is *partial*: the parked state's completed prefix is donated
    /// into the cache first, then the state is released — its sole-owned
    /// cold/nvme pages drop, but the prefix seed (the pages a re-admission
    /// can share) survives in the tree, so the request replays only the
    /// suffix past its deepest cache hit instead of degrading all the way
    /// to a full replay. Without the prefix cache it is the historical full
    /// spill: everything released, resume by complete re-feed.
    ///
    /// Either way this drops the parked states' references on shared prefix
    /// pages, so the eviction loop regains everything the Replay policy
    /// would have freed at preemption time — a donated entry sole-owning
    /// its pages is exactly what [`Scheduler::evict_prefix_one`] can spill
    /// down-tier or evict under further pressure. Returns `true` if any
    /// state was spilled.
    fn spill_swapped_queue(&mut self) -> bool {
        let mut any = false;
        for qi in 0..self.queue.len() {
            let Some(mut swap) = self.queue[qi].swap.take() else {
                continue;
            };
            // Donate before releasing. The borrow dance: donation needs
            // `&mut self` (cache + pool), so lift the key material out of
            // the queue entry and put it back after.
            let prompt = std::mem::take(&mut self.queue[qi].core.prompt);
            let generated = std::mem::take(&mut self.queue[qi].generated);
            if self.queue[qi].core.spec.sparsity.is_empty() {
                self.donate_tokens(&prompt, &generated, &swap.state);
            }
            swap.state.release(&mut self.pool);
            self.queue[qi].core.prompt = prompt;
            self.queue[qi].generated = generated;
            self.scfg.tracer.instant(
                "swap.spill",
                "scheduler",
                lane::SCHEDULER,
                self.queue[qi].core.spec.id,
                &[],
            );
            any = true;
        }
        any
    }

    /// Inserts a request into the queue, keeping it sorted by scheduling rank
    /// ([`SloKey`]: class, virtual deadline, arrival). Fresh submissions and
    /// preempted requeues share this path, so admission order always reflects
    /// the SLO policy while within-class FCFS survives preemption.
    fn enqueue(&mut self, q: QueuedSeq) {
        let pos = self
            .queue
            .iter()
            .position(|other| other.core.key > q.core.key)
            .unwrap_or(self.queue.len());
        self.queue.insert(pos, q);
    }
}

/// Multi-sequence serving engine over one shared page pool.
///
/// Compatibility facade over [`Scheduler`]: monolithic prefill (unbounded chunk)
/// and conservative full-footprint admission, which is the original FCFS
/// continuous-batching behaviour. New code that wants chunked prefill,
/// preemption, or SLO classes should construct a [`Scheduler`] directly.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use lserve_core::{EngineConfig, Request, ServingEngine};
/// use lserve_model::{ModelConfig, ModelWeights};
///
/// let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 3));
/// let mut srv = ServingEngine::new(weights, EngineConfig::lserve_fp16(), 2048);
/// srv.submit(Request { id: 1, prompt: vec![1, 2, 3], max_new_tokens: 4 });
/// let report = srv.run_to_completion(10_000);
/// assert_eq!(report.completed.len(), 1);
/// ```
#[derive(Debug)]
pub struct ServingEngine {
    inner: Scheduler,
}

impl ServingEngine {
    /// Creates a serving engine whose shared pool holds `pool_pages` physical pages
    /// (the device-memory budget).
    pub fn new(weights: Arc<ModelWeights>, cfg: EngineConfig, pool_pages: usize) -> Self {
        let exec = Arc::new(ModelExecutor::new(weights, cfg));
        let scfg = SchedulerConfig {
            chunk_tokens: usize::MAX,
            max_batch: usize::MAX,
            admission: AdmissionPolicy::FullFootprint,
            prefix_cache: false,
            ..SchedulerConfig::from_env(pool_pages)
        };
        Self {
            inner: Scheduler::new(exec, scfg),
        }
    }

    /// Enqueues a request (a flat [`Request`] or a full [`RequestSpec`]) and
    /// returns its lifecycle handle.
    pub fn submit(&mut self, req: impl Into<RequestSpec>) -> RequestHandle {
        self.inner.submit(req)
    }

    /// Requests waiting for admission.
    pub fn queued(&self) -> usize {
        self.inner.queued()
    }

    /// Sequences currently decoding.
    pub fn running(&self) -> usize {
        self.inner.running()
    }

    /// One scheduler iteration: admit what fits, then advance every running
    /// sequence by one decode step (continuous batching).
    pub fn step(&mut self) {
        self.inner.step();
    }

    /// Runs until every request completes or `max_steps` scheduler iterations
    /// pass. Returns the report (sorted by request id).
    pub fn run_to_completion(&mut self, max_steps: u64) -> ServingReport {
        self.inner.run_to_completion(max_steps)
    }

    /// Pages currently in use in the shared pool.
    pub fn pool_in_use(&self) -> usize {
        self.inner.pool_in_use()
    }

    /// Lifecycle state of request `id` (see [`Scheduler::status`]).
    pub fn status(&self, id: u64) -> Option<RequestStatus> {
        self.inner.status(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use lserve_kvcache::StreamingWindow;
    use lserve_model::ModelConfig;

    fn weights() -> Arc<ModelWeights> {
        Arc::new(ModelWeights::random(&ModelConfig::tiny(), 5))
    }

    fn request(id: u64, len: usize, gen: usize) -> RequestSpec {
        RequestSpec::new(id, (0..len).map(|i| (i % 90) as u32).collect()).max_new_tokens(gen)
    }

    fn scheduler(cfg: EngineConfig, scfg: SchedulerConfig) -> Scheduler {
        Scheduler::new(Arc::new(ModelExecutor::new(weights(), cfg)), scfg)
    }

    #[test]
    fn single_request_completes() {
        let mut srv = ServingEngine::new(weights(), EngineConfig::lserve_fp16(), 2048);
        srv.submit(request(1, 8, 5));
        let r = srv.run_to_completion(1000);
        assert_eq!(r.completed.len(), 1);
        assert_eq!(r.completed[0].1.len(), 5);
        assert!(r.rejected.is_empty());
        assert_eq!(srv.pool_in_use(), 0, "all pages returned");
    }

    #[test]
    fn serving_output_matches_standalone_engine() {
        let w = weights();
        let mut srv = ServingEngine::new(Arc::clone(&w), EngineConfig::dense(), 4096);
        srv.submit(request(1, 6, 6));
        let r = srv.run_to_completion(1000);
        let cfg = EngineConfig::dense();
        let mut pool = cfg.make_pool_for(&w.config, 64);
        let mut e = Engine::new(w, cfg);
        let want = e.generate(&mut pool, &request(1, 6, 6).prompt, 6).unwrap();
        assert_eq!(r.completed[0].1, want);
    }

    #[test]
    fn batch_of_requests_all_complete() {
        let mut srv = ServingEngine::new(weights(), EngineConfig::lserve_fp16(), 8192);
        for id in 0..6 {
            srv.submit(request(id, 6 + id as usize, 4));
        }
        let r = srv.run_to_completion(10_000);
        assert_eq!(r.completed.len(), 6);
        let ids: Vec<u64> = r.completed.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn oversized_request_rejected_not_deadlocked() {
        let mut srv = ServingEngine::new(weights(), EngineConfig::dense(), 16);
        let h1 = srv.submit(request(1, 512, 4)); // needs ~40 pages, can never fit in 16
        srv.submit(request(2, 4, 2));
        let r = srv.run_to_completion(1000);
        assert_eq!(r.rejected, vec![1]);
        assert_eq!(r.rejections, vec![(1, RejectReason::TooLarge)]);
        assert_eq!(r.completed.len(), 1);
        assert_eq!(r.completed[0].0, 2);
        assert_eq!(
            h1.drain_events(),
            vec![ServingEvent::Rejected {
                reason: RejectReason::TooLarge
            }]
        );
    }

    #[test]
    fn status_tracks_request_lifecycle() {
        // 24 pages: request 1 (est. 14 pages) fits, request 2 (est. 32) never can.
        let mut srv = ServingEngine::new(weights(), EngineConfig::lserve_fp16(), 24);
        assert_eq!(srv.status(1), None);
        srv.submit(request(1, 4, 20));
        srv.submit(request(2, 600, 4)); // can never fit: rejected at admission
        assert_eq!(srv.status(1), Some(RequestStatus::Queued));
        srv.step();
        assert_eq!(srv.status(1), Some(RequestStatus::Running));
        assert_eq!(srv.status(2), Some(RequestStatus::Rejected));
        let r = srv.run_to_completion(1000);
        match srv.status(1) {
            Some(RequestStatus::Finished(tokens)) => {
                assert_eq!(tokens.len(), 20);
                assert_eq!(tokens, r.completed[0].1);
            }
            other => panic!("expected finished, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_specs_rejected_at_submit_not_stuck() {
        let mut srv = ServingEngine::new(weights(), EngineConfig::lserve_fp16(), 2048);
        let h_empty = srv.submit(request(1, 0, 3)); // empty prompt
        srv.submit(request(2, 4, 3));
        let h_zero = srv.submit(request(3, 4, 0)); // nothing to generate
                                                   // Degenerate specs are rejected synchronously at submit...
        assert_eq!(
            h_empty.drain_events(),
            vec![ServingEvent::Rejected {
                reason: RejectReason::Invalid
            }]
        );
        assert_eq!(
            h_zero.drain_events(),
            vec![ServingEvent::Rejected {
                reason: RejectReason::Invalid
            }]
        );
        // ...and their ids are burned like any other known id.
        assert!(matches!(srv.status(1), Some(RequestStatus::Rejected)));
        let r = srv.run_to_completion(1000);
        assert_eq!(r.rejected, vec![1, 3]);
        assert_eq!(
            r.rejections,
            vec![(1, RejectReason::Invalid), (3, RejectReason::Invalid)]
        );
        assert_eq!(r.completed.len(), 1);
        assert!(r.scheduler_steps < 100, "must not spin to the step cap");
    }

    #[test]
    fn memory_pressure_serializes_admission() {
        // Pool fits roughly one dense sequence at a time; both must still finish.
        let w = weights();
        let cfg = EngineConfig::dense();
        let one_seq_pages = {
            let m = &w.config;
            m.num_layers * m.num_kv_heads * (cfg.paging.pages_for(40) + 1)
        };
        let mut srv = ServingEngine::new(w, cfg, one_seq_pages + 4);
        srv.submit(request(1, 16, 8));
        srv.submit(request(2, 16, 8));
        let r = srv.run_to_completion(10_000);
        assert_eq!(r.completed.len(), 2);
        assert!(r.peak_pages <= one_seq_pages + 4);
    }

    #[test]
    fn pages_estimate_tracks_demotion_peak_not_full_residency() {
        use lserve_kvcache::PagingConfig;
        use lserve_quant::KvPrecision;
        let w = weights();
        let mut cfg = EngineConfig::lserve_fp16();
        cfg.paging = PagingConfig::new(8, 4, KvPrecision::Fp16);
        cfg.prefill_tile = 8;
        cfg.dynamic_budget = Some(24);
        cfg.demote_after_chunks = Some(1);
        cfg.reuse_interval = 2;
        let total = 264;
        let est = sequence_pages_estimate(&cfg, &w.config, total);
        let full = {
            let mut full_cfg = cfg.clone();
            full_cfg.demote_after_chunks = None;
            sequence_pages_estimate(&full_cfg, &w.config, total)
        };
        assert!(
            est * 2 < full,
            "demotion-aware estimate {est} must undercut full residency {full}"
        );
        // The tightened estimate must still bound the measured peak: feed the
        // whole context solo in a roomy pool and compare the pool high-water
        // mark against what admission would have reserved.
        let mut scfg = SchedulerConfig::new(full * 2);
        scfg.chunk_tokens = 8;
        let mut sched = scheduler(cfg, scfg);
        sched.submit(request(1, total - 16, 16));
        let report = sched.run_to_completion(100_000);
        assert_eq!(report.completed.len(), 1);
        assert!(
            report.peak_pages <= est,
            "estimate {est} must bound measured peak {}",
            report.peak_pages
        );
    }

    #[test]
    fn continuous_batching_interleaves() {
        let mut srv = ServingEngine::new(weights(), EngineConfig::lserve_fp16(), 8192);
        srv.submit(request(1, 4, 10));
        srv.submit(request(2, 4, 10));
        srv.step();
        assert_eq!(srv.running(), 2, "both admitted in one step");
    }

    #[test]
    fn chunked_prefill_interleaves_long_prompt_with_decode() {
        // One long prompt plus one short request: with chunked prefill, the short
        // request must finish long before the long prompt is even fully fed.
        let mut scfg = SchedulerConfig::new(8192);
        scfg.chunk_tokens = 8;
        let mut sched = scheduler(EngineConfig::lserve_fp16(), scfg);
        sched.submit(request(1, 96, 4)); // 96-token prompt: 12 iterations of feeding
        sched.submit(request(2, 4, 3));
        let mut short_done_at = None;
        for iter in 1..200u64 {
            sched.step();
            if short_done_at.is_none()
                && sched
                    .report_snapshot()
                    .completed
                    .iter()
                    .any(|(id, _)| *id == 2)
            {
                short_done_at = Some(iter);
            }
            if sched.queued() == 0 && sched.running() == 0 {
                break;
            }
        }
        let r = sched.run_to_completion(1);
        assert_eq!(r.completed.len(), 2);
        let short_done_at = short_done_at.expect("short request completed");
        assert!(
            short_done_at <= 6,
            "short request head-of-line blocked until iteration {short_done_at}"
        );
    }

    #[test]
    fn chunked_prefill_output_matches_monolithic_prefill() {
        // With FP16 paging and no sparsity interference, feeding the prompt in
        // chunks must not change the greedy output of a solo request (chunk
        // boundaries only move computation between the tile and decode paths of the
        // same deterministic pipeline; the greedy argmax survives the reordering
        // at this scale).
        let w = weights();
        let cfg = EngineConfig::dense();
        let mut mono = ServingEngine::new(Arc::clone(&w), cfg.clone(), 4096);
        mono.submit(request(7, 24, 8));
        let want = mono.run_to_completion(10_000).completed[0].1.clone();

        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 7; // does not divide 24: exercises a ragged last chunk
        let mut sched = scheduler(cfg, scfg);
        sched.submit(request(7, 24, 8));
        let r = sched.run_to_completion(10_000);
        assert_eq!(r.completed[0].1, want);
    }

    #[test]
    fn preemption_fires_and_everything_completes() {
        // First-chunk admission over a pool that cannot hold both sequences'
        // full footprint: the scheduler must preempt (not deadlock, not reject)
        // and still complete both requests.
        let w = weights();
        let cfg = EngineConfig::dense();
        let m = &w.config;
        // Both prompts fit at admission; decoding both to completion overflows.
        let one_seq_pages = m.num_layers * m.num_kv_heads * (cfg.paging.pages_for(70) + 1);
        let mut scfg = SchedulerConfig::new(one_seq_pages + 2);
        scfg.chunk_tokens = 16;
        scfg.admission = AdmissionPolicy::FirstChunk;
        let mut sched = Scheduler::new(Arc::new(ModelExecutor::new(w, cfg)), scfg);
        sched.submit(request(1, 60, 10));
        sched.submit(request(2, 60, 10));
        let r = sched.run_to_completion(100_000);
        assert_eq!(r.completed.len(), 2, "rejected: {:?}", r.rejected);
        assert!(r.preemptions > 0, "pool pressure must trigger preemption");
        assert_eq!(sched.pool_in_use(), 0, "all pages returned");
        assert_eq!(r.completed[0].1.len(), 10);
        assert_eq!(r.completed[1].1.len(), 10);
    }

    #[test]
    fn preemption_does_not_change_tokens() {
        // The preempted-and-resumed run must emit exactly the tokens of an
        // unconstrained run.
        let w = weights();
        let cfg = EngineConfig::dense();
        let m = &w.config;
        let one_seq_pages = m.num_layers * m.num_kv_heads * (cfg.paging.pages_for(70) + 1);

        let mut roomy_cfg = SchedulerConfig::new(8192);
        roomy_cfg.chunk_tokens = 16;
        let mut roomy = scheduler(cfg.clone(), roomy_cfg);
        roomy.submit(request(1, 60, 10));
        roomy.submit(request(2, 60, 10));
        let want = roomy.run_to_completion(100_000);
        assert_eq!(want.preemptions, 0);

        let mut tight_cfg = SchedulerConfig::new(one_seq_pages + 2);
        tight_cfg.chunk_tokens = 16;
        tight_cfg.admission = AdmissionPolicy::FirstChunk;
        let mut tight = scheduler(cfg, tight_cfg);
        tight.submit(request(1, 60, 10));
        tight.submit(request(2, 60, 10));
        let got = tight.run_to_completion(100_000);
        assert!(got.preemptions > 0);
        assert_eq!(got.completed, want.completed);
    }

    #[test]
    fn tile_grid_boundary_is_position_pure() {
        // The grid cell is [0, chunk): any prompt at least chunk long has the
        // same boundary, so shared prefixes >= chunk produce identical tile work.
        assert_eq!(tile_grid_boundary(8, 8), 8);
        assert_eq!(tile_grid_boundary(8, 100), 8);
        assert_eq!(tile_grid_boundary(8, 9), 8);
        // Prompts inside the first cell prefill whole (and are never shared: the
        // cache's minimum match is the grid boundary).
        assert_eq!(tile_grid_boundary(8, 5), 5);
    }

    /// Builds a request whose prompt is `shared ++ suffix`.
    fn extend(shared: &[u32], suffix: &[u32], id: u64, gen: usize) -> RequestSpec {
        let mut prompt = shared.to_vec();
        prompt.extend_from_slice(suffix);
        RequestSpec::new(id, prompt).max_new_tokens(gen)
    }

    fn shared_tokens(len: usize) -> Vec<u32> {
        (0..len).map(|i| ((i * 5 + 3) % 90) as u32).collect()
    }

    #[test]
    fn prefix_hit_matches_cold_run_and_skips_prefill() {
        let cfg = EngineConfig::lserve_fp16();
        let shared = shared_tokens(40);
        let donor = extend(&shared, &[1, 2, 3, 4, 5, 6, 7, 8], 1, 6);
        let consumer = extend(&shared, &[70, 71, 72, 73, 74, 75, 76, 77], 2, 6);

        // Cold reference: same scheduler policy, prefix cache off.
        let mut cold_cfg = SchedulerConfig::new(4096);
        cold_cfg.chunk_tokens = 8;
        let mut cold = scheduler(cfg.clone(), cold_cfg);
        cold.submit(consumer.clone());
        let cold_report = cold.run_to_completion(10_000);
        let cold_tokens = cold_report.completed[0].1.clone();
        let cold_ttft = cold_report.request_metrics[0].ttft_work_tokens;

        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 8;
        scfg.prefix_cache = true;
        let mut sched = scheduler(cfg, scfg);
        sched.submit(donor);
        sched.run_to_completion(10_000);
        assert!(sched.prefix_cache_entries() > 0, "donor donated anchors");
        sched.submit(consumer);
        let report = sched.run_to_completion(10_000);
        let m2 = report
            .request_metrics
            .iter()
            .find(|m| m.id == 2)
            .expect("consumer completed");
        // The 40 shared tokens sit on tile-grid anchors (multiples of 8).
        assert_eq!(m2.cached_prompt_tokens, 40);
        assert_eq!(
            report.completed.iter().find(|(id, _)| *id == 2).unwrap().1,
            cold_tokens,
            "warm outputs must be bit-identical to cold"
        );
        // Acceptance: warm TTFT (work tokens) at least 3x better than cold.
        assert!(
            m2.ttft_work_tokens * 3 <= cold_ttft,
            "warm ttft {} vs cold {}",
            m2.ttft_work_tokens,
            cold_ttft
        );
        assert!(report.prefix_hit_tokens >= 40);
        assert!(report.prefix_hit_rate() > 0.0);
    }

    #[test]
    fn flush_prefix_cache_returns_all_pages() {
        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 8;
        scfg.prefix_cache = true;
        let mut sched = scheduler(EngineConfig::lserve_fp16(), scfg);
        sched.submit(request(1, 32, 4));
        sched.run_to_completion(10_000);
        assert!(sched.pool_in_use() > 0, "cache retains the donor's pages");
        assert!(sched.prefix_cache_entries() > 0);
        assert!(sched.prefix_cached_page_refs() >= sched.pool_in_use());
        sched.flush_prefix_cache();
        assert_eq!(sched.pool_in_use(), 0, "flush releases everything");
        assert_eq!(sched.prefix_cache_entries(), 0);
    }

    #[test]
    fn multi_turn_followup_hits_completed_conversation() {
        let cfg = EngineConfig::lserve_fp16();
        let mut scfg = SchedulerConfig::new(8192);
        scfg.chunk_tokens = 8;
        scfg.prefix_cache = true;
        let mut sched = scheduler(cfg, scfg);
        let turn1 = request(1, 32, 8);
        sched.submit(turn1.clone());
        let r1 = sched.run_to_completion(10_000);
        let generated = r1.completed[0].1.clone();
        assert_eq!(generated.len(), 8);
        // Turn 2: the whole first exchange plus a new query.
        let mut prompt2 = turn1.prompt.clone();
        prompt2.extend_from_slice(&generated);
        prompt2.extend_from_slice(&[33, 44, 55, 66]);
        sched.submit(RequestSpec::new(2, prompt2).max_new_tokens(4));
        let r2 = sched.run_to_completion(10_000);
        let m2 = r2.request_metrics.iter().find(|m| m.id == 2).unwrap();
        // The completed-conversation entry covers prompt + generated[..7]: the
        // deepest match beats every prompt-only anchor.
        assert_eq!(m2.cached_prompt_tokens, 32 + generated.len() - 1);
    }

    #[test]
    fn sub_grid_prompt_never_donates_even_after_long_generation() {
        // A prompt shorter than the tile grid cell tiles only [0, prompt_len)
        // and bases its decode-step indices there, so its KV is not what a cold
        // run of a longer prompt would compute. Even when generation pushes the
        // absorbed conversation past chunk_tokens, nothing may be donated.
        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 16;
        scfg.prefix_cache = true;
        let mut sched = scheduler(EngineConfig::lserve_fp16(), scfg);
        sched.submit(request(1, 4, 40)); // absorbed conversation: 43 tokens
        let r = sched.run_to_completion(10_000);
        assert_eq!(r.completed[0].1.len(), 40);
        assert_eq!(
            sched.prefix_cache_entries(),
            0,
            "sub-grid prompt must not donate its conversation"
        );
        assert_eq!(sched.pool_in_use(), 0);
    }

    #[test]
    fn prefix_cache_evicts_under_pressure_instead_of_blocking() {
        // Pool sized for roughly one sequence: distinct prompts fill the cache,
        // and later admissions must evict stale entries rather than wedge.
        let w = weights();
        let cfg = EngineConfig::dense();
        let m = &w.config;
        let one_seq_pages = m.num_layers * m.num_kv_heads * (cfg.paging.pages_for(48) + 1);
        let mut scfg = SchedulerConfig::new(one_seq_pages + 4);
        scfg.chunk_tokens = 8;
        scfg.prefix_cache = true;
        let mut sched = Scheduler::new(Arc::new(ModelExecutor::new(w, cfg)), scfg);
        for id in 0..4u64 {
            sched.submit(
                RequestSpec::new(
                    id,
                    (0..24)
                        .map(|t| ((t * 7 + id as usize * 13) % 90) as u32)
                        .collect(),
                )
                .max_new_tokens(6),
            );
        }
        let r = sched.run_to_completion(100_000);
        assert_eq!(r.completed.len(), 4, "rejected: {:?}", r.rejected);
        assert!(r.prefix_evictions > 0, "pressure must evict cache entries");
        sched.flush_prefix_cache();
        assert_eq!(sched.pool_in_use(), 0);
    }

    #[test]
    fn swap_preemption_matches_replay_and_reports_migrations() {
        // Same tight-pool workload as `preemption_does_not_change_tokens`, but
        // under PreemptionPolicy::Swap: victims demote their page set instead
        // of releasing it and resume by promotion — outputs must still be
        // bit-identical, and the tier counters must show real traffic.
        let w = weights();
        let cfg = EngineConfig::dense();
        let m = &w.config;
        let one_seq_pages = m.num_layers * m.num_kv_heads * (cfg.paging.pages_for(70) + 1);

        let run = |policy: PreemptionPolicy| {
            let mut scfg = SchedulerConfig::new(one_seq_pages + 2);
            scfg.chunk_tokens = 16;
            scfg.admission = AdmissionPolicy::FirstChunk;
            scfg.preemption = policy;
            let mut sched = scheduler(cfg.clone(), scfg);
            sched.submit(request(1, 60, 10));
            sched.submit(request(2, 60, 10));
            let r = sched.run_to_completion(100_000);
            assert_eq!(sched.pool_in_use(), 0, "hot pages leaked under {policy:?}");
            assert_eq!(
                sched.pool_cold_in_use(),
                0,
                "cold pages leaked under {policy:?}"
            );
            r
        };
        let replay = run(PreemptionPolicy::Replay);
        let swap = run(PreemptionPolicy::Swap);
        assert!(
            swap.preemptions > 0,
            "pool pressure must trigger preemption"
        );
        assert_eq!(swap.completed, replay.completed, "swap changed outputs");
        assert!(swap.pages_demoted > 0, "swap must demote victim pages");
        assert!(swap.pages_promoted > 0, "resume must promote them back");
        assert!(swap.peak_cold_pages > 0);
        assert_eq!(swap.preemption, PreemptionPolicy::Swap);
        assert_eq!(replay.pages_demoted, 0, "replay never touches the tiers");
        assert_eq!(replay.swap_resume_work_tokens, 0);
        // The resume-cost accounting is mode-split: sync migration charges
        // the promotion to the work clock at resume; the async copy engine
        // hides it behind re-admission compute instead (CI runs both legs).
        match swap.migration {
            MigrationMode::Sync => {
                assert!(swap.swap_resume_work_tokens > 0, "resume work accounted");
                // The whole point: resuming by transfer is far cheaper than
                // replaying the victim's context through the forward pass.
                let replayed_tokens: u64 = 60 + 10; // one victim replay, upper bound
                assert!(
                    swap.swap_resume_work_tokens < replayed_tokens,
                    "swap resume ({}) should undercut replay (~{replayed_tokens})",
                    swap.swap_resume_work_tokens
                );
            }
            MigrationMode::Async => {
                assert_eq!(
                    swap.swap_resume_work_tokens, 0,
                    "async resume promotions ride the copy engine, not the clock"
                );
                assert!(
                    swap.hidden_transfer_tokens > 0,
                    "overlapped resume transfers must be hidden"
                );
                assert!(swap.migration_overlap_ratio() > 0.5);
            }
        }
    }

    #[test]
    fn bounded_host_with_nvme_spills_and_matches_unbounded_outputs() {
        // Same overcommitted swap workload under three tier shapes: the
        // historical unbounded host, and a host too small to absorb a full
        // victim backed by the modeled nvme tier. The bounded run must spill
        // host pages down, recall them on resume, and still produce
        // bit-identical outputs — tiers move modeled cost only.
        let w = weights();
        let cfg = EngineConfig::dense();
        let m = &w.config;
        let one_seq_pages = m.num_layers * m.num_kv_heads * (cfg.paging.pages_for(70) + 1);

        let run = |host_pages: usize, nvme: bool| {
            let mut scfg = SchedulerConfig::new(one_seq_pages + 2);
            scfg.chunk_tokens = 16;
            scfg.admission = AdmissionPolicy::FirstChunk;
            scfg.preemption = PreemptionPolicy::Swap;
            // Sync keeps every swap-out demotion (and therefore the host
            // overflow this test is about) on the issuing step, whatever the
            // ambient `LSERVE_MIGRATION`; async tier traffic is covered by
            // the `proptest_hierarchy` suite.
            scfg.migration = MigrationMode::Sync;
            scfg.host_pages = host_pages;
            scfg.nvme = nvme;
            let mut sched = scheduler(cfg.clone(), scfg);
            sched.submit(request(1, 60, 10));
            sched.submit(request(2, 60, 10));
            let r = sched.run_to_completion(100_000);
            assert_eq!(sched.pool_in_use(), 0, "hot pages leaked");
            assert_eq!(sched.pool_cold_in_use(), 0, "cold pages leaked");
            assert_eq!(sched.pool_nvme_in_use(), 0, "nvme pages leaked");
            r
        };
        let unbounded = run(0, false);
        assert!(unbounded.preemptions > 0, "workload must overcommit");
        // Host capacity well below one victim's page set forces spills.
        let tight = run((one_seq_pages / 4).max(1), true);
        assert_eq!(
            tight.completed, unbounded.completed,
            "tier shape changed outputs"
        );
        assert!(tight.pages_spilled > 0, "bounded host must spill to nvme");
        assert!(tight.pages_recalled > 0, "resume must recall from nvme");
        assert!(tight.peak_nvme_pages > 0);
        assert_eq!(unbounded.pages_spilled, 0);
        assert_eq!(unbounded.peak_nvme_pages, 0);
    }

    #[test]
    fn bounded_host_without_nvme_degrades_to_replay_and_matches_outputs() {
        // With a bounded host and no tier below it, a swap-out that finds the
        // host full is refused page by page; the scheduler's drop-and-replay
        // fallbacks keep the run progressing and the outputs bit-identical.
        let w = weights();
        let cfg = EngineConfig::dense();
        let m = &w.config;
        let one_seq_pages = m.num_layers * m.num_kv_heads * (cfg.paging.pages_for(70) + 1);

        let run = |host_pages: usize| {
            let mut scfg = SchedulerConfig::new(one_seq_pages + 2);
            scfg.chunk_tokens = 16;
            scfg.admission = AdmissionPolicy::FirstChunk;
            scfg.preemption = PreemptionPolicy::Swap;
            scfg.migration = MigrationMode::Sync; // see the nvme test above
            scfg.host_pages = host_pages;
            scfg.nvme = false; // the point: no tier below the bounded host
            let mut sched = scheduler(cfg.clone(), scfg);
            sched.submit(request(1, 60, 10));
            sched.submit(request(2, 60, 10));
            let r = sched.run_to_completion(100_000);
            assert_eq!(sched.pool_in_use(), 0, "hot pages leaked");
            assert_eq!(sched.pool_cold_in_use(), 0, "cold pages leaked");
            r
        };
        let unbounded = run(0);
        let tight = run((one_seq_pages / 4).max(1));
        assert_eq!(
            tight.completed, unbounded.completed,
            "bounded host changed outputs"
        );
        assert_eq!(tight.pages_spilled, 0, "no nvme tier to spill into");
        assert!(
            tight.pages_demoted <= unbounded.pages_demoted,
            "refused demotions cannot exceed the unbounded baseline"
        );
    }

    #[test]
    fn swap_preemption_never_demotes_shared_prefix_pages() {
        // A victim seeded from the prefix cache co-owns its prefix pages with
        // the tree. Swapping it out must leave those pages hot (the tree's
        // readers may need them) and demote only the sole-owned suffix.
        let cfg = EngineConfig::lserve_fp16();
        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 8;
        scfg.prefix_cache = true;
        scfg.preemption = PreemptionPolicy::Swap;
        let mut sched = scheduler(cfg, scfg);
        sched.submit(request(1, 32, 4));
        sched.run_to_completion(10_000);
        assert!(sched.prefix_cache_entries() > 0);
        let tree_pages = sched.pool_in_use();
        // Manually drive a second consumer to a running state, then swap it.
        sched.submit(request(2, 32, 30));
        while sched.running() == 0 {
            sched.step();
        }
        let m2 = sched
            .report_snapshot()
            .request_metrics
            .iter()
            .find(|m| m.id == 2);
        assert!(m2.is_none(), "request 2 still running");
        sched.preempt_index(0);
        assert_eq!(sched.running(), 0);
        assert!(
            sched.pool_in_use() >= tree_pages,
            "co-owned prefix pages must stay hot through a swap-out"
        );
        let r = sched.run_to_completion(10_000);
        assert_eq!(r.completed.len(), 2, "rejected: {:?}", r.rejected);
        sched.flush_prefix_cache();
        assert_eq!(sched.pool_in_use(), 0);
        assert_eq!(sched.pool_cold_in_use(), 0);
    }

    #[test]
    fn report_metrics_track_latency_and_preemptions() {
        let mut scfg = SchedulerConfig::new(8192);
        scfg.chunk_tokens = 8;
        let mut sched = scheduler(EngineConfig::lserve_fp16(), scfg);
        sched.submit(request(1, 32, 6)); // 4 feed iterations before the first token
        sched.submit(request(2, 4, 6));
        let r = sched.run_to_completion(10_000);
        assert_eq!(r.request_metrics.len(), 2);
        let m1 = r.request_metrics[0];
        let m2 = r.request_metrics[1];
        assert_eq!((m1.id, m2.id), (1, 2));
        assert!(
            m1.ttft_iters > m2.ttft_iters,
            "longer prompt must have higher TTFT: {} vs {}",
            m1.ttft_iters,
            m2.ttft_iters
        );
        assert_eq!(m1.tokens, 6);
        assert_eq!(m2.tokens, 6);
        assert_eq!(m1.finish, FinishReason::Length);
        assert_eq!(m1.class, SloClass::Batch);
        assert_eq!(m1.deadline_met, None);
        // Decode proceeds one token per iteration once feeding is done (the first
        // iteration emits two tokens — feed completion plus one decode — so the
        // mean sits just below 1).
        assert!(m2.mean_tbt_iters() > 0.0 && m2.mean_tbt_iters() <= 1.0);
        assert_eq!(m1.preemptions + m2.preemptions, 0);
    }

    // ------------------------------------------------------------------
    // Handle-lifecycle, SLO-class, and stop-condition tests (the new API).
    // ------------------------------------------------------------------

    #[test]
    fn spec_builder_and_request_conversion() {
        let spec = RequestSpec::new(3, vec![1, 2])
            .max_new_tokens(9)
            .class(SloClass::BestEffort)
            .deadline_work_tokens(77)
            .stop_token(5)
            .stop_sequence(vec![6, 7])
            .session(11);
        assert_eq!(spec.max_new_tokens, 9);
        assert_eq!(spec.class, SloClass::BestEffort);
        assert_eq!(spec.deadline_work_tokens, Some(77));
        assert_eq!(spec.stop_tokens, vec![5]);
        assert_eq!(spec.stop_sequences, vec![vec![6, 7]]);
        assert_eq!(spec.session, Some(11));
        let from_req: RequestSpec = Request {
            id: 4,
            prompt: vec![9],
            max_new_tokens: 3,
        }
        .into();
        assert_eq!(from_req, RequestSpec::new(4, vec![9]).max_new_tokens(3));
    }

    #[test]
    fn handle_streams_events_in_lifecycle_order() {
        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 8;
        let mut sched = scheduler(EngineConfig::lserve_fp16(), scfg);
        let handle = sched.submit(request(1, 20, 5));
        assert_eq!(handle.id(), 1);
        assert!(!handle.is_terminal());
        let mut events = Vec::new();
        while !handle.is_terminal() {
            sched.step();
            events.extend(handle.drain_events());
        }
        events.extend(handle.drain_events());
        assert_eq!(events.first(), Some(&ServingEvent::Admitted));
        let streamed: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                ServingEvent::FirstToken { token } | ServingEvent::Token { token } => Some(*token),
                _ => None,
            })
            .collect();
        assert_eq!(streamed.len(), 5);
        match events.last() {
            Some(ServingEvent::Finished {
                reason: FinishReason::Length,
                tokens,
            }) => assert_eq!(tokens, &streamed),
            other => panic!("expected Finished(Length), got {other:?}"),
        }
        // Exactly one FirstToken, before every Token.
        let first_pos = events
            .iter()
            .position(|e| matches!(e, ServingEvent::FirstToken { .. }))
            .expect("first token streamed");
        assert!(events
            .iter()
            .enumerate()
            .all(|(i, e)| !matches!(e, ServingEvent::Token { .. }) || i > first_pos));
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, ServingEvent::FirstToken { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn duplicate_id_rejected_with_reason_original_untouched() {
        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 8;
        let mut sched = scheduler(EngineConfig::lserve_fp16(), scfg);
        let h1 = sched.submit(request(1, 12, 4));
        let h_dup = sched.submit(request(1, 6, 2));
        assert!(h_dup.is_terminal(), "duplicate rejected at submit time");
        assert_eq!(
            h_dup.drain_events(),
            vec![ServingEvent::Rejected {
                reason: RejectReason::DuplicateId
            }]
        );
        let r = sched.run_to_completion(10_000);
        assert_eq!(r.completed.len(), 1);
        assert_eq!(r.completed[0].1.len(), 4, "original request served intact");
        assert!(r.rejected.is_empty(), "admission-level rejects unaffected");
        assert_eq!(r.rejections, vec![(1, RejectReason::DuplicateId)]);
        assert!(h1.is_terminal());
        // A terminal id stays taken: re-submitting after completion is still a
        // duplicate (ids are unique across the scheduler's lifetime).
        let h_dup2 = sched.submit(request(1, 6, 2));
        assert_eq!(
            h_dup2.drain_events(),
            vec![ServingEvent::Rejected {
                reason: RejectReason::DuplicateId
            }]
        );
    }

    #[test]
    fn stop_token_truncates_output_and_is_never_streamed() {
        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 8;
        let mut sched = scheduler(EngineConfig::lserve_fp16(), scfg.clone());
        sched.submit(request(1, 20, 8));
        let reference = sched.run_to_completion(10_000).completed[0].1.clone();
        assert_eq!(reference.len(), 8);
        let stop_at = 4;
        let stop = reference[stop_at];
        // Guard against an earlier occurrence making the expectation ambiguous.
        assert!(!reference[..stop_at].contains(&stop));

        let mut sched2 = scheduler(EngineConfig::lserve_fp16(), scfg);
        let handle = sched2.submit(request(2, 20, 8).stop_token(stop));
        let r = sched2.run_to_completion(10_000);
        assert_eq!(r.completed[0].1, reference[..stop_at].to_vec());
        let m = r.request_metrics[0];
        assert_eq!(m.finish, FinishReason::StopToken);
        assert_eq!(m.tokens, stop_at);
        let events = handle.drain_events();
        assert!(
            events
                .iter()
                .all(|e| !matches!(e, ServingEvent::FirstToken { token } | ServingEvent::Token { token } if *token == stop)),
            "the stop token must never be streamed"
        );
        match events.last() {
            Some(ServingEvent::Finished { reason, tokens }) => {
                assert_eq!(*reason, FinishReason::StopToken);
                assert_eq!(tokens, &reference[..stop_at].to_vec());
            }
            other => panic!("expected Finished, got {other:?}"),
        }
    }

    #[test]
    fn stop_sequence_completes_inclusively() {
        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 8;
        let mut sched = scheduler(EngineConfig::lserve_fp16(), scfg.clone());
        sched.submit(request(1, 20, 8));
        let reference = sched.run_to_completion(10_000).completed[0].1.clone();
        let stop_seq = reference[3..5].to_vec();

        let mut sched2 = scheduler(EngineConfig::lserve_fp16(), scfg);
        sched2.submit(request(2, 20, 8).stop_sequence(stop_seq.clone()));
        let r = sched2.run_to_completion(10_000);
        // Inclusive semantics: output ends with the matched sequence (its
        // tokens were already streamed when the match completed).
        let out = &r.completed[0].1;
        assert!(out.ends_with(&stop_seq));
        assert_eq!(out, &reference[..5].to_vec());
        assert_eq!(r.request_metrics[0].finish, FinishReason::StopSequence);
    }

    #[test]
    fn interactive_class_jumps_queue_and_batch_still_completes() {
        // Serialized admission (max_batch 1): under class-aware scheduling the
        // interactive request submitted *after* two batch requests runs first.
        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 8;
        scfg.max_batch = 1;
        let mut sched = scheduler(EngineConfig::lserve_fp16(), scfg.clone());
        sched.submit(request(1, 24, 6));
        sched.submit(request(2, 24, 6));
        sched.submit(request(3, 8, 4).class(SloClass::Interactive));
        let r = sched.run_to_completion(10_000);
        assert_eq!(r.completed.len(), 3);
        let m3 = r.request_metrics.iter().find(|m| m.id == 3).unwrap();
        let m2 = r.request_metrics.iter().find(|m| m.id == 2).unwrap();
        assert!(
            m3.ttft_work_tokens < m2.ttft_work_tokens,
            "interactive must not wait behind queued batch traffic: {} vs {}",
            m3.ttft_work_tokens,
            m2.ttft_work_tokens
        );
        // Class-blind FCFS instead serves arrival order.
        let mut blind_cfg = scfg;
        blind_cfg.class_aware = false;
        let mut blind = scheduler(EngineConfig::lserve_fp16(), blind_cfg);
        blind.submit(request(1, 24, 6));
        blind.submit(request(2, 24, 6));
        blind.submit(request(3, 8, 4).class(SloClass::Interactive));
        let rb = blind.run_to_completion(10_000);
        let b3 = rb.request_metrics.iter().find(|m| m.id == 3).unwrap();
        assert!(
            b3.ttft_work_tokens > m3.ttft_work_tokens,
            "class-aware scheduling must beat FCFS for the interactive request"
        );
        // Identical outputs under both orderings (determinism).
        assert_eq!(r.completed, rb.completed);
    }

    #[test]
    fn deadline_edf_orders_within_class() {
        // Two batch requests; the later arrival carries a tight deadline and
        // must be admitted first under serialized admission.
        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 8;
        scfg.max_batch = 1;
        let mut sched = scheduler(EngineConfig::lserve_fp16(), scfg);
        sched.submit(request(1, 24, 6));
        sched.submit(request(2, 24, 6).deadline_work_tokens(40));
        let r = sched.run_to_completion(10_000);
        let m1 = r.request_metrics.iter().find(|m| m.id == 1).unwrap();
        let m2 = r.request_metrics.iter().find(|m| m.id == 2).unwrap();
        assert!(
            m2.ttft_work_tokens < m1.ttft_work_tokens,
            "EDF must serve the tight deadline first: {} vs {}",
            m2.ttft_work_tokens,
            m1.ttft_work_tokens
        );
        assert_eq!(m2.deadline_work_tokens, Some(40));
        assert_eq!(m2.deadline_met, Some(m2.ttft_work_tokens <= 40));
        let (met, total) = r.deadlines();
        assert_eq!(total, 1);
        assert_eq!(met == 1, m2.deadline_met == Some(true));
    }

    #[test]
    fn cancel_mid_flight_releases_pages_and_survivor_matches_solo() {
        let w = weights();
        let cfg = EngineConfig::dense();
        // Solo reference for the survivor.
        let mut solo_cfg = SchedulerConfig::new(8192);
        solo_cfg.chunk_tokens = 8;
        let mut solo = Scheduler::new(
            Arc::new(ModelExecutor::new(Arc::clone(&w), cfg.clone())),
            solo_cfg,
        );
        solo.submit(request(2, 30, 10));
        let want = solo.run_to_completion(10_000).completed[0].1.clone();

        let mut scfg = SchedulerConfig::new(8192);
        scfg.chunk_tokens = 8;
        let mut sched = Scheduler::new(Arc::new(ModelExecutor::new(w, cfg)), scfg);
        let victim = sched.submit(request(1, 40, 20));
        sched.submit(request(2, 30, 10));
        for _ in 0..4 {
            sched.step();
        }
        victim.cancel();
        victim.cancel(); // idempotent
        let r = sched.run_to_completion(10_000);
        assert_eq!(r.completed.len(), 1);
        assert_eq!(r.completed[0], (2, want));
        assert_eq!(r.cancelled.len(), 1);
        assert_eq!(r.cancelled[0].0, 1);
        assert_eq!(sched.pool_in_use(), 0, "cancelled pages must be released");
        match sched.status(1) {
            Some(RequestStatus::Cancelled(tokens)) => assert_eq!(tokens, r.cancelled[0].1),
            other => panic!("expected cancelled, got {other:?}"),
        }
        match victim.drain_events().last() {
            Some(ServingEvent::Cancelled { tokens }) => assert_eq!(tokens, &r.cancelled[0].1),
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn cancel_queued_request_never_runs() {
        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 8;
        scfg.max_batch = 1;
        let mut sched = scheduler(EngineConfig::lserve_fp16(), scfg);
        sched.submit(request(1, 24, 30));
        let queued = sched.submit(request(2, 24, 4));
        sched.step();
        assert_eq!(sched.status(2), Some(RequestStatus::Queued));
        queued.cancel();
        let r = sched.run_to_completion(10_000);
        assert_eq!(r.completed.len(), 1);
        assert_eq!(r.cancelled, vec![(2, vec![])]);
        assert_eq!(
            queued.drain_events(),
            vec![ServingEvent::Cancelled { tokens: vec![] }]
        );
    }

    #[test]
    fn cancel_donates_completed_prefix_to_cache() {
        let cfg = EngineConfig::lserve_fp16();
        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 8;
        scfg.prefix_cache = true;
        let mut sched = scheduler(cfg, scfg);
        let handle = sched.submit(request(1, 48, 20));
        // Step until the prompt is partially fed, then cancel mid-flight.
        for _ in 0..3 {
            sched.step();
        }
        handle.cancel();
        sched.step();
        assert!(handle.is_terminal());
        assert!(
            sched.prefix_cache_entries() > 0,
            "cancellation must donate the completed prefix"
        );
        // A follow-up with the same prompt starts warm from the donation.
        sched.submit(request(2, 48, 4));
        let r = sched.run_to_completion(10_000);
        let m2 = r.request_metrics.iter().find(|m| m.id == 2).unwrap();
        assert!(
            m2.cached_prompt_tokens > 0,
            "follow-up must hit the cancelled request's donated prefix"
        );
        sched.flush_prefix_cache();
        assert_eq!(sched.pool_in_use(), 0);
        assert_eq!(sched.pool_cold_in_use(), 0);
    }

    #[test]
    fn cancel_swapped_queued_victim_releases_cold_pages() {
        // Drive a victim into the swap-parked state, cancel it there, and
        // verify both tiers drain.
        let w = weights();
        let cfg = EngineConfig::dense();
        let m = &w.config;
        let one_seq_pages = m.num_layers * m.num_kv_heads * (cfg.paging.pages_for(70) + 1);
        let mut scfg = SchedulerConfig::new(one_seq_pages + 2);
        scfg.chunk_tokens = 16;
        scfg.admission = AdmissionPolicy::FirstChunk;
        scfg.preemption = PreemptionPolicy::Swap;
        let mut sched = Scheduler::new(Arc::new(ModelExecutor::new(w, cfg)), scfg);
        let h1 = sched.submit(request(1, 60, 10));
        let h2 = sched.submit(request(2, 60, 10));
        // Run until one of them has been swap-preempted.
        for _ in 0..200 {
            sched.step();
            if sched.pool_cold_in_use() > 0 {
                break;
            }
        }
        assert!(sched.pool_cold_in_use() > 0, "no swap-out happened");
        let parked = if matches!(sched.status(1), Some(RequestStatus::Queued)) {
            &h1
        } else {
            assert_eq!(sched.status(2), Some(RequestStatus::Queued));
            &h2
        };
        parked.cancel();
        let r = sched.run_to_completion(10_000);
        assert_eq!(r.completed.len() + r.cancelled.len(), 2);
        assert_eq!(r.cancelled.len(), 1);
        assert_eq!(sched.pool_in_use(), 0);
        assert_eq!(sched.pool_cold_in_use(), 0, "cold pages must drain");
    }

    #[test]
    fn session_continues_prior_turn() {
        let cfg = EngineConfig::lserve_fp16();
        let mut scfg = SchedulerConfig::new(8192);
        scfg.chunk_tokens = 8;
        scfg.prefix_cache = true;
        let mut sched = scheduler(cfg.clone(), scfg);
        let turn1 = request(1, 32, 8).session(7);
        sched.submit(turn1.clone());
        let r1 = sched.run_to_completion(10_000);
        let out1 = r1.completed[0].1.clone();
        // Turn 2 carries only the *new* tokens; the session store prepends the
        // recorded conversation.
        let new_tokens = vec![33u32, 44, 55, 66];
        sched.submit(
            RequestSpec::new(2, new_tokens.clone())
                .max_new_tokens(4)
                .session(7),
        );
        let r2 = sched.run_to_completion(10_000);
        let out2 = r2
            .completed
            .iter()
            .find(|(id, _)| *id == 2)
            .unwrap()
            .1
            .clone();
        let m2 = r2.request_metrics.iter().find(|m| m.id == 2).unwrap();
        assert!(
            m2.cached_prompt_tokens > 0,
            "session turn must start warm from the donated conversation"
        );
        // Reference: a fresh scheduler fed the concatenated conversation
        // explicitly produces the same tokens.
        let mut fresh_cfg = SchedulerConfig::new(8192);
        fresh_cfg.chunk_tokens = 8;
        let mut fresh = scheduler(cfg, fresh_cfg);
        let mut full_prompt = turn1.prompt.clone();
        full_prompt.extend_from_slice(&out1);
        full_prompt.extend_from_slice(&new_tokens);
        fresh.submit(RequestSpec::new(9, full_prompt).max_new_tokens(4));
        let want = fresh.run_to_completion(10_000).completed[0].1.clone();
        assert_eq!(
            out2, want,
            "session continuation must match explicit concat"
        );
    }

    /// Small pages so the two sequences' hot footprints actually differ in
    /// page counts at toy context lengths.
    fn small_page_dense() -> EngineConfig {
        let mut cfg = EngineConfig::dense();
        cfg.paging = lserve_kvcache::PagingConfig::new(8, 4, lserve_quant::KvPrecision::Fp16);
        cfg.prefill_tile = 8;
        cfg
    }

    #[test]
    fn swap_victim_choice_prefers_fewest_sole_owned_hot_pages() {
        // Two running sequences of very different page footprints: under Swap
        // the cheap victim (fewer sole-owned hot pages) is chosen, under
        // Replay the least entitled (latest arrival).
        let run = |policy: PreemptionPolicy| {
            let mut scfg = SchedulerConfig::new(8192);
            scfg.chunk_tokens = 64;
            scfg.preemption = policy;
            let mut sched = scheduler(small_page_dense(), scfg);
            sched.submit(request(1, 60, 10)); // large context, earliest arrival
            sched.submit(request(2, 8, 10)); // small context
            sched.step(); // both admitted and prefilled (chunk covers both)
            assert_eq!(sched.running(), 2);
            let victim = sched.pick_victim(None).expect("two candidates");
            sched.running[victim].core.spec.id
        };
        assert_eq!(
            run(PreemptionPolicy::Swap),
            2,
            "swap must pick the cheapest victim (fewest sole-owned hot pages)"
        );
        assert_eq!(
            run(PreemptionPolicy::Replay),
            2,
            "replay picks the least entitled (latest) arrival"
        );
        // With the arrivals reversed — the large sequence arriving last — the
        // two policies diverge: replay still takes the latest arrival (the
        // large one), swap takes the cheap one.
        let run_rev = |policy: PreemptionPolicy| {
            let mut scfg = SchedulerConfig::new(8192);
            scfg.chunk_tokens = 64;
            scfg.preemption = policy;
            let mut sched = scheduler(small_page_dense(), scfg);
            sched.submit(request(1, 8, 10)); // small context, earliest arrival
            sched.submit(request(2, 60, 10)); // large context, latest arrival
            sched.step();
            assert_eq!(sched.running(), 2);
            let victim = sched.pick_victim(None).expect("two candidates");
            sched.running[victim].core.spec.id
        };
        assert_eq!(run_rev(PreemptionPolicy::Replay), 2);
        assert_eq!(
            run_rev(PreemptionPolicy::Swap),
            1,
            "swap-cost choice must override arrival order"
        );
    }

    #[test]
    fn victim_selection_spares_interactive_class() {
        // An interactive sequence is never preempted while a batch sequence
        // runs, regardless of arrival order or page footprint.
        for policy in [PreemptionPolicy::Replay, PreemptionPolicy::Swap] {
            let mut scfg = SchedulerConfig::new(8192);
            scfg.chunk_tokens = 64;
            scfg.preemption = policy;
            let mut sched = scheduler(EngineConfig::dense(), scfg);
            sched.submit(request(1, 8, 10).class(SloClass::Interactive));
            sched.submit(request(2, 60, 10)); // batch, huge footprint
            sched.step();
            assert_eq!(sched.running(), 2);
            let victim = sched.pick_victim(None).expect("two candidates");
            assert_eq!(
                sched.running[victim].core.spec.id, 2,
                "the batch sequence must lose under {policy:?}"
            );
        }
    }

    // ---------------------------------------------------------------- DAGs

    /// Output tokens drained so far from a handle's event stream.
    fn drained_tokens(events: &[ServingEvent]) -> Vec<u32> {
        events
            .iter()
            .filter_map(|e| match e {
                ServingEvent::FirstToken { token } | ServingEvent::Token { token } => Some(*token),
                _ => None,
            })
            .collect()
    }

    /// Steps `sched` until request `parent` has generated at least `want`
    /// tokens, returning the tokens seen so far (the fork-time history).
    fn run_until_generated(sched: &mut Scheduler, h: &RequestHandle, want: usize) -> Vec<u32> {
        let mut got = Vec::new();
        for _ in 0..1000 {
            if got.len() >= want {
                return got;
            }
            sched.step();
            got.extend(drained_tokens(&h.drain_events()));
        }
        panic!("parent never generated {want} tokens (got {})", got.len());
    }

    #[test]
    fn fork_is_zero_copy_and_branches_admit_free() {
        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 8;
        let mut sched = scheduler(EngineConfig::lserve_fp16(), scfg);
        let hp = sched.submit(request(1, 16, 12));
        run_until_generated(&mut sched, &hp, 3);

        let in_use_before = sched.pool_in_use();
        assert!(in_use_before > 0, "parent holds pages");
        let out = sched
            .fork(
                1,
                JoinPolicy::All,
                &[
                    BranchSpec::new(2, vec![50, 51]).max_new_tokens(4),
                    BranchSpec::new(3, vec![52, 53]).max_new_tokens(4),
                ],
            )
            .unwrap();
        // Acceptance: zero page copies at fork time. Every branch CoW-shares
        // the parent's pages, so refcounts rise but `in_use` does not.
        assert_eq!(
            sched.pool_in_use(),
            in_use_before,
            "fork must not allocate or copy pages"
        );
        assert_eq!(out.handles.len(), 2);

        // A branch's snapshot is fully hot, so admission is free: its first
        // event is `Admitted` (never `Resumed` — it was never preempted).
        sched.step();
        let first = out.handles[0].drain_events();
        assert_eq!(first.first(), Some(&ServingEvent::Admitted));

        let r = sched.run_to_completion(100_000);
        assert_eq!(r.dag.forks, 1);
        assert_eq!(r.dag.branches_spawned, 2);
        assert_eq!(r.dag.joins, 1, "All policy resolves once");
        assert_eq!(r.completed.len(), 3);
        assert_eq!(sched.pool_in_use(), 0, "all pages returned");
        let js = sched.join_status(out.group).unwrap();
        assert!(js.resolved);
        assert!(js.winner.is_some());
    }

    #[test]
    fn surviving_branch_matches_solo_replay() {
        // A branch forked mid-decode — with or without a per-branch sparsity
        // override — must emit exactly the tokens of a solo run over its full
        // token history with the same positional schedule.
        let cfg = EngineConfig::lserve_with_budget(16);
        let mk = || {
            let mut scfg = SchedulerConfig::new(4096);
            scfg.chunk_tokens = 8;
            scfg
        };
        let mut sched = scheduler(cfg.clone(), mk());
        let hp = sched.submit(request(1, 16, 24));
        let gen_at_fork = run_until_generated(&mut sched, &hp, 3);
        let boundary = 16 + gen_at_fork.len();
        let over = SparsityOverride::none().with_budget(8);
        sched
            .fork(
                1,
                JoinPolicy::All,
                &[
                    BranchSpec::new(2, vec![60, 61, 62])
                        .max_new_tokens(6)
                        .sparsity(over),
                    BranchSpec::new(3, vec![63, 64, 65]).max_new_tokens(6),
                ],
            )
            .unwrap();
        let r = sched.run_to_completion(100_000);
        let branch_out = |id: u64| {
            r.completed
                .iter()
                .find(|(i, _)| *i == id)
                .unwrap_or_else(|| panic!("branch {id} completed"))
                .1
                .clone()
        };

        // Solo reference: same full history, same positional schedule.
        let mut history = request(1, 16, 0).prompt;
        history.extend_from_slice(&gen_at_fork);
        for (id, suffix, over) in [
            (2u64, vec![60, 61, 62], Some(over)),
            (3u64, vec![63, 64, 65], None),
        ] {
            let mut solo = scheduler(cfg.clone(), mk());
            let mut prompt = history.clone();
            prompt.extend_from_slice(&suffix);
            let mut spec = RequestSpec::new(id, prompt).max_new_tokens(6);
            if let Some(over) = over {
                spec = spec.sparsity_from(boundary, over);
            }
            solo.submit(spec);
            let solo_r = solo.run_to_completion(100_000);
            assert_eq!(
                branch_out(id),
                solo_r.completed[0].1,
                "branch {id} must be bit-identical to its solo replay"
            );
        }
    }

    #[test]
    fn first_finished_join_cancels_losers_with_donation() {
        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 8;
        scfg.prefix_cache = true;
        let mut sched = scheduler(EngineConfig::lserve_fp16(), scfg);
        let hp = sched.submit(request(1, 16, 8));
        run_until_generated(&mut sched, &hp, 2);
        let out = sched
            .fork(
                1,
                JoinPolicy::FirstFinished,
                &[
                    BranchSpec::new(2, vec![40]).max_new_tokens(2),
                    BranchSpec::new(3, vec![41]).max_new_tokens(40),
                ],
            )
            .unwrap();
        let h3 = out.handles[1].clone();
        let r = sched.run_to_completion(100_000);
        let js = sched.join_status(out.group).unwrap();
        assert!(js.resolved);
        assert_eq!(js.winner, Some(2), "the short branch finishes first");
        assert_eq!(sched.status(2), Some(RequestStatus::Finished(branch2(&r))));
        assert!(matches!(sched.status(3), Some(RequestStatus::Cancelled(_))));
        assert!(h3
            .drain_events()
            .iter()
            .any(|e| matches!(e, ServingEvent::Cancelled { .. })));
        assert_eq!(r.dag.joins, 1);
        assert!(r.dag.branch_cancels >= 1, "the loser was cascade-cancelled");
        // Losers without sparsity overrides donate their prefix on the way out.
        assert!(sched.prefix_cache_entries() > 0);
        sched.flush_prefix_cache();
        assert_eq!(sched.pool_in_use(), 0, "only cache-held pages remained");
    }

    fn branch2(r: &ServingReport) -> Vec<u32> {
        r.completed
            .iter()
            .find(|(id, _)| *id == 2)
            .expect("branch 2 completed")
            .1
            .clone()
    }

    #[test]
    fn cancelling_parent_cascades_to_live_branches() {
        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 8;
        let mut sched = scheduler(EngineConfig::lserve_fp16(), scfg);
        let hp = sched.submit(request(1, 16, 200));
        run_until_generated(&mut sched, &hp, 2);
        let out = sched
            .fork(
                1,
                JoinPolicy::All,
                &[
                    BranchSpec::new(2, vec![40]).max_new_tokens(100),
                    BranchSpec::new(3, vec![41]).max_new_tokens(100),
                ],
            )
            .unwrap();
        hp.cancel();
        let r = sched.run_to_completion(100_000);
        assert!(matches!(sched.status(1), Some(RequestStatus::Cancelled(_))));
        assert!(matches!(sched.status(2), Some(RequestStatus::Cancelled(_))));
        assert!(matches!(sched.status(3), Some(RequestStatus::Cancelled(_))));
        assert_eq!(r.dag.branch_cancels, 2);
        let js = sched.join_status(out.group).unwrap();
        assert!(js.resolved, "a fully-cancelled group still resolves");
        assert_eq!(js.winner, None);
        assert_eq!(sched.pool_in_use(), 0);
    }

    #[test]
    fn best_score_join_picks_biased_winner() {
        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 8;
        let mut sched = scheduler(EngineConfig::lserve_fp16(), scfg);
        let hp = sched.submit(request(1, 16, 8));
        run_until_generated(&mut sched, &hp, 2);
        let out = sched
            .fork(
                1,
                JoinPolicy::BestScore,
                &[
                    BranchSpec::new(2, vec![40]).max_new_tokens(3),
                    BranchSpec::new(3, vec![41])
                        .max_new_tokens(3)
                        .score_bias(100),
                    BranchSpec::new(4, vec![42]).max_new_tokens(3),
                ],
            )
            .unwrap();
        let r = sched.run_to_completion(100_000);
        let js = sched.join_status(out.group).unwrap();
        assert!(js.resolved);
        assert_eq!(js.winner, Some(3), "bias dominates equal token counts");
        // BestScore waits for the whole panel: nobody is cancelled.
        assert_eq!(r.dag.branch_cancels, 0);
        assert_eq!(r.completed.len(), 4);
    }

    #[test]
    fn fork_rejects_invalid_requests() {
        let mut scfg = SchedulerConfig::new(4096);
        scfg.chunk_tokens = 8;
        let mut sched = scheduler(EngineConfig::lserve_fp16(), scfg);
        assert_eq!(
            sched
                .fork(9, JoinPolicy::All, &[BranchSpec::new(2, vec![1])])
                .unwrap_err(),
            ForkError::ParentNotRunning(9)
        );
        let hp = sched.submit(request(1, 16, 8));
        run_until_generated(&mut sched, &hp, 1);
        assert_eq!(
            sched.fork(1, JoinPolicy::All, &[]).unwrap_err(),
            ForkError::NoBranches
        );
        assert_eq!(
            sched
                .fork(1, JoinPolicy::All, &[BranchSpec::new(1, vec![1])])
                .unwrap_err(),
            ForkError::DuplicateId(1),
            "an id the scheduler already knows is rejected"
        );
        assert_eq!(
            sched
                .fork(
                    1,
                    JoinPolicy::All,
                    &[BranchSpec::new(2, vec![1]), BranchSpec::new(2, vec![2])]
                )
                .unwrap_err(),
            ForkError::DuplicateId(2),
            "intra-batch duplicates are rejected"
        );
        assert_eq!(
            sched
                .fork(
                    1,
                    JoinPolicy::All,
                    &[BranchSpec::new(2, vec![1]).max_new_tokens(0)]
                )
                .unwrap_err(),
            ForkError::InvalidBranch(2)
        );
        assert_eq!(
            sched
                .fork(
                    1,
                    JoinPolicy::All,
                    &[BranchSpec::new(2, vec![1]).sparsity(
                        SparsityOverride::none().with_window(StreamingWindow::new(1, 2))
                    )]
                )
                .unwrap_err(),
            ForkError::InvalidBranch(2),
            "window overrides are admission-time-only"
        );
        // A failed fork leaves no trace: the scheduler still drains cleanly.
        let r = sched.run_to_completion(100_000);
        assert_eq!(r.dag.forks, 0);
        assert_eq!(r.completed.len(), 1);
        assert_eq!(sched.pool_in_use(), 0);
    }
}
