//! Miniature serving layer: shared page pool, FCFS admission, continuous batching.
//!
//! The paper's efficiency results are measured inside serving systems (vLLM, QServe)
//! whose scheduler interleaves many sequences over one device memory. This module
//! reproduces that control plane at small scale: requests queue, are admitted when
//! the shared [`PagePool`] has headroom, decode in a round-robin batch (iteration-
//! level scheduling à la Orca), and release their pages on completion — the loop
//! LServe's kernels live inside.

use std::collections::VecDeque;
use std::sync::Arc;

use lserve_kvcache::PagePool;
use lserve_model::{greedy_next_token, ModelWeights};

use crate::{Engine, EngineConfig};

/// A generation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Caller-chosen identifier.
    pub id: u64,
    /// Prompt token ids.
    pub prompt: Vec<u32>,
    /// Number of tokens to generate (greedy).
    pub max_new_tokens: usize,
}

/// Lifecycle state of a request inside the serving engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestStatus {
    /// Waiting for admission.
    Queued,
    /// Currently decoding.
    Running,
    /// Completed with the generated tokens.
    Finished(Vec<u32>),
    /// Could never fit in the pool (prompt larger than device memory).
    Rejected,
}

/// Summary of a serving run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServingReport {
    /// `(request id, generated tokens)` for every completed request.
    pub completed: Vec<(u64, Vec<u32>)>,
    /// Requests that could never be admitted.
    pub rejected: Vec<u64>,
    /// Scheduler iterations executed.
    pub scheduler_steps: u64,
    /// Total decode steps across all sequences.
    pub decode_steps: u64,
    /// High-water mark of pool pages in use.
    pub peak_pages: usize,
}

struct RunningSeq {
    req: Request,
    engine: Engine,
    generated: Vec<u32>,
    next_token: u32,
}

impl std::fmt::Debug for RunningSeq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RunningSeq(id={}, generated={})", self.req.id, self.generated.len())
    }
}

/// Multi-sequence serving engine over one shared page pool.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use lserve_core::{EngineConfig, Request, ServingEngine};
/// use lserve_model::{ModelConfig, ModelWeights};
///
/// let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 3));
/// let mut srv = ServingEngine::new(weights, EngineConfig::lserve_fp16(), 2048);
/// srv.submit(Request { id: 1, prompt: vec![1, 2, 3], max_new_tokens: 4 });
/// let report = srv.run_to_completion(10_000);
/// assert_eq!(report.completed.len(), 1);
/// ```
#[derive(Debug)]
pub struct ServingEngine {
    weights: Arc<ModelWeights>,
    cfg: EngineConfig,
    pool: PagePool,
    queue: VecDeque<Request>,
    running: Vec<RunningSeq>,
    report: ServingReport,
}

impl ServingEngine {
    /// Creates a serving engine whose shared pool holds `pool_pages` physical pages
    /// (the device-memory budget).
    pub fn new(weights: Arc<ModelWeights>, cfg: EngineConfig, pool_pages: usize) -> Self {
        cfg.validate();
        let pool = PagePool::new(cfg.paging, pool_pages, weights.config.head_dim);
        Self {
            weights,
            cfg,
            pool,
            queue: VecDeque::new(),
            running: Vec::new(),
            report: ServingReport::default(),
        }
    }

    /// Enqueues a request.
    pub fn submit(&mut self, req: Request) {
        self.queue.push_back(req);
    }

    /// Requests waiting for admission.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Sequences currently decoding.
    pub fn running(&self) -> usize {
        self.running.len()
    }

    /// Pages needed to hold `tokens` tokens of context for one sequence under the
    /// current policy (dense heads grow, streaming heads are bounded).
    fn pages_estimate(&self, tokens: usize) -> usize {
        let m = &self.weights.config;
        let streaming_heads = (self.cfg.streaming_sparsity
            * (m.num_layers * m.num_kv_heads) as f64)
            .round() as usize;
        let dense_heads = m.num_layers * m.num_kv_heads - streaming_heads;
        dense_heads * (self.cfg.paging.pages_for(tokens) + 1)
            + streaming_heads * (self.cfg.streaming_window.max_pages() + 2)
    }

    /// One scheduler iteration: admit what fits, then advance every running
    /// sequence by one decode step (continuous batching).
    pub fn step(&mut self) {
        self.report.scheduler_steps += 1;
        // Admission: FCFS while the estimated footprint fits current headroom.
        while let Some(req) = self.queue.front() {
            let need = self.pages_estimate(req.prompt.len() + req.max_new_tokens);
            let free = self.pool.capacity() - self.pool.in_use();
            if need > self.pool.capacity() {
                let req = self.queue.pop_front().expect("front checked");
                self.report.rejected.push(req.id);
                continue;
            }
            if need > free {
                break; // wait for running sequences to finish
            }
            let req = self.queue.pop_front().expect("front checked");
            let mut engine = Engine::new(Arc::clone(&self.weights), self.cfg.clone());
            match engine.prefill(&mut self.pool, &req.prompt) {
                Ok(out) => {
                    let next = greedy_next_token(&out.logits);
                    self.running.push(RunningSeq {
                        req,
                        engine,
                        generated: Vec::new(),
                        next_token: next,
                    });
                }
                Err(_) => {
                    // Estimate was optimistic; give the pages back and retry later.
                    engine.release(&mut self.pool);
                    self.queue.push_front(req);
                    break;
                }
            }
        }
        // Iteration-level batching: one token for every running sequence.
        let mut finished = Vec::new();
        for (i, seq) in self.running.iter_mut().enumerate() {
            seq.generated.push(seq.next_token);
            if seq.generated.len() >= seq.req.max_new_tokens {
                finished.push(i);
                continue;
            }
            match seq.engine.decode_step(&mut self.pool, seq.next_token) {
                Ok(out) => {
                    seq.next_token = greedy_next_token(&out.logits);
                    self.report.decode_steps += 1;
                }
                Err(_) => {
                    // Out of pages mid-flight: finish the sequence with what we have
                    // (real systems would preempt & swap; truncation keeps the model
                    // simple and the invariant — no deadlock — intact).
                    finished.push(i);
                }
            }
        }
        for &i in finished.iter().rev() {
            let mut seq = self.running.swap_remove(i);
            seq.engine.release(&mut self.pool);
            self.report.completed.push((seq.req.id, seq.generated));
        }
        self.report.peak_pages = self.report.peak_pages.max(self.pool.in_use());
    }

    /// Runs until every request completes or `max_steps` scheduler iterations pass.
    /// Returns the report (sorted by request id).
    pub fn run_to_completion(&mut self, max_steps: u64) -> ServingReport {
        let mut steps = 0;
        while (!self.queue.is_empty() || !self.running.is_empty()) && steps < max_steps {
            self.step();
            steps += 1;
        }
        let mut report = self.report.clone();
        report.completed.sort_by_key(|(id, _)| *id);
        report.rejected.sort_unstable();
        report
    }

    /// Pages currently in use in the shared pool.
    pub fn pool_in_use(&self) -> usize {
        self.pool.in_use()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lserve_model::ModelConfig;

    fn weights() -> Arc<ModelWeights> {
        Arc::new(ModelWeights::random(&ModelConfig::tiny(), 5))
    }

    fn request(id: u64, len: usize, gen: usize) -> Request {
        Request {
            id,
            prompt: (0..len).map(|i| (i % 90) as u32).collect(),
            max_new_tokens: gen,
        }
    }

    #[test]
    fn single_request_completes() {
        let mut srv = ServingEngine::new(weights(), EngineConfig::lserve_fp16(), 2048);
        srv.submit(request(1, 8, 5));
        let r = srv.run_to_completion(1000);
        assert_eq!(r.completed.len(), 1);
        assert_eq!(r.completed[0].1.len(), 5);
        assert!(r.rejected.is_empty());
        assert_eq!(srv.pool_in_use(), 0, "all pages returned");
    }

    #[test]
    fn serving_output_matches_standalone_engine() {
        let w = weights();
        let mut srv = ServingEngine::new(Arc::clone(&w), EngineConfig::dense(), 4096);
        srv.submit(request(1, 6, 6));
        let r = srv.run_to_completion(1000);
        let cfg = EngineConfig::dense();
        let mut pool = cfg.make_pool_for(&w.config, 64);
        let mut e = Engine::new(w, cfg);
        let want = e
            .generate(&mut pool, &request(1, 6, 6).prompt, 6)
            .unwrap();
        assert_eq!(r.completed[0].1, want);
    }

    #[test]
    fn batch_of_requests_all_complete() {
        let mut srv = ServingEngine::new(weights(), EngineConfig::lserve_fp16(), 8192);
        for id in 0..6 {
            srv.submit(request(id, 6 + id as usize, 4));
        }
        let r = srv.run_to_completion(10_000);
        assert_eq!(r.completed.len(), 6);
        let ids: Vec<u64> = r.completed.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn oversized_request_rejected_not_deadlocked() {
        let mut srv = ServingEngine::new(weights(), EngineConfig::dense(), 16);
        srv.submit(request(1, 512, 4)); // needs ~40 pages, can never fit in 16
        srv.submit(request(2, 4, 2));
        let r = srv.run_to_completion(1000);
        assert_eq!(r.rejected, vec![1]);
        assert_eq!(r.completed.len(), 1);
        assert_eq!(r.completed[0].0, 2);
    }

    #[test]
    fn memory_pressure_serializes_admission() {
        // Pool fits roughly one dense sequence at a time; both must still finish.
        let w = weights();
        let cfg = EngineConfig::dense();
        let one_seq_pages = {
            let m = &w.config;
            m.num_layers * m.num_kv_heads * (cfg.paging.pages_for(40) + 1)
        };
        let mut srv = ServingEngine::new(w, cfg, one_seq_pages + 4);
        srv.submit(request(1, 16, 8));
        srv.submit(request(2, 16, 8));
        let r = srv.run_to_completion(10_000);
        assert_eq!(r.completed.len(), 2);
        assert!(r.peak_pages <= one_seq_pages + 4);
    }

    #[test]
    fn continuous_batching_interleaves() {
        let mut srv = ServingEngine::new(weights(), EngineConfig::lserve_fp16(), 8192);
        srv.submit(request(1, 4, 10));
        srv.submit(request(2, 4, 10));
        srv.step();
        assert_eq!(srv.running(), 2, "both admitted in one step");
    }
}
