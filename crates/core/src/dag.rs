//! Request DAGs: speculative fork/join branching for agentic serving.
//!
//! A running sequence can [`fork`](crate::serving::Scheduler::fork) into K
//! speculative branches that CoW-share every KV page up to the fork point (the
//! same `PagePool::fork` refcount discipline the prefix cache uses at
//! admission). Branches race under the `BestEffort` class; a join policy
//! decides when the group resolves and which losers to cancel. Cancelled
//! losers donate their prefix so the winner's pages stay warm.
//!
//! This module owns the *graph* bookkeeping only: group membership, join
//! policies, cascade-cancel on parent cancellation, and the per-branch
//! sparsity-override schedule type. The scheduler owns page accounting and
//! event delivery.

use std::collections::HashMap;

use lserve_kvcache::StreamingWindow;

/// Per-branch (or per-request) sparsity knobs. Each knob is optional; `None`
/// means "inherit the engine default".
///
/// The retention ratio is SeerAttention-style: the selection budget is capped
/// at `ceil(retention * context_tokens)`, expressed in thousandths so the
/// type stays `Eq` and the math stays integer-deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SparsityOverride {
    /// Replace the engine's dynamic selection budget (tokens of hot KV the
    /// selector may keep per dense head). Ignored when the engine runs dense
    /// (`dynamic_budget: None`) — there are no selectors to override.
    pub selection_budget: Option<usize>,
    /// Cap the selection budget at `ceil(retention_permille/1000 * context)`.
    /// Composes with `selection_budget` (the smaller wins).
    pub retention_permille: Option<u32>,
    /// Replace the Λ-mask geometry of streaming heads. Only valid from
    /// position 0 (the ring is built at sequence creation); a fork rejects
    /// window overrides because children inherit the parent's ring.
    pub streaming_window: Option<StreamingWindow>,
}

impl SparsityOverride {
    /// An override that changes nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when every knob is `None`.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Sets the selection budget.
    pub fn with_budget(mut self, tokens: usize) -> Self {
        self.selection_budget = Some(tokens);
        self
    }

    /// Sets the retention ratio, in thousandths (500 keeps half the context).
    pub fn with_retention_permille(mut self, permille: u32) -> Self {
        self.retention_permille = Some(permille);
        self
    }

    /// Sets the streaming-head window (position 0 only).
    pub fn with_window(mut self, window: StreamingWindow) -> Self {
        self.streaming_window = Some(window);
        self
    }
}

/// One phase of a [`SparsitySchedule`]: `over` applies to every token position
/// `>= from`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparsityPhase {
    /// First absolute token position (context length) the override governs.
    pub from: usize,
    /// The knobs active from that position on.
    pub over: SparsityOverride,
}

/// A positional schedule of sparsity overrides.
///
/// Why positional rather than a flat per-request override: the reusable
/// selector caches its last rescore, and that rescore was computed under
/// whatever budget was effective *at rescore time*. A branch forked at
/// position `p` with an override must therefore be reproducible by a solo run
/// that applies the same override **from the same position** — the schedule
/// records exactly that timeline, so branch and solo replay score every
/// position under the same budget.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SparsitySchedule {
    phases: Vec<SparsityPhase>,
}

impl SparsitySchedule {
    /// The empty schedule (engine defaults everywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no phase carries any override.
    pub fn is_empty(&self) -> bool {
        self.phases.iter().all(|p| p.over.is_empty())
    }

    /// The phases, sorted by `from`.
    pub fn phases(&self) -> &[SparsityPhase] {
        &self.phases
    }

    /// Adds a phase active from `from` onward, keeping phases sorted. A later
    /// phase overrides earlier ones field-by-field.
    pub fn push(&mut self, from: usize, over: SparsityOverride) {
        if over.is_empty() {
            return;
        }
        let at = self.phases.partition_point(|p| p.from <= from);
        self.phases.insert(at, SparsityPhase { from, over });
    }

    /// The effective selection budget at absolute position `position`, given
    /// the engine's base `dynamic_budget`. Returns `None` when the engine is
    /// dense (no selectors exist, overrides are a documented no-op).
    pub fn effective_budget(&self, base: Option<usize>, position: usize) -> Option<usize> {
        let base = base?;
        let mut budget = base;
        let mut retention: Option<u32> = None;
        for p in self.phases.iter().filter(|p| p.from <= position) {
            if let Some(b) = p.over.selection_budget {
                budget = b;
            }
            if let Some(r) = p.over.retention_permille {
                retention = Some(r);
            }
        }
        if let Some(permille) = retention {
            let cap = (position * permille as usize).div_ceil(1000);
            budget = budget.min(cap);
        }
        Some(budget.max(1))
    }

    /// The streaming-window override, which is only honoured when scheduled
    /// from position 0 (the ring is built at sequence creation).
    pub fn window_override(&self) -> Option<StreamingWindow> {
        self.phases
            .iter()
            .filter(|p| p.from == 0)
            .find_map(|p| p.over.streaming_window)
    }

    /// True if any phase past position 0 tries to change the streaming
    /// window — invalid, because the per-sequence ring cannot be rebuilt
    /// mid-flight.
    pub fn has_late_window_override(&self) -> bool {
        self.phases
            .iter()
            .any(|p| p.from > 0 && p.over.streaming_window.is_some())
    }
}

/// When a fork group resolves, and which members lose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinPolicy {
    /// The first branch to finish wins; every still-live sibling is
    /// cancelled (with prefix donation).
    FirstFinished,
    /// Map/reduce: every branch runs to completion; no cancellation. The
    /// group resolves once all members are terminal (winner: lowest id among
    /// the finished, as a deterministic representative).
    All,
    /// Best-of-N: every branch runs to completion; the winner maximises
    /// `score_bias + generated_tokens` (ties break to the lowest id).
    BestScore,
}

/// Description of one speculative branch passed to `fork()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchSpec {
    /// Request id of the branch (must be globally fresh).
    pub id: u64,
    /// Tokens appended after the parent's history (may be empty for
    /// best-of-N style racing).
    pub suffix: Vec<u32>,
    /// Decode budget of the branch.
    pub max_new_tokens: usize,
    /// Sparsity knobs applied from the fork point onward.
    pub sparsity: SparsityOverride,
    /// Caller-supplied score bias for `JoinPolicy::BestScore`.
    pub score_bias: i64,
    /// Stop tokens for the branch (e.g. a tool-call terminator).
    pub stop_tokens: Vec<u32>,
}

impl BranchSpec {
    /// A branch with the given id and suffix, default 16 new tokens.
    pub fn new(id: u64, suffix: Vec<u32>) -> Self {
        Self {
            id,
            suffix,
            max_new_tokens: 16,
            sparsity: SparsityOverride::none(),
            score_bias: 0,
            stop_tokens: Vec::new(),
        }
    }

    /// Sets the decode budget.
    pub fn max_new_tokens(mut self, n: usize) -> Self {
        self.max_new_tokens = n;
        self
    }

    /// Sets the per-branch sparsity override (active from the fork point).
    pub fn sparsity(mut self, over: SparsityOverride) -> Self {
        self.sparsity = over;
        self
    }

    /// Sets the `BestScore` bias.
    pub fn score_bias(mut self, bias: i64) -> Self {
        self.score_bias = bias;
        self
    }

    /// Adds a stop token.
    pub fn stop_token(mut self, tok: u32) -> Self {
        self.stop_tokens.push(tok);
        self
    }
}

/// Why a `fork()` was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForkError {
    /// The parent id is not currently running (queued, terminal, or unknown).
    ParentNotRunning(u64),
    /// `branches` was empty.
    NoBranches,
    /// A branch id collides with an existing request.
    DuplicateId(u64),
    /// A branch asked for `max_new_tokens == 0` or a window override —
    /// the streaming ring is inherited from the parent and cannot be rebuilt
    /// at the fork point.
    InvalidBranch(u64),
}

impl std::fmt::Display for ForkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ParentNotRunning(id) => write!(f, "fork parent {id} is not running"),
            Self::NoBranches => write!(f, "fork needs at least one branch"),
            Self::DuplicateId(id) => write!(f, "branch id {id} already exists"),
            Self::InvalidBranch(id) => write!(f, "branch {id} is invalid"),
        }
    }
}

impl std::error::Error for ForkError {}

/// What `fork()` returns: the group id plus one handle per branch (in the
/// order the branches were given).
#[derive(Debug)]
pub struct ForkOutcome {
    /// Group id, usable with [`Scheduler::join_status`](crate::serving::Scheduler::join_status).
    pub group: u64,
    /// Request handles of the branches.
    pub handles: Vec<crate::serving::RequestHandle>,
}

/// Resolution state of a fork group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinStatus {
    /// True once the join policy has fired.
    pub resolved: bool,
    /// The winning branch id, if any branch finished.
    pub winner: Option<u64>,
}

/// Aggregate DAG counters, mirrored into `ServingReport` each step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DagStats {
    /// `fork()` calls that succeeded.
    pub forks: u64,
    /// Branches spawned across all forks.
    pub branches_spawned: u64,
    /// Groups whose join policy has resolved.
    pub joins: u64,
    /// Branch cancellations requested by join policies or cascade-cancel.
    pub branch_cancels: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemberState {
    Live,
    Finished { score: i64 },
    Cancelled,
}

#[derive(Debug)]
struct Group {
    members: Vec<(u64, i64, MemberState)>,
    policy: JoinPolicy,
    resolved: bool,
    winner: Option<u64>,
}

impl Group {
    fn member_mut(&mut self, id: u64) -> Option<&mut (u64, i64, MemberState)> {
        self.members.iter_mut().find(|m| m.0 == id)
    }

    fn all_terminal(&self) -> bool {
        self.members.iter().all(|m| m.2 != MemberState::Live)
    }

    /// Resolves the group if its policy says so; returns sibling ids to
    /// cancel (FirstFinished only).
    fn try_resolve(&mut self) -> Vec<u64> {
        if self.resolved {
            return Vec::new();
        }
        match self.policy {
            JoinPolicy::FirstFinished => {
                if let Some(winner) = self
                    .members
                    .iter()
                    .find(|m| matches!(m.2, MemberState::Finished { .. }))
                    .map(|m| m.0)
                {
                    self.resolved = true;
                    self.winner = Some(winner);
                    return self
                        .members
                        .iter()
                        .filter(|m| m.2 == MemberState::Live)
                        .map(|m| m.0)
                        .collect();
                }
                if self.all_terminal() {
                    self.resolved = true; // everything was cancelled
                }
                Vec::new()
            }
            JoinPolicy::All | JoinPolicy::BestScore => {
                if self.all_terminal() {
                    self.resolved = true;
                    self.winner = self
                        .members
                        .iter()
                        .filter_map(|m| match m.2 {
                            MemberState::Finished { score } => Some((m.0, score)),
                            _ => None,
                        })
                        // max by score, ties to the lowest id
                        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                        .map(|m| m.0);
                }
                Vec::new()
            }
        }
    }
}

/// The branch graph: fork groups, membership, and parent→child edges for
/// cascade-cancel.
#[derive(Debug, Default)]
pub struct DagStore {
    groups: Vec<Group>,
    /// branch id → group index.
    membership: HashMap<u64, usize>,
    /// request id → direct child branch ids (for cascade-cancel).
    children: HashMap<u64, Vec<u64>>,
    stats: DagStats,
}

impl DagStore {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a fork group; returns the group id.
    pub fn fork(&mut self, parent: u64, policy: JoinPolicy, members: &[(u64, i64)]) -> u64 {
        let gid = self.groups.len();
        self.groups.push(Group {
            members: members
                .iter()
                .map(|&(id, bias)| (id, bias, MemberState::Live))
                .collect(),
            policy,
            resolved: false,
            winner: None,
        });
        for &(id, _) in members {
            self.membership.insert(id, gid);
            self.children.entry(parent).or_default().push(id);
        }
        self.stats.forks += 1;
        self.stats.branches_spawned += members.len() as u64;
        gid as u64
    }

    /// Records that `id` finished with `tokens` generated tokens. Returns the
    /// sibling ids the join policy wants cancelled.
    pub fn on_finished(&mut self, id: u64, tokens: usize) -> Vec<u64> {
        let Some(&gid) = self.membership.get(&id) else {
            return Vec::new();
        };
        let group = &mut self.groups[gid];
        if let Some(m) = group.member_mut(id) {
            if m.2 == MemberState::Live {
                m.2 = MemberState::Finished {
                    score: m.1 + tokens as i64,
                };
            }
        }
        let was_resolved = group.resolved;
        let losers = group.try_resolve();
        if group.resolved && !was_resolved {
            self.stats.joins += 1;
        }
        self.stats.branch_cancels += losers.len() as u64;
        losers
    }

    /// Records that `id` was cancelled. Returns every live descendant of `id`
    /// (cascade-cancel: cancelling a parent cancels its whole subtree).
    pub fn on_cancelled(&mut self, id: u64) -> Vec<u64> {
        if let Some(&gid) = self.membership.get(&id) {
            let group = &mut self.groups[gid];
            if let Some(m) = group.member_mut(id) {
                if m.2 == MemberState::Live {
                    m.2 = MemberState::Cancelled;
                }
            }
            let was_resolved = group.resolved;
            let losers = group.try_resolve();
            debug_assert!(losers.is_empty(), "cancellation never picks losers");
            if group.resolved && !was_resolved {
                self.stats.joins += 1;
            }
        }
        // Cascade: collect live descendants breadth-first, marking each one
        // cancelled in the graph now so re-walking an intermediate node later
        // never double-counts its subtree.
        let mut cascade = Vec::new();
        let mut frontier = self.children.get(&id).cloned().unwrap_or_default();
        while let Some(child) = frontier.pop() {
            if let Some(&g) = self.membership.get(&child) {
                let group = &mut self.groups[g];
                if let Some(m) = group.member_mut(child) {
                    if m.2 == MemberState::Live {
                        m.2 = MemberState::Cancelled;
                        cascade.push(child);
                        let was_resolved = group.resolved;
                        let losers = group.try_resolve();
                        debug_assert!(losers.is_empty());
                        if group.resolved && !was_resolved {
                            self.stats.joins += 1;
                        }
                    }
                }
            }
            if let Some(grand) = self.children.get(&child) {
                frontier.extend_from_slice(grand);
            }
        }
        self.stats.branch_cancels += cascade.len() as u64;
        cascade
    }

    /// Resolution state of a group.
    pub fn join_status(&self, group: u64) -> Option<JoinStatus> {
        self.groups.get(group as usize).map(|g| JoinStatus {
            resolved: g.resolved,
            winner: g.winner,
        })
    }

    /// True if `id` belongs to any fork group.
    pub fn is_branch(&self, id: u64) -> bool {
        self.membership.contains_key(&id)
    }

    /// Aggregate counters.
    pub fn stats(&self) -> DagStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_applies_overrides_positionally() {
        let mut s = SparsitySchedule::new();
        s.push(32, SparsityOverride::none().with_budget(8));
        assert_eq!(s.effective_budget(Some(64), 0), Some(64));
        assert_eq!(s.effective_budget(Some(64), 31), Some(64));
        assert_eq!(s.effective_budget(Some(64), 32), Some(8));
        assert_eq!(s.effective_budget(None, 32), None, "dense engine: no-op");
    }

    #[test]
    fn retention_caps_budget_and_clamps_to_one() {
        let mut s = SparsitySchedule::new();
        s.push(0, SparsityOverride::none().with_retention_permille(500));
        assert_eq!(s.effective_budget(Some(64), 100), Some(50));
        assert_eq!(s.effective_budget(Some(64), 1000), Some(64));
        assert_eq!(s.effective_budget(Some(64), 0), Some(1), "clamped >= 1");
        s.push(0, SparsityOverride::none().with_budget(10));
        assert_eq!(s.effective_budget(Some(64), 100), Some(10), "min wins");
    }

    #[test]
    fn later_phases_override_field_by_field() {
        let mut s = SparsitySchedule::new();
        s.push(0, SparsityOverride::none().with_budget(32));
        s.push(16, SparsityOverride::none().with_retention_permille(250));
        assert_eq!(s.effective_budget(Some(64), 8), Some(32));
        // at 16: budget 32 still active, retention caps at ceil(16*0.25)=4
        assert_eq!(s.effective_budget(Some(64), 16), Some(4));
    }

    #[test]
    fn window_override_only_from_zero() {
        let mut s = SparsitySchedule::new();
        s.push(
            0,
            SparsityOverride::none().with_window(StreamingWindow::new(2, 3)),
        );
        assert_eq!(s.window_override(), Some(StreamingWindow::new(2, 3)));
        assert!(!s.has_late_window_override());
        s.push(
            5,
            SparsityOverride::none().with_window(StreamingWindow::new(1, 1)),
        );
        assert!(s.has_late_window_override());
    }

    #[test]
    fn first_finished_cancels_live_siblings() {
        let mut dag = DagStore::new();
        let g = dag.fork(1, JoinPolicy::FirstFinished, &[(10, 0), (11, 0), (12, 0)]);
        assert!(!dag.join_status(g).unwrap().resolved);
        let losers = dag.on_finished(11, 5);
        assert_eq!(losers, vec![10, 12]);
        let st = dag.join_status(g).unwrap();
        assert!(st.resolved);
        assert_eq!(st.winner, Some(11));
        // Late cancellations of the losers change nothing.
        assert!(dag.on_cancelled(10).is_empty());
        assert_eq!(dag.stats().joins, 1);
        assert_eq!(dag.stats().branch_cancels, 2);
    }

    #[test]
    fn best_score_waits_for_all_and_breaks_ties_low() {
        let mut dag = DagStore::new();
        let g = dag.fork(1, JoinPolicy::BestScore, &[(10, 3), (11, 0), (12, 3)]);
        assert!(dag.on_finished(10, 2).is_empty());
        assert!(dag.on_finished(12, 2).is_empty());
        assert!(!dag.join_status(g).unwrap().resolved);
        assert!(dag.on_finished(11, 4).is_empty());
        let st = dag.join_status(g).unwrap();
        assert!(st.resolved);
        assert_eq!(st.winner, Some(10), "score tie 5 == 5 breaks to lowest id");
    }

    #[test]
    fn all_policy_resolves_without_cancelling() {
        let mut dag = DagStore::new();
        let g = dag.fork(1, JoinPolicy::All, &[(10, 0), (11, 0)]);
        assert!(dag.on_finished(10, 1).is_empty());
        assert!(dag.on_cancelled(11).is_empty());
        let st = dag.join_status(g).unwrap();
        assert!(st.resolved);
        assert_eq!(st.winner, Some(10));
    }

    #[test]
    fn cascade_cancel_reaches_grandchildren() {
        let mut dag = DagStore::new();
        dag.fork(1, JoinPolicy::All, &[(10, 0), (11, 0)]);
        dag.fork(10, JoinPolicy::All, &[(20, 0)]);
        let mut cascade = dag.on_cancelled(1);
        cascade.sort_unstable();
        assert_eq!(cascade, vec![10, 11, 20]);
        assert_eq!(dag.stats().branch_cancels, 3);
    }
}
