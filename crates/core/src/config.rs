//! Engine configuration and the policy presets compared in the paper.

use lserve_kvcache::{PagingConfig, StreamingWindow};
use lserve_quant::KvPrecision;

/// Default decode/prefill worker-thread count from the `LSERVE_DECODE_THREADS`
/// environment variable (defaults to 1; invalid or zero values fall back
/// to 1).
///
/// The variable is read on every call — deliberately *not* cached in a
/// process-wide `OnceLock` — so tests and benches can vary the knob
/// in-process (`std::env::set_var` between scheduler constructions takes
/// effect immediately). [`crate::ModelExecutor::decode_batch`] and
/// [`crate::ModelExecutor::prefill`] use it when no explicit thread count is
/// given, and [`crate::SchedulerConfig::from_env`] reads it once at
/// construction and pins the result in its `decode_threads` field. CI runs
/// the whole test suite under a `{1, 8}` matrix of this variable (crossed
/// with `LSERVE_PREEMPTION` and `LSERVE_MIGRATION` — see
/// [`lserve_kvcache::migration_from_env`] for the latter), so the
/// determinism suite exercises both the serial and the sharded path on every
/// push.
pub fn decode_threads_from_env() -> usize {
    std::env::var("LSERVE_DECODE_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Which dynamic page-selection policy dense heads use during decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectorKind {
    /// No dynamic sparsity: dense heads attend their full history.
    None,
    /// Flat, Quest-style physical-page statistics.
    Flat,
    /// LServe's hierarchical logical→physical scoring (§3.5.2).
    Hierarchical,
}

/// Full policy configuration of an [`crate::Engine`].
///
/// Presets mirror the paper's systems so accuracy comparisons isolate the policy:
/// everything runs on the same weights, caches and kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Page geometry and KV precision.
    pub paging: PagingConfig,
    /// Fraction of KV heads converted to streaming heads (0.0 disables static
    /// sparsity).
    pub streaming_sparsity: f64,
    /// Sink/local window of streaming heads, in physical pages.
    pub streaming_window: StreamingWindow,
    /// Dynamic sparsity token budget for dense heads (`None` = full attention).
    pub dynamic_budget: Option<usize>,
    /// Page-selector policy.
    pub selector: SelectorKind,
    /// Selector reuse interval `C` (§3.5.3); 1 = select every step.
    pub reuse_interval: usize,
    /// Square tile size for block-sparse prefill.
    pub prefill_tile: usize,
    /// MInference-style dynamic prefill sparsity on retrieval heads: `Some(keep)`
    /// retains `keep` top-affinity past blocks per query tile (plus diagonal and
    /// sinks) once the prompt exceeds [`EngineConfig::dynamic_prefill_after`].
    pub dynamic_prefill_keep: Option<usize>,
    /// Prompt length (tokens) beyond which dynamic prefill activates (§4.3 uses
    /// 128K).
    pub dynamic_prefill_after: usize,
    /// Seed for the synthetic DuoAttention gate values.
    pub gate_seed: u64,
    /// Selection-driven demotion for the tiered KV memory: `Some(k)` demotes a
    /// dense-head page to the cold (host) tier once the head's
    /// [`lserve_selector::ReusableSelector`] has skipped it for `k` consecutive
    /// fresh selection chunks; a later selection that picks a cold page
    /// triggers an accounted promote before the decode kernel runs. `None`
    /// keeps every page device-resident (the single-tier baseline). Outputs
    /// are bit-identical either way — the knob trades hot-tier footprint for
    /// modeled transfer work. Whether that work stalls the decode loop or is
    /// hidden behind it is a separate, orthogonal knob:
    /// [`lserve_kvcache::MigrationMode`] (env `LSERVE_MIGRATION`), which
    /// routes the transfers through the asynchronous copy engine.
    pub demote_after_chunks: Option<usize>,
}

impl EngineConfig {
    /// LServe defaults: INT4 KV, 64/16 hierarchical paging, 50% streaming heads,
    /// 4096-token dynamic budget, reuse interval 4.
    pub fn lserve() -> Self {
        Self {
            paging: PagingConfig::new(64, 16, KvPrecision::Int4),
            streaming_sparsity: 0.5,
            streaming_window: StreamingWindow::new(1, 2),
            dynamic_budget: Some(4096),
            selector: SelectorKind::Hierarchical,
            reuse_interval: 4,
            prefill_tile: 64,
            dynamic_prefill_keep: Some(64),
            dynamic_prefill_after: 131_072,
            gate_seed: 0xD00D,
            demote_after_chunks: None,
        }
    }

    /// Accuracy-test variant of [`EngineConfig::lserve`] with FP16 KV, so
    /// sparsity-induced error is isolated from quantization error.
    pub fn lserve_fp16() -> Self {
        Self {
            paging: PagingConfig::new(64, 16, KvPrecision::Fp16),
            ..Self::lserve()
        }
    }

    /// Dense baseline: full attention everywhere, FP16 KV.
    pub fn dense() -> Self {
        Self {
            paging: PagingConfig::new(64, 16, KvPrecision::Fp16),
            streaming_sparsity: 0.0,
            streaming_window: StreamingWindow::new(1, 2),
            dynamic_budget: None,
            selector: SelectorKind::None,
            reuse_interval: 1,
            prefill_tile: 64,
            dynamic_prefill_keep: None,
            dynamic_prefill_after: usize::MAX,
            gate_seed: 0xD00D,
            demote_after_chunks: None,
        }
    }

    /// QServe-like: INT4 KV with large flat pages, no sparsity.
    pub fn qserve_like() -> Self {
        Self {
            paging: PagingConfig::flat(64, KvPrecision::Int4),
            ..Self::dense()
        }
    }

    /// Quest-like: FP16 KV, flat 16-token pages, selection every step, dense
    /// prefill (no streaming heads).
    pub fn quest_like(budget: usize) -> Self {
        Self {
            paging: PagingConfig::flat(16, KvPrecision::Fp16),
            streaming_sparsity: 0.0,
            streaming_window: StreamingWindow::new(1, 2),
            dynamic_budget: Some(budget),
            selector: SelectorKind::Flat,
            reuse_interval: 1,
            prefill_tile: 64,
            dynamic_prefill_keep: None,
            dynamic_prefill_after: usize::MAX,
            gate_seed: 0xD00D,
            demote_after_chunks: None,
        }
    }

    /// Quest with a coarser flat page size, the Figure 6 failure configuration.
    pub fn quest_like_paged(page: usize, budget: usize) -> Self {
        Self {
            paging: PagingConfig::flat(page, KvPrecision::Fp16),
            ..Self::quest_like(budget)
        }
    }

    /// DuoAttention-like: static sparsity only (50% streaming heads), FP16, dense
    /// retrieval heads.
    pub fn duo_like() -> Self {
        Self {
            streaming_sparsity: 0.5,
            ..Self::dense()
        }
    }

    /// LServe with a custom dynamic budget (`LServe-N` in Tables 3/6).
    pub fn lserve_with_budget(budget: usize) -> Self {
        Self {
            dynamic_budget: Some(budget),
            ..Self::lserve()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if a selector is configured without a budget or vice versa, or the
    /// reuse interval is zero.
    pub fn validate(&self) {
        assert!(self.reuse_interval >= 1, "reuse interval must be >= 1");
        assert!(
            (0.0..=1.0).contains(&self.streaming_sparsity),
            "streaming sparsity must be in [0,1]"
        );
        match (self.dynamic_budget, self.selector) {
            (Some(_), SelectorKind::None) => panic!("budget set but selector is None"),
            (None, SelectorKind::Flat | SelectorKind::Hierarchical) => {
                panic!("selector set but no budget")
            }
            _ => {}
        }
        assert!(self.prefill_tile > 0, "prefill tile must be positive");
        if let Some(keep) = self.dynamic_prefill_keep {
            assert!(keep > 0, "dynamic prefill keep budget must be positive");
        }
        if let Some(k) = self.demote_after_chunks {
            assert!(k >= 1, "demotion staleness must be at least one chunk");
            assert!(
                self.dynamic_budget.is_some(),
                "selection-driven demotion needs an active page selector"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        EngineConfig::lserve().validate();
        EngineConfig::lserve_fp16().validate();
        EngineConfig::dense().validate();
        EngineConfig::qserve_like().validate();
        EngineConfig::quest_like(4096).validate();
        EngineConfig::duo_like().validate();
        EngineConfig::lserve_with_budget(8192).validate();
    }

    #[test]
    fn lserve_matches_paper_defaults() {
        let c = EngineConfig::lserve();
        assert_eq!(c.paging.physical_page_size(), 64);
        assert_eq!(c.paging.logical_page_size(), 16);
        assert_eq!(c.dynamic_budget, Some(4096));
        assert_eq!(c.reuse_interval, 4);
        assert_eq!(c.streaming_sparsity, 0.5);
    }

    #[test]
    #[should_panic(expected = "selector set but no budget")]
    fn inconsistent_config_rejected() {
        let mut c = EngineConfig::lserve();
        c.dynamic_budget = None;
        c.validate();
    }
}
