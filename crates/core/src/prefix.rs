//! The serving layer's cached-prefix value: a positionally exact KV snapshot.
//!
//! A [`CachedPrefix`] is what the scheduler donates into the
//! [`lserve_prefixcache::PrefixCache`] radix tree and what a cache hit seeds a new
//! sequence from. It wraps a [`SequenceState`] captured at the exact moment the
//! donor had absorbed the cached token sequence — per-layer page tables for dense
//! *and* streaming heads (sink + local ring at this position), reusable-selector
//! history, context length, and decode-step index. That positional exactness is
//! what upgrades "some shared pages" into the scheduler's determinism guarantee: a
//! sequence seeded from the snapshot continues through bit-identical computation
//! to a cold run that prefilled the same tokens itself.
//!
//! Page ownership follows the [`PrefixPages`] contract: the tree retains one
//! reference per page while the entry lives, every seeded consumer retains its
//! own, and copy-on-write forking in `lserve_kvcache` keeps the shared pages
//! immutable for as long as any co-owner remains.
//!
//! The contract holds **across memory tiers**: refcounts survive hot↔cold
//! migrations, so a snapshot captured from a sequence whose stale pages were
//! demoted simply references cold pages — the pool refuses to demote anything
//! the tree co-owns with a running sequence, and a consumer seeded from a
//! partly-cold snapshot promotes pages through the executor's residency pass
//! the first time a selection (or full-history read) touches them.

use lserve_kvcache::PagePool;
use lserve_prefixcache::PrefixPages;

use crate::executor::SequenceState;

/// A cached prompt prefix: per-layer, page-aligned runs of pool pages plus the
/// positional state (selector history, step counters) needed to continue from
/// them deterministically.
#[derive(Debug)]
pub struct CachedPrefix {
    state: SequenceState,
}

impl CachedPrefix {
    /// Snapshots `state` for donation. The snapshot shares the donor's pages
    /// (ids are copied; the cache takes its refcounts when the value is
    /// inserted) and zeroes the work counters.
    ///
    /// The caller must capture at a clean position: `state.context_len()` tokens
    /// absorbed, nothing half-written — the scheduler captures on prefill-chunk
    /// and completion boundaries.
    pub fn capture(state: &SequenceState) -> Self {
        Self {
            state: state.clone_shared(),
        }
    }

    /// Prefix length in tokens.
    pub fn tokens(&self) -> usize {
        self.state.context_len()
    }

    /// Creates a new sequence continuing from this prefix: clones the snapshot
    /// and retains every page for the consumer (who releases them on completion
    /// or preemption like any other sequence).
    pub fn seed(&self, pool: &mut PagePool) -> SequenceState {
        let state = self.state.clone_shared();
        state.retain_pages(pool);
        state
    }
}

impl PrefixPages for CachedPrefix {
    fn retain(&self, pool: &mut PagePool) {
        self.state.retain_pages(pool);
    }

    fn release(&mut self, pool: &mut PagePool) {
        self.state.release(pool);
    }

    fn page_refs(&self) -> usize {
        self.state.resident_pages()
    }

    fn frees_pages(&self, pool: &PagePool) -> bool {
        self.state.holds_sole_reference(pool)
    }

    fn spillable(&self, pool: &PagePool) -> bool {
        self.state.sole_owned_hot_pages(pool) > 0
    }

    fn spill(&self, pool: &mut PagePool) -> u64 {
        // The snapshot's demotion pass is exactly a spill: sole-owned hot
        // pages move to the cold tiers, shared pages (co-owned by running
        // sequences or nested entries) stay put, and the snapshot itself is
        // untouched — a later hit seeds from it and promotes on first use.
        self.state.demote_resident(pool).0
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use lserve_model::{ModelConfig, ModelWeights};
    use lserve_prefixcache::PrefixCache;

    use super::*;
    use crate::{EngineConfig, ModelExecutor};

    /// The retain contract across tiers: a snapshot donated after its donor's
    /// pages were demoted keeps cold pages alive, the pool refuses to demote
    /// tree-co-owned pages, and a consumer seeded from the partly-cold entry
    /// decodes correctly (the residency pass promotes on first use).
    #[test]
    fn retain_contract_spans_hot_and_cold_tiers() {
        let mut cfg = EngineConfig::lserve_fp16();
        cfg.paging = lserve_kvcache::PagingConfig::new(4, 2, lserve_quant::KvPrecision::Fp16);
        let w = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 9));
        let mut pool = cfg.make_pool_for(&w.config, 512);
        let exec = ModelExecutor::new(w, cfg);
        let mut donor = exec.new_sequence();
        exec.prefill(&mut donor, &mut pool, &[1, 2, 3, 4, 5, 6, 7, 8])
            .unwrap();
        let mut cache: PrefixCache<CachedPrefix> = PrefixCache::new();
        assert!(cache.insert(
            &mut pool,
            &[1, 2, 3, 4, 5, 6, 7, 8],
            CachedPrefix::capture(&donor)
        ));
        // Tree + donor co-own every page: demotion must refuse all of them.
        let (pages, _) = donor.demote_resident(&mut pool);
        assert_eq!(pages, 0, "co-owned pages must never demote");
        // Donor leaves; now the tree is sole owner and the pages may go cold.
        donor.release(&mut pool);
        let live = pool.in_use();
        let (_, hit) = cache.lookup(&[1, 2, 3, 4, 5, 6, 7, 8, 9], 1, 8).unwrap();
        let mut probe = hit.seed(&mut pool);
        let (cold_pages, _) = probe.demote_resident(&mut pool);
        probe.release(&mut pool);
        assert!(cold_pages == 0, "probe shares with tree; nothing demotes");
        // Demote via a sole-owned path: release the tree's hot view by
        // swapping the donor state itself. Simplest: seed a consumer and
        // verify it can decode even if some pages go cold underneath.
        let mut consumer = {
            let (_, hit) = cache.lookup(&[1, 2, 3, 4, 5, 6, 7, 8, 9], 1, 8).unwrap();
            hit.seed(&mut pool)
        };
        exec.decode_step(&mut consumer, &mut pool, 9).unwrap();
        consumer.release(&mut pool);
        assert_eq!(pool.in_use(), live, "tree still holds its pages");
        cache.clear(&mut pool);
        assert_eq!(pool.in_use(), 0);
        assert_eq!(pool.cold_in_use(), 0);
    }

    #[test]
    fn capture_seed_release_round_trip() {
        let cfg = EngineConfig::lserve_fp16();
        let w = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 3));
        let mut pool = cfg.make_pool_for(&w.config, 512);
        let exec = ModelExecutor::new(w, cfg);
        let mut donor = exec.new_sequence();
        exec.prefill(&mut donor, &mut pool, &[1, 2, 3, 4, 5, 6])
            .unwrap();
        let donor_pages = donor.resident_pages();
        assert!(donor_pages > 0);

        let mut cache: PrefixCache<CachedPrefix> = PrefixCache::new();
        assert!(cache.insert(
            &mut pool,
            &[1, 2, 3, 4, 5, 6],
            CachedPrefix::capture(&donor)
        ));
        donor.release(&mut pool);
        assert_eq!(pool.in_use(), donor_pages, "tree keeps the pages alive");

        let (depth, hit) = cache.lookup(&[1, 2, 3, 4, 5, 6, 7], 1, 6).unwrap();
        assert_eq!(depth, 6);
        assert_eq!(hit.tokens(), 6);
        let mut consumer = hit.seed(&mut pool);
        assert_eq!(consumer.context_len(), 6);
        assert_eq!(consumer.stats().decode_steps, 0, "work counters reset");
        // The consumer can continue decoding from the shared pages.
        exec.decode_step(&mut consumer, &mut pool, 7).unwrap();
        consumer.release(&mut pool);
        cache.clear(&mut pool);
        assert_eq!(pool.in_use(), 0);
    }
}
