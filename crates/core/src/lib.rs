//! The LServe engine: long-sequence LLM serving with unified sparse attention.
//!
//! This crate composes every substrate of the reproduction into the system of
//! Figure 5:
//!
//! * [`heads`] — the §3.3 static sparsity determination: DuoAttention gate values
//!   are thresholded at a sparsity quantile, classifying each KV head as a
//!   **retrieval (dense)** or **streaming** head, fixed offline for both stages.
//! * [`config`] — [`EngineConfig`] presets for LServe and the baselines it is
//!   compared against (dense, Quest-like flat selection, DuoAttention-like static
//!   only, QServe-like quantized dense), expressed over one shared engine so
//!   accuracy comparisons isolate the *policy*, exactly like the paper's setup.
//! * [`executor`] — the engine split into its shared and per-request halves:
//!   [`ModelExecutor`] (weights, policy, RoPE, head classification; immutable and
//!   `Arc`-shared) and [`SequenceState`] (per-layer two-way KV caches, selector
//!   state, position, stats). The executor runs block-sparse fused prefill (§3.4),
//!   two-way paged KV writeback, and decode with hierarchical + reusable page
//!   selection feeding the fused decode kernel (§3.5–3.6) — including
//!   [`ModelExecutor::decode_batch`], the layer-outer batched decode step whose
//!   attention phase shards across a sparsity-aware worker pool
//!   ([`ModelExecutor::decode_batch_threads`], bit-identical at every thread
//!   count).
//! * [`engine`] — [`Engine`], the single-sequence convenience wrapper over one
//!   executor + one sequence state.
//! * [`serving`] — the continuous-batching [`Scheduler`] behind the
//!   handle-based streaming request API ([`RequestSpec`] → [`RequestHandle`] →
//!   [`ServingEvent`]): chunked prefill over a fixed tile grid, exact
//!   page-demand reservation, SLO-class/deadline/swap-cost-aware admission and
//!   preemption, cancellation, multi-turn sessions, cross-request prefix
//!   caching — plus the [`ServingEngine`] compatibility facade, standing in
//!   for the vLLM-style serving loop the paper builds on.
//! * [`prefix`] — [`CachedPrefix`], the positionally exact per-sequence KV
//!   snapshot the scheduler donates into (and seeds from) the
//!   `lserve-prefixcache` radix tree.
//! * [`stats`] — work counters every stage reports (tiles, pages, selector calls),
//!   the quantities the cost model turns into GPU time.

pub mod cluster;
pub mod config;
pub mod dag;
pub mod engine;
pub mod executor;
pub mod heads;
pub mod metrics;
pub mod prefix;
pub mod serving;
pub mod sharding;
pub mod stats;

pub use cluster::{Cluster, ClusterConfig, ClusterForkOutcome, ClusterReport, RouterStats};
pub use config::{decode_threads_from_env, EngineConfig, SelectorKind};
pub use dag::{
    BranchSpec, DagStats, DagStore, ForkError, ForkOutcome, JoinPolicy, JoinStatus,
    SparsityOverride, SparsitySchedule,
};
pub use engine::{DecodeOutput, Engine, PrefillOutput};
pub use executor::{ModelExecutor, OutOfPagesError, SequenceState};
pub use heads::{classify_heads, streaming_masks_from_gates};
pub use lserve_costmodel::{devices_from_env, Placement, PlacementPolicy, Topology};
pub use lserve_kvcache::{migration_from_env, MigrationMode, MigrationStats};
pub use lserve_prefixcache::PrefixCacheStats;
pub use metrics::MetricsSnapshot;
pub use prefix::CachedPrefix;
pub use serving::{
    preemption_from_env, sequence_pages_estimate, tile_grid_boundary, AdmissionPolicy,
    FinishReason, PreemptionPolicy, RejectReason, Request, RequestHandle, RequestMetrics,
    RequestSpec, RequestStatus, Scheduler, SchedulerConfig, ServingEngine, ServingEvent,
    ServingReport, SloClass,
};
pub use sharding::{RebalanceOutcome, ShardingPlan, ShardingStats};
pub use stats::{EngineStats, MigrationDelta, ParallelExecStats};
