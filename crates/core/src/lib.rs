//! The LServe engine: long-sequence LLM serving with unified sparse attention.
//!
//! This crate composes every substrate of the reproduction into the system of
//! Figure 5:
//!
//! * [`heads`] — the §3.3 static sparsity determination: DuoAttention gate values
//!   are thresholded at a sparsity quantile, classifying each KV head as a
//!   **retrieval (dense)** or **streaming** head, fixed offline for both stages.
//! * [`config`] — [`EngineConfig`] presets for LServe and the baselines it is
//!   compared against (dense, Quest-like flat selection, DuoAttention-like static
//!   only, QServe-like quantized dense), expressed over one shared engine so
//!   accuracy comparisons isolate the *policy*, exactly like the paper's setup.
//! * [`engine`] — [`Engine`], a single-sequence inference pipeline: block-sparse
//!   fused prefill (§3.4), two-way paged KV writeback, and decode with hierarchical
//!   + reusable page selection feeding the fused decode kernel (§3.5–3.6).
//! * [`serving`] — a miniature serving layer with a shared page pool, FCFS
//!   admission, and continuous batching across sequences, standing in for the
//!   vLLM-style serving loop the paper builds on.
//! * [`stats`] — work counters every stage reports (tiles, pages, selector calls),
//!   the quantities the cost model turns into GPU time.

pub mod config;
pub mod engine;
pub mod heads;
pub mod serving;
pub mod stats;

pub use config::{EngineConfig, SelectorKind};
pub use engine::{DecodeOutput, Engine, PrefillOutput};
pub use heads::{classify_heads, streaming_masks_from_gates};
pub use serving::{Request, RequestStatus, ServingEngine, ServingReport};
pub use stats::EngineStats;
