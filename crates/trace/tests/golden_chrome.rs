//! Golden-file pin of the Chrome trace exporter: a tiny fixed scene covering
//! every lane and event kind must render byte-identically across runs and
//! refactors. Regenerate with `LSERVE_UPDATE_GOLDEN=1 cargo test -p
//! lserve-trace --test golden_chrome` and review the diff.

use lserve_trace::{chrome_trace_json, lane, validate_json, Tracer, CONTROL_TID};

fn tiny_scene() -> Tracer {
    let t = Tracer::ring(64);
    // Request 3 arrives, waits one tick, prefills a chunk, decodes a token.
    t.instant("submit", "scheduler", lane::SCHEDULER, 3, &[("prompt", 12)]);
    t.advance(1);
    let queued_from = 0;
    t.span("queued", "scheduler", lane::SCHEDULER, 3, queued_from, &[]);
    t.instant("admit", "scheduler", lane::SCHEDULER, 3, &[]);
    let chunk_start = t.now();
    // The executor runs one layer: a serial phase then two attention shards
    // on two workers, the critical path being the slower shard.
    let serial_start = t.now();
    t.advance(2);
    t.span(
        "decode.serial",
        "executor",
        lane::EXECUTOR,
        CONTROL_TID,
        serial_start,
        &[("layer", 0)],
    );
    let par_start = t.now();
    t.span_at(
        "shard",
        "attention",
        lane::WORKERS,
        0,
        par_start,
        5,
        &[("seq", 0), ("cost", 5)],
    );
    t.span_at(
        "shard",
        "attention",
        lane::WORKERS,
        1,
        par_start,
        3,
        &[("seq", 0), ("cost", 3)],
    );
    t.advance(5);
    t.span(
        "decode.attention",
        "executor",
        lane::EXECUTOR,
        CONTROL_TID,
        par_start,
        &[("layer", 0), ("shards", 2)],
    );
    // Selector rescored one head and the pool moved one page while computing.
    t.instant(
        "rescore",
        "selector",
        lane::SELECTOR,
        0,
        &[("layer", 0), ("head", 1)],
    );
    t.instant(
        "demote.issue",
        "copy",
        lane::COPY,
        0,
        &[("page", 9), ("units", 4)],
    );
    t.instant("land", "copy", lane::COPY, 0, &[("page", 9)]);
    t.span(
        "prefill.chunk",
        "scheduler",
        lane::SCHEDULER,
        3,
        chunk_start,
        &[("tokens", 8)],
    );
    t.counter("pages", lane::SCHEDULER, &[("hot", 5), ("cold", 1)]);
    t.counter(
        "sequences",
        lane::SCHEDULER,
        &[("running", 1), ("queued", 0)],
    );
    t.instant("finish", "scheduler", lane::SCHEDULER, 3, &[("tokens", 1)]);
    t
}

/// A 2-device decode phase: each device runs its local shards on its own
/// worker lanes (`dev/worker` tids via [`lane::device_worker_tid`]), the
/// devices overlap in modeled time, and the interconnect counter tracks the
/// cumulative cross-device gather tokens.
fn device_scene() -> Tracer {
    let t = Tracer::ring(64);
    let par_start = t.now();
    // Device 0 holds the heavy dense head (cost 7) and one light shard its
    // second worker picks up; device 1 holds two streaming shards.
    t.span_at(
        "shard",
        "attention",
        lane::WORKERS,
        lane::device_worker_tid(0, 0),
        par_start,
        7,
        &[("seq", 0), ("cost", 7)],
    );
    t.span_at(
        "shard",
        "attention",
        lane::WORKERS,
        lane::device_worker_tid(0, 1),
        par_start,
        2,
        &[("seq", 1), ("cost", 2)],
    );
    t.span_at(
        "shard",
        "attention",
        lane::WORKERS,
        lane::device_worker_tid(1, 0),
        par_start,
        3,
        &[("seq", 0), ("cost", 3)],
    );
    t.span_at(
        "shard",
        "attention",
        lane::WORKERS,
        lane::device_worker_tid(1, 1),
        par_start,
        2,
        &[("seq", 1), ("cost", 2)],
    );
    // The phase's modeled wall time is the critical device (device 0, 7).
    t.advance(7);
    t.span(
        "decode.attention",
        "executor",
        lane::EXECUTOR,
        CONTROL_TID,
        par_start,
        &[("layer", 0), ("shards", 4), ("devices", 2)],
    );
    // Sequence 0's dense shard lives on device 0 but its streaming shard is
    // on device 1: one modeled gather, tallied on the interconnect track.
    t.counter("interconnect", lane::WORKERS, &[("tokens", 4)]);
    t.counter("pages", lane::SCHEDULER, &[("hot", 6), ("cold", 0)]);
    t
}

#[test]
fn tiny_scene_matches_golden() {
    let (events, dropped) = tiny_scene().drain();
    assert_eq!(dropped, 0);
    let mut rendered = chrome_trace_json(&events, dropped).render();
    rendered.push('\n');
    validate_json(rendered.trim_end()).unwrap();

    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/tiny.trace.json");
    if std::env::var("LSERVE_UPDATE_GOLDEN").is_ok() {
        std::fs::write(golden_path, &rendered).unwrap();
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing; run with LSERVE_UPDATE_GOLDEN=1 to create");
    assert_eq!(
        rendered, golden,
        "exporter output drifted from the golden trace; if intentional, \
         regenerate with LSERVE_UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn device_scene_matches_golden() {
    let (events, dropped) = device_scene().drain();
    assert_eq!(dropped, 0);
    let mut rendered = chrome_trace_json(&events, dropped).render();
    rendered.push('\n');
    validate_json(rendered.trim_end()).unwrap();
    // The per-device worker lanes must label themselves.
    assert!(rendered.contains("dev1/worker 0"));
    assert!(rendered.contains("\"name\":\"interconnect\""));

    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/device_scene.trace.json"
    );
    if std::env::var("LSERVE_UPDATE_GOLDEN").is_ok() {
        std::fs::write(golden_path, &rendered).unwrap();
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing; run with LSERVE_UPDATE_GOLDEN=1 to create");
    assert_eq!(
        rendered, golden,
        "exporter output drifted from the golden device trace; if \
         intentional, regenerate with LSERVE_UPDATE_GOLDEN=1 and review the diff"
    );
}
