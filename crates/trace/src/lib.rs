//! Work-token-clocked tracing and JSON metrics rendering for the LServe
//! reproduction.
//!
//! The engine is deterministic: every run advances a modeled **work-token
//! clock** instead of wall time, so two runs of the same workload produce the
//! same schedule. This crate makes that schedule visible without breaking the
//! property:
//!
//! * [`Tracer`] — a cheap, cloneable handle threaded through the scheduler,
//!   executor, page pool and selector. When disabled (the default) every
//!   emission is a branch on a [`None`]; when enabled it timestamps typed
//!   span/instant/counter events against the shared work-token clock.
//! * [`TraceSink`] — where events go. [`RingSink`] keeps the most recent
//!   `capacity` events (bounded memory regardless of run length, with a
//!   dropped-event count); [`NoopSink`] discards everything (for overhead
//!   measurements of event construction itself).
//! * [`chrome::chrome_trace_json`] — renders recorded events as a Chrome
//!   trace-event JSON document that Perfetto ([ui.perfetto.dev]) and
//!   `chrome://tracing` load directly: one process lane per engine layer,
//!   one thread lane per sequence/worker, plus counter tracks.
//! * [`Json`] — the workspace's deterministic JSON renderer (insertion-ordered
//!   keys, NaN rejection), shared with `lserve-bench`'s `BENCH_*.json`
//!   artifacts.
//!
//! Because timestamps are modeled work-token ticks, traces are bit-reproducible
//! and diffable across runs and policies — a scheduling change shows up as a
//! moved span, not as noise.
//!
//! [ui.perfetto.dev]: https://ui.perfetto.dev

pub mod chrome;
pub mod json;

pub use chrome::{chrome_trace_json, write_chrome_trace};
pub use json::{validate_json, Json};

use std::borrow::Cow;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Process-lane (`pid`) constants: one lane per engine layer, so a loaded
/// trace groups tracks the way the system is layered.
pub mod lane {
    /// Scheduler lane: request lifecycle spans (tid = request id) and the
    /// per-iteration control track / counter tracks (tid = [`super::CONTROL_TID`]).
    pub const SCHEDULER: u32 = 1;
    /// Executor lane: per-layer serial/parallel phase spans.
    pub const EXECUTOR: u32 = 2;
    /// Attention-worker lane: per-shard spans laid out per worker
    /// (tid = worker index on a single device, or
    /// `device * DEVICE_TID_STRIDE + worker` under a multi-device placement)
    /// — the sparsity-imbalance flame chart.
    pub const WORKERS: u32 = 3;
    /// Stride between devices in the worker lane's `tid` space: worker `w` of
    /// device `d` renders on `tid = d * DEVICE_TID_STRIDE + w`. Device 0's
    /// tids coincide with the single-device layout, so single-device traces
    /// are unchanged by the encoding.
    pub const DEVICE_TID_STRIDE: u64 = 100;

    /// The worker-lane `tid` for worker `w` of simulated device `d`.
    pub fn device_worker_tid(device: usize, worker: usize) -> u64 {
        device as u64 * DEVICE_TID_STRIDE + worker as u64
    }
    /// Copy-engine lane: transfer issue/land/force/cancel instants
    /// (tid 0 = device→host, tid 1 = host→device).
    pub const COPY: u32 = 4;
    /// Selector lane: rescore and prefetch instants (tid = batch slot).
    pub const SELECTOR: u32 = 5;
    /// Request-DAG lane: fork/join/branch-cancel instants and branch spawns,
    /// one track per branch (tid = branch request id).
    pub const DAG: u32 = 6;
}

/// The `tid` used for lane-global (non-per-sequence) tracks.
pub const CONTROL_TID: u64 = 0;

/// Ring capacity used by `LSERVE_TRACE=1` (events, not bytes).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// What kind of trace-event record this is (mapped to Chrome `ph` on export).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A closed interval `[ts, ts + dur)` — Chrome "X" complete event.
    /// Spans are recorded at close, so every recorded span is closed by
    /// construction.
    Span,
    /// A point event — Chrome "i" instant.
    Instant,
    /// A sampled counter track value — Chrome "C" counter.
    Counter,
}

/// One typed trace record, timestamped in work-token ticks.
///
/// Args are `(key, value)` pairs of unsigned integers: every quantity the
/// engine traces (pages, tokens, costs, ids) is a count, and keeping args
/// numeric keeps event construction allocation-light on hot paths.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Record kind (span / instant / counter).
    pub kind: EventKind,
    /// Event name (counter events: the counter track name).
    pub name: Cow<'static, str>,
    /// Category, one per engine layer (`"scheduler"`, `"executor"`,
    /// `"attention"`, `"copy"`, `"selector"`).
    pub cat: &'static str,
    /// Process lane (see [`lane`]).
    pub pid: u32,
    /// Thread lane within the process lane (request id, worker index, …).
    pub tid: u64,
    /// Start time in work-token ticks.
    pub ts: u64,
    /// Duration in work-token ticks (spans only; 0 otherwise).
    pub dur: u64,
    /// Numeric arguments (counter events: the counter series).
    pub args: Vec<(&'static str, u64)>,
}

/// Destination for recorded events.
pub trait TraceSink: Send {
    /// Records one event (may evict an older one).
    fn record(&mut self, event: TraceEvent);
    /// Removes and returns all retained events plus the number of events the
    /// sink dropped (evicted or discarded) over its lifetime.
    fn drain(&mut self) -> (Vec<TraceEvent>, u64);
    /// Events currently retained.
    fn retained(&self) -> usize;
}

/// Bounded ring buffer: keeps the most recent `capacity` events, counting
/// evictions, so tracing an arbitrarily long run uses constant memory.
#[derive(Debug)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring retaining at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: VecDeque::with_capacity(capacity.clamp(1, 4096)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    fn drain(&mut self) -> (Vec<TraceEvent>, u64) {
        (std::mem::take(&mut self.buf).into(), self.dropped)
    }

    fn retained(&self) -> usize {
        self.buf.len()
    }
}

/// Discards every event (but still pays for constructing them) — the
/// measurement baseline separating event-construction overhead from
/// retention overhead.
#[derive(Debug, Default)]
pub struct NoopSink {
    discarded: u64,
}

impl TraceSink for NoopSink {
    fn record(&mut self, _event: TraceEvent) {
        self.discarded += 1;
    }

    fn drain(&mut self) -> (Vec<TraceEvent>, u64) {
        (Vec::new(), self.discarded)
    }

    fn retained(&self) -> usize {
        0
    }
}

struct TracerState {
    clock: u64,
    sink: Box<dyn TraceSink>,
}

/// Shared handle to the trace clock and sink.
///
/// Cloning is cheap (an [`Arc`] clone) and every clone feeds the same clock
/// and sink, which is what lets one handle thread through scheduler, executor,
/// pool and selector. A disabled tracer ([`Tracer::disabled`]) carries no
/// state at all: every method is a branch on [`None`], so untraced runs pay
/// nothing and stay bit-identical to traced ones.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<TracerState>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Tracer(disabled)"),
            Some(inner) => {
                let state = inner.lock().unwrap();
                write!(
                    f,
                    "Tracer(clock={}, retained={})",
                    state.clock,
                    state.sink.retained()
                )
            }
        }
    }
}

impl Tracer {
    /// The zero-cost disabled tracer (also [`Default`]).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled tracer recording into a [`RingSink`] of `capacity` events.
    pub fn ring(capacity: usize) -> Self {
        Self::with_sink(Box::new(RingSink::new(capacity)))
    }

    /// An enabled tracer that constructs and discards events ([`NoopSink`]).
    pub fn noop() -> Self {
        Self::with_sink(Box::<NoopSink>::default())
    }

    /// An enabled tracer with a caller-provided sink.
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(TracerState { clock: 0, sink }))),
        }
    }

    /// Reads `LSERVE_TRACE` — the scheduler-config env idiom: read per call,
    /// so each constructed config pins the mode at construction time.
    ///
    /// Unset / `""` / `"0"` / `"off"` → disabled; `"1"` / `"on"` / `"ring"` →
    /// ring buffer of [`DEFAULT_RING_CAPACITY`] events; `"noop"` → the
    /// discard sink.
    ///
    /// # Panics
    ///
    /// Panics on any other value: a typo silently disabling tracing would be
    /// worse than stopping.
    pub fn from_env() -> Self {
        match std::env::var("LSERVE_TRACE") {
            Err(_) => Self::disabled(),
            Ok(v) => match v.as_str() {
                "" | "0" | "off" => Self::disabled(),
                "1" | "on" | "ring" => Self::ring(DEFAULT_RING_CAPACITY),
                "noop" => Self::noop(),
                other => panic!("LSERVE_TRACE must be 0|off|1|on|ring|noop, got {other:?}"),
            },
        }
    }

    /// True when events are being recorded. Guard expensive argument
    /// construction on this; the emit methods themselves already early-return.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Current clock value in work-token ticks (0 when disabled).
    #[inline]
    pub fn now(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.lock().unwrap().clock,
        }
    }

    /// Advances the clock by `ticks` modeled work units. The clock only moves
    /// forward and only via this method, so it is monotone by construction.
    #[inline]
    pub fn advance(&self, ticks: u64) {
        if let Some(inner) = &self.inner {
            inner.lock().unwrap().clock += ticks;
        }
    }

    /// Records a span closing **now** that opened at `start` (from a prior
    /// [`Tracer::now`]). Emitting at close means no span is ever left open.
    #[inline]
    pub fn span(
        &self,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        pid: u32,
        tid: u64,
        start: u64,
        args: &[(&'static str, u64)],
    ) {
        if let Some(inner) = &self.inner {
            let mut state = inner.lock().unwrap();
            let dur = state.clock.saturating_sub(start);
            state.sink.record(TraceEvent {
                kind: EventKind::Span,
                name: name.into(),
                cat,
                pid,
                tid,
                ts: start,
                dur,
                args: args.to_vec(),
            });
        }
    }

    /// Records a span with an explicit `[start, start + dur)` extent —
    /// used to lay out modeled schedules (e.g. per-worker shard placement)
    /// that don't follow the global clock.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn span_at(
        &self,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        pid: u32,
        tid: u64,
        start: u64,
        dur: u64,
        args: &[(&'static str, u64)],
    ) {
        if let Some(inner) = &self.inner {
            inner.lock().unwrap().sink.record(TraceEvent {
                kind: EventKind::Span,
                name: name.into(),
                cat,
                pid,
                tid,
                ts: start,
                dur,
                args: args.to_vec(),
            });
        }
    }

    /// Records an instant event at the current clock.
    #[inline]
    pub fn instant(
        &self,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        pid: u32,
        tid: u64,
        args: &[(&'static str, u64)],
    ) {
        if let Some(inner) = &self.inner {
            let mut state = inner.lock().unwrap();
            let ts = state.clock;
            state.sink.record(TraceEvent {
                kind: EventKind::Instant,
                name: name.into(),
                cat,
                pid,
                tid,
                ts,
                dur: 0,
                args: args.to_vec(),
            });
        }
    }

    /// Samples a multi-series counter track at the current clock (each arg is
    /// one stacked series in the rendered track).
    #[inline]
    pub fn counter(&self, name: &'static str, pid: u32, series: &[(&'static str, u64)]) {
        if let Some(inner) = &self.inner {
            let mut state = inner.lock().unwrap();
            let ts = state.clock;
            state.sink.record(TraceEvent {
                kind: EventKind::Counter,
                name: Cow::Borrowed(name),
                cat: "counter",
                pid,
                tid: CONTROL_TID,
                ts,
                dur: 0,
                args: series.to_vec(),
            });
        }
    }

    /// Events currently retained by the sink (0 when disabled).
    pub fn retained(&self) -> usize {
        match &self.inner {
            None => 0,
            Some(inner) => inner.lock().unwrap().sink.retained(),
        }
    }

    /// Removes and returns all retained events plus the sink's lifetime
    /// dropped-event count. Returns empty when disabled.
    pub fn drain(&self) -> (Vec<TraceEvent>, u64) {
        match &self.inner {
            None => (Vec::new(), 0),
            Some(inner) => inner.lock().unwrap().sink.drain(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tracer: &Tracer) -> Vec<TraceEvent> {
        tracer.drain().0
    }

    #[test]
    fn disabled_tracer_records_nothing_and_reads_zero() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.advance(100);
        t.instant("x", "scheduler", lane::SCHEDULER, CONTROL_TID, &[]);
        t.span("y", "scheduler", lane::SCHEDULER, 1, 0, &[]);
        t.counter("c", lane::SCHEDULER, &[("v", 1)]);
        assert_eq!(t.now(), 0);
        assert_eq!(t.retained(), 0);
        assert_eq!(t.drain(), (Vec::new(), 0));
    }

    #[test]
    fn clock_is_strictly_monotone_under_advance() {
        let t = Tracer::ring(16);
        let mut last = t.now();
        for step in 1..50u64 {
            t.advance(step % 3 + 1);
            let now = t.now();
            assert!(now > last, "clock must move strictly forward");
            last = now;
        }
    }

    #[test]
    fn span_closes_with_elapsed_duration() {
        let t = Tracer::ring(16);
        let start = t.now();
        t.advance(7);
        t.span(
            "work",
            "executor",
            lane::EXECUTOR,
            CONTROL_TID,
            start,
            &[("n", 2)],
        );
        let events = ev(&t);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::Span);
        assert_eq!((events[0].ts, events[0].dur), (0, 7));
        assert_eq!(events[0].args, vec![("n", 2)]);
    }

    #[test]
    fn every_recorded_span_is_closed_and_clock_ordered() {
        // Spans are recorded at close (X-style), so there is no way to leave
        // one open; this pins that the invariant survives interleaving.
        let t = Tracer::ring(64);
        let a = t.now();
        t.advance(3);
        let b = t.now();
        t.advance(4);
        t.span("inner", "executor", lane::EXECUTOR, 0, b, &[]);
        t.advance(1);
        t.span("outer", "scheduler", lane::SCHEDULER, 0, a, &[]);
        let events = ev(&t);
        for e in &events {
            assert!(e.ts + e.dur <= 8, "span extends past the clock: {e:?}");
        }
        assert_eq!(events[0].name, "inner");
        assert_eq!((events[0].ts, events[0].dur), (3, 4));
        assert_eq!((events[1].ts, events[1].dur), (0, 8));
    }

    #[test]
    fn ring_sink_bounds_memory_and_counts_drops() {
        let t = Tracer::ring(4);
        for i in 0..10u64 {
            t.advance(1);
            t.instant("tick", "scheduler", lane::SCHEDULER, i, &[]);
        }
        assert_eq!(t.retained(), 4);
        let (events, dropped) = t.drain();
        assert_eq!(events.len(), 4);
        assert_eq!(dropped, 6);
        // The ring keeps the *most recent* events.
        assert_eq!(events[0].tid, 6);
        assert_eq!(events[3].tid, 9);
    }

    #[test]
    fn noop_sink_retains_nothing() {
        let t = Tracer::noop();
        assert!(t.is_enabled());
        t.instant("x", "scheduler", lane::SCHEDULER, 0, &[]);
        assert_eq!(t.retained(), 0);
        let (events, discarded) = t.drain();
        assert!(events.is_empty());
        assert_eq!(discarded, 1);
    }

    #[test]
    fn clones_share_clock_and_sink() {
        let t = Tracer::ring(8);
        let u = t.clone();
        t.advance(5);
        assert_eq!(u.now(), 5);
        u.instant("from-clone", "scheduler", lane::SCHEDULER, 0, &[]);
        assert_eq!(t.retained(), 1);
    }
}
