//! Chrome trace-event JSON export.
//!
//! Renders recorded [`TraceEvent`]s as the [Trace Event Format] consumed by
//! Perfetto (`ui.perfetto.dev` → "Open trace file") and `chrome://tracing`:
//! spans become `"X"` complete events, instants `"i"`, counters `"C"`, and
//! each engine lane gets `process_name` / `thread_name` metadata so the UI
//! labels tracks by layer, sequence and worker. Timestamps are the modeled
//! work-token ticks — the `ts` axis reads as work, not wall time.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::io;
use std::path::Path;

use crate::json::Json;
use crate::{lane, EventKind, TraceEvent};

fn process_name(pid: u32) -> String {
    match pid {
        lane::SCHEDULER => "scheduler".to_string(),
        lane::EXECUTOR => "executor".to_string(),
        lane::WORKERS => "attention workers".to_string(),
        lane::COPY => "copy engine".to_string(),
        lane::SELECTOR => "selector".to_string(),
        other => format!("lane {other}"),
    }
}

fn thread_name(pid: u32, tid: u64) -> String {
    match (pid, tid) {
        (lane::SCHEDULER, 0) => "control".to_string(),
        (lane::SCHEDULER, id) => format!("req {id}"),
        (lane::EXECUTOR, _) => "phases".to_string(),
        (lane::WORKERS, t) if t < lane::DEVICE_TID_STRIDE => format!("worker {t}"),
        (lane::WORKERS, t) => format!(
            "dev{}/worker {}",
            t / lane::DEVICE_TID_STRIDE,
            t % lane::DEVICE_TID_STRIDE
        ),
        (lane::COPY, 0) => "to cold (D2H)".to_string(),
        (lane::COPY, 1) => "to hot (H2D)".to_string(),
        (lane::SELECTOR, s) => format!("slot {s}"),
        (_, t) => format!("tid {t}"),
    }
}

fn args_obj(args: &[(&'static str, u64)]) -> Json {
    Json::Obj(
        args.iter()
            .map(|&(k, v)| (k.to_string(), Json::Int(v)))
            .collect(),
    )
}

fn meta_event(name: &str, pid: u32, tid: Option<u64>, label: String) -> Json {
    let mut fields = vec![
        ("name".to_string(), Json::from(name)),
        ("ph".to_string(), Json::from("M")),
        ("pid".to_string(), Json::Int(pid as u64)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid".to_string(), Json::Int(tid)));
    }
    fields.push((
        "args".to_string(),
        Json::Obj(vec![("name".to_string(), Json::Str(label))]),
    ));
    Json::Obj(fields)
}

/// Renders events as a complete Chrome trace-event document.
///
/// Events are stably sorted by timestamp, so `ts` is non-decreasing on every
/// thread track — same-instant events keep their recording order. `dropped`
/// (the ring sink's eviction count) is carried in `otherData` so a truncated
/// trace is visibly truncated.
pub fn chrome_trace_json(events: &[TraceEvent], dropped: u64) -> Json {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.ts);

    let mut lanes: Vec<(u32, Option<u64>)> = Vec::new();
    for e in events {
        if !lanes.contains(&(e.pid, None)) {
            lanes.push((e.pid, None));
        }
        if e.kind != EventKind::Counter && !lanes.contains(&(e.pid, Some(e.tid))) {
            lanes.push((e.pid, Some(e.tid)));
        }
    }
    lanes.sort();

    let mut trace_events: Vec<Json> = lanes
        .iter()
        .map(|&(pid, tid)| match tid {
            None => meta_event("process_name", pid, None, process_name(pid)),
            Some(tid) => meta_event("thread_name", pid, Some(tid), thread_name(pid, tid)),
        })
        .collect();

    for e in sorted {
        let mut fields = vec![
            ("name".to_string(), Json::Str(e.name.clone().into_owned())),
            ("cat".to_string(), Json::from(e.cat)),
        ];
        match e.kind {
            EventKind::Span => {
                fields.push(("ph".to_string(), Json::from("X")));
                fields.push(("ts".to_string(), Json::Int(e.ts)));
                fields.push(("dur".to_string(), Json::Int(e.dur)));
            }
            EventKind::Instant => {
                fields.push(("ph".to_string(), Json::from("i")));
                fields.push(("s".to_string(), Json::from("t")));
                fields.push(("ts".to_string(), Json::Int(e.ts)));
            }
            EventKind::Counter => {
                fields.push(("ph".to_string(), Json::from("C")));
                fields.push(("ts".to_string(), Json::Int(e.ts)));
            }
        }
        fields.push(("pid".to_string(), Json::Int(e.pid as u64)));
        fields.push(("tid".to_string(), Json::Int(e.tid)));
        fields.push(("args".to_string(), args_obj(&e.args)));
        trace_events.push(Json::Obj(fields));
    }

    Json::obj([
        ("traceEvents", Json::Arr(trace_events)),
        ("displayTimeUnit", Json::from("ms")),
        (
            "otherData",
            Json::obj([
                ("clock", Json::from("work-token ticks")),
                ("dropped_events", Json::Int(dropped)),
            ]),
        ),
    ])
}

/// Renders and writes a Chrome trace to `path` (see [`chrome_trace_json`]).
pub fn write_chrome_trace(
    path: impl AsRef<Path>,
    events: &[TraceEvent],
    dropped: u64,
) -> io::Result<()> {
    let mut doc = chrome_trace_json(events, dropped).render();
    doc.push('\n');
    std::fs::write(path, doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{json::validate_json, Tracer, CONTROL_TID};

    fn scene() -> (Vec<TraceEvent>, u64) {
        let t = Tracer::ring(64);
        t.instant("submit", "scheduler", lane::SCHEDULER, 7, &[("prompt", 40)]);
        let s = t.now();
        t.advance(8);
        t.span(
            "prefill.chunk",
            "scheduler",
            lane::SCHEDULER,
            7,
            s,
            &[("tokens", 8)],
        );
        t.counter("pages", lane::SCHEDULER, &[("hot", 6), ("cold", 2)]);
        t.span_at("shard", "attention", lane::WORKERS, 1, 8, 5, &[("cost", 5)]);
        t.instant("promote.issue", "copy", lane::COPY, 1, &[("page", 3)]);
        t.drain()
    }

    #[test]
    fn export_is_valid_json_with_metadata_and_sorted_ts() {
        let (events, dropped) = scene();
        let doc = chrome_trace_json(&events, dropped);
        let rendered = doc.render();
        validate_json(&rendered).unwrap();
        let Json::Obj(fields) = &doc else { panic!() };
        let Json::Arr(items) = &fields[0].1 else {
            panic!()
        };
        // Per-lane metadata precedes data events; data events sorted by ts.
        let mut last_ts = 0u64;
        let mut metas = 0;
        let mut data = 0;
        for item in items {
            let Json::Obj(ev) = item else { panic!() };
            let ph = ev.iter().find(|(k, _)| k == "ph").unwrap();
            if ph.1 == Json::from("M") {
                assert_eq!(data, 0, "metadata must lead the event list");
                metas += 1;
                continue;
            }
            data += 1;
            let ts = ev.iter().find(|(k, _)| k == "ts").unwrap();
            let Json::Int(ts) = ts.1 else { panic!() };
            assert!(ts >= last_ts, "ts must be non-decreasing");
            last_ts = ts;
        }
        assert_eq!(data, 5);
        // scheduler process + req lane, workers process + lane, copy process
        // + lane (counters add no thread lane).
        assert_eq!(metas, 6);
        assert!(rendered.contains("\"dropped_events\":0"));
    }

    #[test]
    fn counters_render_as_counter_events_with_series_args() {
        let t = Tracer::ring(8);
        t.counter("pages", lane::SCHEDULER, &[("hot", 3), ("cold", 1)]);
        let (events, _) = t.drain();
        let rendered = chrome_trace_json(&events, 0).render();
        assert!(rendered.contains(r#""name":"pages","cat":"counter","ph":"C""#));
        assert!(rendered.contains(r#""args":{"hot":3,"cold":1}"#));
        assert!(events[0].tid == CONTROL_TID);
    }

    #[test]
    fn eviction_keeps_export_well_formed() {
        let t = Tracer::ring(3);
        for i in 0..100u64 {
            t.advance(1);
            t.instant("tick", "scheduler", lane::SCHEDULER, i % 5, &[("i", i)]);
        }
        let (events, dropped) = t.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(dropped, 97);
        let rendered = chrome_trace_json(&events, dropped).render();
        validate_json(&rendered).unwrap();
        assert!(rendered.contains("\"dropped_events\":97"));
    }
}
