//! A minimal JSON value for the machine-readable artifacts the workspace
//! emits (`BENCH_*.json` metric documents and `.trace.json` Chrome traces).
//!
//! Hand-rolled on purpose: the workspace carries no serialization dependency,
//! and the artifacts are small and write-only from Rust's side. Keys keep
//! insertion order, so rendered documents are deterministic and diffable.

/// A minimal JSON value with deterministic (insertion-ordered) rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A float, rendered with enough precision to round-trip metrics.
    Num(f64),
    /// An unsigned counter.
    Int(u64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered list.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Self {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders the value as compact JSON.
    ///
    /// # Panics
    ///
    /// Panics on non-finite floats: the artifacts are metrics, and a NaN in
    /// one is a bug worth stopping on, not serializing.
    pub fn render(&self) -> String {
        match self {
            Json::Num(x) => {
                assert!(x.is_finite(), "non-finite metric in JSON artifact: {x}");
                // Plain Display round-trips f64 and never emits exponents for
                // the metric ranges these artifacts hold.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    format!("{:.1}", x)
                } else {
                    format!("{x}")
                }
            }
            Json::Int(n) => n.to_string(),
            Json::Str(s) => {
                let mut out = String::with_capacity(s.len() + 2);
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
                out
            }
            Json::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Json::render).collect();
                format!("[{}]", inner.join(","))
            }
            Json::Obj(fields) => {
                let inner: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("{}:{}", Json::Str(k.clone()).render(), v.render()))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Int(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Int(n as u64)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Num(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

/// Validates that `input` is one well-formed JSON document (RFC 8259 subset:
/// the escapes [`Json::render`] can emit, decimal numbers, no surrogate-pair
/// checking). Used by tests and tooling to check emitted artifacts without a
/// parser dependency.
pub fn validate_json(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    validate_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn validate_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(bytes, pos);
                validate_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                skip_ws(bytes, pos);
                validate_value(bytes, pos)?;
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?} at {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(bytes, pos);
                validate_value(bytes, pos)?;
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?} at {pos}")),
                }
            }
        }
        Some(b'"') => validate_string(bytes, pos),
        Some(b't') => expect_literal(bytes, pos, b"true"),
        Some(b'f') => expect_literal(bytes, pos, b"false"),
        Some(b'n') => expect_literal(bytes, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => validate_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}")),
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at {pos}", want as char))
    }
}

fn expect_literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if bytes.len() >= *pos + lit.len() && &bytes[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at {pos}"))
    }
}

fn validate_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(bytes, pos, b'"')?;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(format!("bad \\u escape at {pos}")),
                            }
                        }
                    }
                    other => return Err(format!("bad escape {other:?} at {pos}")),
                }
            }
            0x00..=0x1f => return Err(format!("unescaped control byte at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn validate_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_from = *pos;
    while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    if *pos == digits_from {
        return Err(format!("number without digits at {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_from = *pos;
        while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == frac_from {
            return Err(format!("number with empty fraction at {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_from = *pos;
        while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == exp_from {
            return Err(format!("number with empty exponent at {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_renders_nested_values() {
        let v = Json::obj([
            ("count", Json::from(3u64)),
            ("ratio", Json::from(0.75)),
            ("whole", Json::from(2.0)),
            ("name", Json::from("p\"5\"0\n")),
            ("list", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"count":3,"ratio":0.75,"whole":2.0,"name":"p\"5\"0\n","list":[1,2]}"#
        );
    }

    #[test]
    #[should_panic(expected = "non-finite metric")]
    fn json_rejects_nan() {
        let _ = Json::Num(f64::NAN).render();
    }

    #[test]
    fn rendered_values_validate() {
        let v = Json::obj([
            ("s", Json::from("a\\b\"c\n\u{1}")),
            ("n", Json::Num(-1.25)),
            ("a", Json::Arr(vec![Json::Int(0)])),
            ("o", Json::obj([("empty", Json::Arr(vec![]))])),
        ]);
        validate_json(&v.render()).unwrap();
        validate_json("{}").unwrap();
        validate_json("[1,2.5,-3e4,\"x\",true,false,null]").unwrap();
    }

    #[test]
    fn validator_rejects_malformed() {
        assert!(validate_json("").is_err());
        assert!(validate_json("{").is_err());
        assert!(validate_json("[1,]").is_err());
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("1 2").is_err());
        assert!(validate_json("01a").is_err());
        assert!(validate_json("{\"a\":1}{}").is_err());
        assert!(validate_json("\"bad \\q escape\"").is_err());
    }
}
