//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors the
//! subset of proptest's API its tests actually use: range strategies over numeric
//! types, `prop::collection::vec`, `prop::bool::ANY`, the `prop_map`/`prop_flat_map`
//! combinators, the `proptest!` macro, and the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * **No shrinking.** A failing case panics with the drawn inputs in the panic
//!   message (via `prop_assert!`'s formatted condition), but is not minimized.
//! * **Deterministic generation.** Each test derives its RNG seed from the test
//!   function's name, so runs are reproducible without a persistence file.
//!
//! Both trade-offs are acceptable for CI-style regression testing, which is the only
//! role property tests play in this repository.

use std::ops::Range;

/// Deterministic 64-bit generator (SplitMix64), the sole entropy source for
/// strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via multiply-shift.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator. The name and the `Value` associated type mirror proptest's
/// `Strategy` trait so test code compiles unchanged.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing function.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// Tuples of strategies generate tuples of values (mirrors proptest's tuple
/// strategy composition, used e.g. for operation streams `(op, operand)`).
impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// Strategy for vectors whose elements come from `element` and whose length is
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Stable seed derived from a test's name (FNV-1a), so each property draws a
/// reproducible but distinct input stream.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Everything test files import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };

    /// Mirror of proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property; failure panics with the stringified
/// condition and any formatted context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// The property-test macro: each `fn name(arg in strategy, ...) { body }` item
/// becomes a test that draws `cases` inputs and runs the body on each.
///
/// `#[test]` is written explicitly inside the block (matching real proptest usage);
/// attributes and doc comments pass through unchanged.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::seed_from_u64($crate::seed_for(concat!(
                    module_path!(), "::", stringify!($name)
                )));
                for case in 0..config.cases {
                    let case_run = |rng: &mut $crate::TestRng| {
                        $(let $arg = $crate::Strategy::generate(&$strategy, rng);)+
                        let inner = move || {
                            $body
                        };
                        inner();
                    };
                    let _ = case; // case index reserved for failure reporting
                    case_run(&mut rng);
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}
