//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so benches link against this
//! minimal wall-clock harness instead. It implements the API surface the
//! workspace's benches use — `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size, bench_function,
//! finish}`, `Bencher::{iter, iter_batched}`, `BenchmarkId`, `BatchSize` — and
//! reports mean/min wall time per iteration on stdout.
//!
//! No statistical analysis, outlier rejection, or HTML reports: numbers from this
//! harness are for relative comparisons on one machine in one session.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's historical name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost. All variants behave identically here
/// (setup always runs once per measured iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing context handed to the measured closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    fn new(target_samples: usize) -> Self {
        Self {
            samples: Vec::with_capacity(target_samples),
            target_samples,
        }
    }

    /// Measures `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup (not recorded).
        for _ in 0..2 {
            black_box(routine());
        }
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Measures `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..2 {
            black_box(routine(setup()));
        }
        for _ in 0..self.target_samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<48} no samples");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{label:<48} mean {:>12?}  min {:>12?}  ({} samples)",
            mean,
            min,
            self.samples.len()
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Ends the group (printing is per-benchmark, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Starts a [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            20
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(20);
        f(&mut b);
        b.report(&id.id);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}
