//! Shared harness utilities for the per-figure/per-table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper (see
//! `DESIGN.md`'s per-experiment index) and prints it in the same row/series layout
//! the paper uses, so each binary can print paper-vs-measured side by side.
//! Run them in release mode:
//!
//! ```text
//! cargo run --release -p lserve-bench --bin fig10_decode_speed
//! ```

/// Prints a titled ASCII table with right-aligned numeric columns.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row width mismatch in '{title}'");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:>w$}"))
        .collect();
    println!("{}", header_line.join("  "));
    println!("{}", "-".repeat(header_line.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Formats seconds as milliseconds with two decimals.
pub fn ms(seconds: f64) -> String {
    format!("{:.2}", seconds * 1e3)
}

/// Formats seconds as whole seconds with one decimal.
pub fn secs(seconds: f64) -> String {
    format!("{seconds:.1}")
}

/// Formats a ratio like `1.67x`.
pub fn ratio(r: f64) -> String {
    format!("{r:.2}x")
}

/// Formats a 0..1 fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Human-readable context length (`65536` → `"64K"`).
pub fn klen(tokens: usize) -> String {
    if tokens.is_multiple_of(1024) {
        format!("{}K", tokens / 1024)
    } else {
        tokens.to_string()
    }
}

/// The context-length sweep used by most decode figures.
pub fn decode_lengths() -> Vec<usize> {
    vec![
        65_536, 98_304, 131_072, 163_840, 196_608, 229_376, 262_144, 327_680,
    ]
}

/// The deterministic JSON renderer behind the `BENCH_*.json` artifacts CI
/// archives. It lives in `lserve-trace` (the trace exporter shares it);
/// re-exported here so bench binaries keep their import path.
pub use lserve_trace::{validate_json, Json};

/// Geometric mean of positive values.
///
/// # Panics
///
/// Panics if `xs` is empty or contains non-positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive values");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn klen_formats() {
        assert_eq!(klen(65_536), "64K");
        assert_eq!(klen(1000), "1000");
    }

    #[test]
    fn geomean_known() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(0.01234), "12.34");
        assert_eq!(ratio(1.6666), "1.67x");
        assert_eq!(pct(0.5), "50.0%");
    }

    #[test]
    #[should_panic(expected = "geomean of empty")]
    fn geomean_rejects_empty() {
        let _ = geomean(&[]);
    }

    #[test]
    fn json_reexport_renders() {
        // The renderer itself is pinned in lserve-trace; this keeps the bench
        // import path honest.
        let v = Json::obj([("count", Json::from(3u64))]);
        assert_eq!(v.render(), r#"{"count":3}"#);
    }
}
