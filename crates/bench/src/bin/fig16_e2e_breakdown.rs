//! Figure 16: end-to-end decode speedup breakdown — dense FP16 baseline,
//! +streaming heads, +dynamic sparsity, full LServe (quantization included) —
//! normalized throughput (Llama-3-8B, A100).

use lserve_bench::{klen, print_table};
use lserve_costmodel::{decode_step, GpuSpec, SystemModel};
use lserve_model::ModelConfig;
use lserve_quant::KvPrecision;

/// The breakdown starts from the original dense FP16 model on LServe's stack and
/// layers the optimizations on: static sparsity, then dynamic sparsity, then the
/// full system (which adds KV4 quantization).
fn chain() -> Vec<(&'static str, SystemModel)> {
    let fp16 = |mut s: SystemModel| {
        s.kv_precision = KvPrecision::Fp16;
        s.page_size = 16;
        s.logical_page = 16;
        s
    };
    vec![
        (
            "Dense Attention",
            fp16(SystemModel::lserve_dense_baseline()),
        ),
        (
            "+50% Streaming Heads",
            fp16(SystemModel::lserve_static_only()),
        ),
        (
            "+Dynamic (4K budget)",
            fp16(SystemModel::lserve_dynamic_only()),
        ),
        ("LServe", SystemModel::lserve()),
    ]
}

fn main() {
    let gpu = GpuSpec::a100_80g();
    let model = ModelConfig::llama3_8b();
    let lengths = [4_096usize, 8_192, 16_384, 32_768, 65_536, 131_072, 262_144];
    let systems = chain();

    let dense_t: Vec<f64> = lengths
        .iter()
        .map(|&s| decode_step(&gpu, &model, &systems[0].1, s, 1).total())
        .collect();

    let mut rows = Vec::new();
    for (name, sys) in &systems {
        let mut row = vec![name.to_string()];
        for (i, &seq) in lengths.iter().enumerate() {
            let t = decode_step(&gpu, &model, sys, seq, 1).total();
            row.push(format!("{:.2}", dense_t[i] / t)); // speedup over dense
        }
        rows.push(row);
    }
    let mut headers = vec!["System (speedup over dense)".to_string()];
    headers.extend(lengths.iter().map(|&s| klen(s)));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Figure 16: end-to-end decode speedup over the dense FP16 baseline (Llama-3-8B, A100)",
        &headers_ref,
        &rows,
    );
    println!("\nPaper shape: static sparsity contributes a bounded gain dominant at short");
    println!("contexts (up to ~1.7x e2e); dynamic sparsity grows with context (the paper");
    println!("measures up to 4.5x at 256K); combined LServe compounds both. Our dense");
    println!("baseline attention is modeled at full HBM bandwidth, which flatters the");
    println!("baseline, so the absolute speedups here are conservative.");
}
