//! Table 1: the page-size dilemma — QServe per-step decode latency (ms) vs page size
//! {16, 32, 64, 128} and sequence length {512..8192}, Llama-3-8B, batch 32, A100.

use lserve_bench::{print_table, ratio};
use lserve_costmodel::{decode_step, GpuSpec, SystemModel};
use lserve_model::ModelConfig;

fn main() {
    let gpu = GpuSpec::a100_80g();
    let model = ModelConfig::llama3_8b();
    let pages = [16usize, 32, 64, 128];
    let seqs = [512usize, 1024, 2048, 4096, 8192];
    let batch = 32;

    let mut rows = Vec::new();
    let mut per_page_latency_at = vec![Vec::new(); pages.len()];
    let mut per_page_attn_at = vec![Vec::new(); pages.len()];
    for &seq in &seqs {
        let mut row = vec![seq.to_string()];
        for (i, &p) in pages.iter().enumerate() {
            let mut sys = SystemModel::qserve();
            sys.page_size = p;
            let b = decode_step(&gpu, &model, &sys, seq, batch);
            per_page_latency_at[i].push(b.total());
            per_page_attn_at[i].push(b.attention_s());
            row.push(format!("{:.1} ms", b.total() * 1e3));
        }
        rows.push(row);
    }
    // Max slowdown rows relative to page 128 at the same sequence length: end to
    // end, and for the attention kernel alone (the quantity the paper's Table 1
    // isolates — in the paper's measurement attention dominates the delta, while
    // our modeled GEMM + serving intercept damp the end-to-end ratio).
    let mut slow_row = vec!["Max Slowdown (e2e)".to_string()];
    let mut attn_row = vec!["Max Slowdown (attn)".to_string()];
    for i in 0..pages.len() {
        let last = pages.len() - 1;
        let max_ratio = per_page_latency_at[i]
            .iter()
            .zip(&per_page_latency_at[last])
            .map(|(a, b)| a / b)
            .fold(f64::MIN, f64::max);
        slow_row.push(ratio(max_ratio));
        let max_attn = per_page_attn_at[i]
            .iter()
            .zip(&per_page_attn_at[last])
            .map(|(a, b)| a / b)
            .fold(f64::MIN, f64::max);
        attn_row.push(ratio(max_attn));
    }
    rows.push(slow_row);
    rows.push(attn_row);

    print_table(
        "Table 1: QServe decode latency vs page size (Llama-3-8B, batch 32, A100)",
        &["Seq len", "Page 16", "Page 32", "Page 64", "Page 128"],
        &rows,
    );
    println!("\nPaper shape: max slowdown 1.52x / 1.25x / 1.01x / 1.00x — small pages hurt");
    println!("quantized decoding; the penalty saturates by page 64-128.");
}
