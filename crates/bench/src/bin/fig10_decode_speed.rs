//! Figure 10: decoding throughput of LServe vs MInference / DuoAttention / QServe /
//! vLLM, normalized to LServe, on A100 (Llama-3-8B, Llama-2-7B, Minitron-4B) and
//! L40S (Llama-3-8B).

use lserve_bench::{geomean, klen, print_table};
use lserve_costmodel::{decode_throughput, GpuSpec, SystemModel};
use lserve_model::ModelConfig;

fn systems() -> Vec<SystemModel> {
    vec![
        SystemModel::minference(),
        SystemModel::duo_attention(),
        SystemModel::qserve(),
        SystemModel::vllm(),
        SystemModel::lserve(),
    ]
}

fn run(gpu: &GpuSpec, model: &ModelConfig, lengths: &[usize]) {
    let systems = systems();
    let lserve = SystemModel::lserve();
    let mut rows = Vec::new();
    for sys in &systems {
        let mut row = vec![sys.name.to_string()];
        let mut ratios = Vec::new();
        for &seq in lengths {
            let ours = decode_throughput(gpu, model, &lserve, seq);
            let theirs = decode_throughput(gpu, model, sys, seq);
            match (theirs, ours) {
                (Some(t), Some(o)) => {
                    let r = t / o;
                    ratios.push(r);
                    row.push(format!("{r:.2}"));
                }
                _ => row.push("OOM".to_string()),
            }
        }
        row.push(if ratios.is_empty() {
            "-".to_string()
        } else {
            format!("{:.2}", geomean(&ratios))
        });
        rows.push(row);
    }
    let mut headers: Vec<String> = vec!["System".to_string()];
    headers.extend(lengths.iter().map(|&s| klen(s)));
    headers.push("Geomean".to_string());
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        &format!(
            "Figure 10: decode throughput relative to LServe ({}, {})",
            model.name, gpu.name
        ),
        &headers_ref,
        &rows,
    );
}

fn main() {
    let a100 = GpuSpec::a100_80g();
    run(
        &a100,
        &ModelConfig::llama3_8b(),
        &lserve_bench::decode_lengths(),
    );
    run(
        &a100,
        &ModelConfig::llama2_7b(),
        &[
            16_384, 32_768, 65_536, 98_304, 131_072, 163_840, 196_608, 229_376,
        ],
    );
    run(
        &a100,
        &ModelConfig::minitron_4b(),
        &[
            65_536, 98_304, 131_072, 163_840, 196_608, 229_376, 262_144, 524_288,
        ],
    );
    run(
        &GpuSpec::l40s(),
        &ModelConfig::llama3_8b(),
        &[
            32_768, 65_536, 98_304, 131_072, 163_840, 196_608, 229_376, 262_144,
        ],
    );
    println!("\nPaper shape: LServe fastest everywhere (1.00); vLLM ~0.5 on Llama-3-8B;");
    println!("~2x+ gap on MHA Llama-2-7B; MInference lowest (unoptimized decode);");
    println!("FP16 baselines go OOM at the longest contexts.");
}
