//! Ablation: page-geometry design space — physical page size `N_P` × logical page
//! size `N_L` × token budget, reporting both retrieval accuracy (needle recall) and
//! modeled A100 decode-attention cost.
//!
//! This is the design-choice sweep DESIGN.md calls out: it shows *why* LServe lands
//! on NP=64 / NL=16 / budget 4096 — the corner where accuracy matches NL-granular
//! selection while the attention kernel keeps large-page bandwidth efficiency.

use lserve_bench::print_table;
use lserve_costmodel::{bandwidth_efficiency, page_bytes, selector_time};
use lserve_kvcache::PagingConfig;
use lserve_quant::KvPrecision;
use lserve_selector::{HierarchicalSelector, PageSelector};
use lserve_workloads::{NiahCase, NiahConfig};

const SEQ: usize = 65_536;
const DEPTHS: usize = 6;

fn recall(np: usize, nl: usize, budget: usize) -> f64 {
    let mut total = 0.0;
    for di in 0..DEPTHS {
        let depth = di as f64 / (DEPTHS - 1) as f64;
        let case = NiahCase::generate(NiahConfig::standard(SEQ), depth, 0xAB1A + di as u64);
        let (pool, cache) = case.build_cache(PagingConfig::new(np, nl, KvPrecision::Int4));
        let mut sel = HierarchicalSelector::new(true);
        let s = sel.select(&pool, &cache, &[case.query()], budget, 0);
        total += case.recall(&s.pages, np);
    }
    total / DEPTHS as f64
}

fn main() {
    println!("64K-token haystack, INT4 KV, hierarchical selection, A100 cost model");
    let mut rows = Vec::new();
    for &np in &[16usize, 32, 64, 128] {
        for &nl in &[16usize, 32, 64] {
            if nl > np {
                continue;
            }
            for &budget in &[2048usize, 4096] {
                let acc = recall(np, nl, budget);
                // Modeled per-layer decode-attention efficiency at this geometry.
                let eff = bandwidth_efficiency(2.0 * page_bytes(np, 128, KvPrecision::Int4));
                // Selector work per layer (no reuse) at this NL.
                let sel_ms = selector_time(SEQ as f64 / nl as f64, 1.0, 1, 1.0) * 1e3;
                rows.push(vec![
                    format!("{np}"),
                    format!("{nl}"),
                    format!("{budget}"),
                    format!("{acc:.2}"),
                    format!("{:.0}%", eff * 100.0),
                    format!("{sel_ms:.3}"),
                ]);
            }
        }
    }
    print_table(
        "Ablation: page geometry vs accuracy, bandwidth efficiency, selector cost",
        &[
            "NP",
            "NL",
            "Budget",
            "Recall",
            "BW eff",
            "Selector ms/layer",
        ],
        &rows,
    );
    println!("\nReading: NP=16 has the best recall-per-budget but only ~61% bandwidth");
    println!("efficiency (Table 1's dilemma); NP=64/NL=16 keeps NL-granular recall at");
    println!("~86% efficiency with a 4x cheaper selector than NL=16 at NP=16 would need");
    println!("per *page* — the configuration the paper ships.");
}
