//! Figure 13: hierarchical paging preserves retrieval at large physical pages with
//! the same token budget (NP in {16, 32, 64}, NL = 16, budget 3072).

use lserve_bench::{klen, print_table};
use lserve_kvcache::PagingConfig;
use lserve_quant::KvPrecision;
use lserve_selector::{FlatSelector, HierarchicalSelector, PageSelector};
use lserve_workloads::{NiahCase, NiahConfig};

const DEPTHS: usize = 8;
const SEEDS: u64 = 2;
const BUDGET: usize = 3072;

fn accuracy(seq: usize, np: usize, hierarchical: bool) -> f64 {
    let mut total = 0.0;
    let mut n = 0;
    for di in 0..DEPTHS {
        let depth = di as f64 / (DEPTHS - 1) as f64;
        for seed in 0..SEEDS {
            let case = NiahCase::generate(
                NiahConfig::standard(seq),
                depth,
                0xF13_1300 + seed * 977 + di as u64,
            );
            let paging = if hierarchical {
                PagingConfig::new(np, 16, KvPrecision::Fp16)
            } else {
                PagingConfig::flat(np, KvPrecision::Fp16)
            };
            let (pool, cache) = case.build_cache(paging);
            let r = if hierarchical {
                let mut sel = HierarchicalSelector::new(true);
                let s = sel.select(&pool, &cache, &[case.query()], BUDGET, 0);
                case.recall(&s.pages, np)
            } else {
                let mut sel = FlatSelector::new(true);
                let s = sel.select(&pool, &cache, &[case.query()], BUDGET, 0);
                case.recall(&s.pages, np)
            };
            total += r;
            n += 1;
        }
    }
    total / n as f64
}

fn main() {
    let lengths = [8_192usize, 16_384, 32_768, 65_536, 131_072];
    let mut rows = Vec::new();
    for np in [16usize, 32, 64] {
        let mut row = vec![format!("(hier) NP={np}, NL=16")];
        for &seq in &lengths {
            row.push(format!("{:.2}", accuracy(seq, np, true)));
        }
        rows.push(row);
    }
    // Contrast rows: flat selection at the same physical page sizes.
    for np in [32usize, 64] {
        let mut row = vec![format!("(flat) NP={np}")];
        for &seq in &lengths {
            row.push(format!("{:.2}", accuracy(seq, np, false)));
        }
        rows.push(row);
    }
    let mut headers = vec!["Config (budget 3072)".to_string()];
    headers.extend(lengths.iter().map(|&s| klen(s)));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Figure 13: hierarchical paging NIAH recall",
        &headers_ref,
        &rows,
    );
    println!("\nPaper shape: hierarchical NP=32/64 with NL=16 matches NP=16 accuracy at the");
    println!("same budget, while flat selection at NP=32/64 collapses (Figure 6).");
}
