//! Figure 14: page-selector overhead vs sparse-attention time across context
//! lengths, vanilla selection vs the reusable selector (interval 4).
//!
//! View 1 is the calibrated A100 cost model (the paper's milliseconds); view 2
//! measures this repo's actual CPU selector and sparse decode kernel over a decode
//! trace, showing the same crossover: selector cost grows linearly with context
//! while budgeted sparse attention stays constant.

use std::time::Instant;

use lserve_attention::decode_dense_head;
use lserve_bench::{klen, print_table};
use lserve_costmodel::selector_time;
use lserve_kvcache::PagingConfig;
use lserve_quant::KvPrecision;
use lserve_selector::{HierarchicalSelector, PageSelector, ReusableSelector};
use lserve_workloads::{NiahCase, NiahConfig};

fn main() {
    // Cost-model view (per layer, Llama-3-8B defaults: NL=16, budget 4096, page 64).
    let lengths = [8_192usize, 16_384, 32_768, 65_536, 131_072, 262_144];
    let sparse_attn_ms = 0.12; // calibrated: budget-bound attention is constant
    let mut rows = Vec::new();
    for &seq in &lengths {
        let vanilla = selector_time(seq as f64 / 16.0, 1.0, 1, 1.0) * 1e3;
        let reused = selector_time(seq as f64 / 16.0, 1.0, 4, 1.0) * 1e3;
        rows.push(vec![
            klen(seq),
            format!("{vanilla:.3}"),
            format!("{reused:.3}"),
            format!("{sparse_attn_ms:.3}"),
        ]);
    }
    print_table(
        "Figure 14 (cost model, ms/layer): selector vs sparse attention",
        &[
            "Seq",
            "Vanilla selector",
            "Reusable (C=4)",
            "Sparse attention",
        ],
        &rows,
    );

    // CPU view over a real decode trace (single head, FP16 pages).
    let budget = 1024usize;
    let steps = 16usize;
    let mut rows = Vec::new();
    for &seq in &[8_192usize, 16_384, 32_768, 65_536] {
        let case = NiahCase::generate(NiahConfig::standard(seq), 0.5, seq as u64);
        let (pool, cache) = case.build_cache(PagingConfig::new(64, 16, KvPrecision::Fp16));
        let scale = 1.0 / (128f32).sqrt();

        let mut vanilla = ReusableSelector::new(HierarchicalSelector::new(true), 1);
        let t0 = Instant::now();
        for step in 0..steps {
            let _ = vanilla.select(&pool, &cache, &[case.query()], budget, step);
        }
        let vanilla_ms = t0.elapsed().as_secs_f64() * 1e3 / steps as f64;

        let mut reusable = ReusableSelector::new(HierarchicalSelector::new(true), 4);
        let t0 = Instant::now();
        for step in 0..steps {
            let _ = reusable.select(&pool, &cache, &[case.query()], budget, step);
        }
        let reusable_ms = t0.elapsed().as_secs_f64() * 1e3 / steps as f64;

        let sel = ReusableSelector::new(HierarchicalSelector::new(true), 1).select(
            &pool,
            &cache,
            &[case.query()],
            budget,
            0,
        );
        let t0 = Instant::now();
        for _ in 0..steps {
            let _ = decode_dense_head(&pool, &cache, case.query(), scale, Some(&sel.pages));
        }
        let attn_ms = t0.elapsed().as_secs_f64() * 1e3 / steps as f64;

        rows.push(vec![
            klen(seq),
            format!("{vanilla_ms:.3}"),
            format!("{reusable_ms:.3}"),
            format!("{attn_ms:.3}"),
        ]);
    }
    print_table(
        "Figure 14 (CPU, ms/step, one head): selector vs budgeted sparse attention",
        &[
            "Seq",
            "Vanilla selector",
            "Reusable (C=4)",
            "Sparse attention",
        ],
        &rows,
    );
    println!("\nPaper shape: the vanilla selector overtakes sparse attention past ~64K");
    println!("(0.24 ms vs 0.12 ms per layer at 128K); reuse interval 4 cuts selector cost");
    println!("~4x; sparse attention itself is flat in context length.");
}
