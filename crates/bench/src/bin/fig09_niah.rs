//! Figure 9: Needle-in-a-Haystack — dense attention vs LServe's full retrieval
//! policy (hierarchical 64/16 paging, 4096-token budget, reuse interval 4),
//! accuracy over the document-length x needle-depth grid.

use lserve_bench::print_table;
use lserve_kvcache::PagingConfig;
use lserve_quant::KvPrecision;
use lserve_selector::{HierarchicalSelector, PageSelector, ReusableSelector};
use lserve_workloads::{NiahCase, NiahConfig};

fn main() {
    let lengths = [8_192usize, 16_384, 32_768, 65_536, 131_072];
    let depths = [0.0f64, 0.11, 0.22, 0.33, 0.44, 0.56, 0.67, 0.78, 0.89, 1.0];

    let mut rows = Vec::new();
    for &depth in &depths {
        let mut row = vec![format!("{:.0}%", depth * 100.0)];
        for &seq in &lengths {
            let case = NiahCase::generate(
                NiahConfig::standard(seq),
                depth,
                0xF19_0900 ^ (seq as u64) ^ ((depth * 100.0) as u64),
            );
            let (pool, cache) = case.build_cache(PagingConfig::new(64, 16, KvPrecision::Int4));
            let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), 4);
            let s = sel.select(&pool, &cache, &[case.query()], 4096, 0);
            row.push(format!("{:.2}", case.recall(&s.pages, 64)));
        }
        rows.push(row);
    }
    let mut headers = vec!["Depth".to_string()];
    headers.extend(lengths.iter().map(|&s| lserve_bench::klen(s)));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Figure 9(b): LServe NIAH needle recall (INT4 KV, NP=64/NL=16, budget 4096)",
        &headers_ref,
        &rows,
    );
    println!("\nFigure 9(a), dense attention, is 1.00 at every cell by construction.");
    println!("Paper shape: LServe matches the dense baseline across the whole grid.");
}
