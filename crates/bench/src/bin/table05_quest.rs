//! Table 5: LServe vs Quest, prefill latency (s) and decode latency (ms) on
//! Llama-2-7B (Quest supports only MHA), 4K–64K context, A100.

use lserve_bench::{print_table, ratio};
use lserve_costmodel::{decode_step, max_batch, prefill, GpuSpec, SystemModel};
use lserve_model::ModelConfig;

fn main() {
    let gpu = GpuSpec::a100_80g();
    let model = ModelConfig::llama2_7b();
    let lengths = [4_096usize, 8_192, 16_384, 32_768, 65_536];
    let quest = SystemModel::quest();
    let lserve = SystemModel::lserve();

    let mut rows = Vec::new();
    for (label, sys) in [("Quest", &quest), ("LServe", &lserve)] {
        let mut row = vec![label.to_string()];
        for &seq in &lengths {
            if max_batch(&gpu, &model, sys, seq) == 0 {
                row.push("OOM".into());
            } else {
                row.push(format!("{:.2}", prefill(&gpu, &model, sys, seq).total()));
            }
        }
        rows.push(row);
    }
    let mut srow = vec!["Speedup".to_string()];
    for &seq in &lengths {
        if max_batch(&gpu, &model, &quest, seq) == 0 {
            srow.push("/".into());
            continue;
        }
        let q = prefill(&gpu, &model, &quest, seq).total();
        let l = prefill(&gpu, &model, &lserve, seq).total();
        srow.push(ratio(q / l));
    }
    rows.push(srow);
    print_table(
        "Table 5 (prefill, seconds): Quest vs LServe (Llama-2-7B, A100)",
        &["System", "4K", "8K", "16K", "32K", "64K"],
        &rows,
    );

    let mut rows = Vec::new();
    for (label, sys) in [("Quest", &quest), ("LServe", &lserve)] {
        let mut row = vec![label.to_string()];
        for &seq in &lengths {
            if max_batch(&gpu, &model, sys, seq) == 0 {
                row.push("OOM".into());
            } else {
                row.push(format!(
                    "{:.2}",
                    decode_step(&gpu, &model, sys, seq, 1).total() * 1e3
                ));
            }
        }
        rows.push(row);
    }
    let mut srow = vec!["Speedup".to_string()];
    for &seq in &lengths {
        if max_batch(&gpu, &model, &quest, seq) == 0 {
            srow.push("/".into());
            continue;
        }
        let q = decode_step(&gpu, &model, &quest, seq, 1).total();
        let l = decode_step(&gpu, &model, &lserve, seq, 1).total();
        srow.push(ratio(q / l));
    }
    rows.push(srow);
    print_table(
        "Table 5 (decode, ms/step): Quest vs LServe (Llama-2-7B, A100)",
        &["System", "4K", "8K", "16K", "32K", "64K"],
        &rows,
    );
    println!("\nPaper shape: LServe 1.5-2.1x faster prefill, 1.3-1.5x faster decode;");
    println!("Quest decode ~13-15 ms vs LServe ~10 ms; Quest OOMs at 64K (FP16 MHA KV).");
}
