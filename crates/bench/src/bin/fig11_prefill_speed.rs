//! Figure 11: prefill throughput of LServe vs QServe / vLLM / DuoAttention /
//! MInference, normalized to LServe (Llama-3-8B and Llama-2-7B, A100).

use lserve_bench::{geomean, klen, print_table};
use lserve_costmodel::{prefill, GpuSpec, SystemModel};
use lserve_model::ModelConfig;

fn run(model: &ModelConfig, lengths: &[usize]) {
    let gpu = GpuSpec::a100_80g();
    let systems = [
        SystemModel::qserve(),
        SystemModel::vllm(),
        SystemModel::duo_attention(),
        SystemModel::minference(),
        SystemModel::lserve(),
    ];
    let ours: Vec<f64> = lengths
        .iter()
        .map(|&s| prefill(&gpu, model, &SystemModel::lserve(), s).total())
        .collect();
    let mut rows = Vec::new();
    for sys in &systems {
        let mut row = vec![sys.name.to_string()];
        let mut ratios = Vec::new();
        for (i, &seq) in lengths.iter().enumerate() {
            let t = prefill(&gpu, model, sys, seq).total();
            let r = ours[i] / t; // throughput relative to LServe
            ratios.push(r);
            row.push(format!("{r:.2}"));
        }
        row.push(format!("{:.2}", geomean(&ratios)));
        rows.push(row);
    }
    let mut headers: Vec<String> = vec!["System".to_string()];
    headers.extend(lengths.iter().map(|&s| klen(s)));
    headers.push("Geomean".to_string());
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        &format!(
            "Figure 11: prefill throughput relative to LServe ({}, A100)",
            model.name
        ),
        &headers_ref,
        &rows,
    );
}

fn main() {
    run(
        &ModelConfig::llama3_8b(),
        &[65_536, 98_304, 131_072, 196_608, 262_144, 327_680],
    );
    run(
        &ModelConfig::llama2_7b(),
        &[16_384, 32_768, 65_536, 98_304, 131_072, 163_840],
    );
    println!("\nPaper shape: LServe fastest (avg 1.8x over vLLM on Llama-2-7B, up to 2.9x);");
    println!("QServe closest at short contexts (quantized GEMM), falling behind as");
    println!("attention dominates; MInference competitive only at very long contexts.");
}
