//! Figure 2: latency breakdown of LLM prefilling and decoding (attention vs GEMM vs
//! others) for Llama-3-8B on A100 across 8K–128K context.

use lserve_bench::{klen, pct, print_table};
use lserve_costmodel::{decode_step, prefill, GpuSpec, SystemModel};
use lserve_model::ModelConfig;

fn main() {
    let gpu = GpuSpec::a100_80g();
    let model = ModelConfig::llama3_8b();
    // Figure 2 profiles a dense FP16 stack (no sparsity, no quantization).
    let mut dense = SystemModel::vllm();
    dense.int8_gemm = false;
    let lengths = [8_192usize, 16_384, 32_768, 65_536, 131_072];

    let rows: Vec<Vec<String>> = lengths
        .iter()
        .map(|&s| {
            let b = prefill(&gpu, &model, &dense, s);
            vec![
                klen(s),
                pct(b.attention_s / b.total()),
                pct(b.gemm_s / b.total()),
                pct(b.other_s / b.total()),
            ]
        })
        .collect();
    print_table(
        "Figure 2(a): prefill latency breakdown (Llama-3-8B, A100)",
        &["Input", "Attention", "GEMM", "Others"],
        &rows,
    );

    let rows: Vec<Vec<String>> = lengths
        .iter()
        .map(|&s| {
            let b = decode_step(&gpu, &model, &dense, s, 1);
            let total = b.total();
            vec![
                klen(s),
                pct(b.attention_s() / total),
                pct(b.gemm_s / total),
                pct((b.selector_s + b.overhead_s) / total),
            ]
        })
        .collect();
    print_table(
        "Figure 2(b): decode latency breakdown (Llama-3-8B, A100)",
        &["Input", "Attention", "GEMM", "Others"],
        &rows,
    );
    println!("\nPaper shape: attention >= 50% of runtime beyond 64K, ~75% at 128K (prefill).");
}
