//! Table 4: long-generation reasoning proxy — dense vs LServe on a
//! DeepSeek-R1-Distill-Llama-8B stand-in (same GQA geometry, scaled layers).
//!
//! The paper reports accuracy parity on AIME/MATH500. Without trained weights we
//! measure the mechanism behind parity with **teacher-forced agreement**: both
//! engines read the dense model's own 256-token greedy trajectory and we count the
//! steps where the sparse engine's argmax prediction matches the dense one (free
//! of the butterfly-effect compounding that makes free-running token match
//! meaningless on random weights). Note the caveat printed below: random-weight
//! heads are not genuinely local, so streaming-head conversion understates the
//! parity a trained model shows.

use std::sync::Arc;

use lserve_bench::print_table;
use lserve_core::{Engine, EngineConfig};
use lserve_model::{greedy_next_token, ModelConfig, ModelWeights};

const PROMPT_LEN: usize = 48;
const GEN_TOKENS: usize = 256;

fn r1_like() -> ModelConfig {
    // DeepSeek-R1-Distill-Llama-8B shares Llama-3-8B's attention geometry; keep the
    // GQA shape, scale the rest for CPU execution.
    ModelConfig {
        name: "DS-R1-Llama-8B-proxy".into(),
        num_layers: 4,
        hidden: 512,
        num_q_heads: 8,
        num_kv_heads: 2,
        head_dim: 64,
        ffn_hidden: 1024,
        vocab: 512,
        rope_base: 500_000.0,
    }
}

/// Teacher-forced agreement: drive `cfg` along `trajectory` and count argmax
/// matches with the dense model's next tokens.
fn forced_agreement(
    cfg: EngineConfig,
    weights: &Arc<ModelWeights>,
    prompt: &[u32],
    trajectory: &[u32],
) -> f64 {
    let mut pool = cfg.make_pool_for(&weights.config, PROMPT_LEN + GEN_TOKENS + 8);
    let mut engine = Engine::new(Arc::clone(weights), cfg);
    let first = engine.prefill(&mut pool, prompt).expect("pool sized");
    let mut agree = 0usize;
    let mut logits = first.logits;
    for (i, &tok) in trajectory.iter().enumerate() {
        if greedy_next_token(&logits) == tok {
            agree += 1;
        }
        if i + 1 < trajectory.len() {
            logits = engine
                .decode_step(&mut pool, tok)
                .expect("pool sized")
                .logits;
        }
    }
    agree as f64 / trajectory.len() as f64
}

fn main() {
    let weights = Arc::new(ModelWeights::random(&r1_like(), 0x5EED_2024));
    let prompt: Vec<u32> = (0..PROMPT_LEN).map(|i| ((i * 37) % 500) as u32).collect();

    // Dense greedy trajectory = the reference chain of thought.
    let dense_cfg = EngineConfig::dense();
    let mut pool = dense_cfg.make_pool_for(&weights.config, PROMPT_LEN + GEN_TOKENS + 8);
    let mut dense_engine = Engine::new(Arc::clone(&weights), dense_cfg);
    let trajectory = dense_engine
        .generate(&mut pool, &prompt, GEN_TOKENS)
        .expect("pool sized");

    let fid_dense = forced_agreement(EngineConfig::dense(), &weights, &prompt, &trajectory);
    let fid = forced_agreement(EngineConfig::lserve_fp16(), &weights, &prompt, &trajectory);
    let fid_q = forced_agreement(EngineConfig::lserve(), &weights, &prompt, &trajectory);

    // Paper reference: AIME 43.3 / MATH500 84.2 dense; 43.3 / 85.4 LServe.
    let rows = vec![
        vec![
            "AIME@2024".to_string(),
            format!("{:.1}", 43.3 * fid_dense),
            format!("{:.1}", 43.3 * fid),
            format!("{:.1}", 43.3 * fid_q),
        ],
        vec![
            "MATH500".to_string(),
            format!("{:.1}", 84.2 * fid_dense),
            format!("{:.1}", 84.2 * fid),
            format!("{:.1}", 84.2 * fid_q),
        ],
        vec![
            "step agreement".to_string(),
            format!("{fid_dense:.3}"),
            format!("{fid:.3}"),
            format!("{fid_q:.3}"),
        ],
    ];
    print_table(
        &format!("Table 4: reasoning proxy — teacher-forced agreement over {GEN_TOKENS} steps"),
        &["Benchmark", "Dense", "LServe(fp16 KV)", "LServe(int4 KV)"],
        &rows,
    );
    println!("\nPaper shape: parity (43.3 vs 43.3 AIME; 84.2 vs 85.4 MATH500). The context");
    println!("stays below the 4096-token budget, so dynamic sparsity is inactive (§5.5)");
    println!("and the residual disagreement comes from streaming-head conversion and KV");
    println!("quantization. Caveat: random-weight heads are not local, so DuoAttention-");
    println!("style streaming conversion understates the parity trained models exhibit.");
}
