//! Figure 6: the page-size dilemma — NIAH retrieval accuracy of flat (Quest-style)
//! page selection as the page size grows, with and without proportionally larger
//! token budgets.

use lserve_bench::{klen, print_table};
use lserve_kvcache::PagingConfig;
use lserve_quant::KvPrecision;
use lserve_selector::{FlatSelector, PageSelector};
use lserve_workloads::{NiahCase, NiahConfig};

const DEPTHS: usize = 8;
const SEEDS: u64 = 2;

/// Mean needle recall over the depth x seed grid for one (page, budget, length).
fn accuracy(seq: usize, page: usize, budget: usize) -> f64 {
    let mut total = 0.0;
    let mut n = 0;
    for di in 0..DEPTHS {
        let depth = di as f64 / (DEPTHS - 1) as f64;
        for seed in 0..SEEDS {
            let case = NiahCase::generate(
                NiahConfig::standard(seq),
                depth,
                0xF16_0600 + seed * 131 + di as u64,
            );
            let (pool, cache) = case.build_cache(PagingConfig::flat(page, KvPrecision::Fp16));
            let mut sel = FlatSelector::new(true);
            let s = sel.select(&pool, &cache, &[case.query()], budget, 0);
            total += case.recall(&s.pages, page);
            n += 1;
        }
    }
    total / n as f64
}

fn main() {
    let lengths = [8_192usize, 16_384, 32_768, 65_536, 131_072];
    let configs: [(&str, usize, usize); 6] = [
        ("(a) dense", 0, 0),
        ("(b) page 16, budget 4096", 16, 4096),
        ("(c) page 32, budget 4096", 32, 4096),
        ("(d) page 64, budget 4096", 64, 4096),
        ("(e) page 32, budget 8192", 32, 8192),
        ("(f) page 64, budget 16384", 64, 16384),
    ];
    let mut rows = Vec::new();
    for (name, page, budget) in configs {
        let mut row = vec![name.to_string()];
        for &seq in &lengths {
            let acc = if page == 0 {
                1.0 // dense attention trivially retains the needle
            } else {
                accuracy(seq, page, budget)
            };
            row.push(format!("{acc:.2}"));
        }
        rows.push(row);
    }
    let mut headers = vec!["Flat (Quest) config".to_string()];
    headers.extend(lengths.iter().map(|&s| klen(s)));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Figure 6: NIAH accuracy of flat page selection (mean needle recall)",
        &headers_ref,
        &rows,
    );
    println!("\nPaper shape: page 16 retains accuracy; pages 32/64 degrade sharply at long");
    println!("contexts even when the budget is scaled up proportionally (e,f), because");
    println!("per-page min/max statistics homogenize as pages grow.");
}
