//! Table 3: RULER-proxy accuracy of Llama-3-8B across 32K–256K context with
//! dynamic-sparsity budgets 4096 and 8192.

use lserve_bench::{klen, print_table};
use lserve_kvcache::PagingConfig;
use lserve_quant::KvPrecision;
use lserve_selector::{HierarchicalSelector, PageSelector, ReusableSelector};
use lserve_workloads::{MultiNeedleCase, NiahConfig};

const NEEDLES: usize = 4; // multi-hop / multi-key flavor
const TRIALS: u64 = 3;
// Paper dense RULER scores per length (32K..256K).
const PAPER_DENSE: [f64; 6] = [90.5, 86.8, 83.8, 79.3, 79.6, 79.4];

fn fidelity(seq: usize, budget: usize) -> f64 {
    let mut total = 0.0;
    for seed in 0..TRIALS {
        // RULER's needles are explicit marker strings — a sharp retrieval signal —
        // so the proxy uses a stronger spike than the NIAH pressure test.
        let cfg = NiahConfig {
            spike: 3.6,
            ..NiahConfig::standard(seq)
        };
        let case = MultiNeedleCase::generate(cfg, NEEDLES, 0x2D7E03 + seed * 7919 + seq as u64);
        let (pool, cache) = case.build_cache(PagingConfig::new(64, 16, KvPrecision::Int4));
        let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), 4);
        let s = sel.select(&pool, &cache, &[case.query()], budget, 0);
        total += case.accuracy(&s.pages, 64);
    }
    total / TRIALS as f64
}

fn main() {
    let lengths = [32_768usize, 65_536, 131_072, 163_840, 196_608, 262_144];
    let mut rows = Vec::new();
    let mut dense_row = vec!["Dense".to_string()];
    for (i, _) in lengths.iter().enumerate() {
        dense_row.push(format!("{:.1}", PAPER_DENSE[i]));
    }
    rows.push(dense_row);
    for budget in [4096usize, 8192] {
        let mut row = vec![format!("LServe-{budget}")];
        for (i, &seq) in lengths.iter().enumerate() {
            let f = fidelity(seq, budget);
            row.push(format!("{:.1}", PAPER_DENSE[i] * f));
        }
        rows.push(row);
    }
    let mut headers = vec!["Llama-3-8B".to_string()];
    headers.extend(lengths.iter().map(|&s| klen(s)));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Table 3: RULER proxy (paper dense score x measured multi-needle fidelity)",
        &headers_ref,
        &rows,
    );
    println!("\nPaper shape: LServe-4096 within a few points of dense, with a mild gap at");
    println!("192K+; LServe-8192 closes most of that gap (79.1 vs 79.4 at 256K).");
}
