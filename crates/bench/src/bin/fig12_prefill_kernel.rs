//! Figure 12: prefill block-sparse attention kernel latency vs sparsity level,
//! LServe's kernel vs MInference's vs the oracle `dense x (1 - sparsity)`.
//!
//! Two views: (1) the calibrated A100 cost model reproducing the paper's
//! milliseconds, and (2) wall-clock of this repo's actual CPU kernel, showing that
//! the iterator-based design converts block sparsity into real time at the oracle
//! rate.

use std::time::Instant;

use lserve_attention::{prefill_attention, BlockPattern, DensePattern, MaskPattern};
use lserve_bench::print_table;
use lserve_costmodel::{prefill_attention_time, GpuSpec};
use lserve_tensor::SeededGaussian;

/// Builds a mask with approximately the requested causal-tile sparsity.
fn mask_with_sparsity(num_tiles: usize, sparsity: f64, seed: u64) -> MaskPattern {
    let mut m = MaskPattern::new(num_tiles, num_tiles);
    let mut g = SeededGaussian::new(seed);
    for qt in 0..num_tiles {
        m.set(qt, qt); // diagonal mandatory
        for kb in 0..qt {
            if g.uniform() as f64 >= sparsity {
                m.set(qt, kb);
            }
        }
    }
    m
}

fn main() {
    let gpu = GpuSpec::a100_80g();
    // Paper setting: one Llama-3-8B layer at 64K. Dense tiles per layer:
    let seq = 65_536.0f64;
    let tile = 128usize;
    let nb = seq / tile as f64;
    let dense_tiles = nb * (nb + 1.0) / 2.0 * 32.0; // 32 query heads
    let dense_ms = prefill_attention_time(&gpu, dense_tiles, tile, 128, 1.0) * 1e3;

    let mut rows = Vec::new();
    for sp in [0.4f64, 0.5, 0.6, 0.7, 0.8, 0.9] {
        let visited = dense_tiles * (1.0 - sp);
        let lserve = prefill_attention_time(&gpu, visited, tile, 128, 1.0) * 1e3;
        let minference = prefill_attention_time(&gpu, visited, tile, 128, 1.3) * 1e3;
        rows.push(vec![
            format!("{:.0}%", sp * 100.0),
            format!("{minference:.1}"),
            format!("{lserve:.1}"),
            format!("{:.1}", dense_ms * (1.0 - sp)), // oracle
        ]);
    }
    print_table(
        &format!("Figure 12 (cost model, ms): prefill kernel at 64K; dense = {dense_ms:.1} ms"),
        &["Sparsity", "MInference", "LServe", "Oracle"],
        &rows,
    );

    // CPU wall-clock of the real kernel in this repo.
    let n = 1024usize;
    let d = 64usize;
    let b = 64usize;
    let mut g = SeededGaussian::new(42);
    let q = g.matrix(n, d, 1.0);
    let k = g.matrix(n, d, 1.0);
    let v = g.matrix(n, d, 1.0);
    let scale = 1.0 / (d as f32).sqrt();
    let time_of = |pattern: &dyn BlockPattern| -> (f64, f64) {
        let start = Instant::now();
        let (_, stats) = prefill_attention(&q, &k, &v, scale, b, b, pattern);
        (start.elapsed().as_secs_f64() * 1e3, stats.sparsity())
    };
    let (dense_cpu, _) = time_of(&DensePattern);
    let mut rows = Vec::new();
    for target in [0.4f64, 0.6, 0.8] {
        let m = mask_with_sparsity(n / b, target, 7 + (target * 10.0) as u64);
        let (t, actual) = time_of(&m);
        rows.push(vec![
            format!("{:.0}%", actual * 100.0),
            format!("{t:.1}"),
            format!("{:.1}", dense_cpu * (1.0 - actual)),
            format!("{:.2}x", dense_cpu / t),
        ]);
    }
    print_table(
        &format!("Figure 12 (CPU kernel, ms): this repo's kernel; dense = {dense_cpu:.1} ms"),
        &["Sparsity", "Measured", "Oracle", "Speedup"],
        &rows,
    );
    println!("\nPaper shape: LServe's kernel tracks the oracle; MInference's is ~1.3x");
    println!("slower at equal sparsity. The CPU kernel should track its own oracle,");
    println!("demonstrating blockwise skipping converts sparsity to wall-clock time.");
}
