//! Tables 2 and 8: LongBench-proxy accuracy, dense vs LServe, for Llama-3-8B and
//! Llama-2-7B.
//!
//! The measured quantity is retrieval fidelity (mean salient-span recall) of
//! LServe's policy; the printed score is `paper dense score x fidelity`, with the
//! dense column being the paper's dense score itself (fidelity 1.0 by construction).

use lserve_bench::print_table;
use lserve_kvcache::PagingConfig;
use lserve_quant::KvPrecision;
use lserve_selector::{HierarchicalSelector, PageSelector, ReusableSelector};
use lserve_workloads::longbench_tasks;

const TRIALS: usize = 3;
const BUDGET: usize = 4096;

fn main() {
    let tasks = longbench_tasks();
    let mut rows = Vec::new();
    let mut sums = [0.0f64; 4];
    for task in &tasks {
        let mut fidelity = 0.0;
        let cases = task.cases(TRIALS, 0x7AB7E02);
        for case in &cases {
            let (pool, cache) = case.build_cache(PagingConfig::new(64, 16, KvPrecision::Int4));
            let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), 4);
            let s = sel.select(&pool, &cache, &[case.query()], BUDGET, 0);
            fidelity += case.accuracy(&s.pages, 64);
        }
        fidelity /= cases.len() as f64;
        let l3_dense = task.dense_llama3;
        let l3_lserve = task.dense_llama3 * fidelity;
        let l2_dense = task.dense_llama2;
        let l2_lserve = task.dense_llama2 * fidelity;
        sums[0] += l3_dense;
        sums[1] += l3_lserve;
        sums[2] += l2_dense;
        sums[3] += l2_lserve;
        rows.push(vec![
            task.name.to_string(),
            format!("{l3_dense:.1}"),
            format!("{l3_lserve:.1}"),
            format!("{l2_dense:.1}"),
            format!("{l2_lserve:.1}"),
            format!("{fidelity:.3}"),
        ]);
    }
    let n = tasks.len() as f64;
    rows.push(vec![
        "Average".to_string(),
        format!("{:.1}", sums[0] / n),
        format!("{:.1}", sums[1] / n),
        format!("{:.1}", sums[2] / n),
        format!("{:.1}", sums[3] / n),
        String::new(),
    ]);
    print_table(
        "Table 2: LongBench proxy (dense score x measured retrieval fidelity)",
        &[
            "Benchmark",
            "L3 Dense",
            "L3 LServe",
            "L2 Dense",
            "L2 LServe",
            "Fidelity",
        ],
        &rows,
    );
    println!("\nPaper shape: LServe within ~0.5 points of dense on average");
    println!("(38.9 -> 38.6 on Llama-3-8B; 39.5 -> 39.4 on Llama-2-7B).");
}
