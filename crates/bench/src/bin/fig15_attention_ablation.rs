//! Figure 15: single-layer decode attention latency under each sparsity regime —
//! dense baseline, +static only, +dynamic only, full LServe (Llama-2-7B, A100).

use lserve_bench::{klen, print_table};
use lserve_costmodel::{decode_step, GpuSpec, SystemModel};
use lserve_model::ModelConfig;

fn main() {
    let gpu = GpuSpec::a100_80g();
    let model = ModelConfig::llama2_7b();
    let lengths = [4_096usize, 8_192, 16_384, 32_768, 65_536, 131_072, 262_144];
    let systems = [
        ("Baseline Attention", SystemModel::lserve_dense_baseline()),
        ("+Static Only (50%)", SystemModel::lserve_static_only()),
        ("+Dynamic Only (4K)", SystemModel::lserve_dynamic_only()),
        ("LServe Attention", SystemModel::lserve()),
    ];
    let layers = model.num_layers as f64;

    let mut rows = Vec::new();
    for (name, sys) in &systems {
        let mut row = vec![name.to_string()];
        for &seq in &lengths {
            let b = decode_step(&gpu, &model, sys, seq, 1);
            // Per-layer attention time incl. the selector (it is part of the sparse
            // attention path), in microseconds — the unit of Figure 15.
            let us = (b.attention_s() + b.selector_s) / layers * 1e6;
            row.push(format!("{us:.0}"));
        }
        rows.push(row);
    }
    let mut headers = vec!["Series (us/layer)".to_string()];
    headers.extend(lengths.iter().map(|&s| klen(s)));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Figure 15: single-layer decode attention latency (Llama-2-7B, A100)",
        &headers_ref,
        &rows,
    );
    println!("\nPaper shape: baseline grows linearly (87us@4K -> 3492us@256K);");
    println!("static-only tracks ~1.7x below it; dynamic-only and LServe stay flat");
    println!("(~118us / ~82us), a ~30x gain at 256K.");
}
