//! Table 7 (artifact appendix): per-step generation latency of vLLM vs LServe,
//! Llama-3-8B on A100, 64K–320K context, with the paper's reference numbers.

use lserve_bench::{klen, print_table, ratio};
use lserve_costmodel::{decode_step, GpuSpec, SystemModel};
use lserve_model::ModelConfig;

fn main() {
    let gpu = GpuSpec::a100_80g();
    let model = ModelConfig::llama3_8b();
    let vllm = SystemModel::vllm();
    let lserve = SystemModel::lserve();
    let lengths = lserve_bench::decode_lengths();
    // Paper Table 7 reference values (ms): (vLLM, LServe).
    let paper = [
        (12.51, 11.49),
        (14.49, 12.05),
        (16.34, 12.74),
        (18.20, 12.88),
        (21.73, 13.30),
        (21.96, 13.73),
        (23.72, 14.20),
        (27.45, 15.10),
    ];

    let rows: Vec<Vec<String>> = lengths
        .iter()
        .zip(&paper)
        .map(|(&seq, &(pv, pl))| {
            let v = decode_step(&gpu, &model, &vllm, seq, 1).total() * 1e3;
            let l = decode_step(&gpu, &model, &lserve, seq, 1).total() * 1e3;
            vec![
                klen(seq),
                format!("{v:.2}"),
                format!("{l:.2}"),
                ratio(v / l),
                format!("{pv:.2}"),
                format!("{pl:.2}"),
                ratio(pv / pl),
            ]
        })
        .collect();
    print_table(
        "Table 7: generation latency (ms/step), measured model vs paper reference",
        &[
            "Seq",
            "vLLM",
            "LServe",
            "Speedup",
            "vLLM(paper)",
            "LServe(paper)",
            "Speedup(paper)",
        ],
        &rows,
    );
    println!("\nPaper shape: speedup grows monotonically from 1.09x at 64K to 1.82x at 320K.");
}
