//! Table 6: accuracy vs selector reuse interval {1, 2, 4, 8, 16} at 64K context —
//! decode queries whose emphasis rotates continuously across needles; a reused
//! selection under-ranks the rising needle until the next refresh.

use lserve_bench::print_table;
use lserve_kvcache::PagingConfig;
use lserve_quant::KvPrecision;
use lserve_selector::{HierarchicalSelector, PageSelector, ReusableSelector};
use lserve_workloads::{DriftingQueries, MultiNeedleCase, NiahConfig};

const SEQ: usize = 65_536;
const NEEDLES: usize = 4;
const STEPS: usize = 136;
const PERIOD: usize = 34; // steps per emphasis handover, coprime with the intervals
const PAPER_DENSE_64K: f64 = 86.8;

fn run(budget: usize, interval: usize, seed: u64) -> f64 {
    let cfg = NiahConfig {
        spike: 3.2,
        ..NiahConfig::standard(SEQ)
    };
    let case = MultiNeedleCase::generate(cfg, NEEDLES, seed);
    let trace = DriftingQueries::generate(&case, STEPS, PERIOD, 1.2, 0.2, seed ^ 0xABCD);
    let (pool, cache) = case.build_cache(PagingConfig::new(64, 16, KvPrecision::Int4));
    let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), interval);
    let mut total = 0.0;
    for t in 0..STEPS {
        let s = sel.select(&pool, &cache, &[trace.query(t)], budget, t);
        total += trace.weighted_recall(&case, t, &s.pages, 64);
    }
    total / STEPS as f64
}

fn main() {
    let intervals = [1usize, 2, 4, 8, 16];
    let mut rows = Vec::new();
    for budget in [4096usize, 8192] {
        let mut row = vec![format!("LServe-{budget}")];
        row.push(format!("{PAPER_DENSE_64K:.1}")); // dense reference
        for &c in &intervals {
            let f = (run(budget, c, 0x7AB7E06) + run(budget, c, 0x7AB7E07)) / 2.0;
            row.push(format!("{:.1}", PAPER_DENSE_64K * f));
        }
        rows.push(row);
    }
    print_table(
        "Table 6: RULER proxy at 64K vs selector reuse interval",
        &["Config", "Dense", "C=1", "C=2", "C=4", "C=8", "C=16"],
        &rows,
    );
    println!("\nPaper shape: accuracy flat through interval 4 (86.8 dense -> 85.6 at C=4),");
    println!("mild loss at 8, visible loss at 16; LServe defaults to C=4 for the 4x");
    println!("selector-overhead reduction.");
}
