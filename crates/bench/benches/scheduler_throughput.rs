//! Criterion: continuous-batching scheduler throughput under memory pressure.
//!
//! Mixed prompt lengths over a pool deliberately sized below the joint footprint,
//! so the run exercises chunked prefill, batched decode, and at least one
//! preemption/resume cycle — the full control-plane cost, not just the kernels.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lserve_core::{
    sequence_pages_estimate, AdmissionPolicy, EngineConfig, ModelExecutor, Request, Scheduler,
    SchedulerConfig,
};
use lserve_kvcache::PagingConfig;
use lserve_model::{ModelConfig, ModelWeights};
use lserve_quant::KvPrecision;
use std::hint::black_box;

fn mixed_requests() -> Vec<Request> {
    // Short, medium, and long prompts interleaved (the arrival mix that makes
    // head-of-line blocking visible without chunked prefill).
    (0..6u64)
        .map(|i| Request {
            id: i,
            prompt: (0..16 + 14 * i as usize)
                .map(|t| ((t * 3 + i as usize) % 90) as u32)
                .collect(),
            max_new_tokens: 8,
        })
        .collect()
}

fn engine_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::lserve_fp16();
    cfg.paging = PagingConfig::new(8, 4, KvPrecision::Fp16);
    cfg.prefill_tile = 8;
    cfg
}

fn pool_for_one_and_a_half(cfg: &EngineConfig, model: &ModelConfig, max_tokens: usize) -> usize {
    let one = sequence_pages_estimate(cfg, model, max_tokens);
    one + one / 2
}

fn bench_scheduler(c: &mut Criterion) {
    let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 6));
    let cfg = engine_cfg();
    let requests = mixed_requests();
    let max_tokens = requests
        .iter()
        .map(|r| r.prompt.len() + r.max_new_tokens)
        .max()
        .unwrap();
    let pool_pages = pool_for_one_and_a_half(&cfg, &weights.config, max_tokens);
    let exec = Arc::new(ModelExecutor::new(Arc::clone(&weights), cfg));

    let mut group = c.benchmark_group("scheduler_throughput");
    group.sample_size(10);
    for chunk in [8usize, 32] {
        group.bench_function(BenchmarkId::new("mixed_6req_preempting", chunk), |b| {
            b.iter(|| {
                let mut scfg = SchedulerConfig::new(pool_pages);
                scfg.chunk_tokens = chunk;
                scfg.admission = AdmissionPolicy::FirstChunk;
                let mut sched = Scheduler::new(Arc::clone(&exec), scfg);
                for r in &requests {
                    sched.submit(r.clone());
                }
                let report = sched.run_to_completion(1_000_000);
                assert_eq!(report.completed.len(), requests.len());
                assert!(report.preemptions > 0, "pool must force preemption");
                black_box(report)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
