//! Scaling curve of the sharded parallel decode executor at 1/2/4/8 worker
//! threads on a mixed dense/streaming batch.
//!
//! Two families of numbers come out of this bench:
//!
//! * **Measured wall time** per batched decode step at each thread count —
//!   the real scaling curve on this machine (flat on a single-core host:
//!   scoped threads cannot beat physics).
//! * **Modeled speedup** (`cost_total / cost_critical` from the LPT
//!   schedule's sparsity-aware shard costs) — deterministic, machine
//!   independent, and the number the ≥2x-at-4-threads acceptance criterion is
//!   checked against. It is printed after the timing runs.
//!
//! ```text
//! cargo bench -p lserve-bench --bench parallel_decode
//! ```

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use std::sync::Arc;

use lserve_core::{EngineConfig, ModelExecutor, ParallelExecStats, SequenceState};
use lserve_kvcache::PagePool;
use lserve_model::{ModelConfig, ModelWeights};

const BATCH: usize = 6;
const CONTEXT: usize = 256;
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Small model with enough KV heads that a batch shards into meaningfully
/// imbalanced work: 4 KV heads × 6 sequences = 24 shards per layer, half of
/// them streaming (window-bounded) and half dense (context-bound).
fn bench_model() -> ModelConfig {
    ModelConfig {
        name: "parallel-bench".into(),
        num_layers: 2,
        hidden: 256,
        num_q_heads: 8,
        num_kv_heads: 4,
        head_dim: 32,
        ffn_hidden: 512,
        vocab: 211,
        rope_base: 10_000.0,
    }
}

struct Setup {
    exec: Arc<ModelExecutor>,
    pool: PagePool,
    states: Vec<SequenceState>,
    tokens: Vec<u32>,
}

fn setup() -> Setup {
    let cfg = EngineConfig::lserve_fp16();
    let weights = Arc::new(ModelWeights::random(&bench_model(), 29));
    let mut pool = cfg.make_pool_for(&weights.config, 8192);
    let exec = Arc::new(ModelExecutor::new(weights, cfg));
    let mut states = Vec::with_capacity(BATCH);
    let mut tokens = Vec::with_capacity(BATCH);
    for i in 0..BATCH {
        // Ragged contexts: the shard costs differ across sequences too.
        let len = CONTEXT + 32 * i;
        let prompt: Vec<u32> = (0..len).map(|t| ((t * 5 + i * 17) % 200) as u32).collect();
        let mut s = exec.new_sequence();
        let out = exec
            .prefill(&mut s, &mut pool, &prompt)
            .expect("pool sized");
        tokens.push(lserve_model::greedy_next_token(&out.logits));
        states.push(s);
    }
    Setup {
        exec,
        pool,
        states,
        tokens,
    }
}

fn decode_step(
    exec: &ModelExecutor,
    pool: &mut PagePool,
    states: &mut [SequenceState],
    tokens: &[u32],
    threads: usize,
    stats: &mut ParallelExecStats,
) {
    let mut batch: Vec<(&mut SequenceState, u32)> = states
        .iter_mut()
        .zip(tokens.iter())
        .map(|(s, &t)| (s, t))
        .collect();
    let results = exec.decode_batch_threads(pool, &mut batch, threads, stats);
    assert!(
        results.iter().all(Result::is_ok),
        "pool sized for the bench"
    );
}

fn bench_parallel_decode(c: &mut Criterion) {
    let base = setup();
    let mut group = c.benchmark_group("parallel_decode");
    group.sample_size(30);
    for &threads in &THREADS {
        group.bench_function(BenchmarkId::new("decode_step", threads), |b| {
            b.iter_batched(
                || (base.pool.clone(), base.states.clone()),
                |(mut pool, mut states)| {
                    let mut stats = ParallelExecStats::default();
                    decode_step(
                        &base.exec,
                        &mut pool,
                        &mut states,
                        &base.tokens,
                        threads,
                        &mut stats,
                    );
                    stats
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();

    // Deterministic cost-model view of the same schedule: how well the LPT
    // assignment balances the sparsity-skewed shards at each worker count.
    println!("\nmodeled LPT balance on the mixed dense/streaming batch ({BATCH} seqs):");
    let mut speedup_at_4 = 0.0f64;
    for &threads in &THREADS {
        let mut pool = base.pool.clone();
        let mut states = base.states.clone();
        let mut stats = ParallelExecStats::default();
        decode_step(
            &base.exec,
            &mut pool,
            &mut states,
            &base.tokens,
            threads,
            &mut stats,
        );
        if threads == 4 {
            speedup_at_4 = stats.modeled_speedup();
        }
        println!(
            "  {threads} thread(s): {:>3} shards/step, modeled speedup {:.2}x, \
             measured utilization {:>5.1}%, stolen {}",
            stats.shards,
            stats.modeled_speedup(),
            100.0 * stats.utilization(),
            stats.stolen,
        );
    }
    assert!(
        speedup_at_4 >= 2.0,
        "LPT schedule at 4 threads must model >= 2x decode speedup on the \
         mixed batch (got {speedup_at_4:.2}x)"
    );
    println!(
        "\nWall-clock scaling tracks the modeled curve on multi-core hosts; on a\n\
         single-core container the measured times stay flat while the modeled\n\
         speedup (deterministic, cost-based) still validates the schedule."
    );
}

criterion_group!(benches, bench_parallel_decode);
criterion_main!(benches);
