//! Criterion: page-selector cost — flat vs hierarchical vs reusable
//! (CPU analogue of Figure 14's selector curves).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lserve_kvcache::PagingConfig;
use lserve_quant::KvPrecision;
use lserve_selector::{FlatSelector, HierarchicalSelector, PageSelector, ReusableSelector};
use lserve_workloads::{NiahCase, NiahConfig};
use std::hint::black_box;

fn bench_selector(c: &mut Criterion) {
    let mut group = c.benchmark_group("selector");
    group.sample_size(20);
    for &seq in &[8_192usize, 32_768] {
        let case = NiahCase::generate(NiahConfig::standard(seq), 0.5, 3);
        let (pool, cache) = case.build_cache(PagingConfig::new(64, 16, KvPrecision::Fp16));
        let budget = 1024usize;
        group.bench_function(BenchmarkId::new("flat", seq), |b| {
            let mut sel = FlatSelector::new(true);
            b.iter(|| black_box(sel.select(&pool, &cache, &[case.query()], budget, 0)))
        });
        group.bench_function(BenchmarkId::new("hierarchical", seq), |b| {
            let mut sel = HierarchicalSelector::new(true);
            b.iter(|| black_box(sel.select(&pool, &cache, &[case.query()], budget, 0)))
        });
        group.bench_function(BenchmarkId::new("reusable_c4", seq), |b| {
            let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), 4);
            let mut step = 0usize;
            b.iter(|| {
                step += 1;
                black_box(sel.select(&pool, &cache, &[case.query()], budget, step))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selector);
criterion_main!(benches);
