//! Criterion: cross-request prefix cache, cold vs warm shared-prefix batches.
//!
//! The workload is the persona shape from `lserve-workloads`: every prompt is
//! `system ++ persona ++ query`, so almost all prefill work is shareable. The
//! `cold` benchmark runs the batch on a fresh scheduler with the cache disabled;
//! the `warm` benchmark reuses one scheduler whose cache was populated by an
//! identical batch, so every wave after the first prefills only the short query
//! suffixes. The wall-clock gap is the prefix cache's end-to-end win.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use lserve_core::{EngineConfig, ModelExecutor, Request, Scheduler, SchedulerConfig};
use lserve_kvcache::PagingConfig;
use lserve_model::{ModelConfig, ModelWeights};
use lserve_quant::KvPrecision;
use lserve_workloads::{shared_prefix_workload, SharedPrefixConfig};
use std::hint::black_box;

fn engine_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::lserve_fp16();
    cfg.paging = PagingConfig::new(8, 4, KvPrecision::Fp16);
    cfg.prefill_tile = 8;
    cfg
}

fn workload() -> Vec<(usize, Vec<u32>, usize)> {
    let wl = SharedPrefixConfig {
        system_tokens: 64,
        personas: 2,
        persona_tokens: 16,
        queries_per_persona: 2,
        query_tokens: 8,
        max_new_tokens: 6,
        vocab: 90,
        seed: 0xBE7C,
    };
    shared_prefix_workload(&wl)
        .into_iter()
        .map(|s| (s.persona, s.prompt, s.max_new_tokens))
        .collect()
}

fn scheduler(exec: &Arc<ModelExecutor>, prefix_cache: bool) -> Scheduler {
    let mut scfg = SchedulerConfig::new(8192);
    scfg.chunk_tokens = 16;
    scfg.prefix_cache = prefix_cache;
    Scheduler::new(Arc::clone(exec), scfg)
}

fn submit_wave(sched: &mut Scheduler, specs: &[(usize, Vec<u32>, usize)], base_id: u64) {
    for (i, (_, prompt, gen)) in specs.iter().enumerate() {
        sched.submit(Request {
            id: base_id + i as u64,
            prompt: prompt.clone(),
            max_new_tokens: *gen,
        });
    }
}

fn bench_prefix_cache(c: &mut Criterion) {
    let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 17));
    let exec = Arc::new(ModelExecutor::new(weights, engine_cfg()));
    let specs = workload();

    let mut group = c.benchmark_group("prefix_cache_hit");
    group.sample_size(10);

    // Cold: every iteration pays full prefill for every request.
    group.bench_function("cold_shared_prefix_batch", |b| {
        b.iter(|| {
            let mut sched = scheduler(&exec, false);
            submit_wave(&mut sched, &specs, 0);
            let report = sched.run_to_completion(1_000_000);
            assert_eq!(report.completed.len(), specs.len());
            black_box(report)
        })
    });

    // Warm: one scheduler, cache populated once; each measured wave re-sends the
    // same persona prompts (fresh ids) and prefills only the query suffixes.
    // The scheduler's report accumulates across waves, but the shimmed harness
    // runs a fixed 12 waves (2 warmup + 10 samples), so the per-wave report
    // clone stays under ~50 small entries — noise next to the model compute.
    let mut sched = scheduler(&exec, true);
    submit_wave(&mut sched, &specs, 0);
    sched.run_to_completion(1_000_000);
    let mut next_id = 1_000u64;
    let waves_completed = sched.report_snapshot().completed.len();
    group.bench_function("warm_shared_prefix_batch", |b| {
        b.iter(|| {
            submit_wave(&mut sched, &specs, next_id);
            next_id += specs.len() as u64;
            let report = sched.run_to_completion(1_000_000);
            assert!(report.completed.len() > waves_completed);
            black_box(report)
        })
    });
    let stats = sched.prefix_cache_stats();
    assert!(stats.hit_tokens > 0, "warm waves must hit the cache");
    group.finish();
}

criterion_group!(benches, bench_prefix_cache);
criterion_main!(benches);
