//! Criterion: KV quantization throughput — quantize, dequantize, fused dot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lserve_quant::{KvPrecision, QuantizedTensor};
use lserve_tensor::SeededGaussian;
use std::hint::black_box;

fn bench_quant(c: &mut Criterion) {
    let tokens = 64usize;
    let dim = 128usize;
    let mut g = SeededGaussian::new(4);
    let data: Vec<f32> = (0..tokens * dim).map(|_| g.sample()).collect();
    let query: Vec<f32> = (0..dim).map(|_| g.sample()).collect();

    let mut group = c.benchmark_group("quant");
    for precision in [KvPrecision::Int8, KvPrecision::Int4] {
        group.bench_function(
            BenchmarkId::new("quantize_page", precision.to_string()),
            |b| b.iter(|| black_box(QuantizedTensor::quantize(&data, tokens, dim, precision))),
        );
        let t = QuantizedTensor::quantize(&data, tokens, dim, precision);
        group.bench_function(
            BenchmarkId::new("dequantize_page", precision.to_string()),
            |b| b.iter(|| black_box(t.dequantize())),
        );
        group.bench_function(
            BenchmarkId::new("fused_dot_page", precision.to_string()),
            |b| {
                b.iter(|| {
                    let mut acc = 0.0f32;
                    for row in 0..tokens {
                        acc += t.dot_row(row, &query);
                    }
                    black_box(acc)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_quant);
criterion_main!(benches);
