//! Criterion: full engine decode steps — dense vs DuoAttention-like vs LServe
//! (CPU analogue of Figure 16's end-to-end ablation).
//!
//! Each measured iteration decodes one token against a fixed 320-token context
//! (engine + pool cloned per iteration so the context never grows unboundedly).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use lserve_core::{Engine, EngineConfig};
use lserve_model::{ModelConfig, ModelWeights};
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let model = ModelConfig::tiny();
    let weights = Arc::new(ModelWeights::random(&model, 6));
    let prompt: Vec<u32> = (0..64).map(|i| (i % 90) as u32).collect();

    let mut group = c.benchmark_group("engine_decode_step");
    group.sample_size(20);
    for (name, cfg) in [
        ("dense", EngineConfig::dense()),
        ("duo_static", EngineConfig::duo_like()),
        ("lserve", EngineConfig::lserve()),
    ] {
        let mut pool = cfg.make_pool_for(&model, 1024);
        let mut engine = Engine::new(Arc::clone(&weights), cfg);
        engine.prefill(&mut pool, &prompt).unwrap();
        // Grow some decode history so sparsity has something to skip.
        for _ in 0..256 {
            engine.decode_step(&mut pool, 7).unwrap();
        }
        group.bench_function(BenchmarkId::new(name, "320ctx"), |b| {
            b.iter_batched(
                || (engine.clone(), pool.clone()),
                |(mut e, mut p)| black_box(e.decode_step(&mut p, 7).unwrap()),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
