//! Speculative fork/join branching: what a best-of-N panel costs when the
//! candidates CoW-share the conversation versus re-prefilling it, and what
//! speculative tool-call branching pays for its losers.
//!
//! Two scenes come out of this bench:
//!
//! * **Best-of-4 panel** — a 4-candidate `BestScore` panel forked off a live
//!   root request. Every candidate shares the root's pages, so the panel's
//!   total work must stay **under 2x a single solo candidate run** (the
//!   acceptance criterion) instead of the ~4x a re-prefill design would pay
//!   — and the winning candidate's tokens must be bit-identical to a solo
//!   run replaying its full history.
//! * **Speculative tool calls** — a `FirstFinished` race over speculated
//!   tool results: the first continuation to finish cancels the losers,
//!   whose pages (CoW shares included) all return to the pool.
//!
//! Everything is registered on a [`MetricsSnapshot`] and written to
//! `BENCH_pr10.json` at the repository root for CI to validate and archive.
//!
//! ```text
//! cargo bench -p lserve-bench --bench branching
//! ```

use criterion::{criterion_group, criterion_main, Criterion};

use std::sync::Arc;

use lserve_bench::Json;
use lserve_core::{
    BranchSpec, EngineConfig, JoinPolicy, MetricsSnapshot, ModelExecutor, RequestHandle,
    RequestSpec, Scheduler, SchedulerConfig, ServingEvent,
};
use lserve_kvcache::PagingConfig;
use lserve_model::{ModelConfig, ModelWeights};
use lserve_quant::KvPrecision;
use lserve_workloads::{best_of_n, tool_call_branches, AgentScene, AgenticConfig};

/// A conversation long enough that re-prefilling it per candidate would
/// dominate: 192 shared tokens against 8-token suffixes and 12-token
/// generations.
fn scene_cfg() -> AgenticConfig {
    AgenticConfig {
        root_tokens: 192,
        branches: 4,
        suffix_tokens: 8,
        branch_new_tokens: 12,
        vocab: 90,
        seed: 0xA9E7,
    }
}

fn engine_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::lserve_fp16();
    cfg.paging = PagingConfig::new(8, 4, KvPrecision::Fp16);
    cfg.prefill_tile = 8;
    cfg
}

fn scheduler(weights: &Arc<ModelWeights>) -> Scheduler {
    let mut scfg = SchedulerConfig::new(4096);
    // Policy knobs pinned (not from env): the work-token comparison below
    // must not depend on which CI matrix leg runs the bench.
    scfg.chunk_tokens = 8;
    Scheduler::new(
        Arc::new(ModelExecutor::new(Arc::clone(weights), engine_cfg())),
        scfg,
    )
}

/// Steps until request `h` has generated `want` tokens, returning them.
fn run_until_generated(sched: &mut Scheduler, h: &RequestHandle, want: usize) -> Vec<u32> {
    let mut got = Vec::new();
    while got.len() < want {
        sched.step();
        for e in h.drain_events() {
            if let ServingEvent::FirstToken { token } | ServingEvent::Token { token } = e {
                got.push(token);
            }
        }
    }
    got
}

fn to_branch_specs(scene: &AgentScene, first_id: u64) -> Vec<BranchSpec> {
    scene
        .branches
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let mut spec = BranchSpec::new(first_id + i as u64, b.suffix.clone())
                .max_new_tokens(b.max_new_tokens)
                .score_bias(b.score_bias);
            for &t in &b.stop_tokens {
                spec = spec.stop_token(t);
            }
            spec
        })
        .collect()
}

/// The speculative best-of-4 run: fork the panel off a live root, race it
/// under `BestScore`, and return (total work tokens, winner id, winner
/// tokens, the root's full history at the fork point).
fn run_speculative(weights: &Arc<ModelWeights>) -> (u64, u64, Vec<u32>, Vec<u32>) {
    let cfg = scene_cfg();
    let scene = best_of_n(&cfg);
    let mut sched = scheduler(weights);
    let root = sched.submit(RequestSpec::new(1, scene.root_prompt.clone()).max_new_tokens(4));
    let gen_at_fork = run_until_generated(&mut sched, &root, 1);
    let out = sched
        .fork(1, JoinPolicy::BestScore, &to_branch_specs(&scene, 10))
        .expect("fork");
    let report = sched.run_to_completion(1_000_000);
    assert_eq!(
        report.completed.len(),
        1 + cfg.branches,
        "root and every candidate complete"
    );
    let winner = sched
        .join_status(out.group)
        .expect("known group")
        .winner
        .expect("panel resolved with a winner");
    let winner_tokens = report
        .completed
        .iter()
        .find(|(id, _)| *id == winner)
        .expect("winner completed")
        .1
        .clone();
    assert_eq!(sched.pool_in_use(), 0, "panel leaks no pages");
    let mut history = scene.root_prompt.clone();
    history.extend_from_slice(&gen_at_fork);
    let suffix = &scene.branches[(winner - 10) as usize].suffix;
    history.extend_from_slice(suffix);
    (sched.work_tokens(), winner, winner_tokens, history)
}

/// One solo candidate run: the winner's full token history re-prefilled
/// from scratch on a fresh scheduler. Returns (work tokens, output tokens).
fn run_solo(weights: &Arc<ModelWeights>, history: Vec<u32>, max_new: usize) -> (u64, Vec<u32>) {
    let mut sched = scheduler(weights);
    sched.submit(RequestSpec::new(1, history).max_new_tokens(max_new));
    let report = sched.run_to_completion(1_000_000);
    assert_eq!(report.completed.len(), 1);
    (sched.work_tokens(), report.completed[0].1.clone())
}

/// The tool-call race: staggered budgets under `FirstFinished`; returns the
/// run's report for its DAG counters.
fn run_tool_race(weights: &Arc<ModelWeights>) -> (u64, u64, u64) {
    let scene = tool_call_branches(&scene_cfg());
    let mut sched = scheduler(weights);
    let root = sched.submit(RequestSpec::new(1, scene.root_prompt.clone()).max_new_tokens(4));
    run_until_generated(&mut sched, &root, 1);
    let out = sched
        .fork(1, JoinPolicy::FirstFinished, &to_branch_specs(&scene, 10))
        .expect("fork");
    let report = sched.run_to_completion(1_000_000);
    let js = sched.join_status(out.group).expect("known group");
    assert!(js.resolved, "one continuation finished");
    assert!(report.dag.branch_cancels >= 1, "the race has losers");
    assert_eq!(sched.pool_in_use(), 0, "cancelled losers leak no pages");
    (
        js.winner.expect("a winner"),
        report.dag.branch_cancels,
        sched.work_tokens(),
    )
}

fn bench_branching(c: &mut Criterion) {
    let cfg = scene_cfg();
    let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 42));

    // Wall-clock smoke point: the whole speculative panel, fork included.
    c.bench_function("branching/best_of_4_speculative", |b| {
        b.iter(|| run_speculative(&weights))
    });

    // ---- Best-of-4: speculative fork-out vs a single solo candidate. ----
    let (spec_work, winner, winner_tokens, winner_history) = run_speculative(&weights);
    let (solo_work, solo_tokens) = run_solo(&weights, winner_history, cfg.branch_new_tokens);
    let ratio = spec_work as f64 / solo_work as f64;
    let bit_identical = u64::from(winner_tokens == solo_tokens);
    println!(
        "best-of-{}: speculative {} work tokens vs solo {} ({ratio:.2}x); \
         winner {winner} bit-identical: {bit_identical}",
        cfg.branches, spec_work, solo_work
    );
    assert!(
        ratio < 2.0,
        "a CoW-shared best-of-{} panel must cost < 2x one solo run \
         (got {ratio:.2}x: {spec_work} vs {solo_work})",
        cfg.branches
    );
    assert_eq!(
        bit_identical, 1,
        "the winning candidate must replay bit-identically solo"
    );

    // ---- Speculative tool calls: the losers' cost is bounded. ----
    let (tool_winner, cancels, tool_work) = run_tool_race(&weights);
    println!(
        "tool race: branch {tool_winner} won, {cancels} losers cancelled, \
         {tool_work} total work tokens"
    );

    // ---- BENCH_pr10.json for CI. ----
    let mut snap = MetricsSnapshot::new();
    snap.insert(
        "bench",
        Json::from("branching: speculative fork/join best-of-N and tool-call races"),
    )
    .insert(
        "best_of_4",
        Json::obj([
            ("branches", Json::from(cfg.branches as u64)),
            ("shared_tokens", Json::from(cfg.root_tokens as u64)),
            ("speculative_work_tokens", Json::from(spec_work)),
            ("solo_work_tokens", Json::from(solo_work)),
            ("work_ratio_vs_solo", Json::from(ratio)),
            ("winner", Json::from(winner)),
            ("winner_bit_identical", Json::from(bit_identical)),
        ]),
    )
    .insert(
        "tool_calls",
        Json::obj([
            ("winner", Json::from(tool_winner)),
            ("branch_cancels", Json::from(cancels)),
            ("work_tokens", Json::from(tool_work)),
        ]),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr10.json");
    snap.write(path).expect("write BENCH_pr10.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_branching);
criterion_main!(benches);
