//! Multi-device head placement: sparsity-aware vs round-robin, the
//! rebalancer's recovery from a staged pathological placement, and the
//! cluster front door's prefix-affinity routing.
//!
//! Three families of numbers come out of this bench:
//!
//! * **Placement quality** — the same workload served against 4 simulated
//!   devices under sparsity-aware (LPT over the per-head cost signal) and
//!   round-robin placement. Outputs must be bit-identical (placement is an
//!   accounting change); the acceptance criterion is sparsity-aware modeled
//!   device imbalance at least 1.5x lower than round-robin.
//! * **Rebalancer recovery** — a staged >= 2x-imbalance placement (every
//!   heavy head stacked on one device) that the periodic rebalancer must
//!   detect and repair, charging the moved heads' KV across the modeled
//!   interconnect.
//! * **Router affinity** — the shared-prefix cluster workload behind a
//!   2-replica front door, with prefix affinity on vs off: affinity must
//!   keep persona families together and win on prefix-cache hit tokens.
//!
//! Everything is registered on a [`MetricsSnapshot`] and written to
//! `BENCH_pr8.json` at the repository root for CI to validate and archive.
//!
//! ```text
//! cargo bench -p lserve-bench --bench sharding_placement
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use std::sync::Arc;

use lserve_bench::Json;
use lserve_core::streaming_masks_from_gates;
use lserve_core::{
    sequence_pages_estimate, Cluster, ClusterConfig, EngineConfig, MetricsSnapshot, ModelExecutor,
    Placement, PlacementPolicy, RequestSpec, Scheduler, SchedulerConfig, ServingReport,
    ShardingPlan, Topology,
};
use lserve_kvcache::PagingConfig;
use lserve_model::{ModelConfig, ModelWeights};
use lserve_quant::KvPrecision;
use lserve_workloads::{duo_gates, shared_prefix_workload, SharedPrefixConfig};

/// Simulated devices the placement scene shards over.
const DEVICES: usize = 4;

/// A model wide enough in KV heads that head->device placement has room to
/// matter: 8 KV heads over 4 devices, half of them streaming at the paper's
/// 50% sparsity.
fn wide_model() -> ModelConfig {
    ModelConfig {
        name: "wide-kv".into(),
        num_layers: 2,
        hidden: 64,
        num_q_heads: 8,
        num_kv_heads: 8,
        head_dim: 8,
        ffn_hidden: 128,
        vocab: 97,
        rope_base: 10_000.0,
    }
}

/// Searches gate seeds for one whose dense heads pile onto few round-robin
/// residues: head classification is a pure function of `gate_seed` (a seeded
/// shuffle over the `(layer, head)` gate slots), so this scans seeds until
/// some device's round-robin share (`head % DEVICES` across both layers) is
/// all dense. Round-robin then stacks context-proportional heads on one
/// device while the sparsity-aware rebalancer spreads them — the honest
/// adversarial scene for the placement comparison. Deterministic: always
/// returns the first qualifying seed.
fn adversarial_gate_seed() -> u64 {
    let model = wide_model();
    for seed in 0..100_000u64 {
        let gates = duo_gates(model.num_layers, model.num_kv_heads, seed);
        let masks = streaming_masks_from_gates(&gates, 0.5);
        let slots_per_device = model.num_layers * model.num_kv_heads / DEVICES;
        let dense_per_device = (0..DEVICES).map(|d| {
            masks
                .iter()
                .flat_map(|layer| layer.iter().enumerate())
                .filter(|&(h, &streaming)| h % DEVICES == d && !streaming)
                .count()
        });
        if dense_per_device.max().expect("devices > 0") == slots_per_device {
            return seed;
        }
    }
    panic!("no adversarial gate seed in range");
}

fn engine_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::lserve_fp16();
    cfg.paging = PagingConfig::new(8, 4, KvPrecision::Fp16);
    cfg.prefill_tile = 8;
    cfg.gate_seed = adversarial_gate_seed();
    cfg
}

/// Long-context requests of varied lengths: dense heads dominate the cost
/// signal, which is exactly the skew sparsity-aware placement exploits.
fn requests() -> Vec<RequestSpec> {
    (0..6u64)
        .map(|i| {
            RequestSpec::new(
                i,
                (0..160 + 48 * i as usize)
                    .map(|t| ((t * 3 + i as usize * 11) % 90) as u32)
                    .collect(),
            )
            .max_new_tokens(8)
        })
        .collect()
}

fn run_placed(
    weights: &Arc<ModelWeights>,
    devices: usize,
    placement: PlacementPolicy,
) -> ServingReport {
    let cfg = engine_cfg();
    let reqs = requests();
    let per_seq = reqs
        .iter()
        .map(|r| sequence_pages_estimate(&cfg, &weights.config, r.prompt.len() + r.max_new_tokens))
        .max()
        .unwrap();
    let mut scfg = SchedulerConfig::new(per_seq * reqs.len() + 64);
    scfg.chunk_tokens = 8;
    scfg.devices = devices;
    scfg.placement = placement;
    // Aggressive rebalancing for both policies: placement is lazily seeded
    // from the first (near-uniform) decode phase, so the policies only
    // diverge once the rebalancer recomputes from accumulated real load —
    // sparsity-aware LPT spreads the dense heads, round-robin recomputes the
    // same cost-blind assignment and stays stuck.
    scfg.rebalance_interval = 4;
    scfg.rebalance_threshold = 1.05;
    let mut sched = Scheduler::new(Arc::new(ModelExecutor::new(Arc::clone(weights), cfg)), scfg);
    for r in reqs {
        sched.submit(r);
    }
    let report = sched.run_to_completion(1_000_000);
    assert!(report.rejected.is_empty(), "workload must fit the pool");
    report
}

/// Runs the shared-prefix cluster workload behind a 2-replica front door,
/// submitting one query round per wave so earlier rounds seed the prefix
/// caches the router's affinity either exploits (`affinity` > 0) or wastes.
fn run_cluster(weights: &Arc<ModelWeights>, affinity_tokens: usize) -> (ServingReport, Json) {
    let wl = SharedPrefixConfig::cluster();
    let cfg = engine_cfg();
    let per_seq =
        sequence_pages_estimate(&cfg, &weights.config, wl.prompt_len() + wl.max_new_tokens);
    let mut scfg = SchedulerConfig::new(per_seq * wl.total_requests() + 64);
    scfg.chunk_tokens = 8;
    scfg.prefix_cache = true;
    let mut cluster = Cluster::new(
        Arc::new(ModelExecutor::new(Arc::clone(weights), cfg)),
        scfg,
        ClusterConfig {
            replicas: 2,
            affinity_tokens,
        },
    );
    let specs = shared_prefix_workload(&wl);
    let mut id = 0u64;
    let mut report = None;
    for round in specs.chunks(wl.personas) {
        for spec in round {
            cluster.submit(
                RequestSpec::new(id, spec.prompt.clone()).max_new_tokens(spec.max_new_tokens),
            );
            id += 1;
        }
        report = Some(cluster.run_to_completion(100_000));
    }
    let report = report.expect("at least one round");
    assert_eq!(report.completed(), wl.total_requests());
    let stats = cluster.router_stats();
    let section = Json::obj([
        ("affinity_tokens", Json::from(affinity_tokens)),
        ("routed", Json::from(stats.routed)),
        ("affinity_hits", Json::from(stats.affinity_hits)),
        ("least_loaded", Json::from(stats.least_loaded)),
        ("prefix_hit_tokens", Json::from(report.prefix_hit_tokens())),
        ("completed", Json::from(report.completed() as u64)),
    ]);
    let mut flat = ServingReport::default();
    for r in &report.replicas {
        flat.prefix_hit_tokens += r.prefix_hit_tokens;
    }
    (flat, section)
}

fn bench_sharding_placement(c: &mut Criterion) {
    let weights = Arc::new(ModelWeights::random(&wide_model(), 11));

    let mut group = c.benchmark_group("sharding_placement");
    group.sample_size(10);
    for devices in [1usize, DEVICES] {
        group.bench_function(BenchmarkId::new("decode", devices), |b| {
            b.iter(|| run_placed(&weights, devices, PlacementPolicy::SparsityAware))
        });
    }
    group.finish();

    // ---- Sparsity-aware vs round-robin placement at 4 devices. ----
    let sa = run_placed(&weights, DEVICES, PlacementPolicy::SparsityAware);
    let rr = run_placed(&weights, DEVICES, PlacementPolicy::RoundRobin);
    let base = run_placed(&weights, 1, PlacementPolicy::SparsityAware);
    assert_eq!(
        sa.completed, base.completed,
        "4-device outputs diverged from single-device"
    );
    assert_eq!(
        rr.completed, sa.completed,
        "placement policy is an accounting change: outputs must not move"
    );
    let sa_imb = sa.parallel.device_imbalance();
    let rr_imb = rr.parallel.device_imbalance();
    println!(
        "\nplacement at 4 devices: sparsity-aware imbalance {sa_imb:.2}x vs \
         round-robin {rr_imb:.2}x ({:.2}x better); interconnect {} vs {} tokens",
        rr_imb / sa_imb,
        sa.parallel.interconnect_tokens,
        rr.parallel.interconnect_tokens,
    );
    assert!(
        rr_imb >= 1.5 * sa_imb,
        "sparsity-aware placement must model >= 1.5x lower device imbalance \
         (sparsity-aware {sa_imb:.2}x vs round-robin {rr_imb:.2}x)"
    );

    // ---- Rebalancer recovery from a staged >= 2x-imbalance placement. ----
    //
    // 8 KV heads on 2 devices, heavy heads at even indices: round-robin
    // stacks every heavy head on device 0 (imbalance 2.0), and the periodic
    // rebalancer must detect it from the accumulated cost signal, recompute
    // placement, and charge the moved heads' KV across the interconnect.
    let layers = 2;
    let heads = 8;
    let mut plan = ShardingPlan::new(
        Topology::symmetric(2, lserve_costmodel::DEFAULT_GATHER_COST_TOKENS),
        PlacementPolicy::SparsityAware,
        layers,
        heads,
    );
    plan.rebalance_interval = 8;
    let staged = Placement::compute(&vec![0; heads], 2, PlacementPolicy::RoundRobin);
    for l in 0..layers {
        plan.force_assignment(l, staged.clone());
    }
    let signal: Vec<u64> = (0..heads)
        .map(|h| if h % 2 == 0 { 100 } else { 0 })
        .collect();
    let mut outcome = None;
    for _ in 0..plan.rebalance_interval {
        for l in 0..layers {
            plan.layer_assignment(l, &signal);
        }
        if let Some(o) = plan.maybe_rebalance(|_, _| 64) {
            outcome = Some(o);
        }
    }
    let o = outcome.expect("staged imbalance must trigger the rebalancer");
    assert!(
        o.imbalance >= 2.0,
        "staged round-robin placement must model >= 2x imbalance, got {:.2}",
        o.imbalance
    );
    // Feed the same signal against the repaired placement and measure again.
    for _ in 0..plan.rebalance_interval - 1 {
        for l in 0..layers {
            plan.layer_assignment(l, &signal);
        }
        plan.maybe_rebalance(|_, _| 64);
    }
    let recovered = plan.measured_imbalance();
    println!(
        "rebalancer: staged imbalance {:.2}x -> recovered {recovered:.2}x; \
         {} heads moved for {} modeled interconnect tokens",
        o.imbalance, o.heads_migrated, o.cost_tokens,
    );
    assert!(
        recovered * 2.0 <= o.imbalance,
        "rebalancer must at least halve the staged imbalance \
         (staged {:.2}x, recovered {recovered:.2}x)",
        o.imbalance
    );
    assert!(o.cost_tokens >= 1, "migration is never free");

    // ---- Prefix-affinity routing vs pure least-loaded. ----
    let (with_affinity, affinity_section) = run_cluster(
        &weights,
        SharedPrefixConfig::cluster().affinity_prefix_len(),
    );
    let (without_affinity, no_affinity_section) = run_cluster(&weights, 0);
    println!(
        "cluster routing: affinity {} prefix-hit tokens vs least-loaded {}",
        with_affinity.prefix_hit_tokens, without_affinity.prefix_hit_tokens,
    );
    assert!(
        with_affinity.prefix_hit_tokens >= without_affinity.prefix_hit_tokens,
        "affinity routing must not lose prefix reuse (affinity {} vs \
         least-loaded {})",
        with_affinity.prefix_hit_tokens,
        without_affinity.prefix_hit_tokens
    );

    // ---- BENCH_pr8.json for CI. ----
    let mut snap = MetricsSnapshot::new();
    snap.insert(
        "bench",
        Json::from("sharding_placement: multi-device placement, rebalancer, cluster router"),
    )
    .insert(
        "placement_scene",
        Json::obj([
            ("devices", Json::from(DEVICES as u64)),
            ("kv_heads", Json::from(weights.config.num_kv_heads)),
            ("imbalance_sparsity_aware", Json::from(sa_imb)),
            ("imbalance_round_robin", Json::from(rr_imb)),
            ("imbalance_ratio", Json::from(rr_imb / sa_imb)),
            (
                "interconnect_tokens_sparsity_aware",
                Json::from(sa.parallel.interconnect_tokens),
            ),
            (
                "interconnect_tokens_round_robin",
                Json::from(rr.parallel.interconnect_tokens),
            ),
            ("outputs_bit_identical", Json::from(1u64)),
        ]),
    )
    .insert(
        "rebalancer_scene",
        Json::obj([
            ("staged_imbalance", Json::from(o.imbalance)),
            ("recovered_imbalance", Json::from(recovered)),
            ("heads_migrated", Json::from(o.heads_migrated)),
            ("migration_token_units", Json::from(o.token_units)),
            ("migration_cost_tokens", Json::from(o.cost_tokens)),
        ]),
    )
    .insert("router_affinity", affinity_section)
    .insert("router_least_loaded", no_affinity_section)
    .add_report("serving_sparsity_aware", &sa)
    .add_report("serving_round_robin", &rr);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr8.json");
    snap.write(path).expect("write BENCH_pr8.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_sharding_placement);
criterion_main!(benches);
