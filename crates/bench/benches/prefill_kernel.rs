//! Criterion: tiled prefill attention kernel under each block pattern
//! (CPU analogue of Figure 12 — sparsity must convert into wall-clock speedup).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lserve_attention::{prefill_attention, DensePattern, MaskPattern, StreamingPattern};
use lserve_tensor::SeededGaussian;
use std::hint::black_box;

fn bench_prefill(c: &mut Criterion) {
    let n = 512usize;
    let d = 64usize;
    let tile = 64usize;
    let mut g = SeededGaussian::new(1);
    let q = g.matrix(n, d, 1.0);
    let k = g.matrix(n, d, 1.0);
    let v = g.matrix(n, d, 1.0);
    let scale = 1.0 / (d as f32).sqrt();

    let mut group = c.benchmark_group("prefill_kernel");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("dense", n), |b| {
        b.iter(|| {
            black_box(prefill_attention(
                &q,
                &k,
                &v,
                scale,
                tile,
                tile,
                &DensePattern,
            ))
        })
    });
    let streaming = StreamingPattern::new(1, 2);
    group.bench_function(BenchmarkId::new("streaming_1sink_2local", n), |b| {
        b.iter(|| black_box(prefill_attention(&q, &k, &v, scale, tile, tile, &streaming)))
    });
    let mask = MaskPattern::random_causal(n / tile, n / tile, 2, 9);
    group.bench_function(BenchmarkId::new("mask_sparse", n), |b| {
        b.iter(|| black_box(prefill_attention(&q, &k, &v, scale, tile, tile, &mask)))
    });
    group.finish();
}

criterion_group!(benches, bench_prefill);
criterion_main!(benches);
