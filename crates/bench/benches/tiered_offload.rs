//! Tiered KV memory under oversubscription: resident vs swap-based serving,
//! plus the swap-vs-replay resume cost model on a long-context victim.
//!
//! Two families of numbers come out of this bench:
//!
//! * **Measured wall time** of serving the bursty overcommit workload on (a) a
//!   hot tier sized for the whole working set (resident baseline) and (b) a
//!   hot tier sized well below aggregate demand, relieved by swap-based
//!   preemption and selection-driven demotion.
//! * **Modeled resume cost** for a 32k-token swap victim — promoting its
//!   offloaded page set across the host link vs replaying its context through
//!   the forward pass. The ≥5x acceptance criterion is asserted on this
//!   deterministic number after the timing runs.
//! * **Sync vs async migration** on the oversubscribed scene: the copy
//!   engine must cut the modeled migration stall at least 2x while leaving
//!   every output token untouched. The comparison (plus an SLO-mix latency
//!   profile) is registered on a [`MetricsSnapshot`] and written to
//!   `BENCH_pr7.json` at the repository root for CI to validate and archive.
//!
//! ```text
//! cargo bench -p lserve-bench --bench tiered_offload
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use std::sync::Arc;

use lserve_bench::Json;
use lserve_core::{
    sequence_pages_estimate, AdmissionPolicy, EngineConfig, MetricsSnapshot, MigrationMode,
    ModelExecutor, PreemptionPolicy, Request, RequestSpec, Scheduler, SchedulerConfig,
    ServingReport, SloClass,
};
use lserve_kvcache::{
    migration_from_env, LayerKvCache, PagePool, PagingConfig, StreamingWindow,
    HOST_TRANSFER_SPEEDUP,
};
use lserve_model::{ModelConfig, ModelWeights};
use lserve_quant::KvPrecision;
use lserve_workloads::{overcommit_workload, slo_mix_workload, OvercommitConfig, SloMixConfig};

/// Engine policy for the serving comparison: small pages and a small dynamic
/// budget so selection (and therefore selection-driven demotion) is active at
/// toy context lengths.
fn engine_cfg(demote: Option<usize>) -> EngineConfig {
    let mut cfg = EngineConfig::lserve_fp16();
    cfg.paging = PagingConfig::new(8, 4, KvPrecision::Fp16);
    cfg.prefill_tile = 8;
    cfg.dynamic_budget = Some(32);
    cfg.demote_after_chunks = demote;
    cfg
}

fn workload_from(wl: &OvercommitConfig) -> Vec<Request> {
    overcommit_workload(wl)
        .into_iter()
        .enumerate()
        .map(|(i, s)| Request {
            id: i as u64,
            prompt: s.prompt,
            max_new_tokens: s.max_new_tokens,
        })
        .collect()
}

fn workload() -> Vec<Request> {
    workload_from(&OvercommitConfig::small())
}

fn run_serving_wl(
    weights: &Arc<ModelWeights>,
    cfg: EngineConfig,
    pool_pages: usize,
    policy: PreemptionPolicy,
    migration: MigrationMode,
    requests: Vec<Request>,
) -> ServingReport {
    let exec = Arc::new(ModelExecutor::new(Arc::clone(weights), cfg));
    let mut scfg = SchedulerConfig::new(pool_pages);
    scfg.chunk_tokens = 16;
    scfg.admission = AdmissionPolicy::FirstChunk;
    scfg.preemption = policy;
    scfg.migration = migration;
    let mut sched = Scheduler::new(exec, scfg);
    for r in requests {
        sched.submit(r);
    }
    let report = sched.run_to_completion(1_000_000);
    assert!(report.rejected.is_empty(), "workload must fit the tier");
    report
}

fn run_serving(
    weights: &Arc<ModelWeights>,
    cfg: EngineConfig,
    pool_pages: usize,
    policy: PreemptionPolicy,
) -> ServingReport {
    // Timing legs follow `LSERVE_MIGRATION`, so the CI matrix times both
    // engine modes; the deterministic comparison below pins each explicitly.
    run_serving_wl(
        weights,
        cfg,
        pool_pages,
        policy,
        migration_from_env(),
        workload(),
    )
}

fn bench_tiered_offload(c: &mut Criterion) {
    let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 7));
    let wl = OvercommitConfig::small();
    // Hot-tier sizes: "resident" holds every sequence of a burst at once;
    // "oversubscribed" holds roughly a third of that aggregate demand.
    let per_seq = sequence_pages_estimate(
        &engine_cfg(None),
        &weights.config,
        wl.max_prompt_len() + wl.max_new_tokens,
    );
    let resident_pages = per_seq * wl.requests_per_burst * wl.bursts + 64;
    let oversub_pages = (per_seq * wl.requests_per_burst) / 3 + 16;

    let mut group = c.benchmark_group("tiered_offload");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("resident", resident_pages), |b| {
        b.iter(|| {
            run_serving(
                &weights,
                engine_cfg(None),
                resident_pages,
                PreemptionPolicy::Replay,
            )
        })
    });
    group.bench_function(
        BenchmarkId::new("oversubscribed_swap", oversub_pages),
        |b| {
            b.iter(|| {
                run_serving(
                    &weights,
                    engine_cfg(Some(2)),
                    oversub_pages,
                    PreemptionPolicy::Swap,
                )
            })
        },
    );
    group.finish();

    let swap = run_serving(
        &weights,
        engine_cfg(Some(2)),
        oversub_pages,
        PreemptionPolicy::Swap,
    );
    println!("\noversubscribed swap run ({oversub_pages} hot pages vs {resident_pages} resident):");
    println!("{}", swap.summary());

    // ---- The ≥5x swap-vs-replay resume model on a 32k-token victim. ----
    //
    // Victim shape: a 4-layer model with 4 KV heads per layer at 50% streaming
    // sparsity (8 dense + 8 streaming heads), 32-token physical pages — the
    // LServe geometry at half scale. Replaying the victim re-feeds its whole
    // 32k-token context through the forward pass; swap-resume promotes its
    // offloaded page set across the host link instead.
    const VICTIM_TOKENS: usize = 32 * 1024;
    const LAYERS: usize = 4;
    let paging = PagingConfig::new(32, 16, KvPrecision::Fp16);
    let mut pool = PagePool::new(paging, 2 * LAYERS * VICTIM_TOKENS / 32 + 64, 4);
    let layers: Vec<LayerKvCache> = (0..LAYERS)
        .map(|_| {
            let mut l = LayerKvCache::new(
                &[false, true, false, true],
                StreamingWindow::paper_default(),
            );
            let keys = vec![0.25f32; 4 * 4];
            let values = vec![0.5f32; 4 * 4];
            for _ in 0..VICTIM_TOKENS {
                assert!(l.append_token(&mut pool, &keys, &values, 4));
            }
            l
        })
        .collect();
    let mut promote_units = 0u64;
    for l in &layers {
        l.demote_all(&mut pool);
    }
    for l in &layers {
        let (_, units) = l.promote_all(&mut pool).expect("pool sized");
        promote_units += units;
    }
    let swap_resume_tokens = lserve_kvcache::transfer_cost_tokens(promote_units);
    let replay_tokens = VICTIM_TOKENS as u64;
    println!(
        "\n32k-token victim resume: swap promotes {} pages = {} modeled work tokens \
         (host link {}x faster than recompute); replay re-feeds {} tokens — {:.1}x cheaper",
        pool.tier_stats().pages_promoted,
        swap_resume_tokens,
        HOST_TRANSFER_SPEEDUP,
        replay_tokens,
        replay_tokens as f64 / swap_resume_tokens as f64,
    );
    assert!(
        swap_resume_tokens * 5 <= replay_tokens,
        "swap resume ({swap_resume_tokens} tokens) must model >= 5x cheaper than \
         replaying the 32k-token victim ({replay_tokens} tokens)"
    );

    // ---- Sync vs async copy engine on the oversubscribed scene. ----
    //
    // Same tier pressure, longer decode phase (the migration_bench preset):
    // the async engine must cut the modeled migration stall at least 2x while
    // every output token stays bit-identical. Written to `BENCH_pr7.json`
    // alongside an SLO-mix latency profile for CI to archive.
    let wl_mig = OvercommitConfig::migration_bench();
    let per_seq_mig = sequence_pages_estimate(
        &engine_cfg(Some(2)),
        &weights.config,
        wl_mig.max_prompt_len() + wl_mig.max_new_tokens,
    );
    let mig_pages = (per_seq_mig * wl_mig.requests_per_burst) / 3 + 16;
    let run_mig = |mode| {
        run_serving_wl(
            &weights,
            engine_cfg(Some(2)),
            mig_pages,
            PreemptionPolicy::Swap,
            mode,
            workload_from(&wl_mig),
        )
    };
    let sync = run_mig(MigrationMode::Sync);
    let async_ = run_mig(MigrationMode::Async);
    assert_eq!(
        async_.completed, sync.completed,
        "the copy engine is an accounting change: outputs must not move"
    );
    assert!(
        sync.migration_stall_tokens > 0,
        "the oversubscribed scene must generate migration stall to hide"
    );
    assert!(
        async_.migration_stall_tokens * 2 <= sync.migration_stall_tokens,
        "async migration must cut modeled stall >= 2x (sync {} vs async {})",
        sync.migration_stall_tokens,
        async_.migration_stall_tokens
    );
    println!(
        "\nsync vs async migration ({mig_pages} hot pages): stall {} -> {} tokens \
         ({:.1}x), hidden {} tokens (overlap {:.0}%), prefetch {}/{} hit/issued",
        sync.migration_stall_tokens,
        async_.migration_stall_tokens,
        sync.migration_stall_tokens as f64 / (async_.migration_stall_tokens.max(1)) as f64,
        async_.hidden_transfer_tokens,
        100.0 * async_.migration_overlap_ratio(),
        async_.prefetch_hits,
        async_.prefetch_issued,
    );

    // ---- SLO-mix latency profile under the async engine. ----
    let slo_cfg = SloMixConfig::small();
    let slo = run_slo_mix(&weights, &slo_cfg);
    write_bench_json(&wl_mig, mig_pages, &sync, &async_, &slo);
}

/// Serves the SLO-mix workload (interactive bursts behind batch prompts)
/// under swap preemption and the async copy engine, for the per-class
/// latency profile `BENCH_pr7.json` records.
fn run_slo_mix(weights: &Arc<ModelWeights>, cfg: &SloMixConfig) -> ServingReport {
    let ecfg = engine_cfg(Some(2));
    let per_batch = sequence_pages_estimate(
        &ecfg,
        &weights.config,
        cfg.batch_prompt_tokens + cfg.batch_new_tokens,
    );
    // Room for one wave's batch prompts plus change: the interactive burst
    // then competes for slots, which is the regime class-aware SLOs exist for.
    let pool_pages = per_batch * cfg.batch_per_wave + per_batch / 2 + 16;
    let exec = Arc::new(ModelExecutor::new(Arc::clone(weights), ecfg));
    let mut scfg = SchedulerConfig::new(pool_pages);
    scfg.chunk_tokens = 16;
    scfg.admission = AdmissionPolicy::FirstChunk;
    scfg.preemption = PreemptionPolicy::Swap;
    scfg.migration = MigrationMode::Async;
    let mut sched = Scheduler::new(exec, scfg);
    for (i, r) in slo_mix_workload(cfg).into_iter().enumerate() {
        let class = if r.interactive {
            SloClass::Interactive
        } else {
            SloClass::Batch
        };
        sched.submit(
            RequestSpec::new(i as u64, r.spec.prompt)
                .max_new_tokens(r.spec.max_new_tokens)
                .class(class),
        );
    }
    let report = sched.run_to_completion(1_000_000);
    assert!(report.rejected.is_empty(), "SLO mix must fit the tier");
    report
}

/// Writes `BENCH_pr7.json` at the repository root via the consolidated
/// [`MetricsSnapshot`] registry: the sync-vs-async migration comparison on
/// the oversubscribed overcommit scene plus the SLO-mix latency profile, each
/// registered as the full [`ServingReport::to_json`] counter projection. CI
/// validates and archives the file as an artifact.
fn write_bench_json(
    wl: &OvercommitConfig,
    mig_pages: usize,
    sync: &ServingReport,
    async_: &ServingReport,
    slo: &ServingReport,
) {
    let generated: u64 = slo
        .completed
        .iter()
        .map(|(_, tokens)| tokens.len() as u64)
        .sum();
    let mut snap = MetricsSnapshot::new();
    snap.insert(
        "bench",
        Json::from("tiered_offload: unified metrics registry"),
    )
    .insert(
        "overcommit_scene",
        Json::obj([
            ("requests", Json::from(wl.total_requests())),
            ("context_tokens", Json::from(wl.context_tokens)),
            ("max_new_tokens", Json::from(wl.max_new_tokens)),
            ("hot_pages", Json::from(mig_pages)),
            (
                "outputs_bit_identical",
                Json::from(u64::from(async_.completed == sync.completed)),
            ),
        ]),
    )
    .add_report("migration_sync", sync)
    .add_report("migration_async", async_)
    .insert(
        "stall_reduction",
        Json::from(
            sync.migration_stall_tokens as f64 / (async_.migration_stall_tokens.max(1)) as f64,
        ),
    )
    .insert(
        "slo_mix_throughput",
        Json::obj([
            ("generated_tokens", Json::from(generated)),
            (
                "tokens_per_step",
                Json::from(generated as f64 / slo.scheduler_steps.max(1) as f64),
            ),
        ]),
    )
    .add_report("slo_mix", slo);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr7.json");
    snap.write(path).expect("write BENCH_pr7.json");
    println!("\nwrote {path}");
}

criterion_group!(benches, bench_tiered_offload);
criterion_main!(benches);
