//! Tiered KV memory under oversubscription: resident vs swap-based serving,
//! plus the swap-vs-replay resume cost model on a long-context victim.
//!
//! Two families of numbers come out of this bench:
//!
//! * **Measured wall time** of serving the bursty overcommit workload on (a) a
//!   hot tier sized for the whole working set (resident baseline) and (b) a
//!   hot tier sized well below aggregate demand, relieved by swap-based
//!   preemption and selection-driven demotion.
//! * **Modeled resume cost** for a 32k-token swap victim — promoting its
//!   offloaded page set across the host link vs replaying its context through
//!   the forward pass. The ≥5x acceptance criterion is asserted on this
//!   deterministic number after the timing runs.
//! * **Sync vs async migration** on the oversubscribed scene: the copy
//!   engine must cut the modeled migration stall at least 2x while leaving
//!   every output token untouched. The comparison (plus an SLO-mix latency
//!   profile) is registered on a [`MetricsSnapshot`] and written to
//!   `BENCH_pr7.json` at the repository root for CI to validate and archive.
//!
//! ```text
//! cargo bench -p lserve-bench --bench tiered_offload
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use std::sync::Arc;

use lserve_bench::Json;
use lserve_core::{
    sequence_pages_estimate, AdmissionPolicy, EngineConfig, MetricsSnapshot, MigrationMode,
    ModelExecutor, PreemptionPolicy, Request, RequestSpec, Scheduler, SchedulerConfig,
    ServingReport, SloClass,
};
use lserve_kvcache::{
    migration_from_env, LayerKvCache, PagePool, PagingConfig, StreamingWindow,
    HOST_TRANSFER_SPEEDUP,
};
use lserve_model::{ModelConfig, ModelWeights};
use lserve_quant::KvPrecision;
use lserve_workloads::{overcommit_workload, slo_mix_workload, OvercommitConfig, SloMixConfig};

/// Engine policy for the serving comparison: small pages and a small dynamic
/// budget so selection (and therefore selection-driven demotion) is active at
/// toy context lengths.
fn engine_cfg(demote: Option<usize>) -> EngineConfig {
    let mut cfg = EngineConfig::lserve_fp16();
    cfg.paging = PagingConfig::new(8, 4, KvPrecision::Fp16);
    cfg.prefill_tile = 8;
    cfg.dynamic_budget = Some(32);
    cfg.demote_after_chunks = demote;
    cfg
}

fn workload_from(wl: &OvercommitConfig) -> Vec<Request> {
    overcommit_workload(wl)
        .into_iter()
        .enumerate()
        .map(|(i, s)| Request {
            id: i as u64,
            prompt: s.prompt,
            max_new_tokens: s.max_new_tokens,
        })
        .collect()
}

fn workload() -> Vec<Request> {
    workload_from(&OvercommitConfig::small())
}

fn run_serving_wl(
    weights: &Arc<ModelWeights>,
    cfg: EngineConfig,
    pool_pages: usize,
    policy: PreemptionPolicy,
    migration: MigrationMode,
    requests: Vec<Request>,
) -> ServingReport {
    run_serving_tiered(
        weights, cfg, pool_pages, policy, migration, 0, false, requests,
    )
}

/// The fully parameterized serving run: tier knobs included. `host_pages == 0`
/// leaves the host tier unbounded (the historical model); `nvme` switches the
/// modeled third tier on below it.
#[allow(clippy::too_many_arguments)]
fn run_serving_tiered(
    weights: &Arc<ModelWeights>,
    cfg: EngineConfig,
    pool_pages: usize,
    policy: PreemptionPolicy,
    migration: MigrationMode,
    host_pages: usize,
    nvme: bool,
    requests: Vec<Request>,
) -> ServingReport {
    let exec = Arc::new(ModelExecutor::new(Arc::clone(weights), cfg));
    let mut scfg = SchedulerConfig::new(pool_pages);
    scfg.chunk_tokens = 16;
    scfg.admission = AdmissionPolicy::FirstChunk;
    scfg.preemption = policy;
    scfg.migration = migration;
    scfg.host_pages = host_pages;
    scfg.nvme = nvme;
    let mut sched = Scheduler::new(exec, scfg);
    for r in requests {
        sched.submit(r);
    }
    let report = sched.run_to_completion(1_000_000);
    assert!(
        report.rejected.is_empty(),
        "workload must fit the tier (host_pages {host_pages}, nvme {nvme}): {:?}",
        report.rejections
    );
    report
}

fn run_serving(
    weights: &Arc<ModelWeights>,
    cfg: EngineConfig,
    pool_pages: usize,
    policy: PreemptionPolicy,
) -> ServingReport {
    // Timing legs follow `LSERVE_MIGRATION`, so the CI matrix times both
    // engine modes; the deterministic comparison below pins each explicitly.
    run_serving_wl(
        weights,
        cfg,
        pool_pages,
        policy,
        migration_from_env(),
        workload(),
    )
}

fn bench_tiered_offload(c: &mut Criterion) {
    let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 7));
    let wl = OvercommitConfig::small();
    // Hot-tier sizes: "resident" holds every sequence of a burst at once;
    // "oversubscribed" holds roughly a third of that aggregate demand.
    let per_seq = sequence_pages_estimate(
        &engine_cfg(None),
        &weights.config,
        wl.max_prompt_len() + wl.max_new_tokens,
    );
    let resident_pages = per_seq * wl.requests_per_burst * wl.bursts + 64;
    let oversub_pages = (per_seq * wl.requests_per_burst) / 3 + 16;

    let mut group = c.benchmark_group("tiered_offload");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("resident", resident_pages), |b| {
        b.iter(|| {
            run_serving(
                &weights,
                engine_cfg(None),
                resident_pages,
                PreemptionPolicy::Replay,
            )
        })
    });
    group.bench_function(
        BenchmarkId::new("oversubscribed_swap", oversub_pages),
        |b| {
            b.iter(|| {
                run_serving(
                    &weights,
                    engine_cfg(Some(2)),
                    oversub_pages,
                    PreemptionPolicy::Swap,
                )
            })
        },
    );
    group.finish();

    let swap = run_serving(
        &weights,
        engine_cfg(Some(2)),
        oversub_pages,
        PreemptionPolicy::Swap,
    );
    println!("\noversubscribed swap run ({oversub_pages} hot pages vs {resident_pages} resident):");
    println!("{}", swap.summary());

    // ---- The ≥5x swap-vs-replay resume model on a 32k-token victim. ----
    //
    // Victim shape: a 4-layer model with 4 KV heads per layer at 50% streaming
    // sparsity (8 dense + 8 streaming heads), 32-token physical pages — the
    // LServe geometry at half scale. Replaying the victim re-feeds its whole
    // 32k-token context through the forward pass; swap-resume promotes its
    // offloaded page set across the host link instead.
    const VICTIM_TOKENS: usize = 32 * 1024;
    const LAYERS: usize = 4;
    let paging = PagingConfig::new(32, 16, KvPrecision::Fp16);
    let mut pool = PagePool::new(paging, 2 * LAYERS * VICTIM_TOKENS / 32 + 64, 4);
    let layers: Vec<LayerKvCache> = (0..LAYERS)
        .map(|_| {
            let mut l = LayerKvCache::new(
                &[false, true, false, true],
                StreamingWindow::paper_default(),
            );
            let keys = vec![0.25f32; 4 * 4];
            let values = vec![0.5f32; 4 * 4];
            for _ in 0..VICTIM_TOKENS {
                assert!(l.append_token(&mut pool, &keys, &values, 4));
            }
            l
        })
        .collect();
    let mut promote_units = 0u64;
    for l in &layers {
        l.demote_all(&mut pool);
    }
    for l in &layers {
        let (_, units) = l.promote_all(&mut pool).expect("pool sized");
        promote_units += units;
    }
    let swap_resume_tokens = lserve_kvcache::transfer_cost_tokens(promote_units);
    let replay_tokens = VICTIM_TOKENS as u64;
    println!(
        "\n32k-token victim resume: swap promotes {} pages = {} modeled work tokens \
         (host link {}x faster than recompute); replay re-feeds {} tokens — {:.1}x cheaper",
        pool.tier_stats().pages_promoted,
        swap_resume_tokens,
        HOST_TRANSFER_SPEEDUP,
        replay_tokens,
        replay_tokens as f64 / swap_resume_tokens as f64,
    );
    assert!(
        swap_resume_tokens * 5 <= replay_tokens,
        "swap resume ({swap_resume_tokens} tokens) must model >= 5x cheaper than \
         replaying the 32k-token victim ({replay_tokens} tokens)"
    );

    // ---- Sync vs async copy engine on the oversubscribed scene. ----
    //
    // Same tier pressure, longer decode phase (the migration_bench preset):
    // the async engine must cut the modeled migration stall at least 2x while
    // every output token stays bit-identical. Written to `BENCH_pr7.json`
    // alongside an SLO-mix latency profile for CI to archive.
    let wl_mig = OvercommitConfig::migration_bench();
    let per_seq_mig = sequence_pages_estimate(
        &engine_cfg(Some(2)),
        &weights.config,
        wl_mig.max_prompt_len() + wl_mig.max_new_tokens,
    );
    let mig_pages = (per_seq_mig * wl_mig.requests_per_burst) / 3 + 16;
    let run_mig = |mode| {
        run_serving_wl(
            &weights,
            engine_cfg(Some(2)),
            mig_pages,
            PreemptionPolicy::Swap,
            mode,
            workload_from(&wl_mig),
        )
    };
    let sync = run_mig(MigrationMode::Sync);
    let async_ = run_mig(MigrationMode::Async);
    assert_eq!(
        async_.completed, sync.completed,
        "the copy engine is an accounting change: outputs must not move"
    );
    assert!(
        sync.migration_stall_tokens > 0,
        "the oversubscribed scene must generate migration stall to hide"
    );
    assert!(
        async_.migration_stall_tokens * 2 <= sync.migration_stall_tokens,
        "async migration must cut modeled stall >= 2x (sync {} vs async {})",
        sync.migration_stall_tokens,
        async_.migration_stall_tokens
    );
    println!(
        "\nsync vs async migration ({mig_pages} hot pages): stall {} -> {} tokens \
         ({:.1}x), hidden {} tokens (overlap {:.0}%), prefetch {}/{} hit/issued",
        sync.migration_stall_tokens,
        async_.migration_stall_tokens,
        sync.migration_stall_tokens as f64 / (async_.migration_stall_tokens.max(1)) as f64,
        async_.hidden_transfer_tokens,
        100.0 * async_.migration_overlap_ratio(),
        async_.prefetch_hits,
        async_.prefetch_issued,
    );

    // ---- Prefetch efficiency: the selector-recency window + per-head and
    // per-sequence budgets must keep speculative traffic honest. The
    // pre-window engine wasted 2088 of its 2470 issued prefetches on this
    // scene (ratio 0.845); the windowed engine issues 593 and wastes 458
    // (ratio 0.772). The gate asserts the ratio stays below 0.80 without
    // giving back the >= 2x stall reduction asserted above.
    let waste_ratio = async_.prefetch_wasted as f64
        / (async_.prefetch_wasted + async_.prefetch_hits).max(1) as f64;
    println!(
        "prefetch efficiency: {} issued, {} hit, {} wasted (waste ratio {:.3})",
        async_.prefetch_issued, async_.prefetch_hits, async_.prefetch_wasted, waste_ratio,
    );
    assert!(
        waste_ratio < 0.80,
        "prefetch waste ratio {waste_ratio:.3} must stay below 0.80 \
         (pre-window baseline wasted 2088/2470 = 0.845)"
    );

    // ---- The memory hierarchy: bounded host + nvme vs drop-to-replay. ----
    //
    // Three runs of the hierarchy scene (a third burst on the migration
    // geometry) on the same oversubscribed hot tier:
    //   * resident replay: no demotion, victims dropped and re-fed — the
    //     no-hierarchy floor (everything lives in device memory or nowhere);
    //   * swap + unbounded host: the historical two-tier model;
    //   * swap + bounded host + nvme: swap-outs overflow a host tier sized
    //     below one victim into the modeled nvme tier and recall on resume.
    // The acceptance gate: the full hierarchy sustains >= 1.2x the replay
    // baseline's mean running sequences while every output token is
    // bit-identical across all three runs.
    let wl_hier = OvercommitConfig::hierarchy_bench();
    // Size the hot tier off the *resident* (undemoted) footprint — roughly a
    // third of one burst, like the oversubscription demo — so the replay
    // floor can admit a sequence at all while the swap legs fit several
    // demoted footprints in the same pages.
    let per_seq_hier = sequence_pages_estimate(
        &engine_cfg(None),
        &weights.config,
        wl_hier.max_prompt_len() + wl_hier.max_new_tokens,
    );
    let hier_pages = (per_seq_hier * wl_hier.requests_per_burst) / 3 + 16;
    let host_cap = (per_seq_hier / 2).max(1);
    let run_hier = |demote, policy, host_pages, nvme| {
        run_serving_tiered(
            &weights,
            engine_cfg(demote),
            hier_pages,
            policy,
            MigrationMode::Async,
            host_pages,
            nvme,
            workload_from(&wl_hier),
        )
    };
    let replay = run_hier(None, PreemptionPolicy::Replay, 0, false);
    let two_tier = run_hier(Some(2), PreemptionPolicy::Swap, 0, false);
    let hier = run_hier(Some(2), PreemptionPolicy::Swap, host_cap, true);
    // Replay and swap complete requests in different orders; per-request
    // outputs must still match token for token.
    let by_id = |r: &ServingReport| {
        let mut v = r.completed.clone();
        v.sort_by_key(|(id, _)| *id);
        v
    };
    let outputs_bit_identical = by_id(&hier) == by_id(&replay) && by_id(&hier) == by_id(&two_tier);
    assert!(
        outputs_bit_identical,
        "the hierarchy is an accounting change: outputs must not move"
    );
    assert_eq!(
        hier.completed, two_tier.completed,
        "same schedule, same order"
    );
    assert!(
        hier.pages_spilled > 0 && hier.pages_recalled > 0 && hier.peak_nvme_pages > 0,
        "the bounded host ({host_cap} pages) must overflow into nvme and recall"
    );
    let concurrency_gain = hier.mean_running() / replay.mean_running().max(f64::MIN_POSITIVE);
    println!(
        "\nmemory hierarchy ({hier_pages} hot / {host_cap} host / nvme): mean running \
         replay {:.2} -> two-tier {:.2} -> hierarchy {:.2} ({concurrency_gain:.2}x vs replay); \
         {} spilled / {} recalled / peak {} nvme pages",
        replay.mean_running(),
        two_tier.mean_running(),
        hier.mean_running(),
        hier.pages_spilled,
        hier.pages_recalled,
        hier.peak_nvme_pages,
    );
    assert!(
        concurrency_gain >= 1.2,
        "bounded host + nvme must sustain >= 1.2x the drop-to-replay baseline's \
         mean running sequences (replay {:.2} vs hierarchy {:.2})",
        replay.mean_running(),
        hier.mean_running(),
    );

    // ---- SLO-mix latency profile under the async engine. ----
    let slo_cfg = SloMixConfig::small();
    let slo = run_slo_mix(&weights, &slo_cfg);
    write_bench_json(&wl_mig, mig_pages, &sync, &async_, &slo);
    write_hierarchy_json(
        &wl_hier, hier_pages, host_cap, &replay, &two_tier, &hier, &async_,
    );
}

/// Serves the SLO-mix workload (interactive bursts behind batch prompts)
/// under swap preemption and the async copy engine, for the per-class
/// latency profile `BENCH_pr7.json` records.
fn run_slo_mix(weights: &Arc<ModelWeights>, cfg: &SloMixConfig) -> ServingReport {
    let ecfg = engine_cfg(Some(2));
    let per_batch = sequence_pages_estimate(
        &ecfg,
        &weights.config,
        cfg.batch_prompt_tokens + cfg.batch_new_tokens,
    );
    // Room for one wave's batch prompts plus change: the interactive burst
    // then competes for slots, which is the regime class-aware SLOs exist for.
    let pool_pages = per_batch * cfg.batch_per_wave + per_batch / 2 + 16;
    let exec = Arc::new(ModelExecutor::new(Arc::clone(weights), ecfg));
    let mut scfg = SchedulerConfig::new(pool_pages);
    scfg.chunk_tokens = 16;
    scfg.admission = AdmissionPolicy::FirstChunk;
    scfg.preemption = PreemptionPolicy::Swap;
    scfg.migration = MigrationMode::Async;
    let mut sched = Scheduler::new(exec, scfg);
    for (i, r) in slo_mix_workload(cfg).into_iter().enumerate() {
        let class = if r.interactive {
            SloClass::Interactive
        } else {
            SloClass::Batch
        };
        sched.submit(
            RequestSpec::new(i as u64, r.spec.prompt)
                .max_new_tokens(r.spec.max_new_tokens)
                .class(class),
        );
    }
    let report = sched.run_to_completion(1_000_000);
    assert!(report.rejected.is_empty(), "SLO mix must fit the tier");
    report
}

/// Writes `BENCH_pr7.json` at the repository root via the consolidated
/// [`MetricsSnapshot`] registry: the sync-vs-async migration comparison on
/// the oversubscribed overcommit scene plus the SLO-mix latency profile, each
/// registered as the full [`ServingReport::to_json`] counter projection. CI
/// validates and archives the file as an artifact.
fn write_bench_json(
    wl: &OvercommitConfig,
    mig_pages: usize,
    sync: &ServingReport,
    async_: &ServingReport,
    slo: &ServingReport,
) {
    let generated: u64 = slo
        .completed
        .iter()
        .map(|(_, tokens)| tokens.len() as u64)
        .sum();
    let mut snap = MetricsSnapshot::new();
    snap.insert(
        "bench",
        Json::from("tiered_offload: unified metrics registry"),
    )
    .insert(
        "overcommit_scene",
        Json::obj([
            ("requests", Json::from(wl.total_requests())),
            ("context_tokens", Json::from(wl.context_tokens)),
            ("max_new_tokens", Json::from(wl.max_new_tokens)),
            ("hot_pages", Json::from(mig_pages)),
            (
                "outputs_bit_identical",
                Json::from(u64::from(async_.completed == sync.completed)),
            ),
        ]),
    )
    .add_report("migration_sync", sync)
    .add_report("migration_async", async_)
    .insert(
        "stall_reduction",
        Json::from(
            sync.migration_stall_tokens as f64 / (async_.migration_stall_tokens.max(1)) as f64,
        ),
    )
    .insert(
        "slo_mix_throughput",
        Json::obj([
            ("generated_tokens", Json::from(generated)),
            (
                "tokens_per_step",
                Json::from(generated as f64 / slo.scheduler_steps.max(1) as f64),
            ),
        ]),
    )
    .add_report("slo_mix", slo);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr7.json");
    snap.write(path).expect("write BENCH_pr7.json");
    println!("\nwrote {path}");
}

/// Writes `BENCH_pr9.json` at the repository root: the memory-hierarchy
/// comparison (drop-to-replay floor vs unbounded two-tier vs bounded host +
/// modeled nvme) with per-tier residency/transfer counters via the full
/// [`ServingReport::to_json`] projection of each leg, the sustained-
/// concurrency gate, and the prefetch-efficiency profile of the async
/// migration run. CI validates the gates with `jq` and archives the file.
#[allow(clippy::too_many_arguments)]
fn write_hierarchy_json(
    wl: &OvercommitConfig,
    hier_pages: usize,
    host_cap: usize,
    replay: &ServingReport,
    two_tier: &ServingReport,
    hier: &ServingReport,
    prefetch: &ServingReport,
) {
    let waste_ratio = prefetch.prefetch_wasted as f64
        / (prefetch.prefetch_wasted + prefetch.prefetch_hits).max(1) as f64;
    let mut snap = MetricsSnapshot::new();
    snap.insert(
        "bench",
        Json::from("tiered_offload: memory hierarchy (bounded host + modeled nvme)"),
    )
    .insert(
        "hierarchy_scene",
        Json::obj([
            ("requests", Json::from(wl.total_requests())),
            ("hot_pages", Json::from(hier_pages)),
            ("host_pages", Json::from(host_cap)),
            ("nvme", Json::from(1u64)),
            ("outputs_bit_identical", Json::from(1u64)),
            ("mean_running_replay", Json::from(replay.mean_running())),
            ("mean_running_two_tier", Json::from(two_tier.mean_running())),
            ("mean_running_hierarchy", Json::from(hier.mean_running())),
            (
                "concurrency_gain",
                Json::from(hier.mean_running() / replay.mean_running().max(f64::MIN_POSITIVE)),
            ),
            ("pages_spilled", Json::from(hier.pages_spilled)),
            ("pages_recalled", Json::from(hier.pages_recalled)),
            ("peak_nvme_pages", Json::from(hier.peak_nvme_pages)),
        ]),
    )
    .insert(
        "prefetch_efficiency",
        Json::obj([
            ("issued", Json::from(prefetch.prefetch_issued)),
            ("hits", Json::from(prefetch.prefetch_hits)),
            ("wasted", Json::from(prefetch.prefetch_wasted)),
            ("waste_ratio", Json::from(waste_ratio)),
        ]),
    )
    .add_report("hierarchy_replay", replay)
    .add_report("hierarchy_two_tier", two_tier)
    .add_report("hierarchy_bounded_nvme", hier);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr9.json");
    snap.write(path).expect("write BENCH_pr9.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_tiered_offload);
criterion_main!(benches);
