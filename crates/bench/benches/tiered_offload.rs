//! Tiered KV memory under oversubscription: resident vs swap-based serving,
//! plus the swap-vs-replay resume cost model on a long-context victim.
//!
//! Two families of numbers come out of this bench:
//!
//! * **Measured wall time** of serving the bursty overcommit workload on (a) a
//!   hot tier sized for the whole working set (resident baseline) and (b) a
//!   hot tier sized well below aggregate demand, relieved by swap-based
//!   preemption and selection-driven demotion.
//! * **Modeled resume cost** for a 32k-token swap victim — promoting its
//!   offloaded page set across the host link vs replaying its context through
//!   the forward pass. The ≥5x acceptance criterion is asserted on this
//!   deterministic number after the timing runs.
//!
//! ```text
//! cargo bench -p lserve-bench --bench tiered_offload
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use std::sync::Arc;

use lserve_core::{
    sequence_pages_estimate, AdmissionPolicy, EngineConfig, ModelExecutor, PreemptionPolicy,
    Request, Scheduler, SchedulerConfig,
};
use lserve_kvcache::{
    LayerKvCache, PagePool, PagingConfig, StreamingWindow, HOST_TRANSFER_SPEEDUP,
};
use lserve_model::{ModelConfig, ModelWeights};
use lserve_quant::KvPrecision;
use lserve_workloads::{overcommit_workload, OvercommitConfig};

/// Engine policy for the serving comparison: small pages and a small dynamic
/// budget so selection (and therefore selection-driven demotion) is active at
/// toy context lengths.
fn engine_cfg(demote: Option<usize>) -> EngineConfig {
    let mut cfg = EngineConfig::lserve_fp16();
    cfg.paging = PagingConfig::new(8, 4, KvPrecision::Fp16);
    cfg.prefill_tile = 8;
    cfg.dynamic_budget = Some(32);
    cfg.demote_after_chunks = demote;
    cfg
}

fn workload() -> Vec<Request> {
    overcommit_workload(&OvercommitConfig::small())
        .into_iter()
        .enumerate()
        .map(|(i, s)| Request {
            id: i as u64,
            prompt: s.prompt,
            max_new_tokens: s.max_new_tokens,
        })
        .collect()
}

fn run_serving(
    weights: &Arc<ModelWeights>,
    cfg: EngineConfig,
    pool_pages: usize,
    policy: PreemptionPolicy,
) -> lserve_core::ServingReport {
    let exec = Arc::new(ModelExecutor::new(Arc::clone(weights), cfg));
    let mut scfg = SchedulerConfig::new(pool_pages);
    scfg.chunk_tokens = 16;
    scfg.admission = AdmissionPolicy::FirstChunk;
    scfg.preemption = policy;
    let mut sched = Scheduler::new(exec, scfg);
    for r in workload() {
        sched.submit(r);
    }
    let report = sched.run_to_completion(1_000_000);
    assert!(report.rejected.is_empty(), "workload must fit the tier");
    report
}

fn bench_tiered_offload(c: &mut Criterion) {
    let weights = Arc::new(ModelWeights::random(&ModelConfig::tiny(), 7));
    let wl = OvercommitConfig::small();
    // Hot-tier sizes: "resident" holds every sequence of a burst at once;
    // "oversubscribed" holds roughly a third of that aggregate demand.
    let per_seq = sequence_pages_estimate(
        &engine_cfg(None),
        &weights.config,
        wl.max_prompt_len() + wl.max_new_tokens,
    );
    let resident_pages = per_seq * wl.requests_per_burst * wl.bursts + 64;
    let oversub_pages = (per_seq * wl.requests_per_burst) / 3 + 16;

    let mut group = c.benchmark_group("tiered_offload");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("resident", resident_pages), |b| {
        b.iter(|| {
            run_serving(
                &weights,
                engine_cfg(None),
                resident_pages,
                PreemptionPolicy::Replay,
            )
        })
    });
    group.bench_function(
        BenchmarkId::new("oversubscribed_swap", oversub_pages),
        |b| {
            b.iter(|| {
                run_serving(
                    &weights,
                    engine_cfg(Some(2)),
                    oversub_pages,
                    PreemptionPolicy::Swap,
                )
            })
        },
    );
    group.finish();

    let swap = run_serving(
        &weights,
        engine_cfg(Some(2)),
        oversub_pages,
        PreemptionPolicy::Swap,
    );
    println!(
        "\noversubscribed swap run ({oversub_pages} hot pages vs {resident_pages} resident): \
         completed {}, peak running {}, preemptions {}, pages demoted/promoted {}/{}, \
         peak cold {}, swap-resume work {} tokens",
        swap.completed.len(),
        swap.peak_running,
        swap.preemptions,
        swap.pages_demoted,
        swap.pages_promoted,
        swap.peak_cold_pages,
        swap.swap_resume_work_tokens,
    );

    // ---- The ≥5x swap-vs-replay resume model on a 32k-token victim. ----
    //
    // Victim shape: a 4-layer model with 4 KV heads per layer at 50% streaming
    // sparsity (8 dense + 8 streaming heads), 32-token physical pages — the
    // LServe geometry at half scale. Replaying the victim re-feeds its whole
    // 32k-token context through the forward pass; swap-resume promotes its
    // offloaded page set across the host link instead.
    const VICTIM_TOKENS: usize = 32 * 1024;
    const LAYERS: usize = 4;
    let paging = PagingConfig::new(32, 16, KvPrecision::Fp16);
    let mut pool = PagePool::new(paging, 2 * LAYERS * VICTIM_TOKENS / 32 + 64, 4);
    let layers: Vec<LayerKvCache> = (0..LAYERS)
        .map(|_| {
            let mut l = LayerKvCache::new(
                &[false, true, false, true],
                StreamingWindow::paper_default(),
            );
            let keys = vec![0.25f32; 4 * 4];
            let values = vec![0.5f32; 4 * 4];
            for _ in 0..VICTIM_TOKENS {
                assert!(l.append_token(&mut pool, &keys, &values, 4));
            }
            l
        })
        .collect();
    let mut promote_units = 0u64;
    for l in &layers {
        l.demote_all(&mut pool);
    }
    for l in &layers {
        let (_, units) = l.promote_all(&mut pool).expect("pool sized");
        promote_units += units;
    }
    let swap_resume_tokens = lserve_kvcache::transfer_cost_tokens(promote_units);
    let replay_tokens = VICTIM_TOKENS as u64;
    println!(
        "\n32k-token victim resume: swap promotes {} pages = {} modeled work tokens \
         (host link {}x faster than recompute); replay re-feeds {} tokens — {:.1}x cheaper",
        pool.tier_stats().pages_promoted,
        swap_resume_tokens,
        HOST_TRANSFER_SPEEDUP,
        replay_tokens,
        replay_tokens as f64 / swap_resume_tokens as f64,
    );
    assert!(
        swap_resume_tokens * 5 <= replay_tokens,
        "swap resume ({swap_resume_tokens} tokens) must model >= 5x cheaper than \
         replaying the 32k-token victim ({replay_tokens} tokens)"
    );
}

criterion_group!(benches, bench_tiered_offload);
criterion_main!(benches);
