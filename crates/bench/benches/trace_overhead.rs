//! Tracing overhead guard: the preempting scheduler scene from
//! `scheduler_throughput`, run back-to-back with the tracer disabled and with
//! the bounded ring sink recording every span. The traced leg must stay
//! within 5% of the untraced wall time (min-of-N, interleaved so the two legs
//! see the same thermal/cache conditions), and outputs must be bit-identical
//! either way — tracing is observation, never behavior.
//!
//! Plain `main` (no Criterion): the comparison is a hard assertion, not a
//! statistics report, and CI runs it as its own bench leg.
//!
//! ```text
//! cargo bench -p lserve-bench --bench trace_overhead
//! ```

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lserve_core::{
    sequence_pages_estimate, AdmissionPolicy, EngineConfig, ModelExecutor, Request, Scheduler,
    SchedulerConfig, ServingReport,
};
use lserve_kvcache::PagingConfig;
use lserve_model::{ModelConfig, ModelWeights};
use lserve_quant::KvPrecision;
use lserve_trace::{Tracer, DEFAULT_RING_CAPACITY};

/// Interleaved timing rounds per leg; the minimum is the noise-resistant
/// estimate of each leg's true cost.
const ROUNDS: usize = 9;

/// A step up from `ModelConfig::tiny()`: trace events are emitted per step,
/// layer, and shard — not per FLOP — so the overhead ratio is only meaningful
/// once each layer does non-trivial arithmetic, as any real model does.
fn bench_model() -> ModelConfig {
    ModelConfig {
        name: "trace-overhead-small".into(),
        num_layers: 4,
        hidden: 128,
        num_q_heads: 8,
        num_kv_heads: 4,
        head_dim: 16,
        ffn_hidden: 256,
        vocab: 97,
        rope_base: 10_000.0,
    }
}

fn mixed_requests() -> Vec<Request> {
    (0..6u64)
        .map(|i| Request {
            id: i,
            prompt: (0..32 + 20 * i as usize)
                .map(|t| ((t * 3 + i as usize) % 90) as u32)
                .collect(),
            max_new_tokens: 8,
        })
        .collect()
}

fn engine_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::lserve_fp16();
    cfg.paging = PagingConfig::new(8, 4, KvPrecision::Fp16);
    cfg.prefill_tile = 8;
    cfg
}

fn run_once(
    exec: &Arc<ModelExecutor>,
    requests: &[Request],
    pool_pages: usize,
    tracer: Tracer,
) -> ServingReport {
    let mut scfg = SchedulerConfig::new(pool_pages);
    scfg.chunk_tokens = 16;
    scfg.admission = AdmissionPolicy::FirstChunk;
    scfg.tracer = tracer;
    let mut sched = Scheduler::new(Arc::clone(exec), scfg);
    for r in requests {
        sched.submit(r.clone());
    }
    let report = sched.run_to_completion(1_000_000);
    assert_eq!(report.completed.len(), requests.len());
    assert!(report.preemptions > 0, "pool must force preemption");
    report
}

fn main() {
    let weights = Arc::new(ModelWeights::random(&bench_model(), 6));
    let cfg = engine_cfg();
    let requests = mixed_requests();
    let max_tokens = requests
        .iter()
        .map(|r| r.prompt.len() + r.max_new_tokens)
        .max()
        .unwrap();
    let one = sequence_pages_estimate(&cfg, &weights.config, max_tokens);
    let pool_pages = one + one / 2;
    let exec = Arc::new(ModelExecutor::new(Arc::clone(&weights), cfg));

    // Tracing must never move outputs (the proptest suite pins this across the
    // policy matrix; re-checked here on the timed scene).
    let untraced_out = run_once(&exec, &requests, pool_pages, Tracer::disabled()).completed;
    let traced_tracer = Tracer::ring(DEFAULT_RING_CAPACITY);
    let traced_out = run_once(&exec, &requests, pool_pages, traced_tracer.clone()).completed;
    assert_eq!(untraced_out, traced_out, "tracing must not change outputs");
    let (events, dropped) = traced_tracer.drain();
    assert!(!events.is_empty(), "ring sink must have recorded spans");
    assert!(
        events.len() <= DEFAULT_RING_CAPACITY,
        "ring sink must bound retention"
    );

    // Warmup, then interleave the legs and keep the minimum of each.
    for _ in 0..2 {
        black_box(run_once(&exec, &requests, pool_pages, Tracer::disabled()));
    }
    let mut min_off = Duration::MAX;
    let mut min_ring = Duration::MAX;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        black_box(run_once(&exec, &requests, pool_pages, Tracer::disabled()));
        min_off = min_off.min(t.elapsed());

        let tracer = Tracer::ring(DEFAULT_RING_CAPACITY);
        let t = Instant::now();
        black_box(run_once(&exec, &requests, pool_pages, tracer.clone()));
        min_ring = min_ring.min(t.elapsed());
        black_box(tracer.drain());
    }

    let overhead = min_ring.as_secs_f64() / min_off.as_secs_f64() - 1.0;
    println!(
        "trace_overhead: untraced {:?}, ring-traced {:?} ({} events, {dropped} dropped) \
         -> overhead {:+.2}%",
        min_off,
        min_ring,
        events.len(),
        100.0 * overhead,
    );
    assert!(
        min_ring.as_secs_f64() <= min_off.as_secs_f64() * 1.05,
        "ring-sink tracing must cost < 5% of untraced scheduler wall time \
         (untraced {min_off:?}, traced {min_ring:?})"
    );
}
