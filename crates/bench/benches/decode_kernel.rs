//! Criterion: paged decode attention — dense full-history vs budgeted page
//! selection vs streaming heads (CPU analogue of Figure 15).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lserve_attention::{decode_dense_head, decode_streaming_head};
use lserve_kvcache::{DenseHeadCache, PagePool, PagingConfig, StreamingHeadCache, StreamingWindow};
use lserve_quant::KvPrecision;
use lserve_tensor::SeededGaussian;
use std::hint::black_box;

fn bench_decode(c: &mut Criterion) {
    let d = 64usize;
    let seq = 8192usize;
    let paging = PagingConfig::new(64, 16, KvPrecision::Fp16);
    let mut pool = PagePool::new(paging, paging.pages_for(seq) * 2 + 8, d);
    let mut g = SeededGaussian::new(2);

    let mut dense = DenseHeadCache::new();
    let mut streaming = StreamingHeadCache::new(StreamingWindow::new(1, 2));
    for _ in 0..seq {
        let key: Vec<f32> = (0..d).map(|_| g.sample()).collect();
        let val: Vec<f32> = (0..d).map(|_| g.sample()).collect();
        assert!(dense.append(&mut pool, &key, &val));
        assert!(streaming.append(&mut pool, &key, &val));
    }
    let q: Vec<f32> = (0..d).map(|_| g.sample()).collect();
    let scale = 1.0 / (d as f32).sqrt();
    // A 1024-token budget = 16 pages of 64.
    let selected: Vec<usize> = (0..16).map(|i| i * (dense.num_pages() / 16)).collect();

    let mut group = c.benchmark_group("decode_kernel");
    group.sample_size(30);
    group.bench_function(BenchmarkId::new("dense_full", seq), |b| {
        b.iter(|| black_box(decode_dense_head(&pool, &dense, &q, scale, None)))
    });
    group.bench_function(BenchmarkId::new("dynamic_1k_budget", seq), |b| {
        b.iter(|| black_box(decode_dense_head(&pool, &dense, &q, scale, Some(&selected))))
    });
    group.bench_function(BenchmarkId::new("streaming_head", seq), |b| {
        b.iter(|| black_box(decode_streaming_head(&pool, &streaming, &q, scale)))
    });
    group.finish();
}

criterion_group!(benches, bench_decode);
criterion_main!(benches);
