//! SLO-mix workload: long batch prompts interleaved with short interactive
//! requests arriving behind them.
//!
//! The traffic shape that makes class-aware scheduling pay off: each wave
//! opens with one (or more) long-context batch prompts — summarization jobs,
//! offline evals — and a burst of short interactive requests lands right
//! behind them. Under class-blind FCFS the interactive requests queue behind
//! the batch admissions and inherit their prefill latency; a class-aware
//! scheduler admits them first and picks batch victims under pressure, so
//! interactive TTFT collapses while total throughput (everyone completes the
//! same work) is unchanged.
//!
//! Like the other generators in this crate, it emits plain prompt specs plus
//! an `interactive` marker; serving layers map the marker onto their own SLO
//! class and attach deadlines as they see fit.

use lserve_tensor::SeededGaussian;

use crate::shared_prefix::PromptSpec;

/// One request of the mixed workload: the prompt spec plus which side of the
/// SLO divide it falls on. Requests are emitted in arrival order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloMixRequest {
    /// True for the short latency-sensitive requests, false for the long
    /// batch prompts.
    pub interactive: bool,
    /// The prompt spec (`persona` carries the wave index).
    pub spec: PromptSpec,
}

/// Geometry of an SLO-mix workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloMixConfig {
    /// Number of arrival waves.
    pub waves: usize,
    /// Long batch prompts opening each wave.
    pub batch_per_wave: usize,
    /// Short interactive requests arriving behind them in each wave.
    pub interactive_per_wave: usize,
    /// Prompt length of a batch request.
    pub batch_prompt_tokens: usize,
    /// Prompt length of an interactive request.
    pub interactive_prompt_tokens: usize,
    /// Generation budget of a batch request.
    pub batch_new_tokens: usize,
    /// Generation budget of an interactive request.
    pub interactive_new_tokens: usize,
    /// Vocabulary size tokens are drawn from.
    pub vocab: u32,
    /// RNG seed; equal seeds produce identical workloads.
    pub seed: u64,
}

impl SloMixConfig {
    /// A toy-scale default: 2 waves of 2×160-token batch prompts followed by
    /// 4×12-token interactive requests each.
    pub fn small() -> Self {
        Self {
            waves: 2,
            batch_per_wave: 2,
            interactive_per_wave: 4,
            batch_prompt_tokens: 160,
            interactive_prompt_tokens: 12,
            batch_new_tokens: 16,
            interactive_new_tokens: 8,
            vocab: 90,
            seed: 0x510,
        }
    }

    /// Total requests the workload generates.
    pub fn total_requests(&self) -> usize {
        self.waves * (self.batch_per_wave + self.interactive_per_wave)
    }

    /// Interactive requests across all waves.
    pub fn total_interactive(&self) -> usize {
        self.waves * self.interactive_per_wave
    }
}

/// Generates the SLO-mix workload in arrival order, wave-major: each wave's
/// batch prompts first, its interactive burst right behind them. Prompts are
/// pairwise unshared (independent token streams), so the prefix cache cannot
/// absorb the head-of-line pressure — only scheduling policy can.
///
/// # Example
///
/// ```
/// use lserve_workloads::{slo_mix_workload, SloMixConfig};
///
/// let cfg = SloMixConfig::small();
/// let reqs = slo_mix_workload(&cfg);
/// assert_eq!(reqs.len(), cfg.total_requests());
/// assert_eq!(
///     reqs.iter().filter(|r| r.interactive).count(),
///     cfg.total_interactive()
/// );
/// // Wave structure: batch prompts open each wave.
/// assert!(!reqs[0].interactive);
/// assert!(reqs[cfg.batch_per_wave].interactive);
/// ```
pub fn slo_mix_workload(cfg: &SloMixConfig) -> Vec<SloMixRequest> {
    let mut g = SeededGaussian::new(cfg.seed);
    let mut prompt = |len: usize| -> Vec<u32> {
        (0..len)
            .map(|_| g.index(cfg.vocab as usize) as u32)
            .collect()
    };
    let mut out = Vec::with_capacity(cfg.total_requests());
    for wave in 0..cfg.waves {
        for _ in 0..cfg.batch_per_wave {
            out.push(SloMixRequest {
                interactive: false,
                spec: PromptSpec {
                    persona: wave,
                    prompt: prompt(cfg.batch_prompt_tokens),
                    max_new_tokens: cfg.batch_new_tokens,
                },
            });
        }
        for _ in 0..cfg.interactive_per_wave {
            out.push(SloMixRequest {
                interactive: true,
                spec: PromptSpec {
                    persona: wave,
                    prompt: prompt(cfg.interactive_prompt_tokens),
                    max_new_tokens: cfg.interactive_new_tokens,
                },
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let cfg = SloMixConfig::small();
        let a = slo_mix_workload(&cfg);
        assert_eq!(a, slo_mix_workload(&cfg));
        assert_eq!(a.len(), cfg.total_requests());
        let mut other = cfg;
        other.seed ^= 1;
        assert_ne!(a, slo_mix_workload(&other));
    }

    #[test]
    fn wave_structure_and_lengths() {
        let cfg = SloMixConfig::small();
        let reqs = slo_mix_workload(&cfg);
        let per_wave = cfg.batch_per_wave + cfg.interactive_per_wave;
        for (n, r) in reqs.iter().enumerate() {
            let wave = n / per_wave;
            let in_wave = n % per_wave;
            assert_eq!(r.spec.persona, wave, "wave-major arrival order");
            assert_eq!(r.interactive, in_wave >= cfg.batch_per_wave);
            let want_len = if r.interactive {
                cfg.interactive_prompt_tokens
            } else {
                cfg.batch_prompt_tokens
            };
            assert_eq!(r.spec.prompt_len(), want_len);
            assert!(r.spec.prompt.iter().all(|&t| t < cfg.vocab));
        }
    }

    #[test]
    fn prompts_are_pairwise_unshared() {
        let reqs = slo_mix_workload(&SloMixConfig::small());
        for a in 0..reqs.len() {
            for b in a + 1..reqs.len() {
                assert_ne!(
                    reqs[a].spec.prompt[..8],
                    reqs[b].spec.prompt[..8],
                    "requests {a} and {b} share a prefix"
                );
            }
        }
    }
}
