//! Synthetic long-context workloads for the LServe reproduction.
//!
//! The paper's accuracy experiments (NIAH Figures 6/9/13, LongBench Table 2, RULER
//! Tables 3/6) all probe one mechanism: *does sparse attention retain the tokens the
//! query actually needs?* Without trained checkpoints we measure that mechanism
//! directly at the attention layer:
//!
//! * [`niah`] — Needle-in-a-Haystack at the KV level: a haystack of Gaussian keys
//!   with a planted needle whose key aligns with the query; the metric is **needle
//!   recall** — the fraction of needle tokens inside the selector's chosen pages.
//!   Dense attention scores 1.0 by construction; a selector that drops the needle's
//!   page scores 0, exactly the red cells of Figure 6.
//! * [`ruler`] — RULER-style multi-needle and drifting-query variants (multi-hop
//!   tracing needs *several* pages retained; Table 6's reuse-interval ablation needs
//!   queries that drift across decode steps with realistic temporal locality).
//! * [`longbench`] — a panel of task profiles (haystack size, needle count, signal
//!   sharpness) standing in for the LongBench suites, reporting retrieval fidelity
//!   in `[0, 1]` that multiplies the paper's dense scores for presentation.
//! * [`gates`] — a generator of DuoAttention-style per-head gate values `α`: heads
//!   with genuinely local synthetic attention mass get low α, retrieval-ish heads
//!   get high α, so the §3.3 quantile classification has realistic inputs.
//! * [`shared_prefix`] — shared-prefix and multi-turn *serving* workloads (N
//!   personas × M queries over a common system prompt; nested conversation
//!   turns), the traffic shapes that make cross-request prefix caching pay off.
//! * [`overcommit`] — bursty, unshared long-context arrivals whose aggregate
//!   KV demand exceeds the hot tier, the traffic shape that exercises the
//!   tiered KV memory (swap-based preemption vs replay, selection-driven
//!   demotion).
//! * [`slo_mix`] — long batch prompts with short interactive requests arriving
//!   behind them, the traffic shape that makes SLO-class-aware admission and
//!   victim selection pay off (interactive TTFT vs class-blind FCFS).
//! * [`agentic`] — request-DAG scenes (map/reduce fan-out, speculative
//!   tool-call branching, best-of-N panels), the traffic shape that makes
//!   CoW `fork()`/join and per-branch sparsity overrides pay off.

pub mod agentic;
pub mod gates;
pub mod longbench;
pub mod niah;
pub mod overcommit;
pub mod ruler;
pub mod shared_prefix;
pub mod slo_mix;

pub use agentic::{
    best_of_n, map_reduce_fanout, tool_call_branches, AgentScene, AgenticConfig, BranchPrompt,
};
pub use gates::{duo_gates, HeadProfile};
pub use longbench::{longbench_tasks, LongBenchTask};
pub use niah::{NiahCase, NiahConfig};
pub use overcommit::{overcommit_workload, OvercommitConfig};
pub use ruler::{DriftingQueries, MultiNeedleCase};
pub use shared_prefix::{
    multi_turn_workload, shared_prefix_workload, PromptSpec, SharedPrefixConfig,
};
pub use slo_mix::{slo_mix_workload, SloMixConfig, SloMixRequest};
