//! RULER-style pressure tests: multiple needles and drifting decode queries.

use lserve_kvcache::{DenseHeadCache, PagePool, PagingConfig};
use lserve_tensor::SeededGaussian;

use crate::niah::NiahConfig;

/// A haystack with several planted needles, each with its own signal channels and a
/// probe query that needs *all* of them (multi-hop tracing / aggregation à la RULER).
///
/// Accuracy for one case is the mean per-needle recall under a page selection — a
/// selector that keeps k of n needle pages scores k/n, mirroring how RULER's
/// multi-needle subtasks award partial credit.
#[derive(Debug, Clone)]
pub struct MultiNeedleCase {
    head_dim: usize,
    seq_len: usize,
    keys: Vec<f32>,
    query: Vec<f32>,
    needle_ranges: Vec<(usize, usize)>,
}

impl MultiNeedleCase {
    /// Generates `num_needles` needles at evenly spread depths with per-needle
    /// signal channels; the query carries every needle's signal (attenuated by
    /// `1/sqrt(num_needles)` so total query energy stays comparable to single-needle
    /// cases).
    ///
    /// # Panics
    ///
    /// Panics if the needles do not fit in the haystack.
    pub fn generate(base: NiahConfig, num_needles: usize, seed: u64) -> Self {
        assert!(num_needles >= 1, "need at least one needle");
        assert!(
            num_needles * (base.needle_tokens + 1) < base.seq_len,
            "needles must fit"
        );
        let mut g = SeededGaussian::new(seed);
        let d = base.head_dim;
        let mut keys = vec![0.0f32; base.seq_len * d];
        g.fill(&mut keys, 1.0);
        let mut query = vec![0.0f32; d];
        g.fill(&mut query, base.query_noise);

        let atten = 1.0 / (num_needles as f32).sqrt();
        let mut needle_ranges = Vec::with_capacity(num_needles);
        for n in 0..num_needles {
            let depth = (n as f64 + 0.5) / num_needles as f64;
            let max_start = base.seq_len - base.needle_tokens;
            let start = ((depth * max_start as f64) as usize).min(max_start);
            let mut channels = Vec::with_capacity(base.sparse_channels);
            while channels.len() < base.sparse_channels {
                let c = g.index(d);
                if !channels.iter().any(|&(ch, _)| ch == c) {
                    let sign = if g.uniform() < 0.5 { -1.0f32 } else { 1.0 };
                    channels.push((c, sign));
                }
            }
            for t in start..start + base.needle_tokens {
                for &(c, sign) in &channels {
                    keys[t * d + c] = sign * base.spike + 0.1 * g.sample();
                }
            }
            for &(c, sign) in &channels {
                query[c] += sign * base.spike * atten;
            }
            needle_ranges.push((start, start + base.needle_tokens));
        }
        Self {
            head_dim: d,
            seq_len: base.seq_len,
            keys,
            query,
            needle_ranges,
        }
    }

    /// The probe query.
    pub fn query(&self) -> &[f32] {
        &self.query
    }

    /// Token ranges of every needle.
    pub fn needle_ranges(&self) -> &[(usize, usize)] {
        &self.needle_ranges
    }

    /// Loads the haystack into a pool + dense head cache.
    pub fn build_cache(&self, paging: PagingConfig) -> (PagePool, DenseHeadCache) {
        let pages = paging.pages_for(self.seq_len) + 1;
        let mut pool = PagePool::new(paging, pages, self.head_dim);
        let mut cache = DenseHeadCache::new();
        let d = self.head_dim;
        for t in 0..self.seq_len {
            let k = &self.keys[t * d..(t + 1) * d];
            assert!(cache.append(&mut pool, k, k), "pool sized to fit");
        }
        (pool, cache)
    }

    /// Mean per-needle recall of a page selection at physical page size `np`.
    pub fn accuracy(&self, selected_pages: &[usize], np: usize) -> f64 {
        let mut total = 0.0;
        for &(s, e) in &self.needle_ranges {
            let covered = (s..e)
                .filter(|t| selected_pages.contains(&(t / np)))
                .count();
            total += covered as f64 / (e - s) as f64;
        }
        total / self.needle_ranges.len() as f64
    }
}

/// A sequence of decode-step queries whose *emphasis* rotates continuously across
/// the needles, for the reuse-interval ablation (Table 6).
///
/// Decode queries have strong temporal locality (§3.5.3) but drift as generation
/// moves through topics. We model that as a crossfade: at step `t` the query carries
/// the full multi-needle base signal plus an emphasis that linearly hands over from
/// needle `i` to needle `i+1` every `period` steps. A selection reused for `C` steps
/// was chosen under emphasis weights up to `C-1` steps stale, so it under-ranks the
/// *rising* needle — a loss that is negligible for small `C` and grows once the
/// staleness becomes a visible fraction of the rotation period, reproducing the
/// paper's "flat through 8, degraded at 16" shape.
#[derive(Debug, Clone)]
pub struct DriftingQueries {
    queries: Vec<Vec<f32>>,
    weights: Vec<Vec<f64>>,
}

impl DriftingQueries {
    /// Builds a `steps`-long trace over the needles of `case`.
    ///
    /// `period` is the number of steps one emphasis handover takes; `amp` scales the
    /// emphasis relative to the needle spike; `noise` is per-step query noise.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn generate(
        case: &MultiNeedleCase,
        steps: usize,
        period: usize,
        amp: f32,
        noise: f32,
        seed: u64,
    ) -> Self {
        assert!(period > 0, "period must be positive");
        let mut g = SeededGaussian::new(seed);
        let d = case.head_dim;
        let n = case.needle_ranges.len();
        let mut queries = Vec::with_capacity(steps);
        let mut weights = Vec::with_capacity(steps);
        for step in 0..steps {
            let pos = step as f64 / period as f64;
            let i = (pos.floor() as usize) % n;
            let j = (i + 1) % n;
            let frac = (pos - pos.floor()) as f32;
            let (ks, _) = case.needle_ranges[i];
            let (kns, _) = case.needle_ranges[j];
            let key_i = &case.keys[ks * d..(ks + 1) * d];
            let key_j = &case.keys[kns * d..(kns + 1) * d];
            let q: Vec<f32> = (0..d)
                .map(|c| {
                    case.query[c]
                        + amp * ((1.0 - frac) * key_i[c] + frac * key_j[c])
                        + noise * g.sample()
                })
                .collect();
            let mut w = vec![0.0f64; n];
            w[i] = (1.0 - frac) as f64;
            w[j] += frac as f64;
            queries.push(q);
            weights.push(w);
        }
        Self { queries, weights }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Query at step `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn query(&self, t: usize) -> &[f32] {
        &self.queries[t]
    }

    /// Per-needle emphasis weights at step `t` (sum to 1).
    pub fn emphasis(&self, t: usize) -> &[f64] {
        &self.weights[t]
    }

    /// Index of the dominant needle at step `t`.
    pub fn target(&self, t: usize) -> usize {
        let w = &self.weights[t];
        let mut best = 0;
        for (i, &x) in w.iter().enumerate().skip(1) {
            if x > w[best] {
                best = i;
            }
        }
        best
    }

    /// Emphasis-weighted needle recall of a page selection at step `t`: the recall
    /// of each needle weighted by how much step `t` cares about it.
    pub fn weighted_recall(
        &self,
        case: &MultiNeedleCase,
        t: usize,
        selected_pages: &[usize],
        np: usize,
    ) -> f64 {
        let w = &self.weights[t];
        let mut total = 0.0;
        let mut wsum = 0.0;
        for (n, &(s, e)) in case.needle_ranges.iter().enumerate() {
            if w[n] == 0.0 {
                continue;
            }
            let covered = (s..e)
                .filter(|tok| selected_pages.contains(&(tok / np)))
                .count();
            total += w[n] * covered as f64 / (e - s) as f64;
            wsum += w[n];
        }
        total / wsum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lserve_quant::KvPrecision;
    use lserve_selector::{HierarchicalSelector, PageSelector};

    fn base() -> NiahConfig {
        NiahConfig::standard(8192)
    }

    #[test]
    fn needles_are_disjoint_and_spread() {
        let case = MultiNeedleCase::generate(base(), 4, 1);
        let ranges = case.needle_ranges();
        assert_eq!(ranges.len(), 4);
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "needles overlap: {w:?}");
        }
    }

    #[test]
    fn accuracy_full_selection_is_one() {
        let case = MultiNeedleCase::generate(base(), 3, 2);
        let all: Vec<usize> = (0..8192 / 64).collect();
        assert_eq!(case.accuracy(&all, 64), 1.0);
        assert_eq!(case.accuracy(&[], 64), 0.0);
    }

    #[test]
    fn selector_retrieves_most_needles() {
        // Multi-needle queries attenuate per-needle signal by 1/sqrt(n); use the
        // sharper RULER-style spike so 4 needles remain retrievable.
        let cfg = NiahConfig {
            spike: 3.2,
            ..base()
        };
        let case = MultiNeedleCase::generate(cfg, 4, 3);
        let (pool, cache) = case.build_cache(PagingConfig::new(64, 16, KvPrecision::Fp16));
        let mut sel = HierarchicalSelector::new(true);
        let s = sel.select(&pool, &cache, &[case.query()], 4096, 0);
        assert!(
            case.accuracy(&s.pages, 64) >= 0.75,
            "acc {}",
            case.accuracy(&s.pages, 64)
        );
    }

    #[test]
    fn drifting_queries_have_locality() {
        let case = MultiNeedleCase::generate(base(), 2, 4);
        let trace = DriftingQueries::generate(&case, 16, 8, 1.0, 0.1, 5);
        assert_eq!(trace.len(), 16);
        // Consecutive queries are closer than distant ones.
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt()
        };
        let near = dist(trace.query(3), trace.query(4));
        let far = dist(trace.query(0), trace.query(12));
        assert!(near < far, "near {near} far {far}");
    }

    #[test]
    fn emphasis_rotates_through_needles() {
        let case = MultiNeedleCase::generate(base(), 2, 4);
        let trace = DriftingQueries::generate(&case, 16, 8, 1.0, 0.0, 6);
        assert_eq!(trace.target(0), 0);
        assert_eq!(trace.target(9), 1);
        // Weights sum to one and crossfade.
        for t in 0..16 {
            let s: f64 = trace.emphasis(t).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        assert!(trace.emphasis(4)[0] > 0.0 && trace.emphasis(4)[1] > 0.0);
    }

    #[test]
    fn weighted_recall_full_selection_is_one() {
        let case = MultiNeedleCase::generate(base(), 3, 7);
        let trace = DriftingQueries::generate(&case, 8, 4, 1.0, 0.1, 8);
        let all: Vec<usize> = (0..8192 / 64).collect();
        for t in 0..8 {
            assert!((trace.weighted_recall(&case, t, &all, 64) - 1.0).abs() < 1e-9);
        }
    }
}
