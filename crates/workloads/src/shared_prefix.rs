//! Shared-prefix and multi-turn prompt workloads.
//!
//! Modern serving traffic is dominated by *reusable* prefill: agents and domain
//! Q&A re-send a long system prompt on every call, and chat turns re-send the
//! whole conversation so far. These generators synthesize that structure — a
//! common system prompt, `N` personas layered on top of it, and `M` queries per
//! persona — so prefix-cache behaviour (hit depth, eviction pressure, TTFT wins)
//! is benchable end to end with deterministic, seeded token streams.
//!
//! The generators emit plain `(prompt, max_new_tokens)` specs rather than serving
//! `Request`s: this crate sits below `lserve-core`, so serving layers wrap the
//! specs in their own request type (see `examples/serving_simulation.rs`).

use lserve_tensor::SeededGaussian;

/// One generated prompt: token ids plus the generation budget a serving layer
/// should attach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromptSpec {
    /// Which persona (0-based) this prompt belongs to.
    pub persona: usize,
    /// Prompt token ids: `system ++ persona ++ query`.
    pub prompt: Vec<u32>,
    /// Suggested number of tokens to generate.
    pub max_new_tokens: usize,
}

impl PromptSpec {
    /// Length of the prompt in tokens.
    pub fn prompt_len(&self) -> usize {
        self.prompt.len()
    }
}

/// Geometry of a shared-prefix workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedPrefixConfig {
    /// Tokens in the system prompt shared by *every* request.
    pub system_tokens: usize,
    /// Number of personas (each adds its own block on top of the system prompt).
    pub personas: usize,
    /// Tokens in each persona block.
    pub persona_tokens: usize,
    /// Queries issued per persona.
    pub queries_per_persona: usize,
    /// Tokens in each query (the only unshared part of a prompt).
    pub query_tokens: usize,
    /// Generation budget per request.
    pub max_new_tokens: usize,
    /// Vocabulary size tokens are drawn from.
    pub vocab: u32,
    /// RNG seed; equal seeds produce identical workloads.
    pub seed: u64,
}

impl SharedPrefixConfig {
    /// A small default that exercises deep sharing at toy scale: 96 shared system
    /// tokens, 4 personas x 3 queries, 8-token queries.
    pub fn small() -> Self {
        Self {
            system_tokens: 96,
            personas: 4,
            persona_tokens: 24,
            queries_per_persona: 3,
            query_tokens: 8,
            max_new_tokens: 8,
            vocab: 90,
            seed: 0x5EED,
        }
    }

    /// A front-door-sized preset for cluster routing experiments: a short
    /// system prompt with 4 personas x 3 queries, small enough that a
    /// multi-replica run stays fast while still giving a prefix-affinity
    /// router real families to keep together.
    pub fn cluster() -> Self {
        Self {
            system_tokens: 32,
            personas: 4,
            persona_tokens: 16,
            queries_per_persona: 3,
            query_tokens: 8,
            max_new_tokens: 6,
            vocab: 90,
            seed: 0x5EED,
        }
    }

    /// Total requests the workload generates.
    pub fn total_requests(&self) -> usize {
        self.personas * self.queries_per_persona
    }

    /// Prompt tokens that identify a request's persona family — the depth a
    /// prefix-affinity router should hash (`system + persona`; hashing less
    /// collapses every persona into one family, hashing more splits queries).
    pub fn affinity_prefix_len(&self) -> usize {
        self.system_tokens + self.persona_tokens
    }

    /// Prompt length of every generated request (all requests are equal-length:
    /// `system + persona + query`).
    pub fn prompt_len(&self) -> usize {
        self.system_tokens + self.persona_tokens + self.query_tokens
    }
}

fn tokens(g: &mut SeededGaussian, n: usize, vocab: u32) -> Vec<u32> {
    (0..n).map(|_| g.index(vocab as usize) as u32).collect()
}

/// Generates the persona workload: every request's prompt is
/// `system ++ persona[p] ++ query`, with queries interleaved round-robin across
/// personas (the arrival order a multi-tenant endpoint would see, which maximizes
/// pressure on the cache's LRU policy).
///
/// Two requests of the same persona share `system_tokens + persona_tokens`
/// prompt tokens; requests of different personas share `system_tokens`.
///
/// # Example
///
/// ```
/// use lserve_workloads::{shared_prefix_workload, SharedPrefixConfig};
///
/// let cfg = SharedPrefixConfig::small();
/// let reqs = shared_prefix_workload(&cfg);
/// assert_eq!(reqs.len(), cfg.total_requests());
/// // Same persona: prompts agree up to the query.
/// let same: Vec<_> = reqs.iter().filter(|r| r.persona == 0).collect();
/// let shared = cfg.system_tokens + cfg.persona_tokens;
/// assert_eq!(same[0].prompt[..shared], same[1].prompt[..shared]);
/// assert_ne!(same[0].prompt[shared..], same[1].prompt[shared..]);
/// ```
pub fn shared_prefix_workload(cfg: &SharedPrefixConfig) -> Vec<PromptSpec> {
    let mut g = SeededGaussian::new(cfg.seed);
    let system = tokens(&mut g, cfg.system_tokens, cfg.vocab);
    let personas: Vec<Vec<u32>> = (0..cfg.personas)
        .map(|_| tokens(&mut g, cfg.persona_tokens, cfg.vocab))
        .collect();
    let mut out = Vec::with_capacity(cfg.total_requests());
    for _round in 0..cfg.queries_per_persona {
        for (p, persona) in personas.iter().enumerate() {
            let mut prompt = system.clone();
            prompt.extend_from_slice(persona);
            prompt.extend(tokens(&mut g, cfg.query_tokens, cfg.vocab));
            out.push(PromptSpec {
                persona: p,
                prompt,
                max_new_tokens: cfg.max_new_tokens,
            });
        }
    }
    out
}

/// Generates a multi-turn conversation workload for one persona: turn `t`'s
/// prompt is turn `t-1`'s prompt extended by a deterministic stand-in for the
/// assistant's reply (`reply_tokens` tokens) and a fresh user query. Consecutive
/// turns therefore share everything but the newest query — the traffic shape
/// where conversation-granular prefix caching pays off most.
///
/// (Real replays would splice in the tokens the model actually generated; the
/// serving example does exactly that using `ServingReport::completed`. This
/// generator is for workloads that only need the *shape*.)
pub fn multi_turn_workload(
    turns: usize,
    system_tokens: usize,
    query_tokens: usize,
    reply_tokens: usize,
    vocab: u32,
    seed: u64,
) -> Vec<PromptSpec> {
    let mut g = SeededGaussian::new(seed);
    let mut history = tokens(&mut g, system_tokens, vocab);
    let mut out = Vec::with_capacity(turns);
    for t in 0..turns {
        if t > 0 {
            history.extend(tokens(&mut g, reply_tokens, vocab));
        }
        history.extend(tokens(&mut g, query_tokens, vocab));
        out.push(PromptSpec {
            persona: 0,
            prompt: history.clone(),
            max_new_tokens: reply_tokens,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let cfg = SharedPrefixConfig::small();
        assert_eq!(shared_prefix_workload(&cfg), shared_prefix_workload(&cfg));
        let mut other = cfg;
        other.seed ^= 1;
        assert_ne!(shared_prefix_workload(&cfg), shared_prefix_workload(&other));
    }

    #[test]
    fn sharing_structure_is_exact() {
        let cfg = SharedPrefixConfig::small();
        let reqs = shared_prefix_workload(&cfg);
        assert_eq!(reqs.len(), 12);
        for r in &reqs {
            assert_eq!(r.prompt_len(), cfg.prompt_len());
            assert!(r.prompt.iter().all(|&t| t < cfg.vocab));
        }
        // All requests share exactly the system prompt across personas.
        let a = &reqs[0];
        let b = reqs.iter().find(|r| r.persona != a.persona).unwrap();
        assert_eq!(a.prompt[..cfg.system_tokens], b.prompt[..cfg.system_tokens]);
        assert_ne!(
            a.prompt[cfg.system_tokens..cfg.system_tokens + cfg.persona_tokens],
            b.prompt[cfg.system_tokens..cfg.system_tokens + cfg.persona_tokens]
        );
        // Round-robin interleaving: consecutive requests rotate personas.
        let order: Vec<usize> = reqs.iter().map(|r| r.persona).take(4).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn multi_turn_prompts_nest() {
        let turns = multi_turn_workload(4, 32, 6, 10, 90, 9);
        assert_eq!(turns.len(), 4);
        for w in turns.windows(2) {
            let (prev, next) = (&w[0], &w[1]);
            assert!(next.prompt_len() > prev.prompt_len());
            assert_eq!(
                next.prompt[..prev.prompt_len()],
                prev.prompt[..],
                "each turn extends the previous one"
            );
        }
        assert_eq!(turns[0].prompt_len(), 32 + 6);
        assert_eq!(turns[1].prompt_len(), 32 + 6 + 10 + 6);
    }
}
