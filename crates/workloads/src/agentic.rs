//! Agentic request-DAG workloads: map/reduce fan-out, speculative tool-call
//! branching, and best-of-N candidate panels.
//!
//! Agent frameworks turn one user request into a *tree* of model calls: a
//! planner forks a sub-query per document (map/reduce), a runtime launches
//! the continuation for every plausible tool result before the tool returns
//! (speculative tool calls), a ranker samples N candidate answers and keeps
//! the best (best-of-N). Every branch shares the whole conversation up to
//! the fork point, which is exactly the shape the scheduler's CoW `fork()`
//! exploits: zero-copy prefix sharing, per-branch sparsity overrides, and
//! join policies that cancel the losers.
//!
//! Like [`shared_prefix`](crate::shared_prefix), these generators emit plain
//! token-vec structs rather than serving requests — this crate sits below
//! `lserve-core`, so the serving example maps [`BranchPrompt`] fields onto
//! its own `BranchSpec` type.

use lserve_tensor::SeededGaussian;

/// One speculative branch of an agent DAG: what to append at the fork point
/// and how to run it. Serving layers map this 1:1 onto their branch spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchPrompt {
    /// Tokens appended after the shared fork-point history (the sub-query,
    /// the speculated tool result, or the candidate's sampling nonce).
    pub suffix: Vec<u32>,
    /// Generation budget for this branch.
    pub max_new_tokens: usize,
    /// Join-policy tiebreaker: a ranker's score for best-of-N panels, zero
    /// elsewhere.
    pub score_bias: i64,
    /// Tokens that end this branch early (a tool-result terminator), empty
    /// elsewhere.
    pub stop_tokens: Vec<u32>,
}

/// One agent scene: a root conversation plus the branches it forks into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentScene {
    /// The shared conversation up to the fork point.
    pub root_prompt: Vec<u32>,
    /// Generation budget for the root request (it keeps decoding while the
    /// branches race).
    pub root_new_tokens: usize,
    /// The speculative branches, in spawn order.
    pub branches: Vec<BranchPrompt>,
}

/// Geometry of an agentic fan-out workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgenticConfig {
    /// Tokens in the shared root conversation.
    pub root_tokens: usize,
    /// Branches per fork.
    pub branches: usize,
    /// Tokens appended per branch (sub-query / tool result / nonce).
    pub suffix_tokens: usize,
    /// Generation budget per branch.
    pub branch_new_tokens: usize,
    /// Vocabulary size tokens are drawn from.
    pub vocab: u32,
    /// RNG seed; equal seeds produce identical scenes.
    pub seed: u64,
}

impl AgenticConfig {
    /// A toy-scale default: a 32-token root forking into 4 branches of
    /// 8-token suffixes.
    pub fn small() -> Self {
        Self {
            root_tokens: 32,
            branches: 4,
            suffix_tokens: 8,
            branch_new_tokens: 8,
            vocab: 90,
            seed: 0xA9E7,
        }
    }
}

fn tokens(g: &mut SeededGaussian, n: usize, vocab: u32) -> Vec<u32> {
    (0..n).map(|_| g.index(vocab as usize) as u32).collect()
}

/// Map/reduce fan-out: a planner forks one sub-query per shard of the task
/// (distinct suffixes, uniform budgets), waits for *all* of them, and
/// reduces. Run under an `All` join; every branch's output feeds the reduce
/// step.
pub fn map_reduce_fanout(cfg: &AgenticConfig) -> AgentScene {
    let mut g = SeededGaussian::new(cfg.seed);
    let root_prompt = tokens(&mut g, cfg.root_tokens, cfg.vocab);
    let branches = (0..cfg.branches)
        .map(|_| BranchPrompt {
            suffix: tokens(&mut g, cfg.suffix_tokens, cfg.vocab),
            max_new_tokens: cfg.branch_new_tokens,
            score_bias: 0,
            stop_tokens: Vec::new(),
        })
        .collect();
    AgentScene {
        root_prompt,
        root_new_tokens: cfg.branch_new_tokens,
        branches,
    }
}

/// Speculative tool-call branching: the runtime launches the continuation
/// for every plausible tool result before the tool returns. Branch `i`
/// speculates a different result payload; deeper alternatives get larger
/// budgets (the cheap common case resolves first), and every branch stops
/// early at the shared tool-result terminator token. Run under a
/// `FirstFinished` join; the losers are cancelled the moment one
/// continuation completes.
pub fn tool_call_branches(cfg: &AgenticConfig) -> AgentScene {
    let mut g = SeededGaussian::new(cfg.seed);
    let root_prompt = tokens(&mut g, cfg.root_tokens, cfg.vocab);
    let terminator = g.index(cfg.vocab as usize) as u32;
    let branches = (0..cfg.branches)
        .map(|i| BranchPrompt {
            suffix: tokens(&mut g, cfg.suffix_tokens, cfg.vocab),
            max_new_tokens: cfg.branch_new_tokens * (i + 1),
            score_bias: 0,
            stop_tokens: vec![terminator],
        })
        .collect();
    AgentScene {
        root_prompt,
        root_new_tokens: cfg.branch_new_tokens,
        branches,
    }
}

/// Best-of-N candidate panel: N branches sample alternative answers to the
/// same question — a per-branch nonce suffix stands in for sampling
/// temperature (decode is deterministic, so identical suffixes would yield
/// identical candidates) — and a seeded ranker score stands in for the
/// reward model. Run under a `BestScore` join; the panel waits for every
/// candidate and keeps the highest-scored one.
pub fn best_of_n(cfg: &AgenticConfig) -> AgentScene {
    let mut g = SeededGaussian::new(cfg.seed);
    let root_prompt = tokens(&mut g, cfg.root_tokens, cfg.vocab);
    let branches = (0..cfg.branches)
        .map(|_| BranchPrompt {
            suffix: tokens(&mut g, cfg.suffix_tokens, cfg.vocab),
            max_new_tokens: cfg.branch_new_tokens,
            // Distinct by construction: index() over a wide range collides
            // with negligible probability, and the spread gives the join a
            // clear winner.
            score_bias: g.index(1 << 16) as i64,
            stop_tokens: Vec::new(),
        })
        .collect();
    AgentScene {
        root_prompt,
        root_new_tokens: cfg.branch_new_tokens,
        branches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenes_are_deterministic_and_seed_sensitive() {
        let cfg = AgenticConfig::small();
        assert_eq!(map_reduce_fanout(&cfg), map_reduce_fanout(&cfg));
        assert_eq!(tool_call_branches(&cfg), tool_call_branches(&cfg));
        assert_eq!(best_of_n(&cfg), best_of_n(&cfg));
        let mut other = cfg;
        other.seed ^= 1;
        assert_ne!(map_reduce_fanout(&cfg), map_reduce_fanout(&other));
    }

    #[test]
    fn map_reduce_shards_are_distinct_and_uniform() {
        let cfg = AgenticConfig::small();
        let scene = map_reduce_fanout(&cfg);
        assert_eq!(scene.root_prompt.len(), cfg.root_tokens);
        assert_eq!(scene.branches.len(), cfg.branches);
        for (i, b) in scene.branches.iter().enumerate() {
            assert_eq!(b.suffix.len(), cfg.suffix_tokens);
            assert_eq!(b.max_new_tokens, cfg.branch_new_tokens);
            assert!(b.stop_tokens.is_empty());
            assert!(b.suffix.iter().all(|&t| t < cfg.vocab));
            for other in &scene.branches[..i] {
                assert_ne!(b.suffix, other.suffix, "each shard gets its own sub-query");
            }
        }
    }

    #[test]
    fn tool_branches_share_a_terminator_and_stagger_budgets() {
        let cfg = AgenticConfig::small();
        let scene = tool_call_branches(&cfg);
        let terminator = scene.branches[0].stop_tokens[0];
        for (i, b) in scene.branches.iter().enumerate() {
            assert_eq!(b.stop_tokens, vec![terminator]);
            assert_eq!(b.max_new_tokens, cfg.branch_new_tokens * (i + 1));
        }
    }

    #[test]
    fn best_of_n_scores_break_ties() {
        let cfg = AgenticConfig::small();
        let scene = best_of_n(&cfg);
        let mut scores: Vec<i64> = scene.branches.iter().map(|b| b.score_bias).collect();
        scores.sort_unstable();
        scores.dedup();
        assert_eq!(scores.len(), cfg.branches, "ranker scores are distinct");
        for w in scene.branches.windows(2) {
            assert_ne!(w[0].suffix, w[1].suffix, "nonces differentiate candidates");
        }
    }
}
