//! DuoAttention-style head profiles and gate values.

use lserve_tensor::SeededGaussian;

/// The synthetic behaviour of one attention head, used to derive its gate value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadProfile {
    /// Fraction of this head's attention mass that falls inside the local window
    /// (0 = pure retrieval head, 1 = pure streaming head).
    pub locality: f32,
    /// DuoAttention gate value `α ∈ [0, 1]`; close to 1 for retrieval heads, close
    /// to 0 for streaming heads (§3.3).
    pub alpha: f32,
}

/// Generates per-(layer, KV head) gate values the way DuoAttention's optimization
/// would: each head has an intrinsic locality; retrieval-ish heads (low locality)
/// get `α` near 1, streaming-ish heads near 0, with observation noise.
///
/// The marginal distribution is deliberately bimodal with *exactly* half the heads
/// in each mode (which heads is a seeded shuffle) — the paper reports that a 50%
/// quantile threshold cleanly separates the two populations, and an exactly
/// balanced population makes that separation hold for every seed.
///
/// # Example
///
/// ```
/// use lserve_workloads::duo_gates;
///
/// let gates = duo_gates(4, 8, 7);
/// assert_eq!(gates.len(), 4);
/// assert_eq!(gates[0].len(), 8);
/// assert!(gates.iter().flatten().all(|p| (0.0..=1.0).contains(&p.alpha)));
/// ```
pub fn duo_gates(num_layers: usize, num_kv_heads: usize, seed: u64) -> Vec<Vec<HeadProfile>> {
    let mut g = SeededGaussian::new(seed);
    // Exactly half the heads are strongly local; the assignment is a seeded
    // Fisher–Yates shuffle over all (layer, head) slots.
    let total = num_layers * num_kv_heads;
    let mut local_flags: Vec<bool> = (0..total).map(|i| i < total / 2).collect();
    for i in (1..total).rev() {
        local_flags.swap(i, g.index(i + 1));
    }
    let mut flags = local_flags.into_iter();
    (0..num_layers)
        .map(|_| {
            (0..num_kv_heads)
                .map(|_| {
                    let local_head = flags.next().expect("one flag per head");
                    let locality = if local_head {
                        (0.85 + 0.1 * g.sample()).clamp(0.0, 1.0)
                    } else {
                        (0.15 + 0.1 * g.sample()).clamp(0.0, 1.0)
                    };
                    let alpha = (1.0 - locality + 0.05 * g.sample()).clamp(0.0, 1.0);
                    HeadProfile { locality, alpha }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gates_deterministic() {
        let a = duo_gates(2, 4, 3);
        let b = duo_gates(2, 4, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn gates_bimodal() {
        let gates = duo_gates(32, 8, 11);
        let all: Vec<f32> = gates.iter().flatten().map(|p| p.alpha).collect();
        let low = all.iter().filter(|&&a| a < 0.4).count();
        let high = all.iter().filter(|&&a| a > 0.6).count();
        let mid = all.len() - low - high;
        assert!(low > all.len() / 4, "low gates {low}");
        assert!(high > all.len() / 4, "high gates {high}");
        assert!(mid < all.len() / 5, "mid gates should be rare: {mid}");
    }

    #[test]
    fn alpha_anticorrelates_with_locality() {
        let gates = duo_gates(8, 8, 5);
        for p in gates.iter().flatten() {
            if p.locality > 0.7 {
                assert!(p.alpha < 0.5, "local head must gate low: {p:?}");
            }
            if p.locality < 0.3 {
                assert!(p.alpha > 0.5, "retrieval head must gate high: {p:?}");
            }
        }
    }
}
