//! Needle-in-a-Haystack at the KV-cache level.

use lserve_kvcache::{DenseHeadCache, PagePool, PagingConfig};
use lserve_tensor::SeededGaussian;

/// Geometry and signal parameters of a NIAH case.
///
/// The haystack is `seq_len` Gaussian keys; the needle is `needle_tokens` consecutive
/// keys whose value spikes on `sparse_channels` randomly chosen channels, and the
/// query spikes on the same channels (plus noise). The spike/noise levels are chosen
/// so that fine-grained (16-token) page statistics rank the needle page safely inside
/// a 4096-token budget while coarse 64-token *flat* statistics — whose per-channel
/// maxima inflate with page size — push it out, reproducing the Figure 6 failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NiahConfig {
    /// Haystack length in tokens.
    pub seq_len: usize,
    /// Key/query dimension.
    pub head_dim: usize,
    /// Needle length in tokens.
    pub needle_tokens: usize,
    /// Channels carrying the needle signal.
    pub sparse_channels: usize,
    /// Signal magnitude on the active channels.
    pub spike: f32,
    /// Std of the noise added to the query.
    pub query_noise: f32,
}

impl NiahConfig {
    /// The default pressure-test geometry used by the Figure 6/9/13 harnesses.
    ///
    /// The spike is deliberately moderate (2.3): strong enough that 16-token page
    /// statistics rank the needle page reliably, weak enough that the channelwise
    /// maxima of 64-token *flat* pages (which grow like `sqrt(2 ln N_P)` over
    /// Gaussian background) genuinely compete with it — the regime where Figure 6's
    /// page-size dilemma appears.
    pub fn standard(seq_len: usize) -> Self {
        Self {
            seq_len,
            head_dim: 128,
            needle_tokens: 8,
            sparse_channels: 8,
            spike: 2.3,
            query_noise: 0.3,
        }
    }
}

/// One generated haystack + needle + probe query.
#[derive(Debug, Clone)]
pub struct NiahCase {
    config: NiahConfig,
    /// Row-major `(seq_len x head_dim)` keys.
    keys: Vec<f32>,
    /// The probe query (aligned with the needle signal).
    query: Vec<f32>,
    /// First token of the needle.
    needle_start: usize,
}

impl NiahCase {
    /// Generates a case with the needle at `depth` (0.0 = beginning, 1.0 = end of the
    /// haystack), deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is outside `[0, 1]`, or the needle does not fit.
    pub fn generate(config: NiahConfig, depth: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&depth), "depth must be in [0,1]");
        assert!(config.needle_tokens < config.seq_len, "needle must fit");
        let mut g = SeededGaussian::new(seed);
        let d = config.head_dim;
        let mut keys = vec![0.0f32; config.seq_len * d];
        g.fill(&mut keys, 1.0);

        // Random sparse signal channels with random signs.
        let mut channels = Vec::with_capacity(config.sparse_channels);
        while channels.len() < config.sparse_channels {
            let c = g.index(d);
            if !channels.iter().any(|&(ch, _)| ch == c) {
                let sign = if g.uniform() < 0.5 { -1.0f32 } else { 1.0 };
                channels.push((c, sign));
            }
        }

        let max_start = config.seq_len - config.needle_tokens;
        let needle_start = ((depth * max_start as f64).round() as usize).min(max_start);
        for t in needle_start..needle_start + config.needle_tokens {
            for &(c, sign) in &channels {
                keys[t * d + c] = sign * config.spike + 0.1 * g.sample();
            }
        }

        let mut query = vec![0.0f32; d];
        g.fill(&mut query, config.query_noise);
        for &(c, sign) in &channels {
            query[c] += sign * config.spike;
        }

        Self {
            config,
            keys,
            query,
            needle_start,
        }
    }

    /// The generation parameters.
    pub fn config(&self) -> NiahConfig {
        self.config
    }

    /// The probe query row.
    pub fn query(&self) -> &[f32] {
        &self.query
    }

    /// Token range `[start, end)` of the needle.
    pub fn needle_range(&self) -> (usize, usize) {
        (
            self.needle_start,
            self.needle_start + self.config.needle_tokens,
        )
    }

    /// Key row of token `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= seq_len`.
    pub fn key(&self, t: usize) -> &[f32] {
        let d = self.config.head_dim;
        &self.keys[t * d..(t + 1) * d]
    }

    /// Loads the haystack into a fresh pool + dense head cache under the given page
    /// geometry (values = keys, which is all recall metrics need).
    ///
    /// # Panics
    ///
    /// Panics if the pool capacity computed from the config would overflow; the pool
    /// is sized to fit the whole haystack.
    pub fn build_cache(&self, paging: PagingConfig) -> (PagePool, DenseHeadCache) {
        let pages = paging.pages_for(self.config.seq_len) + 1;
        let mut pool = PagePool::new(paging, pages, self.config.head_dim);
        let mut cache = DenseHeadCache::new();
        for t in 0..self.config.seq_len {
            let k = self.key(t);
            assert!(cache.append(&mut pool, k, k), "pool sized to fit");
        }
        (pool, cache)
    }

    /// Physical pages (at page size `np`) overlapping the needle.
    pub fn needle_pages(&self, np: usize) -> Vec<usize> {
        let (s, e) = self.needle_range();
        (s / np..=(e - 1) / np).collect()
    }

    /// Needle recall of a page selection: fraction of needle tokens covered by the
    /// selected physical pages (page size `np`).
    pub fn recall(&self, selected_pages: &[usize], np: usize) -> f64 {
        let (s, e) = self.needle_range();
        let covered = (s..e)
            .filter(|t| selected_pages.contains(&(t / np)))
            .count();
        covered as f64 / (e - s) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lserve_quant::KvPrecision;
    use lserve_selector::{FlatSelector, HierarchicalSelector, PageSelector};

    #[test]
    fn needle_depth_placement() {
        let cfg = NiahConfig::standard(4096);
        let shallow = NiahCase::generate(cfg, 0.0, 1);
        let deep = NiahCase::generate(cfg, 1.0, 1);
        assert_eq!(shallow.needle_range().0, 0);
        assert_eq!(deep.needle_range().1, 4096);
    }

    #[test]
    fn determinism() {
        let cfg = NiahConfig::standard(1024);
        let a = NiahCase::generate(cfg, 0.5, 9);
        let b = NiahCase::generate(cfg, 0.5, 9);
        assert_eq!(a.keys, b.keys);
        assert_eq!(a.query, b.query);
    }

    #[test]
    fn query_aligns_with_needle() {
        let cfg = NiahConfig::standard(2048);
        let case = NiahCase::generate(cfg, 0.37, 3);
        let (s, _) = case.needle_range();
        let needle_dot: f32 = case.query.iter().zip(case.key(s)).map(|(a, b)| a * b).sum();
        // Average dot against background keys.
        let bg_dot: f32 = case.query.iter().zip(case.key(0)).map(|(a, b)| a * b).sum();
        assert!(
            needle_dot > bg_dot + 20.0,
            "needle {needle_dot} vs bg {bg_dot}"
        );
    }

    #[test]
    fn needle_pages_cover_range() {
        let cfg = NiahConfig::standard(1024);
        let case = NiahCase::generate(cfg, 0.5, 4);
        let pages = case.needle_pages(16);
        let (s, e) = case.needle_range();
        assert!(pages.contains(&(s / 16)));
        assert!(pages.contains(&((e - 1) / 16)));
    }

    #[test]
    fn recall_metric_bounds() {
        let cfg = NiahConfig::standard(512);
        let case = NiahCase::generate(cfg, 0.5, 5);
        let all: Vec<usize> = (0..512 / 16).collect();
        assert_eq!(case.recall(&all, 16), 1.0);
        assert_eq!(case.recall(&[], 16), 0.0);
    }

    #[test]
    fn flat_small_pages_find_the_needle() {
        // Figure 6(a/b) regime: page 16, budget 4096 over a 16K haystack.
        let cfg = NiahConfig::standard(16_384);
        let mut hits = 0;
        for seed in 0..5 {
            let case = NiahCase::generate(cfg, 0.6, 100 + seed);
            let (pool, cache) = case.build_cache(PagingConfig::flat(16, KvPrecision::Fp16));
            let mut sel = FlatSelector::new(true);
            let s = sel.select(&pool, &cache, &[case.query()], 4096, 0);
            if case.recall(&s.pages, 16) >= 1.0 {
                hits += 1;
            }
        }
        assert!(hits >= 4, "flat@16 should almost always recall: {hits}/5");
    }

    #[test]
    fn hierarchical_matches_flat16_on_large_pages() {
        // Figure 13 regime: NP=64, NL=16, budget 3072.
        let cfg = NiahConfig::standard(16_384);
        let mut hier_hits = 0;
        for seed in 0..5 {
            let case = NiahCase::generate(cfg, 0.4, 200 + seed);
            let (pool, cache) = case.build_cache(PagingConfig::new(64, 16, KvPrecision::Fp16));
            let mut sel = HierarchicalSelector::new(true);
            let s = sel.select(&pool, &cache, &[case.query()], 3072, 0);
            if case.recall(&s.pages, 64) >= 1.0 {
                hier_hits += 1;
            }
        }
        assert!(hier_hits >= 4, "hierarchical@64/16: {hier_hits}/5");
    }
}
