//! LongBench-proxy task panel (Table 2 / Table 8).
//!
//! Each LongBench suite is represented by a retrieval profile — haystack size,
//! number of salient spans, signal sharpness — chosen to reflect the task family
//! (multi-hop QA needs several spans, summarization needs broad coverage, few-shot
//! tasks need sharp recall of specific demonstrations). The measured quantity is
//! retrieval **fidelity** in `[0, 1]` (mean salient-span recall of the sparse
//! policy); the harness multiplies it by the paper's dense score to present
//! paper-comparable numbers, and reports the dense baseline's own fidelity as 1.0.

use crate::niah::NiahConfig;
use crate::ruler::MultiNeedleCase;

/// One LongBench suite stand-in.
#[derive(Debug, Clone, PartialEq)]
pub struct LongBenchTask {
    /// Suite name as it appears in Table 2.
    pub name: &'static str,
    /// Paper's dense score for Llama-3-8B.
    pub dense_llama3: f64,
    /// Paper's dense score for Llama-2-7B.
    pub dense_llama2: f64,
    /// Haystack length in tokens.
    pub seq_len: usize,
    /// Salient spans the task requires.
    pub needles: usize,
    /// Signal sharpness (spike magnitude) of the salient spans.
    pub spike: f32,
}

impl LongBenchTask {
    /// Generates `trials` cases for this task, seeded deterministically.
    pub fn cases(&self, trials: usize, seed: u64) -> Vec<MultiNeedleCase> {
        let cfg = NiahConfig {
            spike: self.spike,
            ..NiahConfig::standard(self.seq_len)
        };
        (0..trials)
            .map(|i| MultiNeedleCase::generate(cfg, self.needles, seed ^ (i as u64 * 0x9E37_79B9)))
            .collect()
    }
}

/// The eight suites of Table 2 with the paper's dense-baseline scores.
pub fn longbench_tasks() -> Vec<LongBenchTask> {
    vec![
        LongBenchTask {
            name: "2WikiMQA",
            dense_llama3: 30.3,
            dense_llama2: 35.4,
            seq_len: 16_384,
            needles: 2,
            spike: 3.0,
        },
        LongBenchTask {
            name: "DuReader",
            dense_llama3: 30.3,
            dense_llama2: 25.4,
            seq_len: 16_384,
            needles: 4,
            spike: 3.1,
        },
        LongBenchTask {
            name: "HotpotQA",
            dense_llama3: 41.7,
            dense_llama2: 47.4,
            seq_len: 16_384,
            needles: 2,
            spike: 3.2,
        },
        LongBenchTask {
            name: "MultiNews",
            dense_llama3: 27.7,
            dense_llama2: 26.6,
            seq_len: 8_192,
            needles: 6,
            spike: 2.5,
        },
        LongBenchTask {
            name: "Qasper",
            dense_llama3: 31.7,
            dense_llama2: 32.6,
            seq_len: 8_192,
            needles: 3,
            spike: 2.6,
        },
        LongBenchTask {
            name: "QMSum",
            dense_llama3: 23.8,
            dense_llama2: 21.0,
            seq_len: 16_384,
            needles: 5,
            spike: 3.2,
        },
        LongBenchTask {
            name: "SamSum",
            dense_llama3: 41.2,
            dense_llama2: 41.8,
            seq_len: 8_192,
            needles: 3,
            spike: 3.0,
        },
        LongBenchTask {
            name: "TriviaQA",
            dense_llama3: 84.9,
            dense_llama2: 86.2,
            seq_len: 8_192,
            needles: 1,
            spike: 3.4,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lserve_kvcache::PagingConfig;
    use lserve_quant::KvPrecision;
    use lserve_selector::{HierarchicalSelector, PageSelector};

    #[test]
    fn panel_has_eight_tasks() {
        let tasks = longbench_tasks();
        assert_eq!(tasks.len(), 8);
        let mut names: Vec<_> = tasks.iter().map(|t| t.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn cases_are_deterministic() {
        let t = &longbench_tasks()[0];
        let a = t.cases(2, 7);
        let b = t.cases(2, 7);
        assert_eq!(a[0].query(), b[0].query());
        assert_eq!(a[1].needle_ranges(), b[1].needle_ranges());
    }

    #[test]
    fn lserve_policy_keeps_high_fidelity() {
        // Table 2's claim in proxy form: hierarchical selection at the paper's
        // default budget preserves nearly all salient spans on every task.
        for task in longbench_tasks() {
            let mut total = 0.0;
            let cases = task.cases(3, 42);
            for case in &cases {
                let (pool, cache) = case.build_cache(PagingConfig::new(64, 16, KvPrecision::Fp16));
                let mut sel = HierarchicalSelector::new(true);
                let s = sel.select(&pool, &cache, &[case.query()], 4096, 0);
                total += case.accuracy(&s.pages, 64);
            }
            let fidelity = total / cases.len() as f64;
            assert!(fidelity >= 0.7, "{}: fidelity {fidelity}", task.name);
        }
    }
}
