//! Overcommit workload: bursty long-context arrivals that oversubscribe the
//! hot KV tier.
//!
//! The tiered KV memory's two policies — selection-driven demotion and
//! swap-based preemption — only earn their keep when the *aggregate* KV demand
//! of concurrently live sequences exceeds device memory. This generator
//! synthesizes exactly that traffic: bursts of long-context prompts arriving
//! together (an agent fleet waking up, a batch-inference window opening), each
//! prompt unshared with its peers so the prefix cache cannot absorb the
//! pressure, with generation long enough that the burst must coexist through
//! many decode iterations.
//!
//! Like the other generators in this crate, it emits plain `(prompt,
//! max_new_tokens)` specs; serving layers wrap them in their own request type
//! and pick the hot-tier size (a pool well below `total_requests() ×
//! per-sequence footprint` is the interesting regime — swap vs replay is then
//! the difference between continuing a victim for the cost of a transfer and
//! re-feeding its whole context).

use lserve_tensor::SeededGaussian;

use crate::shared_prefix::PromptSpec;

/// Geometry of an overcommit workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OvercommitConfig {
    /// Number of arrival bursts.
    pub bursts: usize,
    /// Long-context requests arriving together in each burst.
    pub requests_per_burst: usize,
    /// Base prompt length of every request (the "long context").
    pub context_tokens: usize,
    /// Per-request prompt-length jitter: request `i` of a burst adds
    /// `i * context_jitter` tokens, so footprints differ and victim selection
    /// is exercised at several sizes.
    pub context_jitter: usize,
    /// Generation budget per request — long enough that a burst's sequences
    /// must coexist through many decode iterations.
    pub max_new_tokens: usize,
    /// Vocabulary size tokens are drawn from.
    pub vocab: u32,
    /// RNG seed; equal seeds produce identical workloads.
    pub seed: u64,
}

impl OvercommitConfig {
    /// A toy-scale default: 2 bursts × 4 requests, 160-token contexts with
    /// 16-token jitter, 16 generated tokens each.
    pub fn small() -> Self {
        Self {
            bursts: 2,
            requests_per_burst: 4,
            context_tokens: 160,
            context_jitter: 16,
            max_new_tokens: 16,
            vocab: 90,
            seed: 0xC01D,
        }
    }

    /// The migration-bench scene: the `small` geometry with a doubled
    /// generation budget, so a burst's sequences coexist through enough
    /// decode iterations that an asynchronous copy engine has compute to
    /// hide transfers behind. Used by the `tiered_offload` bench's
    /// sync-vs-async comparison (and the `BENCH_pr6.json` artifact CI
    /// archives), where the stall-reduction acceptance gate is asserted.
    pub fn migration_bench() -> Self {
        Self {
            max_new_tokens: 32,
            seed: 0xA51C,
            ..Self::small()
        }
    }

    /// The hierarchy-bench scene: the `migration_bench` geometry with a third
    /// burst, so swap-parked victims pile up faster than a bounded host tier
    /// can absorb and the modeled nvme tier below it sees real traffic. Used
    /// by the `tiered_offload` bench's memory-hierarchy comparison (bounded
    /// host + nvme vs drop-to-replay), where the sustained-concurrency
    /// acceptance gate is asserted and `BENCH_pr9.json` is written for CI.
    pub fn hierarchy_bench() -> Self {
        Self {
            bursts: 3,
            seed: 0x9E1A,
            ..Self::migration_bench()
        }
    }

    /// Total requests the workload generates.
    pub fn total_requests(&self) -> usize {
        self.bursts * self.requests_per_burst
    }

    /// Prompt length of request `i` within a burst.
    pub fn prompt_len(&self, i: usize) -> usize {
        self.context_tokens + i * self.context_jitter
    }

    /// The largest prompt any request carries.
    pub fn max_prompt_len(&self) -> usize {
        self.prompt_len(self.requests_per_burst.saturating_sub(1))
    }

    /// Total KV-bearing tokens (prompts plus generations) live if every
    /// request ran at once — the aggregate demand a hot tier must be sized
    /// *below* for the workload to actually overcommit.
    pub fn aggregate_demand_tokens(&self) -> usize {
        (0..self.requests_per_burst)
            .map(|i| self.prompt_len(i) + self.max_new_tokens)
            .sum::<usize>()
            * self.bursts
    }
}

/// Generates the overcommit workload: `bursts × requests_per_burst` prompts in
/// arrival order, burst-major (`PromptSpec::persona` carries the burst index).
/// Every prompt is an independent token stream — deliberately zero sharing, so
/// the only relief valves under pressure are preemption and tier migration.
///
/// # Example
///
/// ```
/// use lserve_workloads::{overcommit_workload, OvercommitConfig};
///
/// let cfg = OvercommitConfig::small();
/// let reqs = overcommit_workload(&cfg);
/// assert_eq!(reqs.len(), cfg.total_requests());
/// assert!(reqs.iter().all(|r| r.prompt_len() >= cfg.context_tokens));
/// // No two prompts share a prefix worth caching.
/// assert_ne!(reqs[0].prompt[..8], reqs[1].prompt[..8]);
/// ```
pub fn overcommit_workload(cfg: &OvercommitConfig) -> Vec<PromptSpec> {
    let mut g = SeededGaussian::new(cfg.seed);
    let mut out = Vec::with_capacity(cfg.total_requests());
    for burst in 0..cfg.bursts {
        for i in 0..cfg.requests_per_burst {
            let len = cfg.prompt_len(i);
            let prompt: Vec<u32> = (0..len)
                .map(|_| g.index(cfg.vocab as usize) as u32)
                .collect();
            out.push(PromptSpec {
                persona: burst,
                prompt,
                max_new_tokens: cfg.max_new_tokens,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let cfg = OvercommitConfig::small();
        let a = overcommit_workload(&cfg);
        assert_eq!(a, overcommit_workload(&cfg));
        assert_eq!(a.len(), 8);
        let mut other = cfg;
        other.seed ^= 1;
        assert_ne!(a, overcommit_workload(&other));
    }

    #[test]
    fn burst_structure_and_jitter() {
        let cfg = OvercommitConfig::small();
        let reqs = overcommit_workload(&cfg);
        for (n, r) in reqs.iter().enumerate() {
            assert_eq!(r.persona, n / cfg.requests_per_burst, "burst-major order");
            let i = n % cfg.requests_per_burst;
            assert_eq!(r.prompt_len(), cfg.prompt_len(i));
            assert!(r.prompt.iter().all(|&t| t < cfg.vocab));
        }
        assert_eq!(reqs[3].prompt_len(), cfg.max_prompt_len());
    }

    #[test]
    fn migration_bench_extends_the_decode_phase() {
        let small = OvercommitConfig::small();
        let bench = OvercommitConfig::migration_bench();
        assert!(bench.max_new_tokens > small.max_new_tokens);
        assert_eq!(bench.total_requests(), small.total_requests());
        assert_ne!(
            overcommit_workload(&bench)[0].prompt,
            overcommit_workload(&small)[0].prompt,
            "distinct seed: the scenes must not alias"
        );
    }

    #[test]
    fn hierarchy_bench_adds_a_burst() {
        let mig = OvercommitConfig::migration_bench();
        let hier = OvercommitConfig::hierarchy_bench();
        assert!(hier.bursts > mig.bursts, "more bursts: deeper backlog");
        assert_eq!(hier.max_new_tokens, mig.max_new_tokens);
        assert_ne!(
            overcommit_workload(&hier)[0].prompt,
            overcommit_workload(&mig)[0].prompt,
            "distinct seed: the scenes must not alias"
        );
    }

    #[test]
    fn aggregate_demand_exceeds_any_single_request() {
        let cfg = OvercommitConfig::small();
        assert!(
            cfg.aggregate_demand_tokens() > 4 * (cfg.max_prompt_len() + cfg.max_new_tokens),
            "the workload must be able to oversubscribe a single-sequence tier"
        );
    }

    #[test]
    fn prompts_are_pairwise_unshared() {
        let reqs = overcommit_workload(&OvercommitConfig::small());
        for a in 0..reqs.len() {
            for b in a + 1..reqs.len() {
                assert_ne!(
                    reqs[a].prompt[..16],
                    reqs[b].prompt[..16],
                    "requests {a} and {b} share a prefix"
                );
            }
        }
    }
}
