//! The flat (Quest-style) page selector: physical-page-granularity statistics.

use lserve_kvcache::{DenseHeadCache, PagePool};

use crate::{finalize_selection, physical_scores_flat, PageSelector, Selection};

/// Quest's query-aware selection at physical-page granularity (Tang et al., 2024).
///
/// One min/max representative summarizes each physical page; the top
/// `budget_tokens / N_P` pages win. Accurate for small pages (≤16 tokens), but the
/// representative homogenizes as `N_P` grows — the failure mode LServe's hierarchical
/// paging fixes (Figure 6 vs. Figure 13).
///
/// # Example
///
/// ```
/// use lserve_kvcache::{DenseHeadCache, PagePool, PagingConfig};
/// use lserve_quant::KvPrecision;
/// use lserve_selector::{FlatSelector, PageSelector};
///
/// let cfg = PagingConfig::flat(2, KvPrecision::Fp16);
/// let mut pool = PagePool::new(cfg, 16, 2);
/// let mut cache = DenseHeadCache::new();
/// for i in 0..8 {
///     cache.append(&mut pool, &[i as f32, 0.0], &[0.0, 0.0]);
/// }
/// let mut sel = FlatSelector::new(true);
/// let q = [1.0f32, 0.0];
/// let s = sel.select(&pool, &cache, &[&q], 4, 0);
/// assert!(s.pages.contains(&3)); // most recent page always present
/// ```
#[derive(Debug, Clone)]
pub struct FlatSelector {
    include_first: bool,
}

impl FlatSelector {
    /// Creates the selector; `include_first` forces the first (sink) page into every
    /// selection, matching Quest's handling of initial tokens.
    pub fn new(include_first: bool) -> Self {
        Self { include_first }
    }
}

impl Default for FlatSelector {
    fn default() -> Self {
        Self::new(true)
    }
}

impl PageSelector for FlatSelector {
    fn select(
        &mut self,
        pool: &PagePool,
        cache: &DenseHeadCache,
        queries: &[&[f32]],
        budget_tokens: usize,
        _step: usize,
    ) -> Selection {
        let np = pool.config().physical_page_size();
        let scores = physical_scores_flat(pool, cache, queries);
        let budget_pages = (budget_tokens / np).max(1);
        let pages =
            finalize_selection(&scores, cache.num_pages(), budget_pages, self.include_first);
        Selection {
            pages,
            // Flat scoring touches one representative per physical page.
            logical_pages_scored: cache.num_pages() as u64,
            reused: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lserve_kvcache::PagingConfig;
    use lserve_quant::KvPrecision;

    fn build(keys: &[[f32; 2]], np: usize) -> (PagePool, DenseHeadCache) {
        let cfg = PagingConfig::flat(np, KvPrecision::Fp16);
        let mut pool = PagePool::new(cfg, 128, 2);
        let mut cache = DenseHeadCache::new();
        for k in keys {
            assert!(cache.append(&mut pool, k, &[0.0, 0.0]));
        }
        (pool, cache)
    }

    #[test]
    fn selects_highest_scoring_page() {
        // Page 2 (tokens 4-5) holds the "needle" key aligned with the query.
        let keys = [
            [0.1, 0.0],
            [0.1, 0.0],
            [0.0, 0.1],
            [0.0, 0.1],
            [9.0, 0.0],
            [0.1, 0.0],
            [0.0, 0.2],
            [0.1, 0.1],
        ];
        let (pool, cache) = build(&keys, 2);
        let q = [1.0f32, 0.0];
        let mut sel = FlatSelector::new(false);
        let s = sel.select(&pool, &cache, &[&q], 4, 0);
        assert!(
            s.pages.contains(&2),
            "needle page must be selected: {:?}",
            s.pages
        );
        assert!(s.pages.contains(&3), "last page forced");
        assert!(!s.reused);
    }

    #[test]
    fn budget_caps_page_count() {
        let keys: Vec<[f32; 2]> = (0..32).map(|i| [i as f32 * 0.01, 0.0]).collect();
        let (pool, cache) = build(&keys, 2);
        let q = [1.0f32, 0.0];
        let mut sel = FlatSelector::new(true);
        let s = sel.select(&pool, &cache, &[&q], 8, 0); // 4 pages of 2 tokens
        assert!(s.pages.len() <= 4, "{:?}", s.pages);
    }

    #[test]
    fn budget_above_history_selects_everything() {
        let keys: Vec<[f32; 2]> = (0..8).map(|i| [i as f32, 0.0]).collect();
        let (pool, cache) = build(&keys, 2);
        let q = [1.0f32, 0.0];
        let mut sel = FlatSelector::new(true);
        let s = sel.select(&pool, &cache, &[&q], 1_000_000, 0);
        assert_eq!(s.pages, vec![0, 1, 2, 3]);
    }

    #[test]
    fn scoring_cost_is_one_per_physical_page() {
        let keys: Vec<[f32; 2]> = (0..20).map(|_| [0.0, 0.0]).collect();
        let (pool, cache) = build(&keys, 2);
        let q = [1.0f32, 0.0];
        let mut sel = FlatSelector::new(true);
        let s = sel.select(&pool, &cache, &[&q], 4, 0);
        assert_eq!(s.logical_pages_scored, 10);
    }
}
