//! Reusable page selection (§3.5.3): amortize the selector across decode steps.

use lserve_kvcache::{DenseHeadCache, PagePool};

use crate::{PageSelector, Selection};

/// Wraps an inner selector and re-runs it only at the start of every
/// `reuse_interval`-step chunk; the steps in between replay the cached selection
/// (Figure 8). Temporal locality of decode queries makes this nearly lossless up to
/// an interval of ~8 (Table 6); the paper defaults to 4.
///
/// The most recent page index is refreshed on every step even when reusing, so the
/// newly written tokens stay attendable as the history crosses page boundaries.
///
/// # Example
///
/// ```
/// use lserve_kvcache::{DenseHeadCache, PagePool, PagingConfig};
/// use lserve_quant::KvPrecision;
/// use lserve_selector::{HierarchicalSelector, PageSelector, ReusableSelector};
///
/// let cfg = PagingConfig::new(4, 2, KvPrecision::Fp16);
/// let mut pool = PagePool::new(cfg, 64, 2);
/// let mut cache = DenseHeadCache::new();
/// for i in 0..16 {
///     cache.append(&mut pool, &[i as f32, 0.0], &[0.0, 0.0]);
/// }
/// let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), 4);
/// let q = [1.0f32, 0.0];
/// let fresh = sel.select(&pool, &cache, &[&q], 8, 0);
/// let reused = sel.select(&pool, &cache, &[&q], 8, 1);
/// assert!(!fresh.reused && reused.reused);
/// assert_eq!(reused.logical_pages_scored, 0);
/// ```
#[derive(Debug, Clone)]
pub struct ReusableSelector<S> {
    inner: S,
    reuse_interval: usize,
    cached: Option<Selection>,
    last_scored_step: Option<usize>,
    invocations: u64,
    reuses: u64,
}

impl<S: PageSelector> ReusableSelector<S> {
    /// Wraps `inner` with the given reuse interval `C >= 1` (interval 1 disables
    /// reuse).
    ///
    /// # Panics
    ///
    /// Panics if `reuse_interval == 0`.
    pub fn new(inner: S, reuse_interval: usize) -> Self {
        assert!(reuse_interval >= 1, "reuse interval must be >= 1");
        Self {
            inner,
            reuse_interval,
            cached: None,
            last_scored_step: None,
            invocations: 0,
            reuses: 0,
        }
    }

    /// The configured reuse interval `C`.
    pub fn reuse_interval(&self) -> usize {
        self.reuse_interval
    }

    /// Times the inner selector actually scored pages.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Times a cached selection was replayed.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// The wrapped selector.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: PageSelector> PageSelector for ReusableSelector<S> {
    fn select(
        &mut self,
        pool: &PagePool,
        cache: &DenseHeadCache,
        queries: &[&[f32]],
        budget_tokens: usize,
        step: usize,
    ) -> Selection {
        let due = match (self.last_scored_step, &self.cached) {
            (Some(last), Some(_)) => step < last || step - last >= self.reuse_interval,
            _ => true,
        };
        if due {
            let sel = self.inner.select(pool, cache, queries, budget_tokens, step);
            self.last_scored_step = Some(step);
            self.invocations += 1;
            self.cached = Some(sel.clone());
            sel
        } else {
            self.reuses += 1;
            let mut sel = self.cached.clone().expect("cached selection checked above");
            // Keep the newest page attendable as history grows across page
            // boundaries between selector runs.
            let last_page = cache.num_pages().saturating_sub(1);
            if cache.num_pages() > 0 && !sel.pages.contains(&last_page) {
                sel.pages.push(last_page);
                sel.pages.sort_unstable();
            }
            sel.logical_pages_scored = 0;
            sel.reused = true;
            sel
        }
    }

    fn reset(&mut self) {
        self.cached = None;
        self.last_scored_step = None;
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HierarchicalSelector;
    use lserve_kvcache::PagingConfig;
    use lserve_quant::KvPrecision;

    fn build(n: usize) -> (PagePool, DenseHeadCache) {
        let cfg = PagingConfig::new(4, 2, KvPrecision::Fp16);
        let mut pool = PagePool::new(cfg, 256, 2);
        let mut cache = DenseHeadCache::new();
        for i in 0..n {
            assert!(cache.append(&mut pool, &[(i % 7) as f32, 1.0], &[0.0, 0.0]));
        }
        (pool, cache)
    }

    #[test]
    fn interval_one_never_reuses() {
        let (pool, cache) = build(32);
        let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), 1);
        let q = [1.0f32, 0.0];
        for step in 0..8 {
            let s = sel.select(&pool, &cache, &[&q], 8, step);
            assert!(!s.reused, "step {step}");
        }
        assert_eq!(sel.invocations(), 8);
        assert_eq!(sel.reuses(), 0);
    }

    #[test]
    fn interval_four_scores_every_fourth_step() {
        let (pool, cache) = build(32);
        let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), 4);
        let q = [1.0f32, 0.0];
        let mut fresh_steps = Vec::new();
        for step in 0..12 {
            let s = sel.select(&pool, &cache, &[&q], 8, step);
            if !s.reused {
                fresh_steps.push(step);
            }
        }
        assert_eq!(fresh_steps, vec![0, 4, 8]);
        assert_eq!(sel.invocations(), 3);
        assert_eq!(sel.reuses(), 9);
    }

    #[test]
    fn reuse_matches_fresh_selection_within_chunk() {
        let (pool, cache) = build(40);
        let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), 4);
        let q = [1.0f32, 0.5];
        let fresh = sel.select(&pool, &cache, &[&q], 12, 0);
        let reused = sel.select(&pool, &cache, &[&q], 12, 1);
        assert_eq!(fresh.pages, reused.pages);
    }

    #[test]
    fn reused_selection_tracks_new_last_page() {
        let cfg = PagingConfig::new(4, 2, KvPrecision::Fp16);
        let mut pool = PagePool::new(cfg, 256, 2);
        let mut cache = DenseHeadCache::new();
        for i in 0..8 {
            cache.append(&mut pool, &[i as f32, 0.0], &[0.0, 0.0]);
        }
        let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), 8);
        let q = [1.0f32, 0.0];
        let _ = sel.select(&pool, &cache, &[&q], 8, 0);
        // History grows into a new page between steps.
        for i in 8..13 {
            cache.append(&mut pool, &[i as f32, 0.0], &[0.0, 0.0]);
        }
        let s = sel.select(&pool, &cache, &[&q], 8, 1);
        assert!(s.reused);
        assert!(s.pages.contains(&(cache.num_pages() - 1)));
    }

    #[test]
    fn reset_forces_rescore() {
        let (pool, cache) = build(16);
        let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), 4);
        let q = [1.0f32, 0.0];
        let _ = sel.select(&pool, &cache, &[&q], 8, 0);
        sel.reset();
        let s = sel.select(&pool, &cache, &[&q], 8, 1);
        assert!(!s.reused);
    }

    #[test]
    fn step_regression_triggers_rescore() {
        let (pool, cache) = build(16);
        let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), 4);
        let q = [1.0f32, 0.0];
        let _ = sel.select(&pool, &cache, &[&q], 8, 10);
        let s = sel.select(&pool, &cache, &[&q], 8, 2); // new sequence semantics
        assert!(!s.reused);
    }
}
