//! Reusable page selection (§3.5.3): amortize the selector across decode steps.

use lserve_kvcache::{DenseHeadCache, PagePool};

use crate::{PageSelector, Selection};

/// Wraps an inner selector and re-runs it only at the start of every
/// `reuse_interval`-step chunk; the steps in between replay the cached selection
/// (Figure 8). Temporal locality of decode queries makes this nearly lossless up to
/// an interval of ~8 (Table 6); the paper defaults to 4.
///
/// The most recent page index is refreshed on every step even when reusing, so the
/// newly written tokens stay attendable as the history crosses page boundaries.
///
/// # Example
///
/// ```
/// use lserve_kvcache::{DenseHeadCache, PagePool, PagingConfig};
/// use lserve_quant::KvPrecision;
/// use lserve_selector::{HierarchicalSelector, PageSelector, ReusableSelector};
///
/// let cfg = PagingConfig::new(4, 2, KvPrecision::Fp16);
/// let mut pool = PagePool::new(cfg, 64, 2);
/// let mut cache = DenseHeadCache::new();
/// for i in 0..16 {
///     cache.append(&mut pool, &[i as f32, 0.0], &[0.0, 0.0]);
/// }
/// let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), 4);
/// let q = [1.0f32, 0.0];
/// let fresh = sel.select(&pool, &cache, &[&q], 8, 0);
/// let reused = sel.select(&pool, &cache, &[&q], 8, 1);
/// assert!(!fresh.reused && reused.reused);
/// assert_eq!(reused.logical_pages_scored, 0);
/// ```
#[derive(Debug, Clone)]
pub struct ReusableSelector<S> {
    inner: S,
    reuse_interval: usize,
    cached: Option<Selection>,
    last_scored_step: Option<usize>,
    invocations: u64,
    reuses: u64,
    /// Fresh scoring events so far (the selection-chunk clock).
    chunks_scored: u64,
    /// Per physical-page index: the chunk at which the page was last part of a
    /// fresh selection. Pages first seen by a fresh selection start at that
    /// chunk, so a page is never "stale" before it had `k` chances to be
    /// re-picked.
    last_selected_chunk: Vec<u64>,
}

impl<S: PageSelector> ReusableSelector<S> {
    /// Wraps `inner` with the given reuse interval `C >= 1` (interval 1 disables
    /// reuse).
    ///
    /// # Panics
    ///
    /// Panics if `reuse_interval == 0`.
    pub fn new(inner: S, reuse_interval: usize) -> Self {
        assert!(reuse_interval >= 1, "reuse interval must be >= 1");
        Self {
            inner,
            reuse_interval,
            cached: None,
            last_scored_step: None,
            invocations: 0,
            reuses: 0,
            chunks_scored: 0,
            last_selected_chunk: Vec::new(),
        }
    }

    /// The configured reuse interval `C`.
    pub fn reuse_interval(&self) -> usize {
        self.reuse_interval
    }

    /// Times the inner selector actually scored pages.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Times a cached selection was replayed.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// The wrapped selector.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Fresh scoring events so far (the chunk clock [`stale_pages`]
    /// staleness is measured against).
    ///
    /// [`stale_pages`]: ReusableSelector::stale_pages
    pub fn chunks_scored(&self) -> u64 {
        self.chunks_scored
    }

    /// Last-use tracking for the tiered KV memory's selection-driven demotion
    /// policy: physical page indices this selector has seen but **not** picked
    /// for at least `k` consecutive fresh selection chunks. Such pages are
    /// demotion candidates — the query stream has ignored them long enough
    /// that their KV can move to the cold tier, and a later selection that
    /// picks one again triggers an accounted promote.
    ///
    /// Pages forced into every selection (the most recent page, and the first
    /// page when sinks are included) are never stale. Pages appended since the
    /// last fresh scoring are unknown to the tracker and reported fresh.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (every page would be stale the moment it is scored).
    pub fn stale_pages(&self, k: usize) -> Vec<usize> {
        assert!(k >= 1, "staleness threshold must be at least one chunk");
        self.last_selected_chunk
            .iter()
            .enumerate()
            .filter(|&(_, &last)| self.chunks_scored.saturating_sub(last) >= k as u64)
            .map(|(p, _)| p)
            .collect()
    }

    /// The decode step at which the next [`select`] call will score afresh
    /// instead of replaying the cached selection — `None` before the first
    /// fresh scoring (including right after [`reset`]). The async copy
    /// engine's prefetch policy keys off this: cold pages predicted hot can
    /// start their host→device transfer one step before the selection that
    /// wants them actually runs, hiding the transfer behind compute.
    ///
    /// [`select`]: PageSelector::select
    /// [`reset`]: PageSelector::reset
    pub fn next_fresh_step(&self) -> Option<usize> {
        self.last_scored_step.map(|s| s + self.reuse_interval)
    }

    /// Prefetch candidates for the next fresh selection: physical page
    /// indices the last fresh scoring did **not** pick, ranked most recently
    /// selected first — decode queries' temporal locality makes a page that
    /// just dropped out of the selection the likeliest to be re-picked, and
    /// a long-stale page the least. Ties break on page index, so the ranking
    /// is deterministic.
    ///
    /// `window` bounds rescore proximity: only pages selected within the last
    /// `window` fresh scorings qualify. A page that has sat unselected for
    /// longer has lost its temporal locality — prefetching it is almost pure
    /// waste, because by the time the next rescore runs the query has drifted
    /// away from it.
    ///
    /// The list is residency-blind: callers filter for cold pages, skip the
    /// append target, and cap how many transfers they issue.
    pub fn prefetch_candidates(&self, window: u64) -> Vec<usize> {
        let mut cands: Vec<(u64, usize)> = self
            .last_selected_chunk
            .iter()
            .enumerate()
            .filter(|&(_, &last)| last < self.chunks_scored && self.chunks_scored - last <= window)
            .map(|(p, &last)| (last, p))
            .collect();
        cands.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        cands.into_iter().map(|(_, p)| p).collect()
    }
}

impl<S: PageSelector> PageSelector for ReusableSelector<S> {
    fn select(
        &mut self,
        pool: &PagePool,
        cache: &DenseHeadCache,
        queries: &[&[f32]],
        budget_tokens: usize,
        step: usize,
    ) -> Selection {
        let due = match (self.last_scored_step, &self.cached) {
            (Some(last), Some(_)) => step < last || step - last >= self.reuse_interval,
            _ => true,
        };
        if due {
            let sel = self.inner.select(pool, cache, queries, budget_tokens, step);
            self.last_scored_step = Some(step);
            self.invocations += 1;
            // Advance the chunk clock and record last-use per page. Pages that
            // appeared since the previous fresh scoring start life at this
            // chunk, so staleness always measures *missed* selection chances.
            self.chunks_scored += 1;
            if self.last_selected_chunk.len() < cache.num_pages() {
                self.last_selected_chunk
                    .resize(cache.num_pages(), self.chunks_scored);
            }
            for &p in &sel.pages {
                self.last_selected_chunk[p] = self.chunks_scored;
            }
            self.cached = Some(sel.clone());
            sel
        } else {
            self.reuses += 1;
            let mut sel = self.cached.clone().expect("cached selection checked above");
            // Keep the newest page attendable as history grows across page
            // boundaries between selector runs.
            let last_page = cache.num_pages().saturating_sub(1);
            if cache.num_pages() > 0 && !sel.pages.contains(&last_page) {
                sel.pages.push(last_page);
                sel.pages.sort_unstable();
            }
            sel.logical_pages_scored = 0;
            sel.reused = true;
            sel
        }
    }

    fn reset(&mut self) {
        self.cached = None;
        self.last_scored_step = None;
        self.chunks_scored = 0;
        self.last_selected_chunk.clear();
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HierarchicalSelector;
    use lserve_kvcache::PagingConfig;
    use lserve_quant::KvPrecision;

    fn build(n: usize) -> (PagePool, DenseHeadCache) {
        let cfg = PagingConfig::new(4, 2, KvPrecision::Fp16);
        let mut pool = PagePool::new(cfg, 256, 2);
        let mut cache = DenseHeadCache::new();
        for i in 0..n {
            assert!(cache.append(&mut pool, &[(i % 7) as f32, 1.0], &[0.0, 0.0]));
        }
        (pool, cache)
    }

    #[test]
    fn interval_one_never_reuses() {
        let (pool, cache) = build(32);
        let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), 1);
        let q = [1.0f32, 0.0];
        for step in 0..8 {
            let s = sel.select(&pool, &cache, &[&q], 8, step);
            assert!(!s.reused, "step {step}");
        }
        assert_eq!(sel.invocations(), 8);
        assert_eq!(sel.reuses(), 0);
    }

    #[test]
    fn interval_four_scores_every_fourth_step() {
        let (pool, cache) = build(32);
        let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), 4);
        let q = [1.0f32, 0.0];
        let mut fresh_steps = Vec::new();
        for step in 0..12 {
            let s = sel.select(&pool, &cache, &[&q], 8, step);
            if !s.reused {
                fresh_steps.push(step);
            }
        }
        assert_eq!(fresh_steps, vec![0, 4, 8]);
        assert_eq!(sel.invocations(), 3);
        assert_eq!(sel.reuses(), 9);
    }

    #[test]
    fn reuse_matches_fresh_selection_within_chunk() {
        let (pool, cache) = build(40);
        let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), 4);
        let q = [1.0f32, 0.5];
        let fresh = sel.select(&pool, &cache, &[&q], 12, 0);
        let reused = sel.select(&pool, &cache, &[&q], 12, 1);
        assert_eq!(fresh.pages, reused.pages);
    }

    #[test]
    fn reused_selection_tracks_new_last_page() {
        let cfg = PagingConfig::new(4, 2, KvPrecision::Fp16);
        let mut pool = PagePool::new(cfg, 256, 2);
        let mut cache = DenseHeadCache::new();
        for i in 0..8 {
            cache.append(&mut pool, &[i as f32, 0.0], &[0.0, 0.0]);
        }
        let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), 8);
        let q = [1.0f32, 0.0];
        let _ = sel.select(&pool, &cache, &[&q], 8, 0);
        // History grows into a new page between steps.
        for i in 8..13 {
            cache.append(&mut pool, &[i as f32, 0.0], &[0.0, 0.0]);
        }
        let s = sel.select(&pool, &cache, &[&q], 8, 1);
        assert!(s.reused);
        assert!(s.pages.contains(&(cache.num_pages() - 1)));
    }

    #[test]
    fn reset_forces_rescore() {
        let (pool, cache) = build(16);
        let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), 4);
        let q = [1.0f32, 0.0];
        let _ = sel.select(&pool, &cache, &[&q], 8, 0);
        sel.reset();
        let s = sel.select(&pool, &cache, &[&q], 8, 1);
        assert!(!s.reused);
    }

    #[test]
    fn stale_pages_track_missed_selection_chunks() {
        let (pool, cache) = build(32); // 8 pages
        let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), 1);
        let q = [1.0f32, 0.0];
        // Budget of 8 tokens = 2 pages: most pages lose every selection.
        let first = sel.select(&pool, &cache, &[&q], 8, 0);
        assert_eq!(sel.chunks_scored(), 1);
        assert!(
            sel.stale_pages(1).is_empty(),
            "pages first seen this chunk have missed nothing yet"
        );
        for step in 1..4 {
            let _ = sel.select(&pool, &cache, &[&q], 8, step);
        }
        let stale = sel.stale_pages(3);
        assert!(!stale.is_empty(), "unpicked pages must go stale");
        // Selected pages (stable across steps for a constant query) are fresh.
        for p in &first.pages {
            assert!(!stale.contains(p), "selected page {p} reported stale");
        }
        // The forced most-recent page is re-marked every fresh selection.
        assert!(!stale.contains(&(cache.num_pages() - 1)));
        // A higher threshold is strictly more conservative.
        assert!(sel.stale_pages(4).len() <= stale.len());
    }

    #[test]
    fn stale_pages_reset_with_selector() {
        let (pool, cache) = build(32);
        let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), 1);
        let q = [1.0f32, 0.0];
        for step in 0..5 {
            let _ = sel.select(&pool, &cache, &[&q], 8, step);
        }
        assert!(!sel.stale_pages(2).is_empty());
        sel.reset();
        assert_eq!(sel.chunks_scored(), 0);
        assert!(sel.stale_pages(1).is_empty(), "reset clears last-use state");
    }

    #[test]
    fn reuse_steps_do_not_advance_staleness() {
        let (pool, cache) = build(40);
        let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), 4);
        let q = [1.0f32, 0.5];
        let _ = sel.select(&pool, &cache, &[&q], 8, 0);
        let before = sel.stale_pages(1).len();
        for step in 1..4 {
            let s = sel.select(&pool, &cache, &[&q], 8, step);
            assert!(s.reused);
        }
        assert_eq!(
            sel.stale_pages(1).len(),
            before,
            "replayed selections must not age pages"
        );
        assert_eq!(sel.chunks_scored(), 1);
    }

    #[test]
    fn next_fresh_step_predicts_the_rescore() {
        let (pool, cache) = build(32);
        let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), 4);
        let q = [1.0f32, 0.0];
        assert_eq!(sel.next_fresh_step(), None, "nothing scored yet");
        for step in 0..12 {
            // Under a monotone step cadence the prediction is exact: a step
            // scores afresh iff it has reached the predicted fresh step.
            let predicted_fresh = sel.next_fresh_step().is_none_or(|s| step >= s);
            let s = sel.select(&pool, &cache, &[&q], 8, step);
            assert_eq!(!s.reused, predicted_fresh, "step {step}");
        }
        assert_eq!(
            sel.next_fresh_step(),
            Some(12),
            "fresh at 0, 4, 8 — next 12"
        );
        sel.reset();
        assert_eq!(sel.next_fresh_step(), None, "reset clears the prediction");
    }

    #[test]
    fn prefetch_candidates_rank_recent_losers_first() {
        let (pool, cache) = build(32); // 8 pages
        let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), 1);
        let q = [1.0f32, 0.0];
        let first = sel.select(&pool, &cache, &[&q], 8, 0);
        assert!(
            sel.prefetch_candidates(u64::MAX).is_empty(),
            "every page was seen (or selected) this chunk"
        );
        for step in 1..4 {
            let _ = sel.select(&pool, &cache, &[&q], 8, step);
        }
        let cands = sel.prefetch_candidates(u64::MAX);
        assert!(!cands.is_empty(), "unpicked pages are candidates");
        // Currently-selected pages never appear.
        for p in &first.pages {
            assert!(!cands.contains(p), "selected page {p} offered for prefetch");
        }
        // Ranking is by last-selected chunk, descending; ties by page index.
        let rank: Vec<u64> = cands.iter().map(|&p| sel.last_selected_chunk[p]).collect();
        assert!(rank.windows(2).all(|w| w[0] >= w[1]), "not recency-ranked");
        // An unbounded window is a superset of the stale set: staleness
        // demotes, recency prefetches, both read the same clock.
        for p in sel.stale_pages(3) {
            assert!(cands.contains(&p));
        }
        // A tight window keeps only the freshest losers: everything it
        // returns dropped out within the last `window` rescores, and the
        // ranking is the same prefix the unbounded call produced.
        let tight = sel.prefetch_candidates(1);
        assert_eq!(tight.as_slice(), &cands[..tight.len()], "window reorders");
        for &p in &tight {
            assert!(
                sel.chunks_scored - sel.last_selected_chunk[p] <= 1,
                "page {p} is staler than the window"
            );
        }
        for p in sel.stale_pages(2) {
            assert!(
                !tight.contains(&p),
                "long-stale page {p} survived the recency window"
            );
        }
        sel.reset();
        assert!(sel.prefetch_candidates(u64::MAX).is_empty());
    }

    #[test]
    fn step_regression_triggers_rescore() {
        let (pool, cache) = build(16);
        let mut sel = ReusableSelector::new(HierarchicalSelector::new(true), 4);
        let q = [1.0f32, 0.0];
        let _ = sel.select(&pool, &cache, &[&q], 8, 10);
        let s = sel.select(&pool, &cache, &[&q], 8, 2); // new sequence semantics
        assert!(!s.reused);
    }
}
