//! Query-centric KV page selectors (§3.5).
//!
//! During decode, dense heads restrict attention to a constant token budget of
//! "important" physical pages. This crate implements the three selection policies the
//! paper compares:
//!
//! * [`FlatSelector`] — the Quest baseline: one min/max representative per *physical*
//!   page. Sharp when pages are small, homogenized and unreliable when pages grow
//!   (the page-size dilemma of Figure 6).
//! * [`HierarchicalSelector`] — LServe's hierarchical paging (§3.5.2): scores at the
//!   *logical* page granularity `N_L` and max-reduces into physical page scores, so
//!   selection quality is decoupled from the memory layout's page size `N_P`.
//! * [`ReusableSelector`] — the reuse wrapper (§3.5.3): runs its inner selector only
//!   at the start of every `C`-step chunk and replays the cached selection in
//!   between, cutting selector overhead by `C×` (Figure 14) with negligible accuracy
//!   loss up to `C ≈ 8` (Table 6).
//!
//! All selectors guarantee the **most recent page** is part of the selection (the
//! current token must always be attendable; §3.1 exempts the most recent KV block)
//! and, by default, the first (sink) page as well.

pub mod flat;
pub mod hierarchical;
pub mod reusable;
pub mod score;
pub mod topk;

pub use flat::FlatSelector;
pub use hierarchical::HierarchicalSelector;
pub use reusable::ReusableSelector;
pub use score::{logical_scores, physical_scores_flat, physical_scores_hierarchical};
pub use topk::top_k_indices;

use lserve_kvcache::{DenseHeadCache, PagePool};

/// Result of one page-selection call.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Selection {
    /// Indices into the head's physical page table, ascending, deduplicated.
    pub pages: Vec<usize>,
    /// Logical pages scored to produce this selection (0 when a cached selection
    /// was reused) — the unit of selector overhead in Figure 14.
    pub logical_pages_scored: u64,
    /// True if this call reused a previous selection instead of scoring.
    pub reused: bool,
}

impl Selection {
    /// Tokens covered by the selection.
    pub fn token_coverage(&self, pool: &PagePool, cache: &DenseHeadCache) -> usize {
        self.pages
            .iter()
            .map(|&p| pool.page(cache.page_table()[p]).len())
            .sum()
    }

    /// Sparsity-aware decode cost signal: the exact KV tokens a decode kernel
    /// restricted to this selection will visit — [`Selection::token_coverage`]
    /// in the `u64` unit the LPT shard balancer consumes. (Every dense page
    /// except the table's final one is full by construction, so the only
    /// partial contribution is the final page's occupancy; page lengths are
    /// metadata and stay readable even for pages demoted to the cold tier.)
    /// Parallel executors feed this into the LPT shard assignment so a
    /// selected dense head is costed by its *selected* page set, not its full
    /// history.
    ///
    /// # Panics
    ///
    /// Panics if a selected index is out of `cache`'s page-table range.
    pub fn estimated_cost_tokens(&self, pool: &PagePool, cache: &DenseHeadCache) -> u64 {
        self.token_coverage(pool, cache) as u64
    }
}

/// A page-selection policy for one dense head.
///
/// `queries` holds the query rows of every query head mapped onto this KV head (one
/// row for MHA, `n` rows for GQA); implementations take the max importance over the
/// group so no query head's critical pages are dropped. `budget_tokens` is the
/// constant KV token budget (e.g. 4096); `step` is the decode step index, used by
/// [`ReusableSelector`] for chunk boundaries.
pub trait PageSelector {
    /// Selects physical pages for this decode step.
    fn select(
        &mut self,
        pool: &PagePool,
        cache: &DenseHeadCache,
        queries: &[&[f32]],
        budget_tokens: usize,
        step: usize,
    ) -> Selection;

    /// Resets any cross-step state (new sequence).
    fn reset(&mut self) {}
}

/// Shared post-processing: converts physical-page scores into the final selection
/// under a page budget, forcing the most recent page (and optionally the first page)
/// into the result.
pub(crate) fn finalize_selection(
    scores: &[f32],
    num_pages: usize,
    budget_pages: usize,
    include_first: bool,
) -> Vec<usize> {
    if num_pages == 0 {
        return Vec::new();
    }
    let budget_pages = budget_pages.max(1);
    let mut forced: Vec<usize> = Vec::new();
    if include_first {
        forced.push(0);
    }
    if *forced.last().unwrap_or(&usize::MAX) != num_pages - 1 {
        forced.push(num_pages - 1); // most recent page, always attendable
    }
    let mut chosen: Vec<usize> = forced.clone();
    for idx in top_k_indices(scores, num_pages) {
        if chosen.len() >= budget_pages.max(forced.len()) {
            break;
        }
        if !chosen.contains(&idx) {
            chosen.push(idx);
        }
    }
    chosen.sort_unstable();
    chosen.dedup();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalize_forces_first_and_last() {
        let scores = [0.1, 0.9, 0.8, 0.2, 0.3];
        let sel = finalize_selection(&scores, 5, 3, true);
        assert!(sel.contains(&0));
        assert!(sel.contains(&4));
        assert!(sel.contains(&1)); // top score
        assert_eq!(sel.len(), 3);
    }

    #[test]
    fn finalize_without_first() {
        let scores = [0.9, 0.1, 0.1, 0.1];
        let sel = finalize_selection(&scores, 4, 2, false);
        assert!(sel.contains(&3));
        assert!(sel.contains(&0)); // by score, not forced
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn finalize_budget_below_forced_still_includes_forced() {
        let scores = [0.5, 0.5, 0.5];
        let sel = finalize_selection(&scores, 3, 1, true);
        assert!(sel.contains(&0) && sel.contains(&2));
    }

    #[test]
    fn finalize_empty_table() {
        assert!(finalize_selection(&[], 0, 4, true).is_empty());
    }

    #[test]
    fn cost_signal_counts_exact_last_page_occupancy() {
        use lserve_kvcache::PagingConfig;
        use lserve_quant::KvPrecision;
        let cfg = PagingConfig::new(4, 2, KvPrecision::Fp16);
        let mut pool = PagePool::new(cfg, 64, 2);
        let mut cache = DenseHeadCache::new();
        // 10 tokens over 4-token pages: pages 0 and 1 full, page 2 holds 2.
        for i in 0..10 {
            assert!(cache.append(&mut pool, &[i as f32, 0.0], &[0.0, 0.0]));
        }
        let sel = Selection {
            pages: vec![0, 2],
            logical_pages_scored: 12,
            reused: false,
        };
        // Exact: 4 (full page 0) + 2 (partial last page), not the 8-token
        // full-page upper bound.
        assert_eq!(sel.estimated_cost_tokens(&pool, &cache), 4 + 2);
        assert_eq!(
            sel.estimated_cost_tokens(&pool, &cache),
            sel.token_coverage(&pool, &cache) as u64,
            "middle pages are always full, so the estimate is exact"
        );
        let full = Selection {
            pages: vec![0, 1],
            logical_pages_scored: 0,
            reused: false,
        };
        assert_eq!(full.estimated_cost_tokens(&pool, &cache), 8);
        assert_eq!(Selection::default().estimated_cost_tokens(&pool, &cache), 0);
    }

    #[test]
    fn finalize_output_sorted_unique() {
        let scores = [0.4, 0.6, 0.2, 0.9, 0.1, 0.7];
        let sel = finalize_selection(&scores, 6, 5, true);
        let mut sorted = sel.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sel, sorted);
    }
}
