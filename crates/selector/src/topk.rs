//! Deterministic top-k index selection.

/// Indices of the `k` largest scores, in descending score order; ties break toward
/// the lower index. `k` larger than the input yields all indices.
///
/// # Example
///
/// ```
/// use lserve_selector::top_k_indices;
///
/// assert_eq!(top_k_indices(&[0.1, 0.9, 0.5], 2), vec![1, 2]);
/// ```
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_largest() {
        assert_eq!(top_k_indices(&[3.0, 1.0, 2.0], 2), vec![0, 2]);
    }

    #[test]
    fn ties_break_low_index_first() {
        assert_eq!(top_k_indices(&[1.0, 1.0, 1.0], 2), vec![0, 1]);
    }

    #[test]
    fn k_exceeding_len_returns_all() {
        assert_eq!(top_k_indices(&[1.0, 2.0], 10), vec![1, 0]);
    }

    #[test]
    fn handles_neg_infinity() {
        let scores = [f32::NEG_INFINITY, 0.0, f32::NEG_INFINITY];
        assert_eq!(top_k_indices(&scores, 1), vec![1]);
    }

    #[test]
    fn empty_input() {
        assert!(top_k_indices(&[], 3).is_empty());
    }

    #[test]
    fn matches_brute_force_sort() {
        let scores: Vec<f32> = (0..50).map(|i| ((i * 37 % 19) as f32).sin()).collect();
        let got = top_k_indices(&scores, 50);
        for w in got.windows(2) {
            assert!(scores[w[0]] >= scores[w[1]]);
        }
    }
}
