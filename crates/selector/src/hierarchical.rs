//! LServe's hierarchical page selector (§3.5.2).

use lserve_kvcache::{DenseHeadCache, PagePool};

use crate::{finalize_selection, physical_scores_hierarchical, PageSelector, Selection};

/// Hierarchical paging: scores at the logical page granularity `N_L`, max-reduces to
/// physical pages of `N_P = g · N_L` tokens, then selects top-K physical pages under
/// the token budget.
///
/// Decoupling the scoring granularity from the memory granularity preserves sharp
/// statistics on large, bandwidth-friendly pages (Figure 13: `N_P = 64, N_L = 16`
/// matches the accuracy of flat selection at page size 16). Spatial locality of
/// important tokens keeps the effective budget requirement flat (§3.5.3's locality
/// argument).
#[derive(Debug, Clone)]
pub struct HierarchicalSelector {
    include_first: bool,
}

impl HierarchicalSelector {
    /// Creates the selector; `include_first` forces the first (sink) page into every
    /// selection.
    pub fn new(include_first: bool) -> Self {
        Self { include_first }
    }
}

impl Default for HierarchicalSelector {
    fn default() -> Self {
        Self::new(true)
    }
}

impl PageSelector for HierarchicalSelector {
    fn select(
        &mut self,
        pool: &PagePool,
        cache: &DenseHeadCache,
        queries: &[&[f32]],
        budget_tokens: usize,
        _step: usize,
    ) -> Selection {
        let np = pool.config().physical_page_size();
        let g = pool.config().logical_per_physical();
        let scores = physical_scores_hierarchical(pool, cache, queries);
        let budget_pages = (budget_tokens / np).max(1);
        let pages =
            finalize_selection(&scores, cache.num_pages(), budget_pages, self.include_first);
        Selection {
            pages,
            logical_pages_scored: (cache.num_pages() * g) as u64,
            reused: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlatSelector;
    use lserve_kvcache::PagingConfig;
    use lserve_quant::KvPrecision;
    use lserve_tensor::SeededGaussian;

    fn build(np: usize, nl: usize, n: usize, seed: u64) -> (PagePool, DenseHeadCache) {
        let cfg = PagingConfig::new(np, nl, KvPrecision::Fp16);
        let mut pool = PagePool::new(cfg, 4096, 4);
        let mut cache = DenseHeadCache::new();
        let mut g = SeededGaussian::new(seed);
        for _ in 0..n {
            let k: Vec<f32> = (0..4).map(|_| g.sample() * 0.3).collect();
            assert!(cache.append(&mut pool, &k, &[0.0; 4]));
        }
        (pool, cache)
    }

    #[test]
    fn equals_flat_when_geometry_is_flat() {
        let (pool, cache) = build(4, 4, 40, 3);
        let mut g = SeededGaussian::new(12);
        let q: Vec<f32> = (0..4).map(|_| g.sample()).collect();
        let mut h = HierarchicalSelector::new(true);
        let mut f = FlatSelector::new(true);
        let sh = h.select(&pool, &cache, &[&q], 12, 0);
        let sf = f.select(&pool, &cache, &[&q], 12, 0);
        assert_eq!(sh.pages, sf.pages);
    }

    #[test]
    fn finds_needle_that_flat_misses() {
        // Construct a page where the needle's direction is masked by other tokens in
        // the same physical page when merged, but visible at logical granularity.
        let cfg = PagingConfig::new(4, 2, KvPrecision::Fp16);
        let mut pool = PagePool::new(cfg, 64, 2);
        let mut cache = DenseHeadCache::new();
        // Physical page 0: logical (a) = needle-ish, logical (b) = anti-correlated.
        let rows: Vec<[f32; 2]> = vec![
            [5.0, -5.0],
            [5.0, -5.0], // logical a: strong +ch0, -ch1
            [-5.0, 5.0],
            [-5.0, 5.0], // logical b: opposite
            // Physical page 1: mild noise.
            [0.1, 0.1],
            [0.1, -0.1],
            [-0.1, 0.1],
            [0.1, 0.1],
            // Physical page 2 (last): recent tokens.
            [0.0, 0.0],
            [0.0, 0.0],
        ];
        for r in &rows {
            assert!(cache.append(&mut pool, r, &[0.0, 0.0]));
        }
        let q = [1.0f32, 1.0];
        // Hierarchical: page 0 logical scores are 0 (5-5) for both → physical 0
        // scores 0. Flat: merged min/max gives kmax=[5,5] → score 10 (phantom).
        let hier = crate::physical_scores_hierarchical(&pool, &cache, &[&q]);
        let flat = crate::physical_scores_flat(&pool, &cache, &[&q]);
        assert_eq!(hier[0], 0.0);
        assert_eq!(flat[0], 10.0);
        // With budget for 2 pages and no forced first page, flat wastes a slot on the
        // phantom page 0 while hierarchical picks the genuinely better page 1.
        let mut h = HierarchicalSelector::new(false);
        let mut f = FlatSelector::new(false);
        let sh = h.select(&pool, &cache, &[&q], 8, 0);
        let sf = f.select(&pool, &cache, &[&q], 8, 0);
        assert!(
            sf.pages.contains(&0),
            "flat fooled by phantom: {:?}",
            sf.pages
        );
        assert!(
            !sh.pages.contains(&0),
            "hierarchical not fooled: {:?}",
            sh.pages
        );
        assert!(sh.pages.contains(&1));
    }

    #[test]
    fn scoring_cost_counts_logical_pages() {
        let (pool, cache) = build(8, 2, 64, 5);
        let q = [1.0f32, 0.0, 0.0, 0.0];
        let mut h = HierarchicalSelector::new(true);
        let s = h.select(&pool, &cache, &[&q], 16, 0);
        // 8 physical pages x 4 logical each.
        assert_eq!(s.logical_pages_scored, 32);
    }

    #[test]
    fn selection_respects_budget_pages() {
        let (pool, cache) = build(8, 2, 128, 6);
        let q = [0.5f32, 0.5, -0.5, 0.5];
        let mut h = HierarchicalSelector::new(true);
        let s = h.select(&pool, &cache, &[&q], 32, 0); // 4 pages of 8
        assert!(s.pages.len() <= 4);
        assert!(s.pages.contains(&(cache.num_pages() - 1)));
    }
}
