//! Importance scoring of logical and physical pages (Eq. 2 and Figure 7).

use lserve_kvcache::{DenseHeadCache, PagePool};

/// Eq. 2 importance of every *logical* page of a dense head, flattened in page order
/// (physical page 0's logical pages first). The score of a logical page is the max
/// over the query group of `Σ_i max(q[i]·kmax[i], q[i]·kmin[i])`.
///
/// Empty logical pages (in the trailing, partially filled physical page) score
/// `-inf`.
///
/// # Panics
///
/// Panics if `queries` is empty or any query has the wrong dimension.
pub fn logical_scores(pool: &PagePool, cache: &DenseHeadCache, queries: &[&[f32]]) -> Vec<f32> {
    assert!(!queries.is_empty(), "need at least one query row");
    let g = pool.config().logical_per_physical();
    let mut out = Vec::with_capacity(cache.num_pages() * g);
    for &id in cache.page_table() {
        let page = pool.page(id);
        for stats in page.logical_stats_all() {
            let mut best = f32::NEG_INFINITY;
            for q in queries {
                let s = stats.importance(q);
                if s > best {
                    best = s;
                }
            }
            out.push(best);
        }
    }
    out
}

/// Physical page scores under LServe's **hierarchical** policy: the max over each
/// physical page's logical scores ("the importance of each physical page is
/// determined by the max-reduction over the importance scores of its corresponding
/// logical pages", §3.5.2).
pub fn physical_scores_hierarchical(
    pool: &PagePool,
    cache: &DenseHeadCache,
    queries: &[&[f32]],
) -> Vec<f32> {
    let g = pool.config().logical_per_physical();
    let logical = logical_scores(pool, cache, queries);
    logical
        .chunks(g)
        .map(|chunk| chunk.iter().copied().fold(f32::NEG_INFINITY, f32::max))
        .collect()
}

/// Physical page scores under the **flat** (Quest) policy: one min/max representative
/// for the whole physical page, i.e. the logical statistics merged before scoring.
///
/// When `N_P > N_L` this is *not* the same as the hierarchical score: merging first
/// loosens the bound, which is exactly the homogenization failure of Figure 6.
pub fn physical_scores_flat(
    pool: &PagePool,
    cache: &DenseHeadCache,
    queries: &[&[f32]],
) -> Vec<f32> {
    assert!(!queries.is_empty(), "need at least one query row");
    let mut out = Vec::with_capacity(cache.num_pages());
    for &id in cache.page_table() {
        let page = pool.page(id);
        let mut merged: Option<lserve_kvcache::LogicalPageStats> = None;
        for stats in page.logical_stats_all() {
            if stats.is_empty() {
                continue;
            }
            match &mut merged {
                Some(m) => m.merge(stats),
                None => merged = Some(stats.clone()),
            }
        }
        let score = match merged {
            Some(m) => {
                let mut best = f32::NEG_INFINITY;
                for q in queries {
                    best = best.max(m.importance(q));
                }
                best
            }
            None => f32::NEG_INFINITY,
        };
        out.push(score);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lserve_kvcache::PagingConfig;
    use lserve_quant::KvPrecision;

    fn build_cache(keys: &[[f32; 2]], np: usize, nl: usize) -> (PagePool, DenseHeadCache) {
        let cfg = PagingConfig::new(np, nl, KvPrecision::Fp16);
        let mut pool = PagePool::new(cfg, 64, 2);
        let mut cache = DenseHeadCache::new();
        for k in keys {
            assert!(cache.append(&mut pool, k, &[0.0, 0.0]));
        }
        (pool, cache)
    }

    #[test]
    fn logical_scores_flattened_in_order() {
        let keys = [[1.0, 0.0], [2.0, 0.0], [0.0, 3.0], [0.0, 4.0], [5.0, 0.0]];
        let (pool, cache) = build_cache(&keys, 4, 2);
        let q = [1.0f32, 0.0];
        let s = logical_scores(&pool, &cache, &[&q]);
        // 2 physical pages x 2 logical each = 4 logical pages.
        assert_eq!(s.len(), 4);
        assert_eq!(s[0], 2.0); // tokens 0-1, max q.k = 2
        assert_eq!(s[1], 0.0); // tokens 2-3, q.k = 0
        assert_eq!(s[2], 5.0); // token 4
        assert_eq!(s[3], f32::NEG_INFINITY); // empty logical page
    }

    #[test]
    fn hierarchical_is_max_reduction() {
        let keys = [[1.0, 0.0], [2.0, 0.0], [0.0, 3.0], [0.0, 4.0]];
        let (pool, cache) = build_cache(&keys, 4, 2);
        let q = [0.0f32, 1.0];
        let phys = physical_scores_hierarchical(&pool, &cache, &[&q]);
        assert_eq!(phys, vec![4.0]); // max(0, 4)
    }

    #[test]
    fn flat_loosens_bound_vs_hierarchical() {
        // Keys engineered so merging min/max across the physical page creates a
        // phantom high score: channel 0 high in first half, channel 1 high in second.
        let keys = [[9.0, -9.0], [9.0, -9.0], [-9.0, 9.0], [-9.0, 9.0]];
        let (pool, cache) = build_cache(&keys, 4, 2);
        let q = [1.0f32, 1.0];
        let flat = physical_scores_flat(&pool, &cache, &[&q])[0];
        let hier = physical_scores_hierarchical(&pool, &cache, &[&q])[0];
        // Hierarchical: each logical page scores 9 + (-9)·... max(q·kmax,q·kmin):
        // page a: ch0 in {9}, ch1 in {-9} → 9 - 9 = 0. Same for page b → 0.
        // Flat merged: ch0 max 9, ch1 max 9 → 18.
        assert_eq!(hier, 0.0);
        assert_eq!(flat, 18.0);
        assert!(flat > hier, "flat must be the looser bound");
    }

    #[test]
    fn flat_equals_hierarchical_when_np_equals_nl() {
        let keys = [[1.0, 2.0], [3.0, -1.0], [0.5, 0.5], [-2.0, 1.0]];
        let (pool, cache) = build_cache(&keys, 2, 2);
        let q = [0.3f32, -0.7];
        let flat = physical_scores_flat(&pool, &cache, &[&q]);
        let hier = physical_scores_hierarchical(&pool, &cache, &[&q]);
        assert_eq!(flat, hier);
    }

    #[test]
    fn group_queries_take_max() {
        let keys = [[1.0, 0.0], [0.0, 1.0]];
        let (pool, cache) = build_cache(&keys, 2, 2);
        let q1 = [1.0f32, 0.0];
        let q2 = [0.0f32, 1.0];
        let solo1 = physical_scores_flat(&pool, &cache, &[&q1])[0];
        let both = physical_scores_flat(&pool, &cache, &[&q1, &q2])[0];
        assert!(both >= solo1);
    }
}
