//! Property tests for page scoring and selection policies.

use lserve_kvcache::{DenseHeadCache, LogicalPageStats, PagePool, PagingConfig};
use lserve_quant::KvPrecision;
use lserve_selector::{
    logical_scores, physical_scores_flat, physical_scores_hierarchical, top_k_indices,
    FlatSelector, HierarchicalSelector, PageSelector,
};
use proptest::prelude::*;

fn build(keys: &[Vec<f32>], np: usize, nl: usize) -> (PagePool, DenseHeadCache) {
    let cfg = PagingConfig::new(np, nl, KvPrecision::Fp16);
    let mut pool = PagePool::new(cfg, cfg.pages_for(keys.len()) + 1, 4);
    let mut cache = DenseHeadCache::new();
    for k in keys {
        assert!(cache.append(&mut pool, k, k));
    }
    (pool, cache)
}

fn key_strategy(len: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-4.0f32..4.0, 4), len..len + 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Hierarchical physical scores equal the brute-force max over per-logical-page
    /// Eq. 2 scores computed from scratch.
    #[test]
    fn hierarchical_equals_bruteforce(
        keys in (8usize..60).prop_flat_map(key_strategy),
        query in prop::collection::vec(-2.0f32..2.0, 4),
    ) {
        let (pool, cache) = build(&keys, 8, 2);
        let got = physical_scores_hierarchical(&pool, &cache, &[&query]);
        for (p, &score) in got.iter().enumerate() {
            let mut want = f32::NEG_INFINITY;
            for l in 0..4 {
                let start = p * 8 + l * 2;
                if start >= keys.len() {
                    continue;
                }
                let end = (start + 2).min(keys.len());
                let mut s = LogicalPageStats::new(4);
                for k in &keys[start..end] {
                    s.update(k);
                }
                want = want.max(s.importance(&query));
            }
            prop_assert_eq!(score, want, "page {}", p);
        }
    }

    /// The hierarchical physical score is never above the flat score (merging
    /// min/max first can only loosen the bound).
    #[test]
    fn hierarchical_never_exceeds_flat(
        keys in (8usize..60).prop_flat_map(key_strategy),
        query in prop::collection::vec(-2.0f32..2.0, 4),
    ) {
        let (pool, cache) = build(&keys, 8, 2);
        let hier = physical_scores_hierarchical(&pool, &cache, &[&query]);
        let flat = physical_scores_flat(&pool, &cache, &[&query]);
        for (h, f) in hier.iter().zip(&flat) {
            prop_assert!(h <= &(f + 1e-4), "hier {h} > flat {f}");
        }
    }

    /// Logical scores flatten consistently: `max` over each physical page's logical
    /// slice equals the hierarchical physical score.
    #[test]
    fn logical_flattening_consistent(
        keys in (4usize..50).prop_flat_map(key_strategy),
        query in prop::collection::vec(-2.0f32..2.0, 4),
    ) {
        let (pool, cache) = build(&keys, 8, 4);
        let logical = logical_scores(&pool, &cache, &[&query]);
        let phys = physical_scores_hierarchical(&pool, &cache, &[&query]);
        let g = 2; // 8/4
        prop_assert_eq!(logical.len(), cache.num_pages() * g);
        for (p, &score) in phys.iter().enumerate() {
            let m = logical[p * g..(p + 1) * g]
                .iter()
                .copied()
                .fold(f32::NEG_INFINITY, f32::max);
            prop_assert_eq!(score, m);
        }
    }

    /// top_k_indices returns a prefix of the full argsort.
    #[test]
    fn topk_is_argsort_prefix(
        scores in prop::collection::vec(-100.0f32..100.0, 1..64),
        k in 0usize..70,
    ) {
        let full = top_k_indices(&scores, scores.len());
        let got = top_k_indices(&scores, k);
        prop_assert_eq!(&got[..], &full[..k.min(scores.len())]);
    }

    /// Both selectors always produce in-range, deduplicated, budget-respecting
    /// selections containing the needle page when its signal dominates.
    #[test]
    fn selectors_find_dominant_needle(
        n_pages in 4usize..24,
        needle_page in 0usize..24,
        // Budget must exceed the two forced pages (first + most recent) so a slot
        // remains for the needle.
        budget_pages in 3usize..8,
    ) {
        let needle_page = needle_page % n_pages;
        let np = 8;
        let mut keys: Vec<Vec<f32>> = (0..n_pages * np)
            .map(|i| vec![((i * 13 % 7) as f32 - 3.0) * 0.1; 4])
            .collect();
        for key in keys.iter_mut().skip(needle_page * np).take(np) {
            *key = vec![9.0, 9.0, 9.0, 9.0];
        }
        let (pool, cache) = build(&keys, np, 2);
        let query = vec![1.0f32, 1.0, 1.0, 1.0];
        for flat in [true, false] {
            let sel = if flat {
                FlatSelector::new(true).select(&pool, &cache, &[&query], budget_pages * np, 0)
            } else {
                HierarchicalSelector::new(true).select(&pool, &cache, &[&query], budget_pages * np, 0)
            };
            prop_assert!(sel.pages.contains(&needle_page), "flat={flat}: {:?}", sel.pages);
            prop_assert!(sel.pages.iter().all(|&p| p < n_pages));
        }
    }
}
