//! Kernel-level time models: attention (decode + prefill), GEMM, page selection.

use lserve_quant::KvPrecision;

use crate::GpuSpec;

/// Fixed per-iteration overhead, expressed in equivalent bytes, that a paged decode
/// kernel pays per page it touches (address indirection, partial cache lines,
/// pipeline drain).
///
/// Calibrated to Table 1: with INT4 KV and head dim 128, a 16-token page moves 2 KiB
/// per K/V tensor and QServe measures ~1.5× end-to-end slowdown vs. 128-token pages
/// at 8K context; `c = 1400` against the combined K+V page bytes reproduces that ratio through
/// [`bandwidth_efficiency`].
pub const ITERATION_OVERHEAD_BYTES: f64 = 1400.0;

/// Selector cost per logical page per layer, seconds.
///
/// Calibrated to Figure 14: the vanilla page selector costs 0.24 ms per layer at
/// 128K context with `N_L = 16` (8192 logical pages) → ~29 ns per logical page.
pub const SELECTOR_SECONDS_PER_LOGICAL_PAGE: f64 = 0.24e-3 / 8192.0;

/// Fraction of peak FLOPs a well-tuned prefill attention kernel sustains.
/// Attention kernels run below GEMM utilization (softmax, masking, odd shapes);
/// the 0.5 : 0.7 ratio against [`GEMM_PREFILL_UTILIZATION`] reproduces Figure 2's
/// ~75% attention share of dense prefill at 128K.
pub const ATTENTION_PREFILL_UTILIZATION: f64 = 0.5;

/// Fraction of peak FLOPs large prefill GEMMs sustain.
pub const GEMM_PREFILL_UTILIZATION: f64 = 0.7;

/// Effective fraction of HBM bandwidth achieved when a kernel's contiguous access
/// granularity is `contig_bytes`: `s / (s + c)` with the calibrated overhead `c`.
///
/// Larger pages → higher efficiency; this is the quantitative form of the page-size
/// dilemma (§3.5.1).
pub fn bandwidth_efficiency(contig_bytes: f64) -> f64 {
    contig_bytes / (contig_bytes + ITERATION_OVERHEAD_BYTES)
}

/// Bytes one K *or* V page of `page_size` tokens occupies at `precision`, including
/// per-token scale/zero metadata for the quantized precisions.
pub fn page_bytes(page_size: usize, head_dim: usize, precision: KvPrecision) -> f64 {
    precision.bytes_for(page_size * head_dim)
        + precision.metadata_bytes_for(page_size * head_dim, head_dim)
}

/// Decode attention time for one model step: `tokens_attended` KV tokens across
/// `kv_heads` heads and `layers` layers at `precision`, accessed in pages of
/// `page_size` tokens, for `batch` sequences.
///
/// Memory-bound: bytes moved / (bandwidth × page-granularity efficiency).
#[allow(clippy::too_many_arguments)]
pub fn decode_attention_time(
    gpu: &GpuSpec,
    tokens_attended: f64,
    kv_heads: f64,
    head_dim: usize,
    layers: f64,
    precision: KvPrecision,
    page_size: usize,
    batch: f64,
) -> f64 {
    if tokens_attended <= 0.0 {
        return 0.0;
    }
    let per_token =
        2.0 * (precision.bytes_for(head_dim) + precision.metadata_bytes_for(head_dim, head_dim));
    let bytes = tokens_attended * kv_heads * per_token * layers * batch;
    // One iteration streams the K page and the V page together.
    let eff = bandwidth_efficiency(2.0 * page_bytes(page_size, head_dim, precision));
    bytes / (gpu.hbm_bytes_per_s * eff)
}

/// Prefill attention time for `visited_tiles` square tiles of `tile` tokens and head
/// dimension `head_dim`: each tile costs `4 · tile² · D` FLOPs (the `QKᵀ` and `PV`
/// halves), sustained at [`ATTENTION_PREFILL_UTILIZATION`] of FP16 peak, times an
/// optional competing-kernel `penalty` (1.0 = LServe's kernel; 1.3 = MInference's,
/// Figure 12).
pub fn prefill_attention_time(
    gpu: &GpuSpec,
    visited_tiles: f64,
    tile: usize,
    head_dim: usize,
    penalty: f64,
) -> f64 {
    let flops_per_tile = 4.0 * (tile * tile) as f64 * head_dim as f64;
    visited_tiles * flops_per_tile * penalty / (gpu.fp16_flops * ATTENTION_PREFILL_UTILIZATION)
}

/// Decode GEMM time: weight-bound streaming of all parameters once per step.
///
/// `weight_bytes` is the packed parameter size (precision already applied);
/// `dequant_penalty ≥ 1` models on-the-fly dequantization pressure for low-bit
/// weights.
pub fn decode_gemm_time(gpu: &GpuSpec, weight_bytes: f64, dequant_penalty: f64) -> f64 {
    weight_bytes * dequant_penalty / gpu.hbm_bytes_per_s
}

/// Prefill GEMM time: compute-bound, `2 · params · tokens` FLOPs at the given
/// per-second throughput (`fp16_flops` or `int8_ops` depending on the system's
/// activation precision).
pub fn prefill_gemm_time(params: f64, tokens: f64, ops_per_s: f64) -> f64 {
    2.0 * params * tokens / (ops_per_s * GEMM_PREFILL_UTILIZATION)
}

/// Page-selector time for one decode step across the whole model.
///
/// `logical_pages` is the logical page count (`seq / N_L`); cost is linear in it
/// (Figure 14). The per-page constant was calibrated on Llama-3-8B's per-layer
/// selector, so it already covers one layer's scored heads; the total divides by
/// the reuse interval `C` (§3.5.3).
pub fn selector_time(logical_pages: f64, layers: f64, reuse_interval: usize, batch: f64) -> f64 {
    assert!(reuse_interval >= 1, "reuse interval must be >= 1");
    logical_pages * SELECTOR_SECONDS_PER_LOGICAL_PAGE * layers * batch / reuse_interval as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_monotone_in_page_bytes() {
        let e1 = bandwidth_efficiency(1024.0);
        let e2 = bandwidth_efficiency(4096.0);
        let e3 = bandwidth_efficiency(65536.0);
        assert!(e1 < e2 && e2 < e3 && e3 < 1.0);
    }

    #[test]
    fn table1_calibration_page16_vs_128() {
        // INT4, head dim 128: attention-time ratio page16 : page128 ≈ 1.5.
        let b16 = 2.0 * page_bytes(16, 128, KvPrecision::Int4);
        let b128 = 2.0 * page_bytes(128, 128, KvPrecision::Int4);
        let ratio = bandwidth_efficiency(b128) / bandwidth_efficiency(b16);
        assert!((1.4..1.7).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn quantization_cuts_decode_attention_bytes() {
        let gpu = GpuSpec::a100_80g();
        let t16 = decode_attention_time(&gpu, 65536.0, 8.0, 128, 32.0, KvPrecision::Fp16, 128, 1.0);
        let t4 = decode_attention_time(&gpu, 65536.0, 8.0, 128, 32.0, KvPrecision::Int4, 128, 1.0);
        assert!(t4 < t16 / 2.5, "int4 {t4} vs fp16 {t16}");
    }

    #[test]
    fn vllm_attention_at_64k_near_paper() {
        // Llama-3-8B FP16 KV at 64K: ~34 GB per step → ~4.2 ms on A100. The paper's
        // Table 7 intercepts are consistent with this.
        let gpu = GpuSpec::a100_80g();
        let t = decode_attention_time(&gpu, 65536.0, 8.0, 128, 32.0, KvPrecision::Fp16, 16, 1.0);
        assert!((3.5e-3..6.0e-3).contains(&t), "t = {t}");
    }

    #[test]
    fn selector_time_matches_figure14_point() {
        // 128K context, NL=16 → 8192 logical pages, one layer, no reuse → 0.24 ms.
        let t = selector_time(8192.0, 1.0, 1, 1.0);
        assert!((t - 0.24e-3).abs() < 1e-9);
        // Reuse interval 4 cuts it 4x.
        assert!((selector_time(8192.0, 1.0, 4, 1.0) - 0.06e-3).abs() < 1e-9);
    }

    #[test]
    fn prefill_attention_dense_256k_magnitude() {
        // Dense Llama-3-8B at 256K: ~1.8e16 attention FLOPs → ~90-100 s on A100,
        // consistent with the paper's 116 s TRT-LLM prefill anecdote (§1).
        let gpu = GpuSpec::a100_80g();
        let seq: f64 = 262144.0;
        let tile = 128usize;
        let tiles_per_head = (seq / tile as f64).powi(2) / 2.0;
        let t = prefill_attention_time(&gpu, tiles_per_head * 32.0 * 32.0, tile, 128, 1.0);
        assert!((60.0..160.0).contains(&t), "t = {t}");
    }

    #[test]
    fn sparsity_scales_prefill_linearly() {
        let gpu = GpuSpec::a100_80g();
        let full = prefill_attention_time(&gpu, 1000.0, 64, 128, 1.0);
        let half = prefill_attention_time(&gpu, 500.0, 64, 128, 1.0);
        assert!((full / half - 2.0).abs() < 1e-9);
    }

    #[test]
    fn decode_gemm_llama3_fp16_magnitude() {
        // 8B params x 2 bytes / 2 TB/s ≈ 7.9 ms.
        let gpu = GpuSpec::a100_80g();
        let t = decode_gemm_time(&gpu, 8.03e9 * 2.0, 1.0);
        assert!((7e-3..9e-3).contains(&t), "t = {t}");
    }
}
