//! Analytical GPU cost model calibrated to the LServe paper's A100/L40S measurements.
//!
//! We reproduce the paper's *efficiency* experiments (Figures 2, 10, 11, 14, 15, 16;
//! Tables 1, 5, 7) without a GPU by modeling what those kernels are bound by:
//!
//! * **Decode attention** is memory-bound: time = KV bytes moved / (HBM bandwidth ×
//!   a page-size-dependent efficiency). The efficiency curve `s/(s+c)` (bytes of
//!   contiguous access `s` against a fixed per-iteration overhead `c`) is calibrated
//!   so QServe's page-size sweep reproduces Table 1 (~1.5× slowdown at page 16,
//!   saturating by page 128).
//! * **Prefill attention** is compute-bound: time = visited tiles × tile FLOPs /
//!   (peak FLOPs × utilization); block sparsity multiplies visited tiles by `1−r`
//!   (§3.1), and a competing kernel's inefficiency is a multiplicative penalty
//!   (MInference's kernel is ~1.3× slower than LServe's at equal sparsity,
//!   Figure 12).
//! * **Decode GEMM** is weight-bound at serving batch sizes: weight bytes /
//!   bandwidth. **Prefill GEMM** is compute-bound.
//! * **Page selection** costs a calibrated constant per logical page per layer
//!   (29 ns, from Figure 14's 0.24 ms at 128K context with `N_L = 16`), divided by
//!   the reuse interval.
//! * Each system carries a **per-step serving overhead** intercept (CPU scheduling,
//!   kernel launches, framework overhead) calibrated to the artifact's Table 7
//!   latencies.
//!
//! Absolute times are estimates; the deliverable is the *shape* — who wins, by what
//! factor, where the crossovers fall — which these components pin down because every
//! system differs only in bytes moved, tiles visited, and selector work.

pub mod e2e;
pub mod gpu;
pub mod kernels;
pub mod system;
pub mod topology;

pub use e2e::{
    decode_step, decode_throughput, max_batch, prefill, DecodeBreakdown, PrefillBreakdown,
};
pub use gpu::GpuSpec;
pub use kernels::{
    bandwidth_efficiency, decode_attention_time, page_bytes, prefill_attention_time, selector_time,
    ITERATION_OVERHEAD_BYTES, SELECTOR_SECONDS_PER_LOGICAL_PAGE,
};
pub use system::{PrefillSparsity, SystemModel};
pub use topology::{
    devices_from_env, Placement, PlacementPolicy, Topology, DEFAULT_GATHER_COST_TOKENS,
    INTERCONNECT_SPEEDUP,
};
