//! Serving-system configurations: LServe, its ablations, and the paper's baselines.

use lserve_quant::KvPrecision;

/// Prefill attention sparsity regime of a system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrefillSparsity {
    /// Full causal attention on every head.
    Dense,
    /// A fraction of heads follow the Λ streaming pattern (DuoAttention / LServe
    /// static sparsity); each streaming head visits ~`span_blocks` tiles per query
    /// tile instead of the causal triangle.
    StreamingHeads {
        /// Fraction of heads converted to streaming heads.
        streaming_fraction: f64,
        /// Sink + local blocks a streaming query tile visits.
        span_blocks: f64,
    },
    /// Query-aware dynamic block sparsity on all heads (MInference): each query
    /// attends ~`base_tokens + frac · seq` tokens, with a kernel-inefficiency
    /// `penalty` relative to LServe's kernel (Figure 12 measures ≈1.3).
    DynamicBlock {
        /// Constant attended-token floor.
        base_tokens: f64,
        /// Linear attended-token growth with context.
        frac: f64,
        /// Kernel slowdown factor vs. LServe's block-sparse kernel.
        penalty: f64,
    },
    /// LServe's hybrid: streaming heads always, plus MInference-style dynamic
    /// sparsity on the retrieval heads once the context exceeds
    /// `dynamic_after_tokens` (§4.3: "activated after 128K").
    Hybrid {
        /// Fraction of heads converted to streaming heads.
        streaming_fraction: f64,
        /// Sink + local blocks per streaming query tile.
        span_blocks: f64,
        /// Context length beyond which retrieval heads also run dynamic sparsity.
        dynamic_after_tokens: usize,
        /// Constant attended-token floor for the dynamic part.
        base_tokens: f64,
        /// Linear attended-token growth for the dynamic part.
        frac: f64,
    },
}

/// Full description of one serving system for the cost model.
///
/// Presets encode the paper's five systems plus LServe's ablations; all fields are
/// public so benches can build sweeps (e.g. Table 1 varies `page_size`).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemModel {
    /// Display name.
    pub name: &'static str,
    /// KV cache precision.
    pub kv_precision: KvPrecision,
    /// Physical page size in tokens.
    pub page_size: usize,
    /// Logical page size for selector statistics.
    pub logical_page: usize,
    /// Packed bytes per weight parameter (2.0 = FP16, 0.5 = W4).
    pub weight_bytes_per_param: f64,
    /// Bandwidth penalty for on-the-fly weight dequantization (≥ 1).
    pub weight_dequant_penalty: f64,
    /// Prefill GEMM throughput selector: `true` → INT8 tensor cores (W8A8/W4A8),
    /// `false` → FP16.
    pub int8_gemm: bool,
    /// Fraction of KV heads that are streaming heads during decode.
    pub streaming_fraction: f64,
    /// Tokens a streaming head attends (sink + local window).
    pub streaming_span_tokens: usize,
    /// Dynamic page-selection token budget; `None` disables dynamic sparsity.
    pub dynamic_budget: Option<usize>,
    /// Page-selector reuse interval `C` (1 = vanilla selection every step).
    pub reuse_interval: usize,
    /// Per-decode-step serving-stack overhead in seconds (scheduler, launches,
    /// framework) — the intercept calibrated to artifact Table 7.
    pub step_overhead_s: f64,
    /// Prefill sparsity regime.
    pub prefill: PrefillSparsity,
}

impl SystemModel {
    /// vLLM v0.6.3: FP16 weights and KV, PagedAttention with 16-token pages, dense
    /// attention in both stages. Intercept calibrated so Table 7's 64K point
    /// (12.51 ms/step on Llama-3-8B) is reproduced.
    pub fn vllm() -> Self {
        Self {
            name: "vLLM",
            kv_precision: KvPrecision::Fp16,
            page_size: 16,
            logical_page: 16,
            weight_bytes_per_param: 2.0,
            weight_dequant_penalty: 1.0,
            // The paper activates W8A8 for baselines where available (§4.1).
            int8_gemm: true,
            streaming_fraction: 0.0,
            streaming_span_tokens: 0,
            dynamic_budget: None,
            reuse_interval: 1,
            step_overhead_s: 0.5e-3,
            prefill: PrefillSparsity::Dense,
        }
    }

    /// QServe: W4A8KV4 quantization, 128-token pages, dense attention. Shares the
    /// PyTorch serving stack (and its per-step overhead) with LServe, which is built
    /// on it.
    pub fn qserve() -> Self {
        Self {
            name: "QServe",
            kv_precision: KvPrecision::Int4,
            page_size: 128,
            logical_page: 128,
            weight_bytes_per_param: 0.5,
            weight_dequant_penalty: 1.3,
            int8_gemm: true,
            streaming_fraction: 0.0,
            streaming_span_tokens: 0,
            dynamic_budget: None,
            reuse_interval: 1,
            step_overhead_s: 7.9e-3,
            prefill: PrefillSparsity::Dense,
        }
    }

    /// DuoAttention: FP16, static sparsity only — half the heads streaming in both
    /// stages.
    pub fn duo_attention() -> Self {
        Self {
            name: "DuoAttention",
            kv_precision: KvPrecision::Fp16,
            page_size: 16,
            logical_page: 16,
            weight_bytes_per_param: 2.0,
            weight_dequant_penalty: 1.0,
            int8_gemm: false,
            streaming_fraction: 0.5,
            streaming_span_tokens: 1152,
            dynamic_budget: None,
            reuse_interval: 1,
            step_overhead_s: 1.0e-3,
            prefill: PrefillSparsity::StreamingHeads {
                streaming_fraction: 0.5,
                span_blocks: 3.0,
            },
        }
    }

    /// MInference: dynamic sparse *prefill* (1.3× kernel penalty vs LServe's,
    /// Figure 12) but an unoptimized dense FP16 decode path — the paper notes its
    /// decode throughput is far below vLLM's unless integrated into it.
    pub fn minference() -> Self {
        Self {
            name: "MInference",
            kv_precision: KvPrecision::Fp16,
            page_size: 16,
            logical_page: 16,
            weight_bytes_per_param: 2.0,
            weight_dequant_penalty: 1.0,
            int8_gemm: false,
            streaming_fraction: 0.0,
            streaming_span_tokens: 0,
            dynamic_budget: None,
            reuse_interval: 1,
            step_overhead_s: 90.0e-3,
            prefill: PrefillSparsity::DynamicBlock {
                base_tokens: 4096.0,
                frac: 0.15,
                penalty: 1.3,
            },
        }
    }

    /// Quest: FP16, 16-token pages, query-aware page selection every step
    /// (no hierarchical paging, no reuse), dense prefill. Overhead calibrated to
    /// Table 5's Llama-2-7B decode latencies.
    pub fn quest() -> Self {
        Self {
            name: "Quest",
            kv_precision: KvPrecision::Fp16,
            page_size: 16,
            logical_page: 16,
            weight_bytes_per_param: 2.0,
            weight_dequant_penalty: 1.0,
            int8_gemm: false,
            streaming_fraction: 0.0,
            streaming_span_tokens: 0,
            dynamic_budget: Some(4096),
            reuse_interval: 1,
            step_overhead_s: 4.0e-3,
            prefill: PrefillSparsity::Dense,
        }
    }

    /// LServe: W4A8KV4, 64-token physical / 16-token logical pages, half the heads
    /// streaming, 4096-token dynamic budget with reuse interval 4, hybrid prefill
    /// (dynamic part activated beyond 128K, §4.3).
    pub fn lserve() -> Self {
        Self {
            name: "LServe",
            kv_precision: KvPrecision::Int4,
            page_size: 64,
            logical_page: 16,
            weight_bytes_per_param: 0.5,
            weight_dequant_penalty: 1.3,
            int8_gemm: true,
            streaming_fraction: 0.5,
            streaming_span_tokens: 1152,
            dynamic_budget: Some(4096),
            reuse_interval: 4,
            step_overhead_s: 7.9e-3,
            prefill: PrefillSparsity::Hybrid {
                streaming_fraction: 0.5,
                span_blocks: 3.0,
                dynamic_after_tokens: 131_072,
                base_tokens: 4096.0,
                // Retrieval heads keep a larger attended fraction than MInference's
                // aggressive setting; tuned so the peak prefill speedup over vLLM
                // stays at the paper's ~2.9x.
                frac: 0.28,
            },
        }
    }

    /// LServe ablation: static sparsity only (Figure 15/16, "+50% Streaming Heads").
    pub fn lserve_static_only() -> Self {
        Self {
            name: "LServe-static",
            dynamic_budget: None,
            reuse_interval: 1,
            ..Self::lserve()
        }
    }

    /// LServe ablation: dynamic sparsity only (Figure 15/16, "+Dynamic Sparsity").
    pub fn lserve_dynamic_only() -> Self {
        Self {
            name: "LServe-dynamic",
            streaming_fraction: 0.0,
            streaming_span_tokens: 0,
            prefill: PrefillSparsity::Dense,
            ..Self::lserve()
        }
    }

    /// The quantized dense baseline used by the ablation figures ("Baseline
    /// Attention" / "Dense Attention"): LServe's stack with all sparsity off.
    pub fn lserve_dense_baseline() -> Self {
        Self {
            name: "Dense",
            streaming_fraction: 0.0,
            streaming_span_tokens: 0,
            dynamic_budget: None,
            reuse_interval: 1,
            prefill: PrefillSparsity::Dense,
            ..Self::lserve()
        }
    }

    /// Bytes of KV cache one token costs per layer across all KV heads at this
    /// system's precision, counting streaming-head eviction (streaming heads hold a
    /// constant window, so only the dense fraction grows with context).
    pub fn kv_bytes_per_token_per_layer(&self, kv_heads: usize, head_dim: usize) -> f64 {
        let per_head = 2.0
            * (self.kv_precision.bytes_for(head_dim)
                + self.kv_precision.metadata_bytes_for(head_dim, head_dim));
        kv_heads as f64 * (1.0 - self.streaming_fraction) * per_head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct() {
        let names: Vec<&str> = [
            SystemModel::vllm(),
            SystemModel::qserve(),
            SystemModel::duo_attention(),
            SystemModel::minference(),
            SystemModel::quest(),
            SystemModel::lserve(),
        ]
        .iter()
        .map(|s| s.name)
        .collect();
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn lserve_kv_per_token_far_below_vllm() {
        let l = SystemModel::lserve().kv_bytes_per_token_per_layer(8, 128);
        let v = SystemModel::vllm().kv_bytes_per_token_per_layer(8, 128);
        // INT4 (4x) and half the heads streaming (2x) → ~7x less KV growth.
        assert!(l < v / 5.0, "lserve {l} vs vllm {v}");
    }

    #[test]
    fn ablations_inherit_stack() {
        let l = SystemModel::lserve();
        let s = SystemModel::lserve_static_only();
        assert_eq!(s.step_overhead_s, l.step_overhead_s);
        assert_eq!(s.kv_precision, l.kv_precision);
        assert!(s.dynamic_budget.is_none());
        let d = SystemModel::lserve_dynamic_only();
        assert_eq!(d.streaming_fraction, 0.0);
        assert!(d.dynamic_budget.is_some());
    }
}
