//! GPU hardware parameters for the two devices the paper evaluates on.

/// Hardware parameters of one GPU.
///
/// # Example
///
/// ```
/// use lserve_costmodel::GpuSpec;
///
/// let a100 = GpuSpec::a100_80g();
/// assert!(a100.hbm_bytes_per_s > 1e12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Device name used in benchmark output.
    pub name: &'static str,
    /// HBM bandwidth in bytes/second.
    pub hbm_bytes_per_s: f64,
    /// Dense FP16 tensor-core throughput, FLOPs/second.
    pub fp16_flops: f64,
    /// Dense INT8 tensor-core throughput, ops/second.
    pub int8_ops: f64,
    /// Per-kernel launch overhead, seconds.
    pub kernel_launch_s: f64,
    /// Usable device memory for KV cache, bytes (total minus weights headroom is
    /// applied per system).
    pub memory_bytes: f64,
}

impl GpuSpec {
    /// NVIDIA A100 80GB SXM (the paper's primary testbed, §4.1).
    pub fn a100_80g() -> Self {
        Self {
            name: "A100-80G",
            hbm_bytes_per_s: 2.039e12,
            fp16_flops: 312e12,
            int8_ops: 624e12,
            kernel_launch_s: 5e-6,
            memory_bytes: 80e9,
        }
    }

    /// NVIDIA L40S 48GB (Ada Lovelace; the paper's secondary device).
    pub fn l40s() -> Self {
        Self {
            name: "L40S-48G",
            hbm_bytes_per_s: 0.864e12,
            fp16_flops: 181e12,
            int8_ops: 362e12,
            kernel_launch_s: 5e-6,
            memory_bytes: 48e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_outclasses_l40s() {
        let a = GpuSpec::a100_80g();
        let l = GpuSpec::l40s();
        assert!(a.hbm_bytes_per_s > 2.0 * l.hbm_bytes_per_s);
        assert!(a.fp16_flops > l.fp16_flops);
        assert!(a.memory_bytes > l.memory_bytes);
    }
}
