//! End-to-end latency composition: per-step decode and full prefill.

use lserve_model::ModelConfig;

use crate::kernels::{
    decode_attention_time, decode_gemm_time, prefill_attention_time, prefill_gemm_time,
    selector_time, GEMM_PREFILL_UTILIZATION,
};
use crate::{GpuSpec, PrefillSparsity, SystemModel};

/// Latency breakdown of one decode step (whole model, `batch` sequences).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DecodeBreakdown {
    /// Weight-streaming GEMM time, seconds.
    pub gemm_s: f64,
    /// Attention over dense (retrieval) heads.
    pub attention_dense_s: f64,
    /// Attention over streaming heads.
    pub attention_streaming_s: f64,
    /// Dynamic page-selector time.
    pub selector_s: f64,
    /// Kernel-launch + serving-stack overhead.
    pub overhead_s: f64,
}

impl DecodeBreakdown {
    /// Total step latency, seconds.
    pub fn total(&self) -> f64 {
        self.gemm_s
            + self.attention_dense_s
            + self.attention_streaming_s
            + self.selector_s
            + self.overhead_s
    }

    /// Total attention time (both head kinds), seconds.
    pub fn attention_s(&self) -> f64 {
        self.attention_dense_s + self.attention_streaming_s
    }
}

/// Latency breakdown of a prefill over `seq` tokens.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PrefillBreakdown {
    /// Linear-layer (GEMM) time, seconds.
    pub gemm_s: f64,
    /// Attention time, seconds.
    pub attention_s: f64,
    /// Everything else (norms, RoPE, KV quantization+write, pooling), seconds.
    pub other_s: f64,
}

impl PrefillBreakdown {
    /// Total prefill latency (time to first token), seconds.
    pub fn total(&self) -> f64 {
        self.gemm_s + self.attention_s + self.other_s
    }
}

/// Models one decode step of `model` under `sys` with `seq` tokens of history and
/// `batch` concurrent sequences.
pub fn decode_step(
    gpu: &GpuSpec,
    model: &ModelConfig,
    sys: &SystemModel,
    seq: usize,
    batch: usize,
) -> DecodeBreakdown {
    let layers = model.num_layers as f64;
    let kv_heads = model.num_kv_heads as f64;
    let dense_heads = kv_heads * (1.0 - sys.streaming_fraction);
    let stream_heads = kv_heads * sys.streaming_fraction;
    let b = batch as f64;

    let gemm_s = decode_gemm_time(
        gpu,
        model.approx_params() * sys.weight_bytes_per_param,
        sys.weight_dequant_penalty,
    );

    let dense_tokens = match sys.dynamic_budget {
        Some(budget) => (seq as f64).min(budget as f64),
        None => seq as f64,
    };
    let attention_dense_s = decode_attention_time(
        gpu,
        dense_tokens,
        dense_heads,
        model.head_dim,
        layers,
        sys.kv_precision,
        sys.page_size,
        b,
    );
    let stream_tokens = (seq as f64).min(sys.streaming_span_tokens as f64);
    let attention_streaming_s = decode_attention_time(
        gpu,
        stream_tokens,
        stream_heads,
        model.head_dim,
        layers,
        sys.kv_precision,
        sys.page_size,
        b,
    );

    let selector_s = match sys.dynamic_budget {
        Some(_) => {
            // Calibrated per layer against Figure 14, which profiles LServe's
            // selector (its dense heads) at NL=16; we treat the per-logical-page
            // constant as covering one layer's scored heads.
            let logical_pages = seq as f64 / sys.logical_page as f64;
            selector_time(logical_pages, layers, sys.reuse_interval, b)
        }
        None => 0.0,
    };

    // ~6 kernel launches per layer plus the serving-stack intercept.
    let overhead_s = 6.0 * layers * gpu.kernel_launch_s + sys.step_overhead_s;

    DecodeBreakdown {
        gemm_s,
        attention_dense_s,
        attention_streaming_s,
        selector_s,
        overhead_s,
    }
}

/// Visited prefill attention tiles per (query head, layer) for a dense causal
/// triangle of `nb` blocks.
fn causal_tiles(nb: f64) -> f64 {
    nb * (nb + 1.0) / 2.0
}

/// Models the prefill (time to first token) of `model` under `sys` for a `seq`-token
/// prompt.
pub fn prefill(
    gpu: &GpuSpec,
    model: &ModelConfig,
    sys: &SystemModel,
    seq: usize,
) -> PrefillBreakdown {
    let layers = model.num_layers as f64;
    let q_heads = model.num_q_heads as f64;
    const TILE: usize = 128;
    let nb = (seq as f64 / TILE as f64).max(1.0);

    let ops = if sys.int8_gemm {
        gpu.int8_ops
    } else {
        gpu.fp16_flops
    };
    let gemm_s = prefill_gemm_time(model.approx_params(), seq as f64, ops);

    let dense_tiles = causal_tiles(nb);
    // Tiles per head under each sparsity regime.
    let tiles_per_head = |sparsity: &PrefillSparsity| -> (f64, f64) {
        match *sparsity {
            PrefillSparsity::Dense => (dense_tiles, 1.0),
            PrefillSparsity::StreamingHeads {
                streaming_fraction,
                span_blocks,
            } => {
                let stream = (span_blocks * nb).min(dense_tiles);
                (
                    streaming_fraction * stream + (1.0 - streaming_fraction) * dense_tiles,
                    1.0,
                )
            }
            PrefillSparsity::DynamicBlock {
                base_tokens,
                frac,
                penalty,
            } => {
                let attended = (base_tokens + frac * seq as f64).min(seq as f64 / 2.0);
                let tiles = (attended / TILE as f64) * nb;
                (tiles.min(dense_tiles), penalty)
            }
            PrefillSparsity::Hybrid {
                streaming_fraction,
                span_blocks,
                dynamic_after_tokens,
                base_tokens,
                frac,
            } => {
                let stream = (span_blocks * nb).min(dense_tiles);
                let retrieval = if seq > dynamic_after_tokens {
                    let attended = (base_tokens + frac * seq as f64).min(seq as f64 / 2.0);
                    ((attended / TILE as f64) * nb).min(dense_tiles)
                } else {
                    dense_tiles
                };
                (
                    streaming_fraction * stream + (1.0 - streaming_fraction) * retrieval,
                    1.0,
                )
            }
        }
    };
    let (per_head_tiles, penalty) = tiles_per_head(&sys.prefill);
    let attention_s = prefill_attention_time(
        gpu,
        per_head_tiles * q_heads * layers,
        TILE,
        model.head_dim,
        penalty,
    );

    // Norms, RoPE, KV quantization and write-back, context pooling: proportional to
    // token count; modeled as 10% of the *dense* GEMM time (activation-bound work is
    // precision-independent to first order). Context pooling itself is negligible
    // (§5.3: "<1 ms against ~17 s").
    let other_s = 0.10 * prefill_gemm_time(model.approx_params(), seq as f64, gpu.fp16_flops)
        + 2.0 * layers * gpu.kernel_launch_s;
    let _ = GEMM_PREFILL_UTILIZATION;

    PrefillBreakdown {
        gemm_s,
        attention_s,
        other_s,
    }
}

/// Largest batch of `seq`-token sequences whose KV fits device memory next to the
/// weights (used by the Figure 10 throughput harness; systems that cannot fit even
/// one sequence are "OOM").
pub fn max_batch(gpu: &GpuSpec, model: &ModelConfig, sys: &SystemModel, seq: usize) -> usize {
    let weight_bytes = model.approx_params() * sys.weight_bytes_per_param;
    let activations_headroom = 4e9;
    let free = gpu.memory_bytes - weight_bytes - activations_headroom;
    if free <= 0.0 {
        return 0;
    }
    let kv_per_seq = sys.kv_bytes_per_token_per_layer(model.num_kv_heads, model.head_dim)
        * model.num_layers as f64
        * seq as f64
        // Streaming heads hold a constant-size window regardless of seq.
        + sys.streaming_fraction
            * model.num_kv_heads as f64
            * 2.0
            * sys.kv_precision.bytes_for(model.head_dim)
            * model.num_layers as f64
            * sys.streaming_span_tokens as f64;
    (free / kv_per_seq).floor() as usize
}

/// Decode throughput in tokens/second at a serving batch of up to 8 concurrent
/// sequences (memory permitting); returns `None` when the system cannot hold a
/// single sequence (OOM, as marked in Figure 10).
pub fn decode_throughput(
    gpu: &GpuSpec,
    model: &ModelConfig,
    sys: &SystemModel,
    seq: usize,
) -> Option<f64> {
    let batch = max_batch(gpu, model, sys, seq).min(8);
    if batch == 0 {
        return None;
    }
    let step = decode_step(gpu, model, sys, seq, batch).total();
    Some(batch as f64 / step)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a100() -> GpuSpec {
        GpuSpec::a100_80g()
    }

    #[test]
    fn table7_vllm_vs_lserve_shape() {
        // Artifact Table 7: vLLM 12.51→27.45 ms and LServe 11.49→15.10 ms from 64K
        // to 320K; speedup grows 1.09→1.82.
        let m = ModelConfig::llama3_8b();
        let v = SystemModel::vllm();
        let l = SystemModel::lserve();
        let v64 = decode_step(&a100(), &m, &v, 65_536, 1).total() * 1e3;
        let l64 = decode_step(&a100(), &m, &l, 65_536, 1).total() * 1e3;
        let v320 = decode_step(&a100(), &m, &v, 327_680, 1).total() * 1e3;
        let l320 = decode_step(&a100(), &m, &l, 327_680, 1).total() * 1e3;
        assert!((11.0..16.0).contains(&v64), "vllm@64k {v64}");
        assert!((9.5..13.5).contains(&l64), "lserve@64k {l64}");
        assert!((24.0..38.0).contains(&v320), "vllm@320k {v320}");
        assert!((13.0..18.0).contains(&l320), "lserve@320k {l320}");
        let s64 = v64 / l64;
        let s320 = v320 / l320;
        assert!(s64 > 1.0 && s64 < 1.4, "speedup@64k {s64}");
        assert!(s320 > 1.5 && s320 < 2.4, "speedup@320k {s320}");
        assert!(s320 > s64, "speedup must grow with context");
    }

    #[test]
    fn lserve_decode_nearly_flat_in_context() {
        let m = ModelConfig::llama3_8b();
        let l = SystemModel::lserve();
        let t64 = decode_step(&a100(), &m, &l, 65_536, 1).total();
        let t256 = decode_step(&a100(), &m, &l, 262_144, 1).total();
        assert!(
            t256 / t64 < 1.5,
            "LServe decode must be near-constant: {}",
            t256 / t64
        );
    }

    #[test]
    fn vllm_decode_linear_in_context() {
        let m = ModelConfig::llama3_8b();
        let v = SystemModel::vllm();
        let t64 = decode_step(&a100(), &m, &v, 65_536, 1);
        let t256 = decode_step(&a100(), &m, &v, 262_144, 1);
        let attn_ratio = t256.attention_dense_s / t64.attention_dense_s;
        assert!(
            (attn_ratio - 4.0).abs() < 0.1,
            "attention must scale 4x: {attn_ratio}"
        );
    }

    #[test]
    fn figure2_attention_dominates_long_prefill() {
        let m = ModelConfig::llama3_8b();
        let dense = SystemModel::vllm();
        let b128 = prefill(&a100(), &m, &dense, 131_072);
        let frac = b128.attention_s / b128.total();
        assert!(frac > 0.5, "attention fraction at 128K prefill: {frac}");
        let b8 = prefill(&a100(), &m, &dense, 8_192);
        let frac8 = b8.attention_s / b8.total();
        assert!(frac8 < frac, "attention fraction must grow with length");
    }

    #[test]
    fn figure2_decode_attention_dominates_at_128k() {
        let m = ModelConfig::llama3_8b();
        let v = SystemModel::vllm();
        let b = decode_step(&a100(), &m, &v, 131_072, 1);
        assert!(b.attention_s() / b.total() > 0.45);
    }

    #[test]
    fn prefill_speedup_up_to_3x() {
        // Paper: LServe accelerates prefilling by up to 2.9x over vLLM.
        let m = ModelConfig::llama2_7b();
        let v = SystemModel::vllm();
        let l = SystemModel::lserve();
        for &seq in &[16_384usize, 65_536, 163_840] {
            let s = prefill(&a100(), &m, &v, seq).total() / prefill(&a100(), &m, &l, seq).total();
            assert!((1.1..3.2).contains(&s), "prefill speedup {s} at {seq}");
        }
    }

    #[test]
    fn minference_decode_is_slowest() {
        let m = ModelConfig::llama3_8b();
        let mi = decode_step(&a100(), &m, &SystemModel::minference(), 131_072, 1).total();
        for sys in [
            SystemModel::vllm(),
            SystemModel::lserve(),
            SystemModel::qserve(),
        ] {
            assert!(mi > decode_step(&a100(), &m, &sys, 131_072, 1).total());
        }
    }

    #[test]
    fn table5_quest_vs_lserve_decode() {
        // Table 5: Quest 13.13→14.86 ms, LServe 10.02→10.24 ms over 4K–32K on
        // Llama-2-7B → 1.3–1.5x.
        let m = ModelConfig::llama2_7b();
        let q = SystemModel::quest();
        let l = SystemModel::lserve();
        for &seq in &[4096usize, 8192, 16384, 32768] {
            let tq = decode_step(&a100(), &m, &q, seq, 1).total() * 1e3;
            let tl = decode_step(&a100(), &m, &l, seq, 1).total() * 1e3;
            let s = tq / tl;
            assert!((1.1..1.8).contains(&s), "quest/lserve {s} at {seq}");
            assert!((8.0..16.0).contains(&tq), "quest {tq} at {seq}");
        }
    }

    #[test]
    fn max_batch_ordering() {
        // Quantized + streaming KV admits far larger batches than FP16 dense KV.
        let m = ModelConfig::llama3_8b();
        let seq = 131_072;
        let bv = max_batch(&a100(), &m, &SystemModel::vllm(), seq);
        let bq = max_batch(&a100(), &m, &SystemModel::qserve(), seq);
        let bl = max_batch(&a100(), &m, &SystemModel::lserve(), seq);
        assert!(bv < bq, "vllm {bv} vs qserve {bq}");
        assert!(bq < bl, "qserve {bq} vs lserve {bl}");
        assert!(bv >= 1);
    }

    #[test]
    fn oom_reported_as_none() {
        // Llama-2-7B MHA FP16 KV at 512K ≈ 0.5 TB/seq → OOM on 80 GB.
        let m = ModelConfig::llama2_7b();
        assert!(decode_throughput(&a100(), &m, &SystemModel::vllm(), 524_288).is_none());
        assert!(decode_throughput(&a100(), &m, &SystemModel::lserve(), 524_288).is_some());
    }

    #[test]
    fn figure15_ablation_ordering() {
        // Static-only bounded ~2x; dynamic-only constant; combined best at long ctx.
        let m = ModelConfig::llama2_7b();
        let seq = 262_144;
        let dense = decode_step(&a100(), &m, &SystemModel::lserve_dense_baseline(), seq, 1);
        let stat = decode_step(&a100(), &m, &SystemModel::lserve_static_only(), seq, 1);
        let dyn_ = decode_step(&a100(), &m, &SystemModel::lserve_dynamic_only(), seq, 1);
        let full = decode_step(&a100(), &m, &SystemModel::lserve(), seq, 1);
        let a = |b: &DecodeBreakdown| b.attention_s() + b.selector_s;
        assert!(a(&stat) < a(&dense), "static must beat dense");
        assert!(a(&stat) > a(&dense) / 2.2, "static gain bounded near 2x");
        assert!(a(&dyn_) < a(&stat), "dynamic wins at 256K");
        assert!(a(&full) <= a(&dyn_) * 1.01, "combined at least as good");
    }

    #[test]
    fn l40s_slower_but_same_ordering() {
        let m = ModelConfig::llama3_8b();
        let gpu = GpuSpec::l40s();
        let v = decode_step(&gpu, &m, &SystemModel::vllm(), 131_072, 1).total();
        let l = decode_step(&gpu, &m, &SystemModel::lserve(), 131_072, 1).total();
        assert!(v > l, "LServe must win on L40S too");
        let va = decode_step(&a100(), &m, &SystemModel::vllm(), 131_072, 1).total();
        assert!(v > va, "L40S must be slower than A100");
    }
}
